//! Vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships the slice of `rand` it actually uses: [`rngs::StdRng`] (a
//! xoshiro256++ generator seeded via SplitMix64 — deterministic across
//! platforms, not the upstream ChaCha12 stream), the [`Rng`] extension
//! trait with `gen`/`gen_range`/`gen_bool`/`fill`, and [`SeedableRng`].
//!
//! Everything the workspace relies on — cross-run determinism for a fixed
//! seed, uniformity good enough for weight init, data augmentation and
//! fault sampling — is preserved. Streams differ from upstream `rand`,
//! so regenerated figures are self-consistent rather than byte-equal to
//! runs made with the crates.io implementation.

pub mod rngs;

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform random words.
pub trait RngCore {
    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32;
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` convenience seed (SplitMix64
    /// expansion, as in upstream `rand_core`'s default).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state);
            let bytes = word.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One SplitMix64 step: advances `state` and returns the mixed output.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types samplable uniformly from the generator's full word ("standard"
/// distribution): integers use the raw stream, floats land in `[0, 1)`.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $method:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$method() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64, i8 => next_u32, i16 => next_u32,
    i32 => next_u32, i64 => next_u64, isize => next_u64);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24-bit mantissa in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53-bit mantissa in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types with a uniform sampler over a `lo..hi` span.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

/// Unbiased integer draw from `[0, span)` (`span == 0` means the full
/// 2^64 range) via rejection of the biased tail.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                // Span in the type's own width (two's-complement distance),
                // then widened: correct for signed ranges like -128..128.
                let span_native = (hi as $u).wrapping_sub(lo as $u);
                let span = (span_native as u64).wrapping_add(u64::from(inclusive));
                lo.wrapping_add(uniform_u64(rng, span) as $u as $t)
            }
        }
    )*};
}
impl_uniform_int!(
    u8 as u8,
    u16 as u16,
    u32 as u32,
    u64 as u64,
    usize as usize,
    i8 as u8,
    i16 as u16,
    i32 as u32,
    i64 as u64,
    isize as usize
);

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        let u = f32::sample(rng);
        (lo + u * (hi - lo)).clamp(lo.min(hi), hi.max(lo))
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        let u = f64::sample(rng);
        (lo + u * (hi - lo)).clamp(lo.min(hi), hi.max(lo))
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range called with empty range");
        T::sample_range(rng, lo, hi, true)
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Fills `dest` with standard draws.
    fn fill<T: Standard>(&mut self, dest: &mut [T]) {
        for slot in dest {
            *slot = T::sample(self);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(-128i32..128);
            assert!((-128..128).contains(&v));
            let f = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
            let u = rng.gen_range(0usize..=9);
            assert!(u <= 9);
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn floats_land_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_handles_ragged_tails() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
