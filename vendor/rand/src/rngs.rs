//! Concrete generators.

use crate::{splitmix64, RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256++.
///
/// Deterministic, portable, passes BigCrush; state is four 64-bit words
/// expanded from the seed bytes (or from a `u64` via SplitMix64). Unlike
/// upstream `rand`'s ChaCha12-based `StdRng` it is not intended to be
/// cryptographically secure — the workspace only needs reproducible
/// simulation streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn from_words(mut words: [u64; 4]) -> Self {
        // xoshiro must not start from the all-zero state.
        if words == [0; 4] {
            let mut sm = 0xDEAD_BEEF_CAFE_F00Du64;
            for w in &mut words {
                *w = splitmix64(&mut sm);
            }
        }
        StdRng { s: words }
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut words = [0u64; 4];
        for (w, chunk) in words.iter_mut().zip(seed.chunks_exact(8)) {
            *w = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        StdRng::from_words(words)
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Alias kept for API compatibility with `rand::rngs::SmallRng` users.
pub type SmallRng = StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_rescued() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), 0, "all-zero state would be stuck");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = StdRng::seed_from_u64(9);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
