//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Length specifications accepted by [`vec`]: a fixed `usize` or a range.
pub trait SizeRange {
    /// Draws a length.
    fn sample_len(&self, rng: &mut StdRng) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn sample_len(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Strategy producing `Vec`s of values drawn from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

/// `Vec` strategy with element strategy `element` and length spec `len`
/// (a fixed `usize` or a `Range<usize>`).
pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let n = self.len.sample_len(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}
