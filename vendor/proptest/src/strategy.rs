//! The [`Strategy`] abstraction: a recipe for sampling test inputs.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

/// A source of random test values.
///
/// This is the generate-only core of proptest's strategy concept: no
/// shrinking machinery, just deterministic sampling from the test's RNG.
pub trait Strategy {
    /// The type of value produced.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategy backed by a sampling function.
pub struct FnStrategy<T, F: Fn(&mut StdRng) -> T>(pub F);

impl<T: std::fmt::Debug, F: Fn(&mut StdRng) -> T> Strategy for FnStrategy<T, F> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}
