//! Numeric sub-strategies (`prop::num::f32::NORMAL`, …).

/// Strategies over `f32`.
pub mod f32 {
    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    /// Strategy yielding only *normal* `f32` values: finite, non-zero,
    /// non-subnormal — mirroring upstream's `prop::num::f32::NORMAL`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Normal;

    /// The normal-floats strategy instance.
    pub const NORMAL: Normal = Normal;

    impl Strategy for Normal {
        type Value = f32;

        fn sample(&self, rng: &mut StdRng) -> f32 {
            // Biased exponent 1..=254 keeps the value normal and finite.
            let sign = u32::from(rng.gen::<bool>()) << 31;
            let exponent = rng.gen_range(1u32..=254) << 23;
            let mantissa = rng.gen::<u32>() & 0x007F_FFFF;
            f32::from_bits(sign | exponent | mantissa)
        }
    }
}

/// Strategies over `f64`.
pub mod f64 {
    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    /// Strategy yielding only *normal* `f64` values.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Normal;

    /// The normal-floats strategy instance.
    pub const NORMAL: Normal = Normal;

    impl Strategy for Normal {
        type Value = f64;

        fn sample(&self, rng: &mut StdRng) -> f64 {
            let sign = u64::from(rng.gen::<bool>()) << 63;
            let exponent = rng.gen_range(1u64..=2046) << 52;
            let mantissa = rng.gen::<u64>() & 0x000F_FFFF_FFFF_FFFF;
            f64::from_bits(sign | exponent | mantissa)
        }
    }
}
