//! Vendored, dependency-light subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so this crate provides
//! the slice of proptest the workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert*` / `prop_assume!`, [`any`],
//! `prop::collection::vec`, `prop::num::f32::NORMAL`, and [`Strategy`]
//! over ranges, tuples and arrays.
//!
//! Semantics: each property runs `PROPTEST_CASES` (default 64) cases with
//! inputs drawn from a deterministic per-test generator (seeded by the
//! test's name), so failures reproduce across runs. There is no shrinking:
//! a failing case reports its inputs via the assertion message instead.

pub mod arbitrary;
pub mod collection;
pub mod num;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::any;
pub use strategy::Strategy;

/// `use proptest::prelude::*` — everything the tests need in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` module-alias used by tests (`prop::collection::vec`,
    /// `prop::num::f32::NORMAL`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
    }
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn sum_commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __pt_rng = $crate::test_runner::rng_for(stringify!($name));
                let __pt_cases = $crate::test_runner::cases();
                for __pt_case in 0..__pt_cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __pt_rng);)*
                    let __pt_inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)* ""),
                        $(&$arg),*
                    );
                    let __pt_result: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__pt_msg) = __pt_result {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            __pt_case + 1, __pt_cases, __pt_msg, __pt_inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` != `{:?}`: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(a in 0u32..10, pair in (0usize..4, -1.0f64..1.0)) {
            prop_assert!(a < 10);
            prop_assert!(pair.0 < 4);
            prop_assert!((-1.0..1.0).contains(&pair.1));
        }

        #[test]
        fn vectors_and_any(data in prop::collection::vec(any::<u8>(), 0..16), flag in any::<bool>()) {
            prop_assert!(data.len() < 16);
            prop_assume!(flag || data.len() < 32);
            prop_assert_eq!(data.len(), data.len());
        }

        #[test]
        fn normal_floats_are_normal(x in prop::num::f32::NORMAL) {
            prop_assert!(x.is_normal(), "{x}");
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            fn always_fails(v in 0u32..5) {
                prop_assert!(v > 100, "v was {}", v);
            }
        }
        always_fails();
    }
}
