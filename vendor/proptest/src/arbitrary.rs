//! `any::<T>()` — the whole-domain strategy for simple types.

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

/// Strategy over the full domain of `T`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The whole-domain strategy for `T`, as `any::<u8>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_prim {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_prim!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Finite floats over a wide dynamic range (no NaN/inf, which
        // upstream also excludes by default).
        let mantissa: f32 = rng.gen_range(-1.0f32..1.0);
        let exp = rng.gen_range(-20i32..20);
        mantissa * (exp as f32).exp2()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        let mantissa: f64 = rng.gen_range(-1.0f64..1.0);
        let exp = rng.gen_range(-40i32..40);
        mantissa * f64::from(exp).exp2()
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut StdRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}
