//! Deterministic per-test case generation.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Default number of cases per property (override with `PROPTEST_CASES`).
pub const DEFAULT_CASES: u32 = 64;

/// Cases to run per property, from `PROPTEST_CASES` or the default.
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_CASES)
}

/// Deterministic generator for a named property test: the same test name
/// always replays the same input sequence, so failures reproduce.
pub fn rng_for(test_name: &str) -> StdRng {
    // FNV-1a over the test name.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = rng_for("some_test");
        let mut b = rng_for("some_test");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = rng_for("other_test");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
