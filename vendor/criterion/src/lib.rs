//! Vendored, dependency-free subset of the `criterion` API.
//!
//! The build environment has no crates.io access, so this crate provides
//! a compatible wall-clock bench harness for the workspace's
//! `harness = false` bench targets: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`], [`black_box`] and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each bench warms up briefly, then runs timed
//! batches until `measurement_time` elapses (or `sample_size` batches,
//! whichever is first) and reports the minimum per-iteration time —
//! the estimator least sensitive to scheduler noise. Under `--test`
//! (what `cargo test --benches` passes) every closure runs exactly once
//! so CI stays fast.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration timing loop handed to bench closures.
pub struct Bencher {
    /// Smallest observed per-iteration time, in nanoseconds.
    best_ns: f64,
    /// Total iterations executed.
    iters: u64,
    test_mode: bool,
    measurement: Duration,
}

impl Bencher {
    /// Times `f` repeatedly, recording the best per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.iters = 1;
            self.best_ns = 0.0;
            return;
        }
        // Warm-up: determine a batch size aiming at ~1 ms per batch.
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let deadline = Instant::now() + self.measurement;
        let mut samples = 0u32;
        while Instant::now() < deadline && samples < 200 {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = t0.elapsed().as_nanos() as f64 / batch as f64;
            self.best_ns = self.best_ns.min(ns);
            self.iters += batch;
            samples += 1;
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The bench context: registers and runs named benchmarks.
pub struct Criterion {
    test_mode: bool,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode, measurement: Duration::from_millis(300) }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            best_ns: f64::INFINITY,
            iters: 0,
            test_mode: self.test_mode,
            measurement: self.measurement,
        };
        f(&mut b);
        if self.test_mode {
            println!("test {name} ... ok");
        } else {
            println!("{name:<44} {:>12}/iter  ({} iters)", format_ns(b.best_ns), b.iters);
        }
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_string() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the vendored harness is
    /// time-boxed rather than sample-count driven.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.parent.measurement = t;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{name}", self.name);
        self.parent.bench_function(&full, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Groups bench functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion { test_mode: true, measurement: Duration::from_millis(1) };
        let mut ran = false;
        c.bench_function("x", |b| b.iter(|| ran = true));
        assert!(ran);
    }

    #[test]
    fn group_prefixes_names() {
        let mut c = Criterion { test_mode: true, measurement: Duration::from_millis(1) };
        let mut g = c.benchmark_group("g");
        g.sample_size(10).bench_function("inner", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn ns_formatting_scales() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with('s'));
    }
}
