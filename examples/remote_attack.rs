//! The full remote loop over the UART channel (paper §IV): the adversary
//! only sees the serial port — reads the TDC stream, uploads an attack
//! scheme file, arms the scheduler, and polls status while the victim
//! classifies.
//!
//! ```sh
//! cargo run --release --example remote_attack
//! ```

use accel::schedule::AccelConfig;
use deepstrike::cosim::{CloudFpga, CosimConfig};
use deepstrike::profile::{segment_trace, SegmenterConfig};
use deepstrike::signal_ram::AttackScheme;
use dnn::fixed::QFormat;
use dnn::quant::QuantizedNetwork;
use dnn::zoo::mlp;
use rand::rngs::StdRng;
use rand::SeedableRng;
use uart::link::Endpoint;
use uart::proto::{Command, Response};
use uart::session::{Client, Shell};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // FPGA side: victim + attacker fabric, exposed through a shell.
    let net = mlp(&mut StdRng::seed_from_u64(3));
    let victim = QuantizedNetwork::from_sequential(&net, &[1, 28, 28], QFormat::paper())?;
    let mut fpga =
        CloudFpga::new(&victim, &AccelConfig::default(), 12_000, CosimConfig::default())?;
    fpga.settle(100);

    let (attacker_end, fpga_end) = Endpoint::pair();
    let mut client = Client::new(attacker_end);
    let mut shell = Shell::new(fpga_end);

    // The victim runs an inference (the adversary has no visibility into
    // this beyond the PDN).
    fpga.run_inference();

    // Remote step 1: pull the TDC trace and profile it.
    let response = client.transact_with(&Command::ReadTrace { max_samples: 200_000 }, || {
        shell.poll(&mut fpga);
    })?;
    let Response::Trace(trace) = response else {
        return Err("expected a trace".into());
    };
    println!("pulled {} TDC samples over UART", trace.len());
    let segments = segment_trace(&trace, &SegmenterConfig::default());
    println!("observed {} execution phases", segments.len());
    let target = segments.first().ok_or("no execution phases visible")?;
    println!(
        "targeting the first phase: samples {}..{} (mean readout {:.1})",
        target.start,
        target.end(),
        target.mean
    );

    // Remote step 2: upload an attack scheme aimed at that phase.
    let scheme = AttackScheme {
        delay_cycles: 10,
        strikes: 200,
        strike_cycles: 1,
        gap_cycles: ((target.len as u32 / 2) / 200).max(1),
    };
    let response =
        client.transact_with(&Command::LoadScheme { data: scheme.to_bytes() }, || {
            shell.poll(&mut fpga);
        })?;
    println!("scheme upload: {response:?}");

    // Remote step 3: arm and let the next inference trip the detector.
    client.transact_with(&Command::Arm { enabled: true }, || {
        shell.poll(&mut fpga);
    })?;
    let run = fpga.run_inference();
    println!("victim ran; {} strikes landed", run.strike_cycles.len());

    // Remote step 4: read back status.
    let response = client.transact_with(&Command::Status, || {
        shell.poll(&mut fpga);
    })?;
    if let Response::Status(st) = response {
        println!(
            "status: armed={} triggered={} strikes_fired={} scheme_bits={}",
            st.armed, st.triggered, st.strikes_fired, st.scheme_bits
        );
    }
    Ok(())
}
