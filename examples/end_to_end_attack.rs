//! The paper's §IV case study end to end: train LeNet-5 on the digit
//! dataset, deploy it quantised on the simulated cloud FPGA next to the
//! attacker tenant, profile, and sweep guided strikes over each layer.
//!
//! Takes a few minutes in release mode (training + per-layer campaigns):
//!
//! ```sh
//! cargo run --release --example end_to_end_attack
//! ```

use accel::fault::FaultModel;
use accel::schedule::AccelConfig;
use deepstrike::attack::{evaluate_attack, plan_attack, plan_blind, profile_victim};
use deepstrike::cosim::{CloudFpga, CosimConfig};
use deepstrike::hypervisor::deploy;
use deepstrike::striker::StrikerBank;
use deepstrike::tdc::{TdcConfig, TdcSensor};
use dnn::digits::{Dataset, RenderParams};
use dnn::fixed::QFormat;
use dnn::lenet::{lenet5, STAGE_NAMES};
use dnn::quant::QuantizedNetwork;
use dnn::train::{train, TrainConfig};
use fpga_fabric::device::Device;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2021);

    println!("== training the victim ==");
    let mut ds = Dataset::generate(3_000, &RenderParams::challenging(), &mut rng);
    let test = ds.split_off(400);
    let mut net = lenet5(&mut rng);
    let history = train(&mut net, &ds, Some(&test), &TrainConfig::default(), &mut rng);
    let float_acc = history.last().and_then(|e| e.eval_accuracy).unwrap_or(0.0);
    let victim = QuantizedNetwork::from_sequential(&net, &[1, 28, 28], QFormat::paper())?;
    let q_acc = victim.accuracy(test.iter());
    println!(
        "float accuracy {:.2}%, deployed 8-bit accuracy {:.2}%",
        float_acc * 100.0,
        q_acc * 100.0
    );

    println!("\n== provider-side deployment checks ==");
    let device = Device::zynq_7020();
    let striker = StrikerBank::new(8_000)?;
    let tdc = TdcSensor::calibrated(TdcConfig::default(), 100.0, 90)?;
    let deployment = deploy(&device, &AccelConfig::default(), &striker, &tdc)?;
    println!(
        "two-tenant image accepted; striker uses {:.2}% of slices; tenant distance {:.2}",
        device.utilization(&striker.resource_usage()).slice_pct,
        deployment.tenant_distance
    );

    println!("\n== profiling over the shared PDN ==");
    let mut fpga = CloudFpga::new(&victim, &AccelConfig::default(), 8_000, CosimConfig::default())?;
    fpga.settle(200);
    let profile = profile_victim(&mut fpga, &STAGE_NAMES, 2)?;
    for (name, start, len) in &profile.layer_windows {
        println!("  {name:6} cycles {start:6} + {len}");
    }

    println!("\n== guided campaigns (max strikes per layer) ==");
    for target in STAGE_NAMES {
        let (_, len) = profile.window(target).ok_or("profiled window missing")?;
        let strikes = ((len / 2) as u32).max(1);
        let scheme = match plan_attack(&profile, target, strikes) {
            Ok(s) => s,
            Err(e) => {
                println!("  {target:6} skipped: {e}");
                continue;
            }
        };
        fpga.scheduler_mut().load_scheme(&scheme)?;
        fpga.scheduler_mut().arm(true)?;
        let run = fpga.run_inference();
        let outcome = evaluate_attack(
            &victim,
            fpga.schedule(),
            &run,
            test.iter().take(200),
            FaultModel::paper(),
            9,
        );
        println!(
            "  {target:6} {:5} strikes: accuracy {:.1}% (drop {:.1} pts, faults/img {:.0})",
            outcome.strikes_fired,
            outcome.attacked_accuracy * 100.0,
            outcome.accuracy_drop(),
            outcome.mean_faults_per_image
        );
        fpga.scheduler_mut().arm(false)?;
    }

    println!("\n== blind baseline (4500 strikes, no TDC guidance) ==");
    let scheme = plan_blind(fpga.schedule(), 4_500);
    fpga.scheduler_mut().load_scheme(&scheme)?;
    fpga.scheduler_mut().arm(true)?;
    fpga.scheduler_mut().force_start();
    let run = fpga.run_inference();
    let outcome = evaluate_attack(
        &victim,
        fpga.schedule(),
        &run,
        test.iter().take(200),
        FaultModel::paper(),
        9,
    );
    println!(
        "  blind  {:5} strikes: accuracy {:.1}% (drop {:.1} pts)",
        outcome.strikes_fired,
        outcome.attacked_accuracy * 100.0,
        outcome.accuracy_drop()
    );
    Ok(())
}
