//! DRC audit demo (paper §III-C): a classic ring oscillator is rejected by
//! the provider's combinational-loop check, while DeepStrike's latch-based
//! power striker sails through — and still oscillates.
//!
//! ```sh
//! cargo run --example drc_audit
//! ```

use deepstrike::striker::StrikerBank;
use fpga_fabric::drc::check;
use fpga_fabric::netlist::Netlist;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The banned circuit: three LUT inverters in a combinational ring.
    let mut ro = Netlist::new("ring_oscillator");
    let a = ro.add_lut1_inverter("inv_a");
    let b = ro.add_lut1_inverter("inv_b");
    let c = ro.add_lut1_inverter("inv_c");
    ro.connect(ro.output_of(a), ro.input_of(b, 0))?;
    ro.connect(ro.output_of(b), ro.input_of(c, 0))?;
    ro.connect(ro.output_of(c), ro.input_of(a, 0))?;

    println!("=== ring oscillator ===");
    let report = check(&ro);
    print!("{report}");
    println!("verdict: {}\n", if report.is_deployable() { "ACCEPT" } else { "REJECT" });

    // The DeepStrike striker cell: LUT6_2 as two inverters + two LDCE
    // latches in the feedback paths.
    let bank = StrikerBank::new(16)?;
    println!("=== power striker (16 cells) ===");
    let report = check(&bank.netlist());
    print!("{report}");
    println!("verdict: {}", if report.is_deployable() { "ACCEPT" } else { "REJECT" });

    // …and despite passing DRC, the latched loop oscillates:
    let toggles = StrikerBank::simulate_cell_toggles(1000);
    println!("\nbehavioural check: {toggles} output toggles in 1000 gate-open steps");
    Ok(())
}
