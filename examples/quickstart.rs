//! Quickstart: assemble the cloud-FPGA platform, profile the victim over
//! the TDC side channel, aim one strike burst at a layer, and score the
//! damage.
//!
//! Uses a small MLP victim so it runs in a couple of seconds:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use accel::fault::FaultModel;
use accel::schedule::AccelConfig;
use deepstrike::attack::{evaluate_attack, plan_attack, profile_victim};
use deepstrike::cosim::{CloudFpga, CosimConfig};
use dnn::digits::{Dataset, RenderParams};
use dnn::fixed::QFormat;
use dnn::quant::QuantizedNetwork;
use dnn::train::{train, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);

    // 1. Train a small victim and quantise it to the paper's 8-bit format.
    println!("training victim…");
    let mut ds = Dataset::generate(1_200, &RenderParams::default(), &mut rng);
    let test = ds.split_off(200);
    let mut net = dnn::zoo::mlp(&mut rng);
    train(
        &mut net,
        &ds,
        Some(&test),
        &TrainConfig { epochs: 4, ..TrainConfig::default() },
        &mut rng,
    );
    let victim = QuantizedNetwork::from_sequential(&net, &[1, 28, 28], QFormat::paper())?;
    println!("deployed accuracy: {:.1}%", 100.0 * victim.accuracy(test.iter()));

    // 2. Assemble the two-tenant cloud FPGA: victim accelerator + attacker
    //    (TDC sensor, start detector, signal RAM, 12k-cell power striker).
    let mut fpga =
        CloudFpga::new(&victim, &AccelConfig::default(), 12_000, CosimConfig::default())?;
    fpga.settle(100);

    // 3. Profile the victim through the shared PDN.
    let profile = profile_victim(&mut fpga, &["fc1", "fc2", "fc3"], 2)?;
    for (name, start, len) in &profile.layer_windows {
        println!("profiled {name}: starts cycle {start}, runs {len} cycles");
    }

    // 4. Plan and arm: 400 strikes tiling fc1.
    let scheme = plan_attack(&profile, "fc1", 400)?;
    fpga.scheduler_mut().load_scheme(&scheme)?;
    fpga.scheduler_mut().arm(true)?;

    // 5. Launch and score.
    let run = fpga.run_inference();
    println!(
        "attack fired {} strikes (detector latched at cycle {:?})",
        run.strike_cycles.len(),
        run.triggered_cycle
    );
    let outcome =
        evaluate_attack(&victim, fpga.schedule(), &run, test.iter(), FaultModel::paper(), 1);
    println!(
        "accuracy {:.1}% -> {:.1}% ({:.1} points lost, {:.0} MAC faults/image)",
        outcome.clean_accuracy * 100.0,
        outcome.attacked_accuracy * 100.0,
        outcome.accuracy_drop(),
        outcome.mean_faults_per_image,
    );
    Ok(())
}
