//! Side-channel profiling demo (the paper's Fig. 1b workflow): watch the
//! TDC readout while LeNet-5 executes, segment the trace into layers, and
//! build the attacker's signature library.
//!
//! ```sh
//! cargo run --release --example profile_layers
//! ```

use accel::schedule::AccelConfig;
use deepstrike::cosim::{CloudFpga, CosimConfig};
use deepstrike::profile::{segment_trace, SegmenterConfig, SignatureLibrary};
use dnn::fixed::QFormat;
use dnn::lenet::{lenet5, STAGE_NAMES};
use dnn::quant::QuantizedNetwork;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The power profile depends on the schedule, not the weights, so an
    // untrained LeNet serves for sensing demos.
    let net = lenet5(&mut StdRng::seed_from_u64(0));
    let victim = QuantizedNetwork::from_sequential(&net, &[1, 28, 28], QFormat::paper())?;
    let mut fpga = CloudFpga::new(&victim, &AccelConfig::default(), 8_000, CosimConfig::default())?;
    fpga.settle(100);

    let run = fpga.run_inference();
    println!("captured {} TDC samples over one inference", run.tdc_trace.len());

    // ASCII strip chart, decimated.
    println!("\nTDC readout (one row per 640 ns):");
    for chunk in run.tdc_trace.chunks(128) {
        let mean = chunk.iter().map(|&v| u32::from(v)).sum::<u32>() / chunk.len() as u32;
        let bar = "#".repeat((mean / 2) as usize);
        println!("{mean:3} |{bar}");
    }

    // Segment and learn signatures.
    let segments = segment_trace(&run.tdc_trace, &SegmenterConfig::default());
    let mut library = SignatureLibrary::new();
    println!("\nsegments:");
    for (name, seg) in STAGE_NAMES.iter().zip(&segments) {
        library.learn(name, seg);
        println!(
            "  {name:6} samples {:6}..{:6}  mean {:5.1}  std {:4.1}  min {}",
            seg.start,
            seg.end(),
            seg.mean,
            seg.variance.sqrt(),
            seg.min
        );
    }

    // Classify a repeat run against the library.
    let rerun = fpga.run_inference();
    let rerun_segments = segment_trace(&rerun.tdc_trace, &SegmenterConfig::default());
    println!("\nre-run classification:");
    for seg in &rerun_segments {
        let (name, dist) = library.classify(seg)?;
        println!("  segment at {:6} -> {name} (distance {dist:.3})", seg.start);
    }
    Ok(())
}
