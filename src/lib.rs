//! Umbrella crate for the DeepStrike reproduction workspace.
//!
//! This crate hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`). The actual functionality lives in the
//! member crates, re-exported here for convenience:
//!
//! * [`fabric`] — FPGA device substrate (netlists, DRC, floorplan, clocks).
//! * [`pdn`] — transient power-distribution-network simulation.
//! * [`dnn`] — tensors, training, fixed-point quantisation, LeNet-5.
//! * [`accel`] — cycle-level DSP accelerator simulation and fault models.
//! * [`deepstrike`] — the attack itself: TDC sensing, the power striker,
//!   the start detector, signal RAM and the end-to-end campaign.
//! * [`uart`] — the remote-control channel.

pub use accel;
pub use deepstrike;
pub use dnn;
pub use fpga_fabric as fabric;
pub use pdn;
pub use uart;
