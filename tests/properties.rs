//! Property-based tests over the core data structures and codecs.

use deepstrike::signal_ram::{AttackScheme, SignalRam};
use dnn::fixed::QFormat;
use dnn::tensor::Tensor;
use fpga_fabric::drc;
use fpga_fabric::netlist::Netlist;
use pdn::delay::DelayModel;
use pdn::rlc::{LumpedPdn, RlcParams};
use proptest::prelude::*;
use uart::frame::{encode_frame, FrameDecoder};
use uart::proto::{Command, Response, StatusInfo};

proptest! {
    /// Quantisation is idempotent and error-bounded for in-range values.
    #[test]
    fn fixed_point_quantisation_laws(value in -3.9f32..3.9, frac in 1u8..8) {
        let q = QFormat::new(true, frac);
        // The error bound only holds for representable values; outside the
        // range the format saturates (covered by the next property).
        prop_assume!(value >= q.min_value() && value <= q.max_value());
        let once = q.quantize(value).to_f32();
        let twice = q.quantize(once).to_f32();
        prop_assert_eq!(once, twice, "idempotent");
        prop_assert!((once - value).abs() <= q.resolution() / 2.0 + 1e-6);
    }

    /// Saturation clamps all out-of-range values to the format bounds.
    #[test]
    fn fixed_point_saturates(value in prop::num::f32::NORMAL) {
        let q = QFormat::paper();
        let r = q.quantize(value).to_f32();
        prop_assert!(r >= q.min_value() - 1e-6 && r <= q.max_value() + 1e-6);
    }

    /// Frame round trip for arbitrary payloads, even with embedded zeros.
    #[test]
    fn frame_round_trip(payload in prop::collection::vec(any::<u8>(), 0..600)) {
        let wire = encode_frame(&payload);
        prop_assert!(!wire[..wire.len() - 1].contains(&0), "COBS body zero-free");
        let mut dec = FrameDecoder::new();
        let got = dec.push_bytes(&wire);
        prop_assert_eq!(got, vec![payload]);
        prop_assert_eq!(dec.corrupt_frames(), 0);
    }

    /// Any single corrupted byte is either detected or yields the original
    /// frame (a flip may hit redundant COBS structure in ways CRC still
    /// catches; it must never produce a *different* accepted payload).
    #[test]
    fn frame_corruption_never_forges(
        payload in prop::collection::vec(any::<u8>(), 1..80),
        pos in 0usize..64,
        mask in 1u8..=255,
    ) {
        let mut wire = encode_frame(&payload);
        let idx = pos % (wire.len() - 1); // keep the delimiter intact
        wire[idx] ^= mask;
        let mut dec = FrameDecoder::new();
        let got = dec.push_bytes(&wire);
        for frame in got {
            prop_assert_eq!(&frame, &payload, "corruption must not forge a new payload");
        }
    }

    /// Command and response codecs round-trip.
    #[test]
    fn proto_round_trip(
        max in any::<u32>(),
        data in prop::collection::vec(any::<u8>(), 0..64),
        armed in any::<bool>(),
        strikes in any::<u32>(),
    ) {
        let cmds = [
            Command::ReadTrace { max_samples: max },
            Command::LoadScheme { data: data.clone() },
            Command::Arm { enabled: armed },
            Command::Status,
        ];
        for c in cmds {
            prop_assert_eq!(Command::from_bytes(&c.to_bytes()).unwrap(), c);
        }
        let resps = [
            Response::Trace(data),
            Response::Ack,
            Response::Status(StatusInfo {
                armed,
                triggered: !armed,
                strikes_fired: strikes,
                scheme_bits: strikes / 2,
            }),
            Response::Error(7),
        ];
        for r in resps {
            prop_assert_eq!(Response::from_bytes(&r.to_bytes()).unwrap(), r);
        }
    }

    /// Scheme compilation: bit counts and strike counts always match.
    #[test]
    fn scheme_bit_accounting(
        delay in 0u32..2_000,
        strikes in 1u32..200,
        on in 1u32..8,
        gap in 0u32..8,
    ) {
        let s = AttackScheme {
            delay_cycles: delay,
            strikes,
            strike_cycles: on,
            gap_cycles: gap,
        };
        let bits = s.to_bits();
        prop_assert_eq!(bits.len(), s.total_bits());
        let ones = bits.iter().filter(|&&b| b).count() as u32;
        prop_assert_eq!(ones, strikes * on);
        prop_assert_eq!(AttackScheme::from_bytes(&s.to_bytes()).unwrap(), s);
    }

    /// Signal-RAM playback reproduces the compiled bits exactly once.
    #[test]
    fn signal_ram_playback_matches_bits(
        delay in 0u32..50,
        strikes in 1u32..20,
        gap in 0u32..5,
    ) {
        let s = AttackScheme { delay_cycles: delay, strikes, strike_cycles: 1, gap_cycles: gap };
        let mut ram = SignalRam::new(1).unwrap();
        ram.load(&s).unwrap();
        ram.start();
        let played: Vec<bool> = (0..s.total_bits()).map(|_| ram.next_bit()).collect();
        prop_assert_eq!(played, s.to_bits());
        prop_assert!(!ram.next_bit(), "exhausted playback stays low");
    }

    /// The delay law is monotone in voltage for any valid parameters.
    #[test]
    fn delay_factor_monotone(
        v_a in 0.4f64..1.2,
        v_b in 0.4f64..1.2,
        alpha in 1.05f64..2.0,
    ) {
        let m = DelayModel::new(1.0, 0.35, alpha, 100.0).unwrap();
        let (lo, hi) = if v_a < v_b { (v_a, v_b) } else { (v_b, v_a) };
        prop_assert!(m.factor(lo) >= m.factor(hi) - 1e-12);
    }

    /// The lumped PDN never charges above Vdd or below ground under any
    /// non-negative load profile.
    #[test]
    fn pdn_voltage_stays_physical(loads in prop::collection::vec(0.0f64..12.0, 1..200)) {
        let mut pdn = LumpedPdn::new(RlcParams { vdd: 1.0, r: 0.045, l: 100e-12, c: 200e-9 })
            .unwrap();
        for &i_load in &loads {
            let v = pdn.step(i_load, 1e-9);
            prop_assert!((-0.2..=1.2).contains(&v), "voltage {v} escaped physical range");
        }
    }

    /// DRC verdicts are invariant under cell-insertion order.
    #[test]
    fn drc_invariant_under_ordering(n_chain in 2usize..12, _ro_first in any::<bool>()) {
        let build = |ro_first: bool| {
            let mut n = Netlist::new("mix");
            let mk_ro = |n: &mut Netlist| {
                let a = n.add_lut1_inverter("roa");
                let b = n.add_lut1_inverter("rob");
                n.connect(n.output_of(a), n.input_of(b, 0)).unwrap();
                n.connect(n.output_of(b), n.input_of(a, 0)).unwrap();
            };
            let mk_chain = |n: &mut Netlist| {
                let mut prev = n.add_lut1_inverter("c0");
                for i in 1..n_chain {
                    let next = n.add_lut1_inverter(&format!("c{i}"));
                    n.connect(n.output_of(prev), n.input_of(next, 0)).unwrap();
                    prev = next;
                }
            };
            if ro_first {
                mk_ro(&mut n);
                mk_chain(&mut n);
            } else {
                mk_chain(&mut n);
                mk_ro(&mut n);
            }
            n
        };
        let r1 = drc::check(&build(true));
        let r2 = drc::check(&build(false));
        prop_assert_eq!(r1.error_count(), r2.error_count());
        prop_assert_eq!(r1.is_deployable(), r2.is_deployable());
    }

    /// Tensor reshape round-trips and preserves reductions.
    #[test]
    fn tensor_reshape_preserves_content(data in prop::collection::vec(-10.0f32..10.0, 12)) {
        let t = Tensor::from_vec(data, &[3, 4]);
        let r = t.reshaped(&[2, 6]).reshaped(&[12]).reshaped(&[3, 4]);
        prop_assert_eq!(t.data(), r.data());
        prop_assert_eq!(t.sum(), r.sum());
    }
}
