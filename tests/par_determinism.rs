//! Determinism contract of the parallel campaign runtime and the kernel
//! fast paths: thread count must never change a result, and the optimised
//! kernels must agree with their naive oracles bit-for-bit.

use accel::fault::FaultModel;
use accel::schedule::AccelConfig;
use deepstrike::attack::{evaluate_attack, plan_attack, profile_victim};
use deepstrike::cosim::{CloudFpga, CosimConfig};
use dnn::digits::{Dataset, RenderParams};
use dnn::fixed::QFormat;
use dnn::layers::{Conv2d, Layer};
use dnn::quant::QuantizedNetwork;
use dnn::tensor::Tensor;
use dnn::zoo::mlp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `DEEPSTRIKE_THREADS` is process-global, so every phase of the env
/// sweep lives in this single test (integration tests in one binary run
/// concurrently, and a second test mutating the variable would race).
#[test]
fn accuracy_series_is_identical_at_any_thread_count() {
    let net = mlp(&mut StdRng::seed_from_u64(3));
    let q = QuantizedNetwork::from_sequential(&net, &[1, 28, 28], QFormat::paper()).unwrap();
    let mut images_rng = StdRng::seed_from_u64(9);
    let images = Dataset::generate(24, &RenderParams::default(), &mut images_rng);

    let accel = AccelConfig { weight_bandwidth: 16, stall_cycles: 150, ..AccelConfig::default() };
    let mut fpga = CloudFpga::new(
        &q,
        &accel,
        10_000,
        CosimConfig { pdn_substeps: 4, ..CosimConfig::default() },
    )
    .unwrap();
    fpga.settle(50);
    let profile = profile_victim(&mut fpga, &["fc1", "fc2", "fc3"], 1).unwrap();

    // A small campaign: several strike counts against fc1, each point run
    // from a clone of the profiled platform — the fig5b structure.
    let strike_counts = [10u32, 20, 30, 40, 50, 60];
    let campaign = |fpga: &CloudFpga| -> Vec<(u64, u64, u64)> {
        par::map_items(&strike_counts, |&strikes| {
            let mut fpga = fpga.clone();
            let scheme = plan_attack(&profile, "fc1", strikes).expect("plan fits");
            fpga.scheduler_mut().load_scheme(&scheme).expect("loads");
            fpga.scheduler_mut().arm(true).expect("arms");
            let run = fpga.run_inference();
            let outcome =
                evaluate_attack(&q, fpga.schedule(), &run, images.iter(), FaultModel::paper(), 5);
            (
                outcome.attacked_accuracy.to_bits(),
                outcome.clean_accuracy.to_bits(),
                outcome.mean_faults_per_image.to_bits(),
            )
        })
    };

    let prior = std::env::var(par::THREADS_ENV).ok();
    std::env::set_var(par::THREADS_ENV, "1");
    let serial = campaign(&fpga);
    for workers in ["2", "5"] {
        std::env::set_var(par::THREADS_ENV, workers);
        assert_eq!(
            campaign(&fpga),
            serial,
            "{workers}-worker campaign diverged from the 1-worker series"
        );
    }
    match prior {
        Some(v) => std::env::set_var(par::THREADS_ENV, v),
        None => std::env::remove_var(par::THREADS_ENV),
    }
}

#[test]
fn im2col_conv_matches_naive_loop_nest_exactly() {
    let mut rng = StdRng::seed_from_u64(17);
    for (ic, oc, k, h, w) in
        [(1, 6, 5, 28, 28), (6, 16, 5, 14, 14), (3, 4, 3, 9, 7), (2, 2, 1, 4, 4)]
    {
        let mut fast = Conv2d::new("conv", ic, oc, k, &mut rng);
        let input = Tensor::from_vec(
            (0..ic * h * w).map(|_| rng.gen_range(-2.0f32..2.0)).collect(),
            &[ic, h, w],
        );
        let expected = fast.forward_naive(&input);
        let got = fast.forward(&input);
        assert_eq!(expected.shape(), got.shape(), "shape for {ic}x{h}x{w} k{k}x{oc}");
        for (i, (a, b)) in expected.data().iter().zip(got.data()).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "forward {ic}x{h}x{w} k{k}x{oc} diverges at {i}: {a:e} vs {b:e}"
            );
        }

        // Backward: run both paths from identical state and compare the
        // input gradients and the accumulated parameter gradients.
        let grad_out = Tensor::from_vec(
            got.data().iter().map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
            got.shape(),
        );
        let mut naive = Conv2d::new("conv", ic, oc, k, &mut rng);
        naive.set_params(fast.params().expect("conv has params"));
        naive.forward_naive(&input);
        let gi_naive = naive.backward_naive(&grad_out);
        let gi_fast = fast.backward(&grad_out);
        for (i, (a, b)) in gi_naive.data().iter().zip(gi_fast.data()).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "backward grad_in {ic}x{h}x{w} k{k}x{oc} diverges at {i}: {a:e} vs {b:e}"
            );
        }
    }
}
