//! Failure-path tests: corrupted links, oversized schemes, rejected
//! bitstreams, unstable configurations.

use accel::fault::FaultModel;
use accel::schedule::AccelConfig;
use bench::golden::{accel_config, cosim_config, golden_images, tiny_dense_victim};
use deepstrike::cosim::{CloudFpga, CosimConfig};
use deepstrike::remote::{RemoteCampaign, RemoteConfig, RemotePhase, SimHost};
use deepstrike::signal_ram::{AttackScheme, SignalRam, BRAM36_BITS};
use deepstrike::DeepStrikeError;
use dnn::fixed::QFormat;
use dnn::quant::{QuantError, QuantizedNetwork};
use dnn::zoo::mlp;
use fpga_fabric::bitstream::{combine, TenantDesign};
use fpga_fabric::device::Device;
use fpga_fabric::floorplan::Region;
use fpga_fabric::netlist::Netlist;
use fpga_fabric::FabricError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use uart::link::{Endpoint, FaultConfig};
use uart::proto::{Command, Response};
use uart::session::{Client, Shell};
use uart::transport::{TransportClient, TransportConfig, TransportShell};
use uart::UartError;

fn small_victim() -> QuantizedNetwork {
    let net = mlp(&mut StdRng::seed_from_u64(0));
    QuantizedNetwork::from_sequential(&net, &[1, 28, 28], QFormat::paper()).unwrap()
}

fn fast_platform() -> CloudFpga {
    let mut fpga = CloudFpga::new(
        &small_victim(),
        &AccelConfig { weight_bandwidth: 16, stall_cycles: 150, ..AccelConfig::default() },
        8_000,
        CosimConfig { pdn_substeps: 4, ..CosimConfig::default() },
    )
    .unwrap();
    fpga.settle(20);
    fpga
}

#[test]
fn corrupted_uart_traffic_is_contained() {
    let mut fpga = fast_platform();
    let (a, b) = Endpoint::pair();
    let mut client = Client::new(a);
    let mut shell = Shell::new(b);

    // Corrupt the first command entirely.
    client.endpoint_mut().corrupt_next_sends(&[0x5A, 0xA5]);
    client.send(&Command::Status);
    shell.poll(&mut fpga);
    assert_eq!(shell.corrupt_frames(), 1);
    assert!(client.poll_responses().unwrap().is_empty());

    // The link still works afterwards.
    let r = client
        .transact_with(&Command::Status, || {
            shell.poll(&mut fpga);
        })
        .unwrap();
    assert!(matches!(r, uart::proto::Response::Status(_)));
}

#[test]
fn dead_fpga_times_out_cleanly() {
    let (a, _b) = Endpoint::pair();
    let mut client = Client::new(a);
    let err = client.transact_with(&Command::Status, || {}).unwrap_err();
    assert_eq!(err, UartError::Timeout);
}

#[test]
fn oversized_scheme_rejected_locally_and_remotely() {
    // Locally: the signal RAM refuses to load it.
    let mut ram = SignalRam::new(1).unwrap();
    let huge = AttackScheme {
        delay_cycles: BRAM36_BITS as u32,
        strikes: 10,
        strike_cycles: 1,
        gap_cycles: 0,
    };
    assert!(matches!(ram.load(&huge), Err(DeepStrikeError::SchemeTooLarge { .. })));

    // Remotely: the shell answers with an application error code.
    let mut fpga = fast_platform();
    let (a, b) = Endpoint::pair();
    let mut client = Client::new(a);
    let mut shell = Shell::new(b);
    let giant = AttackScheme {
        delay_cycles: 3 * BRAM36_BITS as u32,
        strikes: 1,
        strike_cycles: 1,
        gap_cycles: 0,
    };
    let err = client
        .transact_with(&Command::LoadScheme { data: giant.to_bytes() }, || {
            shell.poll(&mut fpga);
        })
        .unwrap_err();
    assert_eq!(err, UartError::Remote(2));
}

#[test]
fn truncated_scheme_bytes_rejected_remotely() {
    let mut fpga = fast_platform();
    let (a, b) = Endpoint::pair();
    let mut client = Client::new(a);
    let mut shell = Shell::new(b);
    let err = client
        .transact_with(&Command::LoadScheme { data: vec![1, 2, 3] }, || {
            shell.poll(&mut fpga);
        })
        .unwrap_err();
    assert_eq!(err, UartError::Remote(1));
}

#[test]
fn arming_without_scheme_fails_remotely() {
    let mut fpga = fast_platform();
    let (a, b) = Endpoint::pair();
    let mut client = Client::new(a);
    let mut shell = Shell::new(b);
    let err = client
        .transact_with(&Command::Arm { enabled: true }, || {
            shell.poll(&mut fpga);
        })
        .unwrap_err();
    assert_eq!(err, UartError::Remote(3));
}

#[test]
fn hypervisor_rejects_ring_oscillator_tenant() {
    let device = Device::zynq_7020();
    let mut benign = Netlist::new("victim");
    benign.add_lut1_inverter("l");
    let mut mal = Netlist::new("mal");
    let a = mal.add_lut1_inverter("a");
    let b = mal.add_lut1_inverter("b");
    mal.connect(mal.output_of(a), mal.input_of(b, 0)).unwrap();
    mal.connect(mal.output_of(b), mal.input_of(a, 0)).unwrap();
    let cols = device.grid().cols();
    let rows = device.grid().rows();
    let err = combine(
        &device,
        vec![
            TenantDesign::new("victim", benign, Region::new(0, 0, cols / 2 - 1, rows - 1)),
            TenantDesign::new("mal", mal, Region::new(cols / 2, 0, cols - 1, rows - 1)),
        ],
    )
    .unwrap_err();
    assert!(matches!(err, FabricError::DrcRejected { .. }));
}

/// A tiny-victim platform on the shared golden fixtures, for the remote
/// checkpoint/resume tests below.
fn remote_platform() -> CloudFpga {
    let mut fpga = CloudFpga::new(&tiny_dense_victim(), &accel_config(), 16_000, cosim_config())
        .expect("platform assembles");
    fpga.settle(30);
    fpga
}

/// Transport tuned so a disconnect window comfortably outlasts the whole
/// retry span (4 + 8 + 16 pumps), forcing a resumable `LinkDown`. The
/// tiny chunks stretch the upload phase across several exchanges so the
/// disconnect window below can be aimed into it.
fn brittle_transport() -> TransportConfig {
    TransportConfig { pump_budget: 4, max_retries: 2, backoff_cap: 16, chunk_len: 4 }
}

fn remote_config() -> RemoteConfig {
    let mut config = RemoteConfig::new(&["fc1", "fc2"], "fc1", 6);
    config.read_chunk = 32;
    config
}

fn remote_host(endpoint: Endpoint) -> SimHost {
    SimHost::new(
        remote_platform(),
        TransportShell::new(endpoint),
        tiny_dense_victim(),
        golden_images(6),
        FaultModel::paper(),
    )
}

#[test]
fn disconnect_resumes_from_checkpoint_to_the_uninterrupted_result() {
    // Reference: the same campaign on a clean link. Besides the expected
    // outcome this yields the campaign's tick footprint, which is used to
    // aim the disconnect window at the post-profile phases (after the
    // plan is checkpointed, so the interrupted run must not re-plan).
    let (a, b) = Endpoint::pair();
    let mut clean_link = TransportClient::with_config(a, brittle_transport());
    let mut clean_host = remote_host(b);
    let reference = RemoteCampaign::new(remote_config())
        .run(&mut clean_link, &mut clean_host)
        .expect("clean campaign completes");
    let total_ticks = clean_link.endpoint_mut().now();

    // Same campaign, but the link dies shortly before the clean campaign
    // would have finished and stays dead past several retry spans.
    // The clean campaign ends with 9 post-profile exchanges (upload
    // status + begin + four 4-byte chunks + commit, then arm, then the
    // strike status), one link tick each; 7 ticks back sits mid-upload.
    let fault = FaultConfig {
        disconnects: vec![(total_ticks.saturating_sub(7), 90)],
        ..FaultConfig::default()
    };
    let (a, b) = Endpoint::faulty_pair(fault, 17);
    let mut link = TransportClient::with_config(a, brittle_transport());
    let mut host = remote_host(b);
    let mut campaign = RemoteCampaign::new(remote_config());

    let mut interrupted_phases = Vec::new();
    let outcome = loop {
        match campaign.run(&mut link, &mut host) {
            Ok(o) => break o,
            Err(DeepStrikeError::Interrupted { phase }) => {
                interrupted_phases.push(phase);
                assert!(interrupted_phases.len() < 40, "campaign never recovered");
            }
            Err(e) => panic!("unexpected hard failure: {e}"),
        }
    };

    assert!(!interrupted_phases.is_empty(), "the dead window must interrupt the campaign");
    // The window is aimed past profiling: the checkpointed profile and
    // plan must survive every interrupt (this is what "resume" means —
    // the campaign picks up mid-sequence instead of starting over).
    for phase in &interrupted_phases {
        assert!(
            matches!(phase, RemotePhase::Upload | RemotePhase::Arm | RemotePhase::Strike),
            "interrupt landed before the plan was checkpointed: {interrupted_phases:?}"
        );
    }
    let ckpt = campaign.checkpoint();
    assert_eq!(ckpt.completed_traces, remote_config().profile_runs, "profile survived");
    assert_eq!(outcome.guidance, deepstrike::remote::GuidanceLevel::Fresh);
    assert_eq!(outcome.scheme, reference.scheme, "resume must not re-plan a different scheme");
}

#[test]
fn aborted_mid_transfer_upload_leaves_the_armed_scheme_untouched() {
    let mut fpga = remote_platform();
    let (a, b) = Endpoint::pair();
    let mut link = TransportClient::new(a);
    let mut shell = TransportShell::new(b);

    // Establish an armed baseline over the transport.
    let scheme = AttackScheme { delay_cycles: 24, strikes: 4, strike_cycles: 1, gap_cycles: 9 };
    link.upload_scheme(&scheme.to_bytes(), || {
        shell.poll(&mut fpga);
    })
    .expect("baseline upload");
    let armed = link
        .transact(&Command::Arm { enabled: true }, || {
            shell.poll(&mut fpga);
        })
        .expect("arms");
    assert_eq!(armed, Response::Ack);
    let baseline = match link
        .transact(&Command::Status, || {
            shell.poll(&mut fpga);
        })
        .expect("status")
    {
        Response::Status(s) => s,
        other => panic!("status answered {other:?}"),
    };
    assert!(baseline.armed);

    // A replacement upload starts, stages one chunk — and the attacker
    // vanishes before commit.
    let replacement = AttackScheme { delay_cycles: 0, strikes: 9, strike_cycles: 2, gap_cycles: 1 };
    let bytes = replacement.to_bytes();
    let begin = link
        .transact(
            &Command::UploadBegin {
                total_len: bytes.len() as u32,
                crc: uart::frame::crc16(&bytes),
            },
            || {
                shell.poll(&mut fpga);
            },
        )
        .expect("upload opens");
    assert_eq!(begin, Response::Upload { received: 0, total: bytes.len() as u32 });
    let staged = link
        .transact(&Command::UploadChunk { offset: 0, data: bytes[..8].to_vec() }, || {
            shell.poll(&mut fpga);
        })
        .expect("chunk stages");
    assert_eq!(staged, Response::Upload { received: 8, total: bytes.len() as u32 });
    assert_eq!(shell.staged_bytes(), Some(8), "transfer died mid-flight");

    // The armed state is exactly what it was: staging is not loading.
    let after = match link
        .transact(&Command::Status, || {
            shell.poll(&mut fpga);
        })
        .expect("status after abort")
    {
        Response::Status(s) => s,
        other => panic!("status answered {other:?}"),
    };
    assert_eq!(after, baseline, "an uncommitted upload must not disturb the scheduler");

    // And the strike run that follows executes the *old* scheme: the
    // first strike honours the baseline's 24-cycle delay, which the
    // staged replacement (delay 0) would not.
    let run = fpga.run_inference();
    let trigger = run.triggered_cycle.expect("detector latches");
    let first_strike = *run.strike_cycles.first().expect("armed scheduler still strikes");
    assert!(
        first_strike >= trigger + u64::from(scheme.delay_cycles),
        "first strike at {first_strike} ignores the armed scheme's delay (trigger {trigger})"
    );
}

/// One sweep point of plausible per-item work for the supervisor tests:
/// a short PDN droop transient, deterministic in the cell count.
fn droop_point(&cells: &usize) -> (f64, f64) {
    let mut pdn = pdn::rlc::LumpedPdn::zynq_like();
    pdn.settle(0.35);
    let mut v_min = pdn.voltage();
    for _ in 0..10 {
        v_min = v_min.min(pdn.step(0.35 + cells as f64 * 1e-5, 1e-9));
    }
    (pdn.voltage(), v_min)
}

#[test]
fn kill_mid_sweep_resumes_to_byte_identical_results() {
    use bench::supervisor::{run_sliced, SweepRun};
    use std::sync::atomic::{AtomicUsize, Ordering};

    let cells: Vec<usize> = (1..=12).map(|k| k * 1_000).collect();
    let reference = match run_sliced(&cells, droop_point, None, 4, None) {
        SweepRun::Complete(o) => o.into_complete(),
        other => panic!("unexpected {other:?}"),
    };

    // "kill -9" after one durably-checkpointed slice …
    let dir =
        std::env::temp_dir().join(format!("deepstrike-failure-injection-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = ckpt::CheckpointStore::new(&dir, "droop").expect("store");
    match run_sliced(&cells, droop_point, Some(&mut store), 4, Some(1)) {
        SweepRun::Aborted { completed, generation } => {
            assert_eq!(completed, 4, "one slice of four must be durable");
            assert_eq!(generation, 1);
        }
        other => panic!("expected a simulated kill, got {other:?}"),
    }
    drop(store);

    // … then the restarted process resumes: the checkpointed prefix is
    // not recomputed and the merged output is bit-identical to the
    // uninterrupted sweep.
    let computed = AtomicUsize::new(0);
    let mut store = ckpt::CheckpointStore::new(&dir, "droop").expect("store reopens");
    let resumed = match run_sliced(
        &cells,
        |c| {
            computed.fetch_add(1, Ordering::Relaxed);
            droop_point(c)
        },
        Some(&mut store),
        4,
        None,
    ) {
        SweepRun::Complete(o) => o.into_complete(),
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(resumed, reference, "resumed sweep must reproduce the uninterrupted one");
    assert_eq!(computed.load(Ordering::Relaxed), cells.len() - 4, "prefix must not be recomputed");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn poison_item_quarantine_is_identical_at_every_thread_count() {
    // A deterministic poison point: item 9 of 24 always panics. The
    // sweep must complete around it with the same typed quarantine
    // report and the same surviving results at any worker count.
    let run_once = || {
        let outcome = par::try_map(24, |i| {
            assert!(i != 9, "poison point");
            droop_point(&(i * 500))
        });
        let quarantine: Vec<(usize, String)> =
            outcome.quarantine.iter().map(|q| (q.index, q.message.clone())).collect();
        (outcome.results, quarantine)
    };

    let prev = std::env::var("DEEPSTRIKE_THREADS").ok();
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    std::env::set_var("DEEPSTRIKE_THREADS", "1");
    let reference = run_once();
    assert_eq!(reference.1.len(), 1, "exactly the poison point is quarantined");
    assert_eq!(reference.1[0].0, 9);
    assert!(reference.0[9].is_none() && reference.0.iter().filter(|r| r.is_some()).count() == 23);
    for threads in ["2", "8"] {
        std::env::set_var("DEEPSTRIKE_THREADS", threads);
        assert_eq!(run_once(), reference, "sweep outcome differs at {threads} workers");
    }
    std::panic::set_hook(hook);
    match prev {
        Some(v) => std::env::set_var("DEEPSTRIKE_THREADS", v),
        None => std::env::remove_var("DEEPSTRIKE_THREADS"),
    }
}

#[test]
fn malformed_model_bytes_are_rejected() {
    let q = small_victim();
    let mut bytes = q.to_bytes();
    // Truncations at every structural boundary must error, not panic.
    for cut in [0, 1, 3, 5, 20, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            matches!(
                QuantizedNetwork::from_bytes(&bytes[..cut]),
                Err(QuantError::MalformedModel(_))
            ),
            "cut at {cut} must be rejected"
        );
    }
    // Corrupting the layer tag must be rejected too.
    bytes[46] = 0x7F; // first layer tag (after magic+format+rank+shape+count)
    assert!(QuantizedNetwork::from_bytes(&bytes).is_err());
}
