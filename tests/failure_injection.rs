//! Failure-path tests: corrupted links, oversized schemes, rejected
//! bitstreams, unstable configurations.

use accel::schedule::AccelConfig;
use deepstrike::cosim::{CloudFpga, CosimConfig};
use deepstrike::signal_ram::{AttackScheme, SignalRam, BRAM36_BITS};
use deepstrike::DeepStrikeError;
use dnn::fixed::QFormat;
use dnn::quant::{QuantError, QuantizedNetwork};
use dnn::zoo::mlp;
use fpga_fabric::bitstream::{combine, TenantDesign};
use fpga_fabric::device::Device;
use fpga_fabric::floorplan::Region;
use fpga_fabric::netlist::Netlist;
use fpga_fabric::FabricError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use uart::link::Endpoint;
use uart::proto::Command;
use uart::session::{Client, Shell};
use uart::UartError;

fn small_victim() -> QuantizedNetwork {
    let net = mlp(&mut StdRng::seed_from_u64(0));
    QuantizedNetwork::from_sequential(&net, &[1, 28, 28], QFormat::paper()).unwrap()
}

fn fast_platform() -> CloudFpga {
    let mut fpga = CloudFpga::new(
        &small_victim(),
        &AccelConfig { weight_bandwidth: 16, stall_cycles: 150, ..AccelConfig::default() },
        8_000,
        CosimConfig { pdn_substeps: 4, ..CosimConfig::default() },
    )
    .unwrap();
    fpga.settle(20);
    fpga
}

#[test]
fn corrupted_uart_traffic_is_contained() {
    let mut fpga = fast_platform();
    let (a, b) = Endpoint::pair();
    let mut client = Client::new(a);
    let mut shell = Shell::new(b);

    // Corrupt the first command entirely.
    client.endpoint_mut().corrupt_next_sends(&[0x5A, 0xA5]);
    client.send(&Command::Status);
    shell.poll(&mut fpga);
    assert_eq!(shell.corrupt_frames(), 1);
    assert!(client.poll_responses().unwrap().is_empty());

    // The link still works afterwards.
    let r = client
        .transact_with(&Command::Status, || {
            shell.poll(&mut fpga);
        })
        .unwrap();
    assert!(matches!(r, uart::proto::Response::Status(_)));
}

#[test]
fn dead_fpga_times_out_cleanly() {
    let (a, _b) = Endpoint::pair();
    let mut client = Client::new(a);
    let err = client.transact_with(&Command::Status, || {}).unwrap_err();
    assert_eq!(err, UartError::Timeout);
}

#[test]
fn oversized_scheme_rejected_locally_and_remotely() {
    // Locally: the signal RAM refuses to load it.
    let mut ram = SignalRam::new(1).unwrap();
    let huge = AttackScheme {
        delay_cycles: BRAM36_BITS as u32,
        strikes: 10,
        strike_cycles: 1,
        gap_cycles: 0,
    };
    assert!(matches!(ram.load(&huge), Err(DeepStrikeError::SchemeTooLarge { .. })));

    // Remotely: the shell answers with an application error code.
    let mut fpga = fast_platform();
    let (a, b) = Endpoint::pair();
    let mut client = Client::new(a);
    let mut shell = Shell::new(b);
    let giant = AttackScheme {
        delay_cycles: 3 * BRAM36_BITS as u32,
        strikes: 1,
        strike_cycles: 1,
        gap_cycles: 0,
    };
    let err = client
        .transact_with(&Command::LoadScheme { data: giant.to_bytes() }, || {
            shell.poll(&mut fpga);
        })
        .unwrap_err();
    assert_eq!(err, UartError::Remote(2));
}

#[test]
fn truncated_scheme_bytes_rejected_remotely() {
    let mut fpga = fast_platform();
    let (a, b) = Endpoint::pair();
    let mut client = Client::new(a);
    let mut shell = Shell::new(b);
    let err = client
        .transact_with(&Command::LoadScheme { data: vec![1, 2, 3] }, || {
            shell.poll(&mut fpga);
        })
        .unwrap_err();
    assert_eq!(err, UartError::Remote(1));
}

#[test]
fn arming_without_scheme_fails_remotely() {
    let mut fpga = fast_platform();
    let (a, b) = Endpoint::pair();
    let mut client = Client::new(a);
    let mut shell = Shell::new(b);
    let err = client
        .transact_with(&Command::Arm { enabled: true }, || {
            shell.poll(&mut fpga);
        })
        .unwrap_err();
    assert_eq!(err, UartError::Remote(3));
}

#[test]
fn hypervisor_rejects_ring_oscillator_tenant() {
    let device = Device::zynq_7020();
    let mut benign = Netlist::new("victim");
    benign.add_lut1_inverter("l");
    let mut mal = Netlist::new("mal");
    let a = mal.add_lut1_inverter("a");
    let b = mal.add_lut1_inverter("b");
    mal.connect(mal.output_of(a), mal.input_of(b, 0)).unwrap();
    mal.connect(mal.output_of(b), mal.input_of(a, 0)).unwrap();
    let cols = device.grid().cols();
    let rows = device.grid().rows();
    let err = combine(
        &device,
        vec![
            TenantDesign::new("victim", benign, Region::new(0, 0, cols / 2 - 1, rows - 1)),
            TenantDesign::new("mal", mal, Region::new(cols / 2, 0, cols - 1, rows - 1)),
        ],
    )
    .unwrap_err();
    assert!(matches!(err, FabricError::DrcRejected { .. }));
}

#[test]
fn malformed_model_bytes_are_rejected() {
    let q = small_victim();
    let mut bytes = q.to_bytes();
    // Truncations at every structural boundary must error, not panic.
    for cut in [0, 1, 3, 5, 20, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            matches!(
                QuantizedNetwork::from_bytes(&bytes[..cut]),
                Err(QuantError::MalformedModel(_))
            ),
            "cut at {cut} must be rejected"
        );
    }
    // Corrupting the layer tag must be rejected too.
    bytes[46] = 0x7F; // first layer tag (after magic+format+rank+shape+count)
    assert!(QuantizedNetwork::from_bytes(&bytes).is_err());
}
