//! Snapshot-vs-replay oracle (DESIGN.md §11).
//!
//! Every guided candidate evaluated through the fork-point snapshot
//! engine must be **bit-identical** to loading the same scheme on a clone
//! of the base platform and replaying the whole inference — recording,
//! outcome, everything — and must stay so when the forked suffix runs fan
//! out on the worker pool.
//!
//! `DEEPSTRIKE_THREADS` is process-global, so both thread counts live in
//! this single test (see `tests/remote_chaos.rs` for the same pattern).

use accel::fault::FaultModel;
use bench::golden::{accel_config, cosim_config, golden_images, tiny_dense_victim, GOLDEN_SEED};
use deepstrike::attack::{
    clean_predictions, evaluate_attack, evaluate_attack_cached, plan_attack, profile_from_traces,
};
use deepstrike::cosim::{CloudFpga, InferenceRun};
use deepstrike::signal_ram::AttackScheme;
use deepstrike::snapshot::SnapshotEngine;

fn platform() -> CloudFpga {
    let mut fpga = CloudFpga::new(&tiny_dense_victim(), &accel_config(), 16_000, cosim_config())
        .expect("platform assembles");
    fpga.settle(30);
    fpga
}

#[test]
fn snapshot_forked_runs_equal_naive_replay_at_one_and_eight_threads() {
    let q = tiny_dense_victim();
    let images = golden_images(6);
    let samples: Vec<_> = images.iter().map(|(t, y)| (t, *y)).collect();

    let mut per_thread: Vec<Vec<InferenceRun>> = Vec::new();
    for threads in ["1", "8"] {
        std::env::set_var(par::THREADS_ENV, threads);
        let base = platform();
        let engine = SnapshotEngine::capture(&base).expect("capture");
        assert!(engine.trigger_cycle().is_some(), "reference pass must trigger");

        // Planner-produced candidates across strike budgets, plus raw
        // schemes covering the edges (immediate, late, strike-free).
        let profile = profile_from_traces(&[engine.reference().tdc_trace.clone()], &["fc1", "fc2"])
            .expect("profile");
        let mut schemes: Vec<AttackScheme> =
            (1..=8).map(|s| plan_attack(&profile, "fc1", s).expect("plan")).collect();
        schemes.extend([
            AttackScheme { delay_cycles: 0, strikes: 3, strike_cycles: 2, gap_cycles: 0 },
            AttackScheme { delay_cycles: 200, strikes: 1, strike_cycles: 1, gap_cycles: 0 },
            AttackScheme { delay_cycles: 50, strikes: 0, strike_cycles: 0, gap_cycles: 0 },
        ]);

        // Forked suffix runs fan out on the worker pool; the naive full
        // replays below are the oracle.
        let forked =
            par::map_items(&schemes, |scheme| engine.run_guided(scheme).expect("guided run"));
        let clean = clean_predictions(&q, samples.iter().copied());
        for (scheme, forked_run) in schemes.iter().zip(&forked) {
            let mut naive = base.clone();
            naive.scheduler_mut().load_scheme(scheme).expect("scheme fits");
            naive.scheduler_mut().arm(true).expect("scheme loaded");
            let naive_run = naive.run_inference();
            assert_eq!(&naive_run, forked_run, "scheme {scheme:?} diverged at {threads} threads");

            let naive_outcome = evaluate_attack(
                &q,
                base.schedule(),
                &naive_run,
                samples.iter().copied(),
                FaultModel::paper(),
                GOLDEN_SEED,
            );
            let forked_outcome = evaluate_attack_cached(
                &q,
                base.schedule(),
                forked_run,
                samples.iter().copied(),
                FaultModel::paper(),
                GOLDEN_SEED,
                &clean,
            );
            assert_eq!(
                naive_outcome, forked_outcome,
                "outcome diverged for {scheme:?} at {threads} threads"
            );
        }
        let stats = engine.stats();
        assert!(stats.forked_runs >= 1, "at least one candidate must fork: {stats:?}");
        per_thread.push(forked);
    }
    std::env::remove_var(par::THREADS_ENV);

    let (first, rest) = per_thread.split_first().expect("two thread counts ran");
    for other in rest {
        assert_eq!(first, other, "forked runs must not depend on DEEPSTRIKE_THREADS");
    }
}
