//! Defender-side countermeasures exercised against the real attack stack.

use accel::schedule::AccelConfig;
use deepstrike::attack::{plan_attack, profile_victim};
use deepstrike::cosim::{CloudFpga, CosimConfig};
use deepstrike::defense::{GlitchWatchdog, WatchdogConfig};
use deepstrike::hypervisor::{deploy, deploy_with_policy};
use deepstrike::striker::StrikerBank;
use deepstrike::tdc::{TdcConfig, TdcSensor};
use deepstrike::DeepStrikeError;
use dnn::fixed::QFormat;
use dnn::quant::QuantizedNetwork;
use dnn::zoo::mlp;
use fpga_fabric::device::Device;
use fpga_fabric::drc::DrcPolicy;
use fpga_fabric::FabricError;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn platform(cells: usize) -> CloudFpga {
    let net = mlp(&mut StdRng::seed_from_u64(0));
    let victim = QuantizedNetwork::from_sequential(&net, &[1, 28, 28], QFormat::paper()).unwrap();
    let mut fpga = CloudFpga::new(
        &victim,
        &AccelConfig { weight_bandwidth: 16, stall_cycles: 150, ..AccelConfig::default() },
        cells,
        CosimConfig { pdn_substeps: 4, ..CosimConfig::default() },
    )
    .unwrap();
    fpga.settle(50);
    fpga
}

#[test]
fn watchdog_detects_a_real_strike_campaign() {
    let mut fpga = platform(14_000);
    let profile = profile_victim(&mut fpga, &["fc1", "fc2", "fc3"], 1).unwrap();
    let scheme = plan_attack(&profile, "fc1", 30).unwrap();
    fpga.scheduler_mut().load_scheme(&scheme).unwrap();
    fpga.scheduler_mut().arm(true).unwrap();
    let attacked = fpga.run_inference();
    assert_eq!(attacked.strike_cycles.len(), 30);

    let events = GlitchWatchdog::scan(WatchdogConfig::default(), &attacked.tdc_trace).unwrap();
    assert!(
        events.len() >= 10,
        "watchdog must flag a large share of the 30 strikes, got {}",
        events.len()
    );
}

#[test]
fn watchdog_is_quiet_during_clean_execution() {
    let mut fpga = platform(14_000);
    let clean = fpga.run_inference();
    let events = GlitchWatchdog::scan(WatchdogConfig::default(), &clean.tdc_trace).unwrap();
    assert!(events.is_empty(), "no strikes fired, but the watchdog flagged {:?}", events);
}

#[test]
fn strict_provider_policy_blocks_the_whole_attack() {
    let device = Device::zynq_7020();
    let striker = StrikerBank::new(8_000).unwrap();
    let tdc = TdcSensor::calibrated(TdcConfig::default(), 100.0, 90).unwrap();
    // Standard provider: attack deploys.
    deploy(&device, &AccelConfig::default(), &striker, &tdc).unwrap();
    // Hardened provider: the latch-loop scan rejects the tenant.
    let err =
        deploy_with_policy(&device, &AccelConfig::default(), &striker, &tdc, DrcPolicy::strict())
            .unwrap_err();
    assert!(matches!(err, DeepStrikeError::Fabric(FabricError::DrcRejected { .. })));
}
