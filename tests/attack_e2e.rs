//! Cross-crate end-to-end attack tests on a small victim.

use accel::fault::FaultModel;
use accel::schedule::AccelConfig;
use deepstrike::attack::{evaluate_attack, plan_attack, plan_blind, profile_victim};
use deepstrike::cosim::{CloudFpga, CosimConfig};
use deepstrike::signal_ram::AttackScheme;
use dnn::digits::{Dataset, RenderParams};
use dnn::fixed::QFormat;
use dnn::quant::QuantizedNetwork;
use dnn::zoo::mlp;
use rand::rngs::StdRng;
use rand::SeedableRng;
use uart::link::Endpoint;
use uart::proto::{Command, Response};
use uart::session::{Client, Shell};

fn small_victim(seed: u64) -> QuantizedNetwork {
    let net = mlp(&mut StdRng::seed_from_u64(seed));
    QuantizedNetwork::from_sequential(&net, &[1, 28, 28], QFormat::paper()).unwrap()
}

fn fast_platform(victim: &QuantizedNetwork, cells: usize) -> CloudFpga {
    let accel = AccelConfig { weight_bandwidth: 16, stall_cycles: 150, ..AccelConfig::default() };
    let mut fpga = CloudFpga::new(
        victim,
        &accel,
        cells,
        CosimConfig { pdn_substeps: 4, ..CosimConfig::default() },
    )
    .unwrap();
    fpga.settle(50);
    fpga
}

#[test]
fn profile_plan_launch_score_round_trip() {
    let victim = small_victim(1);
    let mut fpga = fast_platform(&victim, 12_000);
    let profile = profile_victim(&mut fpga, &["fc1", "fc2", "fc3"], 2).unwrap();
    let scheme = plan_attack(&profile, "fc1", 200).unwrap();
    fpga.scheduler_mut().load_scheme(&scheme).unwrap();
    fpga.scheduler_mut().arm(true).unwrap();
    let run = fpga.run_inference();
    assert_eq!(run.strike_cycles.len(), 200);
    assert!(run.triggered_cycle.is_some());

    let mut rng = StdRng::seed_from_u64(5);
    let images = Dataset::generate(30, &RenderParams::default(), &mut rng);
    let outcome =
        evaluate_attack(&victim, fpga.schedule(), &run, images.iter(), FaultModel::paper(), 11);
    assert!(outcome.mean_faults_per_image > 0.0, "strikes must produce faults");
    assert!(outcome.attacked_accuracy <= outcome.clean_accuracy + 1e-9);
}

#[test]
fn repeated_inferences_rearm_and_strike_again() {
    let victim = small_victim(2);
    let mut fpga = fast_platform(&victim, 12_000);
    let profile = profile_victim(&mut fpga, &["fc1", "fc2", "fc3"], 1).unwrap();
    let scheme = plan_attack(&profile, "fc1", 50).unwrap();
    fpga.scheduler_mut().load_scheme(&scheme).unwrap();
    fpga.scheduler_mut().arm(true).unwrap();
    for round in 0..3 {
        let run = fpga.run_inference();
        assert_eq!(run.strike_cycles.len(), 50, "round {round} must fire all strikes");
    }
}

#[test]
fn blind_and_guided_differ_in_targeting_only() {
    let victim = small_victim(3);
    let mut fpga = fast_platform(&victim, 12_000);
    let profile = profile_victim(&mut fpga, &["fc1", "fc2", "fc3"], 1).unwrap();
    let strikes = 60u32;

    let guided_scheme = plan_attack(&profile, "fc2", strikes).unwrap();
    fpga.scheduler_mut().load_scheme(&guided_scheme).unwrap();
    fpga.scheduler_mut().arm(true).unwrap();
    let guided = fpga.run_inference();

    let blind_scheme = plan_blind(fpga.schedule(), strikes);
    fpga.scheduler_mut().load_scheme(&blind_scheme).unwrap();
    fpga.scheduler_mut().arm(true).unwrap();
    fpga.scheduler_mut().force_start();
    let blind = fpga.run_inference();

    let w = fpga.schedule().window("fc2").unwrap().clone();
    let hits = |cycles: &[u64]| {
        cycles.iter().filter(|&&c| w.contains(c)).count() as f64 / cycles.len().max(1) as f64
    };
    assert!(hits(&guided.strike_cycles) > 0.7, "guided targeting broken");
    assert!(hits(&blind.strike_cycles) < 0.3, "blind should scatter");
    assert_eq!(blind.strike_cycles.len(), strikes as usize);
}

#[test]
fn full_campaign_over_the_uart_channel() {
    let victim = small_victim(4);
    let mut fpga = fast_platform(&victim, 12_000);
    let (a, b) = Endpoint::pair();
    let mut client = Client::new(a);
    let mut shell = Shell::new(b);

    // Victim runs once; adversary profiles from the serial stream alone.
    fpga.run_inference();
    let response = client
        .transact_with(&Command::ReadTrace { max_samples: 1 << 20 }, || {
            shell.poll(&mut fpga);
        })
        .unwrap();
    let Response::Trace(trace) = response else { panic!("expected trace") };
    assert!(trace.len() > 5_000, "trace too short: {}", trace.len());

    let segments = deepstrike::profile::segment_trace(
        &trace,
        &deepstrike::profile::SegmenterConfig::default(),
    );
    assert_eq!(segments.len(), 3, "three dense phases visible over UART");

    // Upload a scheme targeting the first phase and arm, all remotely.
    let scheme = AttackScheme { delay_cycles: 5, strikes: 40, strike_cycles: 1, gap_cycles: 3 };
    let r = client
        .transact_with(&Command::LoadScheme { data: scheme.to_bytes() }, || {
            shell.poll(&mut fpga);
        })
        .unwrap();
    assert_eq!(r, Response::Ack);
    let r = client
        .transact_with(&Command::Arm { enabled: true }, || {
            shell.poll(&mut fpga);
        })
        .unwrap();
    assert_eq!(r, Response::Ack);

    let run = fpga.run_inference();
    assert_eq!(run.strike_cycles.len(), 40);

    let r = client
        .transact_with(&Command::Status, || {
            shell.poll(&mut fpga);
        })
        .unwrap();
    match r {
        Response::Status(st) => {
            assert!(st.armed && st.triggered);
            assert_eq!(st.strikes_fired, 40);
        }
        other => panic!("expected status, got {other:?}"),
    }
}

#[test]
fn overheating_guard_under_sustained_striking() {
    // A scheme that holds the striker on for a long stretch heats the die
    // (the paper warns long activations "may increase the temperature of
    // the FPGA chip or even crash it").
    let victim = small_victim(5);

    // Continuous burn across fc1 on a fresh platform…
    let mut fpga = fast_platform(&victim, 20_000);
    let profile = profile_victim(&mut fpga, &["fc1", "fc2", "fc3"], 1).unwrap();
    let (_, len) = profile.window("fc1").unwrap();
    let scheme =
        AttackScheme { delay_cycles: 0, strikes: 1, strike_cycles: len as u32, gap_cycles: 0 };
    fpga.scheduler_mut().load_scheme(&scheme).unwrap();
    fpga.scheduler_mut().arm(true).unwrap();
    let burn = fpga.run_inference();

    // …versus sparse pulses on another fresh platform.
    let mut fpga2 = fast_platform(&victim, 20_000);
    let profile2 = profile_victim(&mut fpga2, &["fc1", "fc2", "fc3"], 1).unwrap();
    let pulsed = plan_attack(&profile2, "fc1", 50).unwrap();
    fpga2.scheduler_mut().load_scheme(&pulsed).unwrap();
    fpga2.scheduler_mut().arm(true).unwrap();
    let gentle = fpga2.run_inference();

    assert!(burn.strike_cycles.len() > gentle.strike_cycles.len() * 5);
    assert!(
        burn.final_temp_c > gentle.final_temp_c,
        "continuous burn ({:.6} °C) must heat more than pulses ({:.6} °C)",
        burn.final_temp_c,
        gentle.final_temp_c
    );
}
