//! Golden-trace conformance suite (DESIGN.md §8).
//!
//! Replays every golden scenario at `DEEPSTRIKE_THREADS` = 1, 2 and 8,
//! requires the rendered JSONL to be bit-identical across thread counts,
//! and diffs it line-by-line against the blessed copy under
//! `tests/golden/`. Regenerate after an intentional pipeline change with:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test golden_trace
//! ```

use std::fs;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.push("tests");
    p.push("golden");
    p.push(format!("{name}.jsonl"));
    p
}

/// Asserts `actual == expected` with a first-divergence report instead of
/// dumping two multi-thousand-line strings.
fn assert_jsonl_eq(name: &str, expected: &str, actual: &str) {
    if expected == actual {
        return;
    }
    let exp: Vec<&str> = expected.lines().collect();
    let act: Vec<&str> = actual.lines().collect();
    for (i, (e, a)) in exp.iter().zip(&act).enumerate() {
        assert_eq!(
            e,
            a,
            "{name}: first trace divergence at line {} of {} (golden) / {} (actual)",
            i + 1,
            exp.len(),
            act.len()
        );
    }
    panic!(
        "{name}: traces agree for {} lines but lengths differ: {} (golden) vs {} (actual); \
         regenerate with GOLDEN_REGEN=1 if the change is intentional",
        exp.len().min(act.len()),
        exp.len(),
        act.len()
    );
}

/// `DEEPSTRIKE_THREADS` is process-global, so the whole thread sweep and
/// every golden comparison live in this single test (a second test
/// mutating the variable would race).
#[test]
fn golden_traces_match_and_are_thread_count_invariant() {
    let prior = std::env::var(par::THREADS_ENV).ok();
    let regen = std::env::var("GOLDEN_REGEN").is_ok_and(|v| !v.is_empty() && v != "0");

    for &name in bench::golden::SCENARIOS {
        let mut renders: Vec<(&str, String)> = Vec::new();
        for threads in ["1", "2", "8"] {
            std::env::set_var(par::THREADS_ENV, threads);
            let log = bench::golden::run_scenario(name);
            assert_eq!(log.dropped, 0, "{name}: session ring overflowed at {threads} threads");
            renders.push((threads, log.to_jsonl()));
        }
        let reference = renders[0].1.clone();
        for (threads, render) in &renders[1..] {
            assert_jsonl_eq(
                &format!("{name} @ DEEPSTRIKE_THREADS={threads} vs 1"),
                &reference,
                render,
            );
        }

        let path = golden_path(name);
        if regen {
            fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
            fs::write(&path, &reference).expect("write golden");
        } else {
            let blessed = fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!(
                    "{name}: missing golden file {} ({e}); bless with \
                     GOLDEN_REGEN=1 cargo test --test golden_trace",
                    path.display()
                )
            });
            assert_jsonl_eq(name, &blessed, &reference);
        }
    }

    match prior {
        Some(v) => std::env::set_var(par::THREADS_ENV, v),
        None => std::env::remove_var(par::THREADS_ENV),
    }
}
