//! Chaos suite for the remotely-guided campaign (DESIGN.md §9).
//!
//! The whole attack — profile, plan, upload, arm, strike, evaluate —
//! runs through the reliable transport over links with 10% combined
//! loss+corruption (bursty), jitter and a forced disconnect window, and
//! must converge to *exactly* the scheme and accuracy drop the local
//! direct-drive campaign produces on an identical platform: the channel
//! may cost retransmissions and resumes, never guidance fidelity.
//!
//! `DEEPSTRIKE_THREADS` is process-global, so the thread sweep and every
//! link seed live in this single test (see `tests/golden_trace.rs` for
//! the same pattern).

use accel::fault::FaultModel;
use bench::golden::{accel_config, cosim_config, golden_images, tiny_dense_victim, GOLDEN_SEED};
use deepstrike::attack::{evaluate_attack, plan_attack, profile_victim};
use deepstrike::cosim::CloudFpga;
use deepstrike::remote::{GuidanceLevel, RemoteCampaign, RemoteConfig, SimHost};
use deepstrike::DeepStrikeError;
use uart::link::{Endpoint, FaultConfig};
use uart::transport::{TransportClient, TransportConfig, TransportShell};

/// Combined loss+corruption rate, split evenly between the two.
const CHAOS_RATE: f64 = 0.10;

/// Independent channel realisations per thread count.
const LINK_SEEDS: &[u64] = &[7, 21, 42];

/// Resume budget before a link seed is declared not converged.
const MAX_RESUMES: u32 = 200;

fn platform() -> CloudFpga {
    let mut fpga = CloudFpga::new(&tiny_dense_victim(), &accel_config(), 16_000, cosim_config())
        .expect("platform assembles");
    fpga.settle(30);
    fpga
}

fn campaign_config() -> RemoteConfig {
    let mut config = RemoteConfig::new(&["fc1", "fc2"], "fc1", 6);
    config.read_chunk = 32; // short response frames survive lossy links
    config.eval_seed = GOLDEN_SEED;
    config
}

/// The 10% chaos channel: bursty loss and corruption, delivery jitter,
/// and one disconnect window dropped into the profiling stream.
fn chaos_channel(seed: u64) -> (Endpoint, Endpoint) {
    let fault = FaultConfig {
        loss: CHAOS_RATE / 2.0,
        corrupt: CHAOS_RATE / 2.0,
        burst_len: 16.0,
        max_jitter: 2,
        disconnects: vec![(40, 30)],
    };
    Endpoint::faulty_pair(fault, seed)
}

fn chaos_transport() -> TransportConfig {
    TransportConfig { pump_budget: 30, max_retries: 12, backoff_cap: 480, chunk_len: 12 }
}

#[test]
fn chaos_links_never_change_the_campaign_result() {
    let prior = std::env::var(par::THREADS_ENV).ok();
    let mut references = Vec::new();

    for threads in ["1", "8"] {
        std::env::set_var(par::THREADS_ENV, threads);
        let config = campaign_config();
        let q = tiny_dense_victim();

        // Local reference: the direct driver on an identical platform.
        let mut local = platform();
        let profile = profile_victim(&mut local, &["fc1", "fc2"], config.profile_runs)
            .expect("local profile");
        let local_scheme = plan_attack(&profile, "fc1", config.strikes).expect("local plan");
        local.scheduler_mut().load_scheme(&local_scheme).expect("loads");
        local.scheduler_mut().arm(true).expect("arms");
        let run = local.run_inference();
        let local_outcome = evaluate_attack(
            &q,
            local.schedule(),
            &run,
            golden_images(6).iter().map(|(t, y)| (t, *y)),
            FaultModel::paper(),
            config.eval_seed,
        );
        references.push((local_scheme, local_outcome));

        for &seed in LINK_SEEDS {
            let (a, b) = chaos_channel(seed);
            let mut link = TransportClient::with_config(a, chaos_transport());
            let mut host = SimHost::new(
                platform(),
                TransportShell::new(b),
                q.clone(),
                golden_images(6),
                FaultModel::paper(),
            );
            let mut campaign = RemoteCampaign::new(campaign_config());
            let mut resumes = 0u32;
            let remote = loop {
                match campaign.run(&mut link, &mut host) {
                    Ok(o) => break o,
                    Err(DeepStrikeError::Interrupted { .. }) => {
                        resumes += 1;
                        assert!(
                            resumes <= MAX_RESUMES,
                            "link seed {seed} @ {threads} threads never converged"
                        );
                    }
                    Err(e) => panic!("link seed {seed} @ {threads} threads failed hard: {e}"),
                }
            };

            let ctx = format!("link seed {seed} @ {threads} threads");
            assert_eq!(
                remote.guidance,
                GuidanceLevel::Fresh,
                "{ctx}: the chaos channel must cost retries, not guidance"
            );
            assert_eq!(
                remote.scheme, local_scheme,
                "{ctx}: remote campaign planned a different scheme"
            );
            assert_eq!(
                remote.outcome, local_outcome,
                "{ctx}: remote campaign scored a different outcome"
            );
            assert!(remote.remote_strikes_fired >= 1, "{ctx}: no strike landed");
            // The channel was genuinely hostile: the transport had to work.
            assert!(
                link.stats().retransmissions >= 1,
                "{ctx}: a 10% channel should have cost at least one retry"
            );
        }
    }

    // The local reference itself is thread-count invariant, so every
    // remote run above converged to one single (scheme, outcome) pair.
    let (first, rest) = references.split_first().expect("two thread counts ran");
    for other in rest {
        assert_eq!(first, other, "local reference must not depend on DEEPSTRIKE_THREADS");
    }

    match prior {
        Some(v) => std::env::set_var(par::THREADS_ENV, v),
        None => std::env::remove_var(par::THREADS_ENV),
    }
}
