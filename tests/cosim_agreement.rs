//! Agreement tests between the layers of the fault-modelling stack:
//! closed-form probabilities ↔ cycle-level DSP sampling ↔ the statistical
//! executor (DESIGN.md §4's "both modes are tested for agreement").

use accel::dsp::{DspOp, DspSlice};
use accel::executor::{infer_with_faults, NoFaults};
use accel::fault::{FaultModel, MacFault};
use accel::pe::PeArray;
use dnn::fixed::QFormat;
use dnn::quant::QuantizedNetwork;
use dnn::tensor::Tensor;
use dnn::zoo::mlp;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn cycle_level_rates_match_closed_form_at_full_path_scale() {
    let model = FaultModel::paper();
    for &v in &[0.86, 0.83, 0.80, 0.76] {
        let p = model.probabilities(v);
        let mut pe = PeArray::new(8, model);
        let mut rng = StdRng::seed_from_u64(99);
        // Full-width operands so path scale is 1 (matching closed form).
        let ops = (0..30_000).map(|i| DspOp { a: 100 + (i % 27), b: 120, d: 7 });
        let tally = pe.characterize(ops, v, &mut rng);
        assert!(
            (tally.total_fault_rate() - p.total()).abs() < 0.02,
            "total at {v}: sim {} vs closed form {}",
            tally.total_fault_rate(),
            p.total()
        );
        assert!(
            (tally.duplicate_rate() - p.duplicate).abs() < 0.02,
            "dup at {v}: sim {} vs closed form {}",
            tally.duplicate_rate(),
            p.duplicate
        );
    }
}

#[test]
fn zero_products_never_fault_in_the_cycle_model() {
    let model = FaultModel::paper();
    let mut pe = PeArray::new(4, model);
    let mut rng = StdRng::seed_from_u64(1);
    // b = 0 ⇒ every product is zero ⇒ no toggling ⇒ no timing faults,
    // even at crash-level droop.
    let ops = (0..5_000).map(|i| DspOp { a: i, b: 0, d: 1 });
    let tally = pe.characterize(ops, 0.70, &mut rng);
    assert_eq!(tally.total_fault_rate(), 0.0);
}

#[test]
fn statistical_executor_is_bit_exact_against_reference_when_clean() {
    let net = mlp(&mut StdRng::seed_from_u64(12));
    let q = QuantizedNetwork::from_sequential(&net, &[1, 28, 28], QFormat::paper()).unwrap();
    let mut rng = StdRng::seed_from_u64(0);
    for k in 0..8 {
        let x = Tensor::full(&[1, 28, 28], 0.05 + 0.1 * k as f32);
        let (logits, tally) = infer_with_faults(&q, &x, &mut NoFaults, &mut rng);
        assert_eq!(logits, q.infer_logits(&x));
        assert_eq!(tally.total(), 0);
    }
}

#[test]
fn duplication_semantics_match_between_dsp_and_executor_direction() {
    // In both models a duplication fault yields the previous product of
    // the same PE; verify the DSP side explicitly at a dup-prone voltage.
    let model = FaultModel::paper();
    let mut v = 1.0;
    let mut best = (1.0, 0.0f64);
    while v > 0.72 {
        let d = model.probabilities(v).duplicate;
        if d > best.1 {
            best = (v, d);
        }
        v -= 0.002;
    }
    let mut dsp = DspSlice::new(model);
    let mut rng = StdRng::seed_from_u64(3);
    let mut prev_correct: Option<i64> = None;
    let mut dup_checked = 0;
    for i in 0..4_000i32 {
        dsp.issue(DspOp { a: 100 + (i % 23), b: 119, d: 3 });
        if let Some(out) = dsp.tick(best.0, &mut rng) {
            if out.fault == MacFault::Duplicate {
                if let Some(p) = prev_correct {
                    assert_eq!(out.value, p, "duplication must replay the previous product");
                    dup_checked += 1;
                }
            }
            prev_correct = Some(out.op.correct());
        }
    }
    assert!(dup_checked > 50, "too few duplications observed: {dup_checked}");
}
