//! Agreement tests between the layers of the fault-modelling stack:
//! closed-form probabilities ↔ cycle-level DSP sampling ↔ the statistical
//! executor (DESIGN.md §4's "both modes are tested for agreement"), plus
//! stage-level agreement across the whole pipeline via the golden-trace
//! scenarios (DESIGN.md §8).
//!
//! NOTE: nothing in this binary may mutate `DEEPSTRIKE_THREADS` — the
//! variable is process-global and tests run concurrently; the golden
//! scenarios here are asserted under whatever ambient thread count the
//! harness picked (the thread-sweep itself lives in `golden_trace.rs`).

use accel::dsp::{DspOp, DspSlice};
use accel::executor::{infer_with_faults, NoFaults};
use accel::fault::{FaultModel, MacFault};
use accel::pe::PeArray;
use dnn::fixed::QFormat;
use dnn::quant::QuantizedNetwork;
use dnn::tensor::Tensor;
use dnn::zoo::mlp;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn cycle_level_rates_match_closed_form_at_full_path_scale() {
    let model = FaultModel::paper();
    for &v in &[0.86, 0.83, 0.80, 0.76] {
        let p = model.probabilities(v);
        let mut pe = PeArray::new(8, model);
        let mut rng = StdRng::seed_from_u64(99);
        // Full-width operands so path scale is 1 (matching closed form).
        let ops = (0..30_000).map(|i| DspOp { a: 100 + (i % 27), b: 120, d: 7 });
        let tally = pe.characterize(ops, v, &mut rng);
        assert!(
            (tally.total_fault_rate() - p.total()).abs() < 0.02,
            "total at {v}: sim {} vs closed form {}",
            tally.total_fault_rate(),
            p.total()
        );
        assert!(
            (tally.duplicate_rate() - p.duplicate).abs() < 0.02,
            "dup at {v}: sim {} vs closed form {}",
            tally.duplicate_rate(),
            p.duplicate
        );
    }
}

#[test]
fn zero_products_never_fault_in_the_cycle_model() {
    let model = FaultModel::paper();
    let mut pe = PeArray::new(4, model);
    let mut rng = StdRng::seed_from_u64(1);
    // b = 0 ⇒ every product is zero ⇒ no toggling ⇒ no timing faults,
    // even at crash-level droop.
    let ops = (0..5_000).map(|i| DspOp { a: i, b: 0, d: 1 });
    let tally = pe.characterize(ops, 0.70, &mut rng);
    assert_eq!(tally.total_fault_rate(), 0.0);
}

#[test]
fn statistical_executor_is_bit_exact_against_reference_when_clean() {
    let net = mlp(&mut StdRng::seed_from_u64(12));
    let q = QuantizedNetwork::from_sequential(&net, &[1, 28, 28], QFormat::paper()).unwrap();
    let mut rng = StdRng::seed_from_u64(0);
    for k in 0..8 {
        let x = Tensor::full(&[1, 28, 28], 0.05 + 0.1 * k as f32);
        let (logits, tally) = infer_with_faults(&q, &x, &mut NoFaults, &mut rng);
        assert_eq!(logits, q.infer_logits(&x));
        assert_eq!(tally.total(), 0);
    }
}

#[test]
fn duplication_semantics_match_between_dsp_and_executor_direction() {
    // In both models a duplication fault yields the previous product of
    // the same PE; verify the DSP side explicitly at a dup-prone voltage.
    let model = FaultModel::paper();
    let mut v = 1.0;
    let mut best = (1.0, 0.0f64);
    while v > 0.72 {
        let d = model.probabilities(v).duplicate;
        if d > best.1 {
            best = (v, d);
        }
        v -= 0.002;
    }
    let mut dsp = DspSlice::new(model);
    let mut rng = StdRng::seed_from_u64(3);
    let mut prev_correct: Option<i64> = None;
    let mut dup_checked = 0;
    for i in 0..4_000i32 {
        dsp.issue(DspOp { a: 100 + (i % 23), b: 119, d: 3 });
        if let Some(out) = dsp.tick(best.0, &mut rng) {
            if out.fault == MacFault::Duplicate {
                if let Some(p) = prev_correct {
                    assert_eq!(out.value, p, "duplication must replay the previous product");
                    dup_checked += 1;
                }
            }
            prev_correct = Some(out.op.correct());
        }
    }
    assert!(dup_checked > 50, "too few duplications observed: {dup_checked}");
}

/// Stage-level agreement on the fig3 guided strike: the detector's latch
/// point, the signal-RAM schedule, the striker edges and the PDN glitch
/// windows must all tell the same story about the same run.
#[test]
fn fig3_trace_stages_agree_on_strike_accounting() {
    use trace::Event;

    let log = bench::golden::run_scenario("fig3_slice");
    assert_eq!(log.dropped, 0);

    // fig3_slice's scheme, restated here so a drift in the scenario shows
    // up as a loud mismatch rather than a silently-updated expectation.
    let (delay, strikes, strike_cycles, gap) = (20u64, 5usize, 1u64, 7u64);
    let total_bits = delay + strikes as u64 * (strike_cycles + gap);

    // Signal-RAM stage: the compiled scheme and its playback agree.
    let loaded: Vec<_> = log
        .events
        .iter()
        .filter_map(|e| match e {
            Event::SchemeLoaded { bits, strikes, phases } => Some((*bits, *strikes, *phases)),
            _ => None,
        })
        .collect();
    assert_eq!(loaded, vec![(total_bits, strikes as u32, 1u32)]);
    assert_eq!(
        log.count(|e| matches!(e, Event::PlaybackStart { len_bits } if *len_bits == total_bits)),
        1
    );
    assert_eq!(
        log.count(
            |e| matches!(e, Event::PlaybackDone { bits_played } if *bits_played == total_bits)
        ),
        1
    );

    // Detector stage: exactly one latch, and playback starts right after
    // it — the first strike fires `delay` cycles past the latch sample.
    let latches: Vec<u64> = log
        .events
        .iter()
        .filter_map(|e| match e {
            Event::DetectorLatch { sample } => Some(*sample),
            _ => None,
        })
        .collect();
    assert_eq!(latches.len(), 1, "one DNN start, one latch");
    let latch = latches[0];

    // Scheduler stage: strike cycles line up with the compiled schedule.
    let strike_at: Vec<u64> = log
        .events
        .iter()
        .filter_map(|e| match e {
            Event::StrikeIssued { cycle } => Some(*cycle),
            _ => None,
        })
        .collect();
    assert_eq!(strike_at.len(), strikes);
    assert_eq!(strike_at[0], latch + 1 + delay, "first strike is delay-aligned to the latch");
    for pair in strike_at.windows(2) {
        assert_eq!(pair[1] - pair[0], strike_cycles + gap, "strikes are gap-spaced");
    }

    // Striker stage: one rising edge per strike, numbered consecutively.
    let edges: Vec<u64> = log
        .events
        .iter()
        .filter_map(|e| match e {
            Event::StrikerEdge { activation } => Some(*activation),
            _ => None,
        })
        .collect();
    assert_eq!(edges, (1..=strikes as u64).collect::<Vec<_>>());

    // PDN stage: each glitch window dips below the DSP's safe voltage
    // (that is what makes the strikes faults rather than noise).
    let safe_uv = (FaultModel::paper().safe_voltage() * 1e6) as u64;
    let glitches: Vec<u64> = log
        .events
        .iter()
        .filter_map(|e| match e {
            Event::PdnGlitch { nadir_uv, .. } => Some(*nadir_uv),
            _ => None,
        })
        .collect();
    assert!(
        !glitches.is_empty() && glitches.len() <= strikes,
        "between one merged window and one per strike: {glitches:?}"
    );
    for nadir in glitches {
        assert!(nadir > 0 && nadir < safe_uv, "nadir {nadir}µV not below safe {safe_uv}µV");
    }
}

/// Stage-level agreement on the fig5b campaign: the per-image fault
/// tallies reported by the evaluator must equal the DSP-level fault
/// events materialised by the executor — two independent observers of
/// the same run.
#[test]
fn fig5b_trace_fault_tallies_agree_across_stages() {
    use trace::Event;

    let log = bench::golden::run_scenario("fig5b_slice");
    assert_eq!(log.dropped, 0);

    let scored: Vec<(u64, u64, u64)> = log
        .events
        .iter()
        .filter_map(|e| match e {
            Event::ImageScored { index, duplicate, random, .. } => {
                Some((*index, *duplicate, *random))
            }
            _ => None,
        })
        .collect();
    assert_eq!(scored.len(), 6, "six evaluation images");
    assert_eq!(
        scored.iter().map(|s| s.0).collect::<Vec<_>>(),
        (0..6).collect::<Vec<_>>(),
        "par merge keeps image order"
    );

    let dup_events =
        log.count(|e| matches!(e, Event::MacFault { kind: trace::FaultKind::Duplicate, .. }));
    let rand_events =
        log.count(|e| matches!(e, Event::MacFault { kind: trace::FaultKind::Random, .. }));
    let dup_scored: u64 = scored.iter().map(|s| s.1).sum();
    let rand_scored: u64 = scored.iter().map(|s| s.2).sum();
    assert_eq!(dup_events as u64, dup_scored, "duplicate tallies disagree");
    assert_eq!(rand_events as u64, rand_scored, "random tallies disagree");

    // One attacked inference per image, and the plan that produced them
    // was recorded once.
    assert_eq!(log.count(|e| matches!(e, Event::Inference { .. })), 6);
    assert_eq!(log.count(|e| matches!(e, Event::AttackPlanned { .. })), 1);
}
