//! Little-endian wire codec shared by the checkpoint payload
//! serializers (campaign state in `deepstrike::remote`, sweep-slice
//! results in `bench::supervisor`).
//!
//! Writers are free functions appending to a `Vec<u8>`; the [`Reader`]
//! returns `Option` from every take so a truncated or garbled payload
//! decodes to `None` instead of panicking — the caller treats that as
//! "no usable checkpoint" and starts fresh.

/// Appends a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a `bool` as one byte (0/1).
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

/// Appends a `u32`, little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64`, little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its IEEE-754 bit pattern, little-endian — the
/// round-trip is bit-exact, which the byte-identical-resume guarantee
/// depends on.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Appends a length-prefixed (`u32`) byte string.
pub fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
    put_u32(out, v.len() as u32);
    out.extend_from_slice(v);
}

/// Cursor over an encoded payload; every `take_*` returns `None` once
/// the input is exhausted or malformed.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the front of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// True when every byte has been consumed — decoders check this to
    /// reject payloads with trailing garbage.
    pub fn is_empty(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    /// Reads a `u8`.
    pub fn take_u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    /// Reads a `bool` (any non-zero byte is `true`).
    pub fn take_bool(&mut self) -> Option<bool> {
        self.take_u8().map(|b| b != 0)
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Option<u32> {
        self.take(4).map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    /// Reads an `f64` from its stored bit pattern (bit-exact).
    pub fn take_f64(&mut self) -> Option<f64> {
        self.take_u64().map(f64::from_bits)
    }

    /// Reads a length-prefixed byte string.
    pub fn take_bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.take_u32()? as usize;
        self.take(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 0xAB);
        put_bool(&mut buf, true);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, 1.5e-300);
        put_bytes(&mut buf, b"payload");
        let mut r = Reader::new(&buf);
        assert_eq!(r.take_u8(), Some(0xAB));
        assert_eq!(r.take_bool(), Some(true));
        assert_eq!(r.take_u32(), Some(0xDEAD_BEEF));
        assert_eq!(r.take_u64(), Some(u64::MAX - 1));
        assert_eq!(r.take_f64().map(f64::to_bits), Some((-0.0f64).to_bits()));
        assert_eq!(r.take_f64(), Some(1.5e-300));
        assert_eq!(r.take_bytes(), Some(&b"payload"[..]));
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_input_returns_none_not_panic() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 7);
        let mut r = Reader::new(&buf[..5]);
        assert_eq!(r.take_u64(), None);
        // A length prefix pointing past the end is also rejected.
        let mut buf = Vec::new();
        put_u32(&mut buf, 1000);
        buf.extend_from_slice(b"short");
        let mut r = Reader::new(&buf);
        assert_eq!(r.take_bytes(), None);
    }

    #[test]
    fn nan_payload_bits_survive_roundtrip() {
        let weird = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut buf = Vec::new();
        put_f64(&mut buf, weird);
        let mut r = Reader::new(&buf);
        assert_eq!(r.take_f64().map(f64::to_bits), Some(weird.to_bits()));
    }
}
