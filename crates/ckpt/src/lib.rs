//! Durable checkpoint store for crash-safe campaign sweeps.
//!
//! A long sweep (`fig5b`, `remote_campaign`, …) periodically hands this
//! store an opaque payload — the encoded prefix of completed grid points
//! or a serialized [`RemoteCampaign`] — and the store makes it survive
//! `kill -9` at any instant:
//!
//! - **Atomic write-rename.** The payload is written to a staging file,
//!   `fsync`ed, and renamed over the current checkpoint. A crash mid-save
//!   leaves either the old generation or the new one, never a torn file.
//! - **Versioned header + CRC.** Every file carries a magic, a format
//!   version, a monotonically increasing generation counter, the payload
//!   length, and a CRC-32 of the payload. Corruption and truncation are
//!   both *detected*, never silently loaded.
//! - **Generation rollback.** Before the rename, the previous checkpoint
//!   is kept as `<name>.ckpt.prev`. If the current file fails validation
//!   (torn write, bit rot), [`CheckpointStore::load`] falls back to the
//!   previous good generation and reports the rollback.
//!
//! Every durable save emits [`trace::Event::CheckpointFsync`] so the
//! golden-trace layer can audit checkpoint cadence.
//!
//! The [`wire`] module is the shared little-endian codec used by the
//! payload serializers (campaign state, sweep-slice results).

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

pub mod wire;

/// File magic: "DSCKPT" + 2-byte pad, fixed for all format versions.
const MAGIC: [u8; 8] = *b"DSCKPT\0\0";

/// Current on-disk format version.
const VERSION: u32 = 1;

/// Header: magic (8) + version (4) + generation (8) + payload_len (8) +
/// payload CRC-32 (4).
const HEADER_LEN: usize = 8 + 4 + 8 + 8 + 4;

/// Checkpoint-store failure: an I/O error, or a checkpoint file that
/// failed validation with no good generation to fall back to.
#[derive(Debug)]
pub enum CkptError {
    /// The underlying filesystem operation failed.
    Io(io::Error),
    /// Every on-disk generation failed validation.
    Corrupt {
        /// The checkpoint path that was probed last.
        path: PathBuf,
        /// Human-readable validation failure (bad magic, CRC mismatch, …).
        reason: String,
    },
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CkptError::Corrupt { path, reason } => {
                write!(f, "checkpoint {} is corrupt: {reason}", path.display())
            }
        }
    }
}

impl std::error::Error for CkptError {}

impl From<io::Error> for CkptError {
    fn from(e: io::Error) -> Self {
        CkptError::Io(e)
    }
}

/// A successfully loaded checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loaded {
    /// The payload exactly as it was saved.
    pub payload: Vec<u8>,
    /// The generation counter of the file that validated.
    pub generation: u64,
    /// True when the current file failed validation and the previous
    /// generation was loaded instead.
    pub rolled_back: bool,
}

/// CRC-32 (IEEE 802.3, reflected) over `data` — the same polynomial zlib
/// and PNG use, implemented locally because the workspace vendors no
/// checksum crate.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Durable checkpoint store: one named checkpoint slot in a directory,
/// with atomic saves and a one-generation rollback history.
#[derive(Debug)]
pub struct CheckpointStore {
    current: PathBuf,
    prev: PathBuf,
    staging: PathBuf,
    generation: u64,
}

impl CheckpointStore {
    /// Opens (creating the directory if needed) the checkpoint slot
    /// `<dir>/<name>.ckpt`. The generation counter resumes from whatever
    /// is on disk.
    pub fn new(dir: impl AsRef<Path>, name: &str) -> io::Result<Self> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let current = dir.join(format!("{name}.ckpt"));
        let prev = dir.join(format!("{name}.ckpt.prev"));
        let staging = dir.join(format!("{name}.ckpt.new"));
        let generation = [&current, &prev]
            .iter()
            .filter_map(|p| read_validated(p).ok().map(|(generation, _)| generation))
            .max()
            .unwrap_or(0);
        Ok(CheckpointStore { current, prev, staging, generation })
    }

    /// The path of the current checkpoint file.
    pub fn path(&self) -> &Path {
        &self.current
    }

    /// The generation counter of the most recent save (0 if none yet).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Durably saves `payload` as the next generation and returns the
    /// generation number. The sequence is: write staging + fsync, demote
    /// the current file to `.prev`, rename staging over current. A crash
    /// at any point leaves at least one validating generation on disk.
    pub fn save(&mut self, payload: &[u8]) -> io::Result<u64> {
        let generation = self.generation + 1;
        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&generation.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&crc32(payload).to_le_bytes());
        bytes.extend_from_slice(payload);

        let mut file =
            OpenOptions::new().write(true).create(true).truncate(true).open(&self.staging)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
        drop(file);

        if self.current.exists() {
            fs::rename(&self.current, &self.prev)?;
        }
        fs::rename(&self.staging, &self.current)?;
        // Fsync the directory so both renames are durable before we
        // report the generation as committed (best-effort on filesystems
        // that reject directory fsync).
        if let Some(dir) = self.current.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        self.generation = generation;
        trace::emit(|| trace::Event::CheckpointFsync { generation, bytes: bytes.len() as u64 });
        Ok(generation)
    }

    /// Loads the newest validating generation.
    ///
    /// - `Ok(Some(loaded))` — a file validated; `loaded.rolled_back` is
    ///   true when the current file was corrupt/truncated and the
    ///   previous generation was used.
    /// - `Ok(None)` — no checkpoint exists yet (fresh start).
    /// - `Err(CkptError::Corrupt)` — files exist but none validates.
    pub fn load(&self) -> Result<Option<Loaded>, CkptError> {
        // `None` = current file absent (a crash between `save`'s two
        // renames can leave only `.prev` on disk), `Some(reason)` =
        // present but failed validation.
        let current_failure = match probe(&self.current)? {
            Probe::Valid(generation, payload) => {
                return Ok(Some(Loaded { payload, generation, rolled_back: false }));
            }
            Probe::Missing => None,
            Probe::Invalid(reason) => Some(reason),
        };
        match probe(&self.prev)? {
            Probe::Valid(generation, payload) => {
                Ok(Some(Loaded { payload, generation, rolled_back: true }))
            }
            Probe::Missing => match current_failure {
                None => Ok(None),
                Some(reason) => Err(CkptError::Corrupt { path: self.current.clone(), reason }),
            },
            Probe::Invalid(prev_reason) => Err(CkptError::Corrupt {
                path: self.current.clone(),
                reason: format!(
                    "{}; previous generation: {prev_reason}",
                    current_failure.unwrap_or_else(|| "missing".to_string())
                ),
            }),
        }
    }

    /// Removes every on-disk generation (used after a sweep completes so
    /// a later run starts fresh).
    pub fn clear(&mut self) -> io::Result<()> {
        for path in [&self.staging, &self.current, &self.prev] {
            match fs::remove_file(path) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        self.generation = 0;
        Ok(())
    }
}

enum Probe {
    Valid(u64, Vec<u8>),
    Invalid(String),
    Missing,
}

fn probe(path: &Path) -> Result<Probe, CkptError> {
    match read_validated(path) {
        Ok((generation, payload)) => Ok(Probe::Valid(generation, payload)),
        Err(ReadError::Missing) => Ok(Probe::Missing),
        Err(ReadError::Io(e)) => Err(CkptError::Io(e)),
        Err(ReadError::Invalid(reason)) => Ok(Probe::Invalid(reason)),
    }
}

enum ReadError {
    Missing,
    Io(io::Error),
    Invalid(String),
}

fn read_validated(path: &Path) -> Result<(u64, Vec<u8>), ReadError> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(ReadError::Missing),
        Err(e) => return Err(ReadError::Io(e)),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes).map_err(ReadError::Io)?;
    if bytes.len() < HEADER_LEN {
        return Err(ReadError::Invalid(format!(
            "truncated header ({} of {HEADER_LEN} bytes)",
            bytes.len()
        )));
    }
    if bytes[..8] != MAGIC {
        return Err(ReadError::Invalid("bad magic".to_string()));
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version != VERSION {
        return Err(ReadError::Invalid(format!("unsupported version {version}")));
    }
    let generation = u64::from_le_bytes([
        bytes[12], bytes[13], bytes[14], bytes[15], bytes[16], bytes[17], bytes[18], bytes[19],
    ]);
    let payload_len = u64::from_le_bytes([
        bytes[20], bytes[21], bytes[22], bytes[23], bytes[24], bytes[25], bytes[26], bytes[27],
    ]) as usize;
    let stored_crc = u32::from_le_bytes([bytes[28], bytes[29], bytes[30], bytes[31]]);
    let payload = &bytes[HEADER_LEN..];
    if payload.len() != payload_len {
        return Err(ReadError::Invalid(format!(
            "truncated payload ({} of {payload_len} bytes)",
            payload.len()
        )));
    }
    let actual_crc = crc32(payload);
    if actual_crc != stored_crc {
        return Err(ReadError::Invalid(format!(
            "CRC mismatch (stored {stored_crc:#010x}, computed {actual_crc:#010x})"
        )));
    }
    Ok((generation, payload.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("deepstrike-ckpt-{tag}-{}", std::process::id()));
        // Start from a clean slot even if a previous run left debris.
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn save_then_load_roundtrips() {
        let dir = temp_dir("roundtrip");
        let mut store = CheckpointStore::new(&dir, "sweep").expect("store opens");
        assert_eq!(store.load().expect("load"), None);
        let g1 = store.save(b"alpha").expect("save");
        assert_eq!(g1, 1);
        let loaded = store.load().expect("load").expect("present");
        assert_eq!(loaded.payload, b"alpha");
        assert_eq!(loaded.generation, 1);
        assert!(!loaded.rolled_back);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn generations_increase_and_survive_reopen() {
        let dir = temp_dir("generations");
        let mut store = CheckpointStore::new(&dir, "sweep").expect("store opens");
        store.save(b"g1").expect("save");
        store.save(b"g2").expect("save");
        drop(store);
        let mut reopened = CheckpointStore::new(&dir, "sweep").expect("store reopens");
        assert_eq!(reopened.generation(), 2);
        let g3 = reopened.save(b"g3").expect("save");
        assert_eq!(g3, 3);
        let loaded = reopened.load().expect("load").expect("present");
        assert_eq!(loaded.payload, b"g3");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_current_rolls_back_to_previous_generation() {
        let dir = temp_dir("rollback");
        let mut store = CheckpointStore::new(&dir, "sweep").expect("store opens");
        store.save(b"good-gen-1").expect("save");
        store.save(b"good-gen-2").expect("save");
        // Flip a payload byte in the current file.
        let path = store.path().to_path_buf();
        let mut bytes = fs::read(&path).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).expect("write corruption");
        let loaded = store.load().expect("load").expect("present");
        assert!(loaded.rolled_back);
        assert_eq!(loaded.generation, 1);
        assert_eq!(loaded.payload, b"good-gen-1");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_current_is_detected_and_rolled_back() {
        let dir = temp_dir("truncate");
        let mut store = CheckpointStore::new(&dir, "sweep").expect("store opens");
        store.save(b"gen-one-payload").expect("save");
        store.save(b"gen-two-payload").expect("save");
        let path = store.path().to_path_buf();
        let bytes = fs::read(&path).expect("read");
        fs::write(&path, &bytes[..bytes.len() - 4]).expect("truncate");
        let loaded = store.load().expect("load").expect("present");
        assert!(loaded.rolled_back);
        assert_eq!(loaded.payload, b"gen-one-payload");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn both_generations_corrupt_is_an_error_never_a_silent_load() {
        let dir = temp_dir("both-corrupt");
        let mut store = CheckpointStore::new(&dir, "sweep").expect("store opens");
        store.save(b"one").expect("save");
        store.save(b"two").expect("save");
        for name in ["sweep.ckpt", "sweep.ckpt.prev"] {
            let path = dir.join(name);
            let mut bytes = fs::read(&path).expect("read");
            bytes[0] ^= 0xFF; // break the magic
            fs::write(&path, &bytes).expect("write corruption");
        }
        match store.load() {
            Err(CkptError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_emits_checkpoint_fsync_event() {
        let dir = temp_dir("fsync-event");
        let mut store = CheckpointStore::new(&dir, "sweep").expect("store opens");
        let ((), log) = trace::capture(64, || {
            store.save(b"payload").expect("save");
        });
        let rendered = log.to_jsonl();
        assert!(
            rendered.contains(r#""ev":"checkpoint_fsync","stage":"supervisor","generation":1"#),
            "missing fsync event:\n{rendered}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_removes_all_generations() {
        let dir = temp_dir("clear");
        let mut store = CheckpointStore::new(&dir, "sweep").expect("store opens");
        store.save(b"one").expect("save");
        store.save(b"two").expect("save");
        store.clear().expect("clear");
        assert_eq!(store.load().expect("load"), None);
        let _ = fs::remove_dir_all(&dir);
    }
}
