//! Deterministic parallel-map runtime for embarrassingly-parallel
//! campaign sweeps.
//!
//! The figure harnesses sweep thousands of independent campaign points
//! (layer × strike-count, striker-cell counts, per-image fault trials).
//! This crate splits an index range across a scoped worker pool
//! (`std::thread::scope`; the workspace dependency policy forbids rayon)
//! and merges results **in index order**, so the output is bit-identical
//! to the serial path regardless of thread count.
//!
//! # Determinism contract
//!
//! - Work items must be independent: item `i` may depend only on `i` and
//!   on shared read-only state, never on another item's output.
//! - Randomised items take their generator from [`map_seeded`], which
//!   hands item `i` an `StdRng` seeded by [`seed_for`]`(campaign_seed, i)`
//!   — a SplitMix64 mix of the campaign seed and the item index. The
//!   stream an item sees is a pure function of `(campaign_seed, i)`, so
//!   scheduling order and worker count cannot change it.
//! - Results are written back by item index; `DEEPSTRIKE_THREADS=1` and
//!   `DEEPSTRIKE_THREADS=64` produce byte-identical outputs.
//!
//! # Thread count
//!
//! `DEEPSTRIKE_THREADS` overrides the pool size (values `< 1` clamp
//! to 1); the default is `std::thread::available_parallelism()`. Nested
//! calls (a parallel map inside a worker) run serially on the calling
//! worker rather than oversubscribing — the result is identical either
//! way by the contract above.
//!
//! # Tracing
//!
//! When the calling thread has a [`trace`] session installed, each work
//! item records into a private capture buffer on its worker and the logs
//! are re-appended to the caller's session **in index order** after the
//! join — so a pipeline trace is bit-identical at any `DEEPSTRIKE_THREADS`
//! (the serial path emits straight into the caller's buffer, which is the
//! same order).

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

use rand::rngs::StdRng;
use rand::SeedableRng;

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Environment variable overriding the worker-pool size.
pub const THREADS_ENV: &str = "DEEPSTRIKE_THREADS";

/// The worker-pool size: `DEEPSTRIKE_THREADS` if set (clamped to ≥ 1),
/// otherwise the machine's available parallelism.
pub fn thread_count() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(1).max(1),
        Err(_) => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The per-item seed: a SplitMix64-style mix of `(campaign_seed, index)`.
///
/// Adjacent indices and adjacent campaign seeds map to uncorrelated
/// streams, so `seed ^ i`-style collisions (where two campaign points
/// share a stream) cannot occur.
pub fn seed_for(campaign_seed: u64, index: u64) -> u64 {
    mix(mix(campaign_seed) ^ mix(index.wrapping_add(0x5851_F42D_4C95_7F2D)))
}

/// Maps `f` over `0..n` on the worker pool; returns results in index
/// order. `f` must be a pure function of its index (plus shared
/// read-only captures).
pub fn map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = thread_count().min(n.max(1));
    if workers <= 1 || n <= 1 || IN_WORKER.with(Cell::get) {
        return (0..n).map(f).collect();
    }

    // The caller's trace session is thread-local, so workers capture each
    // item's events privately; the logs are appended back in index order
    // below, making the merged trace independent of scheduling.
    let capture_capacity = trace::current_capacity();
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<(T, Option<trace::TraceLog>)>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                s.spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let entry = match capture_capacity {
                            Some(cap) => {
                                let (value, log) = trace::capture(cap, || f(i));
                                (value, Some(log))
                            }
                            None => (f(i), None),
                        };
                        local.push((i, entry));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            for (i, value) in handle.join().expect("par worker panicked") {
                slots[i] = Some(value);
            }
        }
    });
    slots
        .into_iter()
        .map(|v| {
            let (value, log) = v.expect("every index produced");
            if let Some(log) = log {
                trace::append(log);
            }
            value
        })
        .collect()
}

/// Maps `f` over the items of a slice; returns results in item order.
pub fn map_items<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    map(items.len(), |i| f(&items[i]))
}

/// Maps `f` over `0..n`, handing each item its own `StdRng` seeded from
/// `(campaign_seed, index)` via [`seed_for`]. The randomness an item
/// sees is independent of scheduling, so results merge bit-identically
/// at any thread count.
pub fn map_seeded<T, F>(n: usize, campaign_seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut StdRng) -> T + Sync,
{
    map(n, |i| {
        let mut rng = StdRng::seed_from_u64(seed_for(campaign_seed, i as u64));
        f(i, &mut rng)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn results_arrive_in_index_order() {
        let out = map(100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        assert!(map(0, |i| i).is_empty());
        assert_eq!(map(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn map_items_preserves_order() {
        let items = ["a", "bb", "ccc"];
        assert_eq!(map_items(&items, |s| s.len()), vec![1, 2, 3]);
    }

    #[test]
    fn seeded_map_matches_serial_reference() {
        let parallel = map_seeded(64, 42, |i, rng| (i, rng.gen_range(0u32..1000)));
        let serial: Vec<_> = (0..64)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(seed_for(42, i as u64));
                (i as usize, rng.gen_range(0u32..1000))
            })
            .collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn per_item_streams_are_uncorrelated() {
        // A weak mix like `seed ^ i` makes item 1 of campaign 2 collide
        // with item 3 of campaign 0; the mixed seeds must all differ.
        let mut seeds = std::collections::HashSet::new();
        for campaign in 0..50u64 {
            for item in 0..50u64 {
                seeds.insert(seed_for(campaign, item));
            }
        }
        assert_eq!(seeds.len(), 2500);
    }

    #[test]
    fn nested_maps_run_serially_and_match() {
        let nested = map(8, |i| map(8, move |j| i * 8 + j));
        let flat: Vec<Vec<usize>> = (0..8).map(|i| (0..8).map(|j| i * 8 + j).collect()).collect();
        assert_eq!(nested, flat);
    }

    #[test]
    fn traces_merge_in_index_order() {
        // The env var is process-global and owned by tests/par_determinism.rs;
        // here we only check that the parallel path stitches per-item event
        // logs back in index order regardless of scheduling.
        let (out, log) = trace::capture(1 << 12, || {
            map(32, |i| {
                let spin = if i % 5 == 0 { 20_000 } else { 10 };
                let mut acc = i as u64;
                for k in 0..spin {
                    acc = acc.wrapping_mul(31).wrapping_add(k);
                }
                trace::emit(|| trace::Event::TdcSample {
                    index: i as u64,
                    count: (acc % 97) as u8,
                });
                i
            })
        });
        assert_eq!(out, (0..32).collect::<Vec<_>>());
        assert_eq!(log.dropped, 0);
        let indices: Vec<u64> = log
            .events
            .iter()
            .map(|e| match e {
                trace::Event::TdcSample { index, .. } => *index,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(indices, (0..32u64).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_work_still_merges_in_order() {
        let out = map(32, |i| {
            // Vary per-item cost so the dynamic scheduler interleaves.
            let spin = if i % 7 == 0 { 20_000 } else { 10 };
            let mut acc = i as u64;
            for k in 0..spin {
                acc = acc.wrapping_mul(31).wrapping_add(k);
            }
            (i, acc)
        });
        for (i, entry) in out.iter().enumerate() {
            assert_eq!(entry.0, i);
        }
    }
}
