//! Deterministic parallel-map runtime for embarrassingly-parallel
//! campaign sweeps.
//!
//! The figure harnesses sweep thousands of independent campaign points
//! (layer × strike-count, striker-cell counts, per-image fault trials).
//! This crate splits an index range across a scoped worker pool
//! (`std::thread::scope`; the workspace dependency policy forbids rayon)
//! and merges results **in index order**, so the output is bit-identical
//! to the serial path regardless of thread count.
//!
//! # Determinism contract
//!
//! - Work items must be independent: item `i` may depend only on `i` and
//!   on shared read-only state, never on another item's output.
//! - Randomised items take their generator from [`map_seeded`], which
//!   hands item `i` an `StdRng` seeded by [`seed_for`]`(campaign_seed, i)`
//!   — a SplitMix64 mix of the campaign seed and the item index. The
//!   stream an item sees is a pure function of `(campaign_seed, i)`, so
//!   scheduling order and worker count cannot change it.
//! - Results are written back by item index; `DEEPSTRIKE_THREADS=1` and
//!   `DEEPSTRIKE_THREADS=64` produce byte-identical outputs.
//!
//! # Panic isolation
//!
//! A panicking work item no longer poisons the join: every item runs
//! under [`std::panic::catch_unwind`], and failures are *quarantined*
//! instead of killing the worker. [`try_map`] returns a
//! [`SweepOutcome`]: surviving results in index order (`None` at the
//! quarantined slots) plus a deterministic [`Quarantined`] report per
//! failed item (index + panic-payload summary). Because items are pure
//! functions of their index, the quarantine set — and every surviving
//! result — is bit-identical at any `DEEPSTRIKE_THREADS`. The classic
//! [`map`] keeps its all-or-nothing contract by re-panicking (with the
//! quarantined indices) after the whole sweep has drained.
//!
//! # Thread count
//!
//! `DEEPSTRIKE_THREADS` overrides the pool size (values `< 1` clamp
//! to 1); the default is `std::thread::available_parallelism()`. Nested
//! calls (a parallel map inside a worker) run serially on the calling
//! worker rather than oversubscribing — the result is identical either
//! way by the contract above.
//!
//! # Tracing
//!
//! When the calling thread has a [`trace`] session installed, each work
//! item records into a private capture buffer on its worker and the logs
//! are re-appended to the caller's session **in index order** after the
//! join — so a pipeline trace is bit-identical at any `DEEPSTRIKE_THREADS`.
//! A quarantined item's capture buffer is discarded during the unwind and
//! never reaches the merged stream; the merge emits one
//! [`trace::Event::WorkerQuarantined`] per failed index instead, again in
//! index order.

#![deny(clippy::unwrap_used)]

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use rand::rngs::StdRng;
use rand::SeedableRng;

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Environment variable overriding the worker-pool size.
pub const THREADS_ENV: &str = "DEEPSTRIKE_THREADS";

/// The worker-pool size: `DEEPSTRIKE_THREADS` if set (clamped to ≥ 1),
/// otherwise the machine's available parallelism.
pub fn thread_count() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(1).max(1),
        Err(_) => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The per-item seed: a SplitMix64-style mix of `(campaign_seed, index)`.
///
/// Adjacent indices and adjacent campaign seeds map to uncorrelated
/// streams, so `seed ^ i`-style collisions (where two campaign points
/// share a stream) cannot occur.
pub fn seed_for(campaign_seed: u64, index: u64) -> u64 {
    mix(mix(campaign_seed) ^ mix(index.wrapping_add(0x5851_F42D_4C95_7F2D)))
}

/// One quarantined work item: which index panicked and a summary of the
/// panic payload. The report is a pure function of the item, so it is
/// identical at any `DEEPSTRIKE_THREADS`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantined {
    /// The work-item index that panicked.
    pub index: usize,
    /// The panic payload rendered to text (`&str`/`String` payloads
    /// verbatim, anything else a fixed placeholder).
    pub message: String,
}

/// Typed partial results of a sweep: surviving results in index order
/// (`None` at quarantined slots) plus the quarantine report, sorted by
/// index.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome<T> {
    /// Per-index results; `None` exactly at the quarantined indices.
    pub results: Vec<Option<T>>,
    /// One entry per panicked item, in index order.
    pub quarantine: Vec<Quarantined>,
}

impl<T> SweepOutcome<T> {
    /// True when no item was quarantined.
    pub fn is_complete(&self) -> bool {
        self.quarantine.is_empty()
    }

    /// Number of items that completed.
    pub fn completed(&self) -> usize {
        self.results.len() - self.quarantine.len()
    }

    /// Unwraps into the plain result vector, panicking with the
    /// quarantined indices if any item failed (the [`map`] contract).
    pub fn into_complete(self) -> Vec<T> {
        if let Some(first) = self.quarantine.first() {
            let indices: Vec<usize> = self.quarantine.iter().map(|q| q.index).collect();
            panic!(
                "{} of {} sweep items panicked (indices {indices:?}); first: item {} — {}",
                self.quarantine.len(),
                self.results.len(),
                first.index,
                first.message
            );
        }
        // Invariant: with an empty quarantine every slot is `Some` (the
        // engine records exactly one of result/quarantine per index).
        self.results
            .into_iter()
            .map(|v| v.expect("no quarantine entry implies every slot filled"))
            .collect()
    }
}

/// Renders a caught panic payload as text. `&str` and `String` payloads
/// (everything `panic!` produces) pass through verbatim; exotic payloads
/// get a fixed placeholder so the report stays deterministic.
fn payload_summary(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Per-item engine result: the value plus its captured trace, or the
/// panic summary.
type ItemSlot<T> = Result<(T, Option<trace::TraceLog>), String>;

fn run_item<T, F>(f: &F, i: usize, capture_capacity: Option<usize>) -> ItemSlot<T>
where
    F: Fn(usize) -> T,
{
    // If `f` panics inside `trace::capture`, the capture session's Drop
    // runs during the unwind and *discards* the partially-filled buffer —
    // a quarantined item can never leak events into the merged stream.
    catch_unwind(AssertUnwindSafe(|| match capture_capacity {
        Some(cap) => {
            let (value, log) = trace::capture(cap, || f(i));
            (value, Some(log))
        }
        None => (f(i), None),
    }))
    .map_err(|payload| payload_summary(payload.as_ref()))
}

/// Merges per-index slots into a [`SweepOutcome`], appending surviving
/// trace logs and emitting [`trace::Event::WorkerQuarantined`] for failed
/// indices — all in index order, so the merged stream is thread-count
/// invariant.
fn merge_slots<T>(slots: Vec<Option<ItemSlot<T>>>) -> SweepOutcome<T> {
    let mut results = Vec::with_capacity(slots.len());
    let mut quarantine = Vec::new();
    for (i, slot) in slots.into_iter().enumerate() {
        // Invariant: the dispatch loop hands out each index exactly once
        // and every worker stores a slot for each index it took.
        let slot = slot.expect("every dispatched index produced a slot");
        match slot {
            Ok((value, log)) => {
                if let Some(log) = log {
                    trace::append(log);
                }
                results.push(Some(value));
            }
            Err(message) => {
                trace::emit(|| trace::Event::WorkerQuarantined { index: i as u64 });
                quarantine.push(Quarantined { index: i, message });
                results.push(None);
            }
        }
    }
    SweepOutcome { results, quarantine }
}

/// Maps `f` over `0..n` with per-item panic isolation; returns a
/// [`SweepOutcome`] with surviving results in index order and a
/// deterministic quarantine report for the items that panicked.
pub fn try_map<T, F>(n: usize, f: F) -> SweepOutcome<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = thread_count().min(n.max(1));
    let capture_capacity = trace::current_capacity();
    if workers <= 1 || n <= 1 || IN_WORKER.with(Cell::get) {
        // Serial path: same engine, same capture-per-item semantics, so
        // the outcome (and the merged trace) is identical to the
        // parallel path by construction.
        let slots = (0..n).map(|i| Some(run_item(&f, i, capture_capacity))).collect();
        return merge_slots(slots);
    }

    // The caller's trace session is thread-local, so workers capture each
    // item's events privately; the logs are appended back in index order
    // by `merge_slots`, making the merged trace independent of
    // scheduling.
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<ItemSlot<T>>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                s.spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        // A panicking item is caught here, so the worker
                        // survives and keeps draining the queue.
                        local.push((i, run_item(f, i, capture_capacity)));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            // Invariant: workers catch every item panic above; a join
            // error would mean the runtime itself panicked.
            for (i, slot) in handle.join().expect("par worker caught all item panics") {
                slots[i] = Some(slot);
            }
        }
    });
    merge_slots(slots)
}

/// Maps `f` over `0..n` on the worker pool; returns results in index
/// order. `f` must be a pure function of its index (plus shared
/// read-only captures).
///
/// # Panics
///
/// If any item panics, the sweep still drains completely (no work item
/// is abandoned mid-flight), then this re-panics listing the quarantined
/// indices — use [`try_map`] to receive partial results instead.
pub fn map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    try_map(n, f).into_complete()
}

/// Maps `f` over the items of a slice; returns results in item order.
pub fn map_items<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    map(items.len(), |i| f(&items[i]))
}

/// Panic-isolating variant of [`map_items`]: see [`try_map`].
pub fn try_map_items<I, T, F>(items: &[I], f: F) -> SweepOutcome<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    try_map(items.len(), |i| f(&items[i]))
}

/// Maps `f` over `0..n`, handing each item its own `StdRng` seeded from
/// `(campaign_seed, index)` via [`seed_for`]. The randomness an item
/// sees is independent of scheduling, so results merge bit-identically
/// at any thread count.
pub fn map_seeded<T, F>(n: usize, campaign_seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut StdRng) -> T + Sync,
{
    map(n, |i| {
        let mut rng = StdRng::seed_from_u64(seed_for(campaign_seed, i as u64));
        f(i, &mut rng)
    })
}

/// Panic-isolating variant of [`map_seeded`]: see [`try_map`].
pub fn try_map_seeded<T, F>(n: usize, campaign_seed: u64, f: F) -> SweepOutcome<T>
where
    T: Send,
    F: Fn(usize, &mut StdRng) -> T + Sync,
{
    try_map(n, |i| {
        let mut rng = StdRng::seed_from_u64(seed_for(campaign_seed, i as u64));
        f(i, &mut rng)
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Runs `f` with the default panic hook replaced by a no-op, so
    /// intentionally-panicking work items don't spray backtraces into the
    /// test output. The hook is global; tests touching it funnel through
    /// here under one lock.
    fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
        static HOOK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = f();
        std::panic::set_hook(hook);
        result
    }

    #[test]
    fn results_arrive_in_index_order() {
        let out = map(100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        assert!(map(0, |i| i).is_empty());
        assert_eq!(map(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn map_items_preserves_order() {
        let items = ["a", "bb", "ccc"];
        assert_eq!(map_items(&items, |s| s.len()), vec![1, 2, 3]);
    }

    #[test]
    fn seeded_map_matches_serial_reference() {
        let parallel = map_seeded(64, 42, |i, rng| (i, rng.gen_range(0u32..1000)));
        let serial: Vec<_> = (0..64)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(seed_for(42, i as u64));
                (i as usize, rng.gen_range(0u32..1000))
            })
            .collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn per_item_streams_are_uncorrelated() {
        // A weak mix like `seed ^ i` makes item 1 of campaign 2 collide
        // with item 3 of campaign 0; the mixed seeds must all differ.
        let mut seeds = std::collections::HashSet::new();
        for campaign in 0..50u64 {
            for item in 0..50u64 {
                seeds.insert(seed_for(campaign, item));
            }
        }
        assert_eq!(seeds.len(), 2500);
    }

    #[test]
    fn nested_maps_run_serially_and_match() {
        let nested = map(8, |i| map(8, move |j| i * 8 + j));
        let flat: Vec<Vec<usize>> = (0..8).map(|i| (0..8).map(|j| i * 8 + j).collect()).collect();
        assert_eq!(nested, flat);
    }

    #[test]
    fn traces_merge_in_index_order() {
        // The env var is process-global and owned by tests/par_determinism.rs;
        // here we only check that the parallel path stitches per-item event
        // logs back in index order regardless of scheduling.
        let (out, log) = trace::capture(1 << 12, || {
            map(32, |i| {
                let spin = if i % 5 == 0 { 20_000 } else { 10 };
                let mut acc = i as u64;
                for k in 0..spin {
                    acc = acc.wrapping_mul(31).wrapping_add(k);
                }
                trace::emit(|| trace::Event::TdcSample {
                    index: i as u64,
                    count: (acc % 97) as u8,
                });
                i
            })
        });
        assert_eq!(out, (0..32).collect::<Vec<_>>());
        assert_eq!(log.dropped, 0);
        let indices: Vec<u64> = log
            .events
            .iter()
            .map(|e| match e {
                trace::Event::TdcSample { index, .. } => *index,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(indices, (0..32u64).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_work_still_merges_in_order() {
        let out = map(32, |i| {
            // Vary per-item cost so the dynamic scheduler interleaves.
            let spin = if i % 7 == 0 { 20_000 } else { 10 };
            let mut acc = i as u64;
            for k in 0..spin {
                acc = acc.wrapping_mul(31).wrapping_add(k);
            }
            (i, acc)
        });
        for (i, entry) in out.iter().enumerate() {
            assert_eq!(entry.0, i);
        }
    }

    #[test]
    fn poison_items_are_quarantined_and_the_sweep_completes() {
        let outcome = with_quiet_panics(|| {
            try_map(40, |i| {
                if i == 7 || i == 23 {
                    panic!("poison point {i}");
                }
                i * 2
            })
        });
        assert_eq!(outcome.results.len(), 40);
        assert_eq!(outcome.completed(), 38);
        assert!(!outcome.is_complete());
        assert_eq!(
            outcome.quarantine,
            vec![
                Quarantined { index: 7, message: "poison point 7".into() },
                Quarantined { index: 23, message: "poison point 23".into() },
            ]
        );
        for (i, slot) in outcome.results.iter().enumerate() {
            if i == 7 || i == 23 {
                assert_eq!(*slot, None);
            } else {
                assert_eq!(*slot, Some(i * 2), "survivor {i} must match the clean value");
            }
        }
    }

    #[test]
    fn map_repanics_with_the_quarantined_indices() {
        let caught = with_quiet_panics(|| {
            catch_unwind(AssertUnwindSafe(|| {
                map(10, |i| {
                    if i == 4 {
                        panic!("bad point");
                    }
                    i
                })
            }))
        });
        let payload = caught.expect_err("map must re-panic");
        let message = payload_summary(payload.as_ref());
        assert!(message.contains("[4]") && message.contains("bad point"), "{message}");
    }

    #[test]
    fn quarantined_items_leak_no_trace_events() {
        // The poison item emits an event *before* panicking; the merged
        // stream must contain the survivors' events (in index order) plus
        // one WorkerQuarantined marker — never the poison item's payload.
        let (outcome, log) = with_quiet_panics(|| {
            trace::capture(1 << 12, || {
                try_map(8, |i| {
                    trace::emit(|| trace::Event::TdcSample { index: i as u64, count: 1 });
                    if i == 3 {
                        panic!("poison after emitting");
                    }
                    i
                })
            })
        });
        assert_eq!(outcome.quarantine.len(), 1);
        assert_eq!(outcome.quarantine[0].index, 3);
        let rendered = log.to_jsonl();
        assert!(!rendered.contains(r#""index":3,"count""#), "poison trace leaked:\n{rendered}");
        let survivors: Vec<&trace::Event> =
            log.events.iter().filter(|e| matches!(e, trace::Event::TdcSample { .. })).collect();
        let markers: Vec<&trace::Event> = log
            .events
            .iter()
            .filter(|e| matches!(e, trace::Event::WorkerQuarantined { .. }))
            .collect();
        assert_eq!(survivors.len() + markers.len(), log.events.len());
        assert_eq!(markers, vec![&trace::Event::WorkerQuarantined { index: 3 }]);
        let survivor_indices: Vec<u64> = survivors
            .iter()
            .map(|e| match e {
                trace::Event::TdcSample { index, .. } => *index,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(survivor_indices, vec![0, 1, 2, 4, 5, 6, 7]);
    }

    #[test]
    fn serial_and_nested_quarantine_match_the_parallel_outcome() {
        // The nested call runs on a worker (serial engine); its outcome
        // must equal the top-level parallel one.
        let outer = with_quiet_panics(|| {
            try_map(2, |_| {
                let inner = try_map(10, |j| {
                    if j == 5 {
                        panic!("inner poison");
                    }
                    j
                });
                (inner.quarantine.clone(), inner.completed())
            })
        });
        let flat = outer.into_complete();
        for (quarantine, completed) in flat {
            assert_eq!(completed, 9);
            assert_eq!(quarantine, vec![Quarantined { index: 5, message: "inner poison".into() }]);
        }
    }
}
