//! Fig. 6b — DSP duplication / random fault rates vs striker cell count.
//!
//! The paper feeds 10,000 random `(A + D) × B` operations through DSP
//! slices, firing the striker for one cycle per op, and sweeps the number
//! of striker cells. Expected shape: no faults below an onset cell count;
//! duplication faults rise first, then hand over to random faults as the
//! droop deepens; the total fault rate reaches ≈ 100% by 24,000 cells.

use accel::dsp::DspOp;
use accel::fault::FaultModel;
use accel::pe::PeArray;
use bench::{emit_series, HARNESS_SEED};
use deepstrike::striker::StrikerBank;
use pdn::rlc::LumpedPdn;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ops per sweep point (the paper's 10,000).
const OPS: usize = 10_000;

/// Computes the worst victim-rail voltage during a one-cycle (10 ns)
/// strike from `cells` striker cells, via the transient PDN model with
/// the DSP test circuit drawing its own current.
fn strike_voltage(cells: usize) -> f64 {
    let mut pdn = LumpedPdn::zynq_like();
    let test_circuit_a = 0.35; // the DSP harness + control logic
    pdn.settle(test_circuit_a);
    if cells == 0 {
        return pdn.voltage();
    }
    let mut bank = StrikerBank::new(cells).expect("cells > 0");
    bank.set_enabled(true);
    let dt = 1e-9;
    let mut v_min = pdn.voltage();
    for _ in 0..10 {
        let v = pdn.voltage();
        v_min = v_min.min(pdn.step(test_circuit_a + bank.current_a(v), dt));
    }
    v_min
}

fn main() {
    let model = FaultModel::paper();

    // The 10,000-op test stream depends only on `HARNESS_SEED`, so it is
    // generated once and shared by every sweep point instead of being
    // re-drawn 15 times inside the closure.
    let mut op_rng = StdRng::seed_from_u64(HARNESS_SEED);
    let ops: Vec<DspOp> = (0..OPS)
        .map(|_| DspOp {
            a: op_rng.gen_range(-128..128),
            b: op_rng.gen_range(-128..128),
            d: op_rng.gen_range(-128..128),
        })
        .collect();

    // Sweep points are independently seeded (`HARNESS_SEED ^ cells`), so
    // they fan out on the worker pool and merge back in cell order. The
    // crash-safe supervisor makes the sweep resumable when
    // `DEEPSTRIKE_CHECKPOINT_DIR` is set (DESIGN.md §10).
    let sweep: Vec<usize> = (0..=28_000usize).step_by(2_000).collect();
    let results = bench::supervisor::supervised_sweep("fig6b", &sweep, |&cells| {
        let v = strike_voltage(cells);
        let mut rng = StdRng::seed_from_u64(HARNESS_SEED ^ cells as u64);
        let mut pe = PeArray::new(8, model);
        let tally = pe.characterize(ops.iter().copied(), v, &mut rng);
        (v, tally.duplicate_rate(), tally.random_rate(), tally.total_fault_rate())
    });

    let mut rows = Vec::new();
    let mut total_at_24k = 0.0f64;
    let mut dup_peak = 0.0f64;
    let mut onset_cells = None;
    for (&cells, result) in sweep.iter().zip(&results) {
        let (v, dup, rnd, total) = result.expect("sweep point panicked; see supervisor report");
        if total > 0.005 && onset_cells.is_none() {
            onset_cells = Some(cells);
        }
        dup_peak = dup_peak.max(dup);
        if cells == 24_000 {
            total_at_24k = total;
        }
        rows.push(format!("{cells},{v:.4},{dup:.4},{rnd:.4},{total:.4}"));
    }

    emit_series(
        "Fig 6b: DSP fault rates vs striker cells (10,000 random ops each)",
        "striker_cells,strike_min_voltage,duplication_rate,random_rate,total_rate",
        rows,
    );

    let onset = onset_cells.expect("fault onset must occur within the sweep");
    println!("# onset at {onset} cells, duplication peak {dup_peak:.3}, total at 24k cells {total_at_24k:.3}");
    assert!(onset >= 4_000, "faults must not start at trivial cell counts ({onset})");
    assert!(dup_peak > 0.15, "duplication phase must be visible ({dup_peak:.3})");
    // Paper: "nearly 100% with 24,000 power strike cells". Our curve
    // crosses 88% at 24k and saturates at 28k — same knee, slightly
    // right-shifted (see EXPERIMENTS.md).
    assert!(total_at_24k > 0.85, "total rate at 24k cells must be ≈ 100% ({total_at_24k:.3})");
    println!("# shape-check: PASS (onset, duplication hand-over, ≈100% by 24-28k)");
}
