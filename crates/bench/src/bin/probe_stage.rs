//! Diagnostic: per-stage fault sensitivity of the trained victim.
//! Applies a fixed random-fault rate to exactly one stage and reports the
//! accuracy — isolates network sensitivity from the strike schedule.

use accel::executor::{infer_with_faults, MacHook};
use accel::fault::MacFault;
use bench::{test_set, trained_lenet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct OneStage {
    stage: usize,
    random: f64,
    rng: StdRng,
}

impl MacHook for OneStage {
    fn fault(&mut self, stage: usize, _op: u64, _w: i8, _x: i8) -> MacFault {
        if stage == self.stage && self.rng.gen::<f64>() < self.random {
            MacFault::Random
        } else {
            MacFault::None
        }
    }
}

fn main() {
    let (q, clean) = trained_lenet();
    let test = test_set();
    println!("clean {:.1}%", clean * 100.0);
    for stage in [0usize, 2, 3, 4] {
        for rate in [0.001, 0.01, 0.05] {
            let mut rng = StdRng::seed_from_u64(1);
            let mut correct = 0usize;
            let mut faults = 0u64;
            let n = 200usize;
            for (i, (x, y)) in test.iter().take(n).enumerate() {
                let mut hook =
                    OneStage { stage, random: rate, rng: StdRng::seed_from_u64(100 + i as u64) };
                let (logits, tally) = infer_with_faults(&q, x, &mut hook, &mut rng);
                faults += tally.random;
                let p = logits
                    .iter()
                    .enumerate()
                    .max_by_key(|(k, &v)| (v, std::cmp::Reverse(*k)))
                    .map(|(k, _)| k)
                    .unwrap();
                if p == y {
                    correct += 1;
                }
            }
            println!(
                "stage {stage} rate {rate}: acc {:.1}% (faults/img {:.0})",
                100.0 * correct as f64 / n as f64,
                faults as f64 / n as f64
            );
        }
    }
}
