//! §V future work — "more than three tenants on the FPGA".
//!
//! Adds a third, benign bystander tenant whose bursty load shares the PDN
//! with victim and attacker, and compares: does the attack still trigger
//! and fault, and how much noisier is the TDC profile?

use accel::fault::FaultModel;
use accel::schedule::AccelConfig;
use bench::{emit_series, test_set, trained_lenet, HARNESS_SEED};
use deepstrike::attack::{evaluate_attack, plan_attack, profile_from_traces};
use deepstrike::cosim::{Bystander, CloudFpga, CosimConfig};
use deepstrike::snapshot::SnapshotEngine;
use dnn::lenet::STAGE_NAMES;

const STRIKER_CELLS: usize = 8_000;
const EVAL_IMAGES: usize = 200;

fn run_scenario(bystander: Option<Bystander>) -> (f64, f64, usize) {
    let (q, _) = trained_lenet();
    let test = test_set();
    let mut fpga =
        CloudFpga::new(&q, &AccelConfig::default(), STRIKER_CELLS, CosimConfig::default())
            .expect("platform assembles");
    if let Some(b) = bystander {
        fpga.add_bystander(b);
    }
    fpga.settle(200);
    // Two profiling traces: one naive run plus the engine's reference
    // pass (bitwise identical to an unarmed run, DESIGN.md §11); the
    // strike run forks the reference timeline.
    let first_trace = fpga.run_inference().tdc_trace;
    let engine = SnapshotEngine::capture(&fpga).expect("reference pass captures");
    let traces = [first_trace, engine.reference().tdc_trace.clone()];
    let profile = profile_from_traces(&traces, &STAGE_NAMES).expect("profiling still succeeds");
    let scheme = plan_attack(&profile, "conv1", 1_000).expect("plan compiles");
    let run = engine.run_guided(&scheme).expect("scheme fits");
    let outcome = evaluate_attack(
        &q,
        fpga.schedule(),
        &run,
        test.iter().take(EVAL_IMAGES),
        FaultModel::paper(),
        HARNESS_SEED,
    );
    (outcome.clean_accuracy, outcome.attacked_accuracy, run.strike_cycles.len())
}

fn main() {
    // Warm the trained-LeNet cache once so the parallel scenarios below
    // both load the same cached victim instead of racing to train it.
    let _ = trained_lenet();
    // Checkpointed through the crash-safe supervisor when
    // `DEEPSTRIKE_CHECKPOINT_DIR` is set (DESIGN.md §10).
    let scenarios = [None, Some(Bystander { pos: (0.5, 0.15), amps: 0.1, period_cycles: 32 })];
    let results = bench::supervisor::supervised_sweep("multi_tenant", &scenarios, |s| {
        let (clean, attacked, strikes) = run_scenario(*s);
        (clean, attacked, strikes as u64)
    });
    let scenario = |i: usize| -> (f64, f64, u64) {
        results[i].expect("tenant scenario panicked; see supervisor report")
    };
    let (two, three) = (scenario(0), scenario(1));
    emit_series(
        "Multi-tenant extension: attack effectiveness with 2 vs 3 tenants",
        "tenants,clean_pct,attacked_pct,drop_pts,strikes_fired",
        [
            format!(
                "2,{:.2},{:.2},{:.2},{}",
                two.0 * 100.0,
                two.1 * 100.0,
                (two.0 - two.1) * 100.0,
                two.2
            ),
            format!(
                "3,{:.2},{:.2},{:.2},{}",
                three.0 * 100.0,
                three.1 * 100.0,
                (three.0 - three.1) * 100.0,
                three.2
            ),
        ],
    );
    assert!(three.2 > 0, "attack must still fire with a third tenant");
    assert!(
        (three.0 - three.1) * 100.0 >= 1.0,
        "attack must still damage accuracy with a third tenant"
    );
    println!("# shape-check: PASS (guidance survives a third tenant's noise)");
}
