//! §V future work — "more DNN architectures".
//!
//! Runs the guided attack against three victims (LeNet-5, an MLP, and a
//! deeper CNN) and reports per-architecture sensitivity of the best
//! guided layer attack.

use accel::fault::FaultModel;
use accel::schedule::AccelConfig;
use bench::{emit_series, test_set, HARNESS_SEED};
use deepstrike::attack::{evaluate_attack, plan_attack, profile_from_traces};
use deepstrike::cosim::{CloudFpga, CosimConfig};
use deepstrike::snapshot::SnapshotEngine;
use dnn::digits::{Dataset, RenderParams};
use dnn::fixed::QFormat;
use dnn::network::Sequential;
use dnn::quant::QuantizedNetwork;
use dnn::train::{train, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const STRIKER_CELLS: usize = 8_000;
const EVAL_IMAGES: usize = 250;

fn trained(mut net: Sequential, seed: u64) -> QuantizedNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::generate(2_000, &RenderParams::challenging(), &mut rng);
    let eval = ds.split_off(200);
    train(
        &mut net,
        &ds,
        Some(&eval),
        &TrainConfig { epochs: 4, ..TrainConfig::default() },
        &mut rng,
    );
    QuantizedNetwork::from_sequential(&net, &[1, 28, 28], QFormat::paper()).expect("quantises")
}

fn attack(q: &QuantizedNetwork, layers: &[&str], target: &str) -> (f64, f64) {
    let test = test_set();
    let mut fpga =
        CloudFpga::new(q, &AccelConfig::default(), STRIKER_CELLS, CosimConfig::default())
            .expect("platform assembles");
    fpga.settle(200);
    // The engine's reference pass doubles as the single profiling trace
    // (bitwise identical to an unarmed run, DESIGN.md §11); the strike run
    // then forks that same timeline instead of replaying from scratch.
    let engine = SnapshotEngine::capture(&fpga).expect("reference pass captures");
    let profile =
        profile_from_traces(&[engine.reference().tdc_trace.clone()], layers).expect("profiling");
    let (_, len) = profile.window(target).expect("target profiled");
    let strikes = ((len / 2) as u32).clamp(1, 4_500);
    let scheme = plan_attack(&profile, target, strikes).expect("plan");
    let run = engine.run_guided(&scheme).expect("fits");
    let outcome = evaluate_attack(
        q,
        fpga.schedule(),
        &run,
        test.iter().take(EVAL_IMAGES),
        FaultModel::paper(),
        HARNESS_SEED,
    );
    (outcome.clean_accuracy, outcome.attacked_accuracy)
}

fn main() {
    // Networks are built and trained serially from one shared rng (the
    // weight streams must not depend on scheduling); the per-architecture
    // attack campaigns are independent and fan out on the worker pool.
    let mut rng = StdRng::seed_from_u64(HARNESS_SEED);
    let lenet = trained(dnn::lenet::lenet5(&mut rng), HARNESS_SEED);
    let mlp = trained(dnn::zoo::mlp(&mut rng), HARNESS_SEED + 1);
    let deep = trained(dnn::zoo::deep_cnn(&mut rng), HARNESS_SEED + 2);

    let jobs: [(&str, &QuantizedNetwork, &[&str], &str); 3] = [
        ("lenet5", &lenet, &["conv1", "pool1", "conv2", "fc1", "fc2"], "conv1"),
        ("mlp", &mlp, &["fc1", "fc2", "fc3"], "fc1"),
        ("deep_cnn", &deep, &["conv1", "pool1", "conv2", "pool2", "conv3", "fc1", "fc2"], "conv1"),
    ];
    // Checkpointed through the crash-safe supervisor when
    // `DEEPSTRIKE_CHECKPOINT_DIR` is set (DESIGN.md §10).
    let results: Vec<(f64, f64)> =
        bench::supervisor::supervised_sweep("arch_sweep", &jobs, |&(_, q, layers, target)| {
            attack(q, layers, target)
        })
        .into_iter()
        .map(|r| r.expect("architecture campaign panicked; see supervisor report"))
        .collect();
    emit_series(
        "Architecture sweep: guided attack on the first compute layer",
        "architecture,clean_pct,attacked_pct,drop_pts",
        jobs.iter().zip(&results).map(|(&(name, ..), (c, a))| {
            format!("{name},{:.2},{:.2},{:.2}", c * 100.0, a * 100.0, (c - a) * 100.0)
        }),
    );
    // Conv-front architectures must lose accuracy; the all-dense MLP's
    // serial accumulations absorb duplication faults (paper §IV-A), so it
    // is the most resilient of the three.
    let lenet_drop = (results[0].0 - results[0].1) * 100.0;
    let mlp_drop = (results[1].0 - results[1].1) * 100.0;
    assert!(lenet_drop >= 1.5, "LeNet must be damaged ({lenet_drop:.2})");
    assert!(
        mlp_drop < lenet_drop,
        "all-dense MLP ({mlp_drop:.2}) must resist better than LeNet ({lenet_drop:.2})"
    );
    println!("# shape-check: PASS (conv victims vulnerable, dense victim resilient)");
}
