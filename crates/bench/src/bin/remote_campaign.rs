//! Remote-campaign link-fault sweep: how much channel degradation the
//! remotely-guided attack tolerates before its guidance decays.
//!
//! For each (loss+corruption rate, link seed) point the full campaign —
//! profile → plan → upload → arm → strike → evaluate — runs through the
//! reliable transport over a seeded stochastic link, resuming after every
//! outage-induced interrupt. The table reports the transport's work
//! (retransmissions, replayed responses, interrupts), the final guidance
//! level, and whether the remotely-chosen scheme and accuracy drop match
//! the local (direct-drive) reference at the same campaign seed.
//!
//! Expected shape: through 10% combined loss+corruption the remote column
//! equals the local reference bit-for-bit — retries pay the cost, not the
//! attack — while the transport counters climb with the fault rate.

use accel::fault::FaultModel;
use bench::golden::{accel_config, cosim_config, golden_images, tiny_dense_victim, GOLDEN_SEED};
use bench::supervisor::SliceCodec;
use ckpt::wire;
use std::sync::Arc;

use deepstrike::attack::{evaluate_attack, plan_attack, profile_from_traces};
use deepstrike::cosim::CloudFpga;
use deepstrike::remote::{RemoteCampaign, RemoteConfig, SimHost};
use deepstrike::signal_ram::AttackScheme;
use deepstrike::snapshot::RunMemo;
use deepstrike::DeepStrikeError;
use uart::link::{Endpoint, FaultConfig};
use uart::transport::{TransportClient, TransportConfig, TransportShell};

/// Combined loss+corruption rates to sweep (split evenly between the two).
const FAULT_RATES: &[f64] = &[0.0, 0.04, 0.10, 0.16];

/// Link seeds per rate.
const LINK_SEEDS: &[u64] = &[1, 2, 3];

/// Interrupt budget before a point is declared not converged.
const MAX_RESUMES: u32 = 200;

fn platform() -> CloudFpga {
    let q = tiny_dense_victim();
    let mut fpga =
        CloudFpga::new(&q, &accel_config(), 16_000, cosim_config()).expect("platform assembles");
    fpga.settle(30);
    fpga
}

fn campaign_config() -> RemoteConfig {
    let mut config = RemoteConfig::new(&["fc1", "fc2"], "fc1", 6);
    config.read_chunk = 32;
    config.eval_seed = GOLDEN_SEED;
    config
}

/// One sweep point's result, in the exact shape the report needs — the
/// campaign itself (platform, link, transport) is reconstructed inside the
/// sweep closure, so a checkpointed row replays identically on resume.
#[derive(Clone)]
struct PointRow {
    converged: bool,
    resumes: u32,
    retx: u64,
    replays: u64,
    guidance: String,
    matched: bool,
    drop_pts: f64,
}

impl SliceCodec for PointRow {
    fn encode(&self, out: &mut Vec<u8>) {
        wire::put_bool(out, self.converged);
        wire::put_u32(out, self.resumes);
        wire::put_u64(out, self.retx);
        wire::put_u64(out, self.replays);
        wire::put_bytes(out, self.guidance.as_bytes());
        wire::put_bool(out, self.matched);
        wire::put_f64(out, self.drop_pts);
    }
    fn decode(r: &mut wire::Reader<'_>) -> Option<Self> {
        Some(PointRow {
            converged: r.take_bool()?,
            resumes: r.take_u32()?,
            retx: r.take_u64()?,
            replays: r.take_u64()?,
            guidance: String::from_utf8(r.take_bytes()?.to_vec()).ok()?,
            matched: r.take_bool()?,
            drop_pts: r.take_f64()?,
        })
    }
}

fn main() {
    let q = tiny_dense_victim();
    let config = campaign_config();

    // Every sweep point rebuilds an identical platform and replays the
    // same campaign, so the underlying simulations are shared through one
    // run memo: the local reference below primes it, and each point's
    // host serves its profile and strike inferences from the cache
    // (bit-identical to running them, see `snapshot::RunMemo`).
    let memo = Arc::new(RunMemo::new());

    // Local reference: the direct driver on an identical platform.
    let mut local = platform();
    let traces: Vec<Vec<u8>> =
        (0..config.profile_runs.max(1)).map(|_| memo.run_inference(&mut local).tdc_trace).collect();
    let profile = profile_from_traces(&traces, &["fc1", "fc2"]).expect("local profile");
    let local_scheme: AttackScheme = plan_attack(&profile, "fc1", 6).expect("local plan");
    local.scheduler_mut().load_scheme(&local_scheme).expect("loads");
    local.scheduler_mut().arm(true).expect("arms");
    let run = memo.run_inference(&mut local);
    let local_outcome = evaluate_attack(
        &q,
        local.schedule(),
        &run,
        golden_images(6).iter().map(|(t, y)| (t, *y)),
        FaultModel::paper(),
        config.eval_seed,
    );
    println!(
        "# local reference: scheme {:?}, accuracy drop {:.2} pts",
        local_scheme,
        local_outcome.accuracy_drop()
    );
    println!("# rate seed resumes retx replays guidance scheme_match drop_pts");

    // Each (rate, seed) point is an independent campaign; the crash-safe
    // supervisor checkpoints completed rows when
    // `DEEPSTRIKE_CHECKPOINT_DIR` is set (DESIGN.md §10), and all output
    // is printed after the sweep, so a resumed run's stdout is
    // byte-identical to an uninterrupted one.
    let mut points: Vec<(f64, u64)> = Vec::new();
    for &rate in FAULT_RATES {
        for &seed in LINK_SEEDS {
            points.push((rate, seed));
        }
    }
    let rows: Vec<PointRow> =
        bench::supervisor::supervised_sweep("remote_campaign", &points, |&(rate, seed)| {
            let fault = FaultConfig {
                loss: rate / 2.0,
                corrupt: rate / 2.0,
                burst_len: 16.0,
                max_jitter: 2,
                disconnects: vec![(40, 30)],
            };
            let (a, b) = Endpoint::faulty_pair(fault, seed);
            let mut link = TransportClient::with_config(
                a,
                TransportConfig {
                    pump_budget: 30,
                    max_retries: 12,
                    backoff_cap: 480,
                    chunk_len: 12,
                },
            );
            let mut host = SimHost::new(
                platform(),
                TransportShell::new(b),
                q.clone(),
                golden_images(6),
                FaultModel::paper(),
            )
            .with_run_memo(Arc::clone(&memo));
            let mut campaign = RemoteCampaign::new(campaign_config());
            let mut resumes = 0u32;
            let outcome = loop {
                match campaign.run(&mut link, &mut host) {
                    Ok(o) => break Some(o),
                    Err(DeepStrikeError::Interrupted { .. }) => {
                        resumes += 1;
                        if resumes > MAX_RESUMES {
                            break None;
                        }
                    }
                    Err(e) => panic!("sweep point (rate {rate}, seed {seed}) failed: {e}"),
                }
            };
            let (retx, replays) = (link.stats().retransmissions, host.shell().replayed());
            match outcome {
                Some(o) => PointRow {
                    converged: true,
                    resumes,
                    retx,
                    replays,
                    guidance: o.guidance.name().to_string(),
                    matched: o.scheme == local_scheme && o.outcome == local_outcome,
                    drop_pts: o.outcome.accuracy_drop(),
                },
                None => PointRow {
                    converged: false,
                    resumes,
                    retx,
                    replays,
                    guidance: "no_convergence".to_string(),
                    matched: false,
                    drop_pts: f64::NAN,
                },
            }
        })
        .into_iter()
        .map(|r| r.expect("sweep point panicked; see supervisor report"))
        .collect();

    let mut all_converged = true;
    let mut all_matched_at_10pct = true;
    let mut retx_per_rate: Vec<u64> = vec![0; FAULT_RATES.len()];
    for (&(rate, seed), row) in points.iter().zip(&rows) {
        let rate_idx = FAULT_RATES.iter().position(|&r| r == rate).expect("rate is in FAULT_RATES");
        retx_per_rate[rate_idx] += row.retx;
        if row.converged {
            if rate <= 0.10 && !row.matched {
                all_matched_at_10pct = false;
            }
            println!(
                "{rate:.2} {seed} {resumes} {retx} {replays} {guidance} {matched} {drop:.2}",
                resumes = row.resumes,
                retx = row.retx,
                replays = row.replays,
                guidance = row.guidance,
                matched = row.matched,
                drop = row.drop_pts,
            );
        } else {
            all_converged = false;
            println!(
                "{rate:.2} {seed} {resumes} - - no_convergence false -",
                resumes = row.resumes
            );
        }
    }

    // The paper-shaped claims: every point converges, guidance through
    // 10% combined faults is bit-identical to the local driver, and the
    // transport (not the attack) absorbs the degradation.
    let retx_climbs = retx_per_rate.windows(2).all(|w| w[0] <= w[1]);
    let pass = all_converged && all_matched_at_10pct && retx_climbs;
    println!(
        "# shape-check: {} (converged: {all_converged}, local-match ≤10%: \
         {all_matched_at_10pct}, retransmissions climb with fault rate: {retx_climbs})",
        if pass { "PASS" } else { "FAIL" }
    );
}
