//! §III-C claim — the latch-based striker passes DRC; a ring oscillator
//! does not.

use bench::emit_series;
use deepstrike::striker::StrikerBank;
use deepstrike::tdc::{TdcConfig, TdcSensor};
use fpga_fabric::drc::{check, Rule, Severity};
use fpga_fabric::netlist::Netlist;

fn ring_oscillator(stages: usize) -> Netlist {
    let mut n = Netlist::new("ring_oscillator");
    let cells: Vec<_> = (0..stages).map(|i| n.add_lut1_inverter(&format!("inv{i}"))).collect();
    for i in 0..stages {
        let from = cells[i];
        let to = cells[(i + 1) % stages];
        n.connect(n.output_of(from), n.input_of(to, 0)).expect("fresh pins");
    }
    n
}

fn main() {
    let designs: Vec<(&str, Netlist)> = vec![
        ("ring_oscillator_3stage", ring_oscillator(3)),
        ("power_striker_64cells", StrikerBank::new(64).expect("cells > 0").netlist()),
        (
            "tdc_sensor",
            TdcSensor::calibrated(TdcConfig::default(), 100.0, 90).expect("calibration").netlist(),
        ),
    ];

    let mut rows = Vec::new();
    let mut ro_rejected = false;
    let mut striker_accepted = false;
    for (name, netlist) in &designs {
        let report = check(netlist);
        let comb_loops = report.of_rule(Rule::CombinationalLoop).count();
        let latch_loops = report.of_rule(Rule::LatchInLoop).count();
        let verdict = if report.is_deployable() { "ACCEPT" } else { "REJECT" };
        if *name == "ring_oscillator_3stage" && !report.is_deployable() {
            ro_rejected = true;
        }
        if name.starts_with("power_striker") && report.is_deployable() {
            striker_accepted = true;
        }
        rows.push(format!(
            "{name},{},{},{comb_loops},{latch_loops},{verdict}",
            report.violations.len(),
            report.violations.iter().filter(|v| v.severity == Severity::Error).count(),
        ));
    }
    emit_series(
        "DRC audit (Vivado-style LUTLP-1 combinational-loop rule)",
        "design,violations,errors,comb_loops,latch_loop_advisories,verdict",
        rows,
    );

    assert!(ro_rejected, "the ring oscillator must be rejected");
    assert!(striker_accepted, "the latch-based striker must be accepted");

    // The countermeasure (paper refs [26][27]): a provider that also scans
    // latch-broken loops catches the striker at compile time.
    use fpga_fabric::drc::{check_with, DrcPolicy};
    let striker_netlist = StrikerBank::new(64).expect("cells > 0").netlist();
    let strict = check_with(&striker_netlist, DrcPolicy::strict());
    println!(
        "# strict (latch-loop scanning) policy on the striker: {} ({} errors)",
        if strict.is_deployable() { "ACCEPT" } else { "REJECT" },
        strict.error_count()
    );
    assert!(!strict.is_deployable(), "strict policy must catch the striker");
    println!(
        "# shape-check: PASS (RO rejected, striker + TDC accepted, strict policy catches striker)"
    );
}
