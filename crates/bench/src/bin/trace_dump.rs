//! Ad-hoc golden-trace inspection: prints a scenario's JSONL event
//! stream to stdout (the exact bytes the conformance suite diffs).
//!
//! ```text
//! trace_dump                  # summary of every scenario
//! trace_dump fig3_slice       # full JSONL of one scenario
//! trace_dump --summary NAME   # per-stage event counts only
//! trace_dump --conv-rank      # conv1-vs-conv2 fault attribution (EXPERIMENTS.md)
//! ```

use std::collections::BTreeMap;

use accel::fault::FaultModel;
use accel::schedule::AccelConfig;
use bench::golden;
use deepstrike::attack::{evaluate_attack, plan_attack, profile_victim};
use deepstrike::cosim::{CloudFpga, CosimConfig};

fn summarize(name: &str, log: &trace::TraceLog) {
    let mut by_stage: BTreeMap<&'static str, usize> = BTreeMap::new();
    for event in &log.events {
        *by_stage.entry(event.stage().name()).or_default() += 1;
    }
    println!("# {name}: {} events, {} dropped", log.events.len(), log.dropped);
    for (stage, count) in by_stage {
        println!("{stage},{count}");
    }
    println!();
}

/// Trace evidence for the EXPERIMENTS.md fig5b deviation note: attack
/// conv1 and conv2 at the *same* strike budget on the trained LeNet and
/// attribute every materialised DSP fault to its pipeline stage. If the
/// injection side is healthy the two targets see comparable fault counts,
/// and the accuracy gap is the victim's per-fault sensitivity.
fn conv_rank() {
    const STRIKES: u32 = 2_000;
    const IMAGES: usize = 100;

    let (q, clean_acc) = bench::trained_lenet();
    let test = bench::test_set();
    let mut fpga = CloudFpga::new(&q, &AccelConfig::default(), 8_000, CosimConfig::default())
        .expect("platform assembles");
    fpga.settle(200);
    let profile =
        profile_victim(&mut fpga, &dnn::lenet::STAGE_NAMES, 3).expect("profiles all five layers");

    println!("# conv-rank: {STRIKES} strikes, {IMAGES} images, clean {:.2}%", clean_acc * 100.0);
    println!(
        "target,strikes_fired,faults_per_image,duplicate,random,top_stage_share,accuracy_drop_pts"
    );
    for target in ["conv1", "conv2"] {
        let mut fpga = fpga.clone();
        let scheme = plan_attack(&profile, target, STRIKES).expect("strike budget fits layer");
        fpga.scheduler_mut().load_scheme(&scheme).expect("scheme fits");
        fpga.scheduler_mut().arm(true).expect("arms");
        let run = fpga.run_inference();
        let (outcome, log) = trace::capture(1 << 22, || {
            evaluate_attack(
                &q,
                fpga.schedule(),
                &run,
                test.iter().take(IMAGES),
                FaultModel::paper(),
                bench::HARNESS_SEED,
            )
        });
        assert_eq!(log.dropped, 0, "raise the capture capacity");

        // Attribute MacFault events to schedule stages by index.
        let windows = fpga.schedule().windows();
        let mut by_stage: BTreeMap<&str, u64> = BTreeMap::new();
        let (mut dup, mut rnd) = (0u64, 0u64);
        for event in &log.events {
            if let trace::Event::MacFault { stage, kind, .. } = event {
                let name = windows.get(*stage as usize).map_or("?", |w| w.name.as_str());
                *by_stage.entry(name).or_default() += 1;
                match kind {
                    trace::FaultKind::Duplicate => dup += 1,
                    trace::FaultKind::Random => rnd += 1,
                }
            }
        }
        let total = dup + rnd;
        let top = by_stage.iter().max_by_key(|(_, &n)| n);
        let top_share = top.map_or(String::from("-"), |(name, &n)| {
            format!("{name}:{:.0}%", 100.0 * n as f64 / total.max(1) as f64)
        });
        println!(
            "{target},{},{:.1},{dup},{rnd},{top_share},{:.1}",
            outcome.strikes_fired,
            total as f64 / IMAGES as f64,
            outcome.accuracy_drop(),
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => {
            for &name in golden::SCENARIOS {
                let log = golden::run_scenario(name);
                summarize(name, &log);
            }
        }
        [flag] if flag == "--conv-rank" => conv_rank(),
        [flag, name] if flag == "--summary" => {
            let log = golden::run_scenario(name);
            summarize(name, &log);
        }
        [name] => {
            let log = golden::run_scenario(name);
            print!("{}", log.to_jsonl());
        }
        other => {
            eprintln!(
                "usage: trace_dump [--conv-rank] [--summary] [{}]",
                golden::SCENARIOS.join("|")
            );
            eprintln!("got: {other:?}");
            std::process::exit(2);
        }
    }
}
