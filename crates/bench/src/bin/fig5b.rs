//! Fig. 5b — LeNet-5 test accuracy vs number of power strikes, per target
//! layer, with the blind (non-TDC-guided) baseline.
//!
//! Expected shape (paper §IV): accuracy falls as strikes increase; the
//! convolution layers are the profitable targets while FC1 degrades far
//! less despite its longer runtime (duplication faults are absorbed by
//! long serial summations); pooling is immune; the blind baseline stays
//! nearly flat at equal strike counts.
//!
//! Reproduction note (see EXPERIMENTS.md): in the paper's sweep CONV2 is
//! the single most damaged layer (−14% at 4,500 strikes) with CONV1 below
//! it; our independently trained victim inverts that pair — its first
//! conv layer is more fragile per fault — while every other ordering
//! (conv ≫ fc1 ≈ pool ≈ 0, guided ≫ blind) reproduces. Both convolution
//! curves and the blind baseline are emitted so the comparison is
//! explicit.

use accel::fault::FaultModel;
use accel::schedule::AccelConfig;
use bench::{emit_series, test_set, trained_lenet, HARNESS_SEED};
use deepstrike::attack::{
    clean_predictions, evaluate_attack_cached, plan_attack, plan_blind, profile_from_traces,
};
use deepstrike::cosim::{CloudFpga, CosimConfig};
use deepstrike::snapshot::SnapshotEngine;
use dnn::lenet::STAGE_NAMES;

/// Striker bank used for the end-to-end attack (≈ 15% of device slices,
/// as in the paper).
const STRIKER_CELLS: usize = 8_000;

/// Images scored per configuration (subset of the full test set to keep
/// the sweep minutes-fast; the paper uses its full 10k MNIST test set).
const EVAL_IMAGES: usize = 300;

fn main() {
    let (q, clean_acc) = trained_lenet();
    let test = test_set();
    let accel = AccelConfig::default();
    println!("# clean deployed accuracy: {:.2}%", clean_acc * 100.0);

    // Profile over three unarmed runs: two naive inferences plus the
    // snapshot engine's reference pass, whose armed-but-silent sentinel is
    // bitwise identical to an unarmed run (DESIGN.md §11) — so capturing
    // the fork ladder doubles as the third profiling trace for free.
    let mut fpga = CloudFpga::new(&q, &accel, STRIKER_CELLS, CosimConfig::default())
        .expect("platform assembles");
    fpga.settle(200);
    let mut traces = vec![fpga.run_inference().tdc_trace, fpga.run_inference().tdc_trace];
    let engine = SnapshotEngine::capture(&fpga).expect("reference pass captures");
    traces.push(engine.reference().tdc_trace.clone());
    let profile =
        profile_from_traces(&traces, &STAGE_NAMES).expect("profiling finds all five layers");
    let clean = clean_predictions(&q, test.iter().take(EVAL_IMAGES));

    // Every campaign point forks the engine's shared reference timeline
    // (bit-identical to cloning the post-profiling platform and replaying
    // in full) and runs on the worker pool (`DEEPSTRIKE_THREADS`); results
    // merge in job order, so the emitted series is identical at any
    // thread count. The sweep runs under the crash-safe supervisor: set
    // `DEEPSTRIKE_CHECKPOINT_DIR` to make an interrupted run resumable
    // with byte-identical output (see DESIGN.md §10).
    struct CampaignPoint {
        target: &'static str,
        strikes: u32,
        blind: bool,
    }
    let fractions = [0.125, 0.25, 0.5, 0.75, 1.0];
    let mut points = Vec::new();
    for target in STAGE_NAMES {
        let (_, window_len) = profile.window(target).expect("profiled layer");
        let max_strikes = (window_len / 2).max(4) as u32;
        for &frac in &fractions {
            let strikes = ((f64::from(max_strikes) * frac) as u32).max(1);
            points.push(CampaignPoint { target, strikes, blind: false });
        }
    }
    // Blind baseline: same strike budget sprayed over the whole inference.
    for &strikes in &[500u32, 1000, 2000, 3000, 4500] {
        points.push(CampaignPoint { target: "blind", strikes, blind: true });
    }

    let outcomes = bench::supervisor::supervised_sweep("fig5b", &points, |p| {
        let scheme = if p.blind {
            plan_blind(fpga.schedule(), p.strikes)
        } else {
            match plan_attack(&profile, p.target, p.strikes) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("skipping {} at {}: {e}", p.target, p.strikes);
                    return None;
                }
            }
        };
        let run = if p.blind {
            engine.run_blind(&scheme).expect("blind scheme fits")
        } else {
            engine.run_guided(&scheme).expect("scheme fits")
        };
        Some(evaluate_attack_cached(
            &q,
            fpga.schedule(),
            &run,
            test.iter().take(EVAL_IMAGES),
            FaultModel::paper(),
            HARNESS_SEED,
            &clean,
        ))
    });

    let mut rows = Vec::new();
    let mut conv1_max_drop = 0.0f64;
    let mut conv2_max_drop = 0.0f64;
    let mut pool1_max_drop = 0.0f64;
    let mut fc1_max_drop = 0.0f64;
    let mut blind_max_drop = 0.0f64;
    for (point, outcome) in points.iter().zip(&outcomes) {
        let outcome = outcome.as_ref().expect("campaign point panicked; see supervisor report");
        let Some(outcome) = outcome else { continue };
        let drop = outcome.accuracy_drop();
        match point.target {
            "conv1" => conv1_max_drop = conv1_max_drop.max(drop),
            "conv2" => conv2_max_drop = conv2_max_drop.max(drop),
            "pool1" => pool1_max_drop = pool1_max_drop.max(drop),
            "fc1" => fc1_max_drop = fc1_max_drop.max(drop),
            "blind" => blind_max_drop = blind_max_drop.max(drop),
            _ => {}
        }
        rows.push(format!(
            "{},{},{:.2},{:.2},{:.1}",
            point.target,
            outcome.strikes_fired,
            outcome.attacked_accuracy * 100.0,
            drop,
            outcome.mean_faults_per_image
        ));
    }

    emit_series(
        "Fig 5b: accuracy under DeepStrike per target layer",
        "target,strikes_fired,accuracy_pct,accuracy_drop_pts,mean_faults_per_image",
        rows,
    );

    let best_conv = conv1_max_drop.max(conv2_max_drop);
    println!(
        "# max drops (pts): conv1 {conv1_max_drop:.2}, conv2 {conv2_max_drop:.2}, pool1 \
         {pool1_max_drop:.2}, fc1 {fc1_max_drop:.2}, blind {blind_max_drop:.2}"
    );
    assert!(best_conv >= 4.0, "a guided conv attack must visibly reduce accuracy ({best_conv:.2})");
    assert!(
        conv2_max_drop > fc1_max_drop && best_conv > 2.0 * fc1_max_drop.max(0.5),
        "conv targets ({best_conv:.2}) must out-damage the absorbing fc1 ({fc1_max_drop:.2})"
    );
    assert!(pool1_max_drop < 1.0, "pooling must be immune ({pool1_max_drop:.2})");
    assert!(
        best_conv > 1.5 * blind_max_drop.max(0.5),
        "guided attacks must dominate the blind baseline ({blind_max_drop:.2})"
    );
    println!(
        "# shape-check: PASS (conv layers vulnerable, fc1 absorbs, pool immune, blind ≈ flat)"
    );
}
