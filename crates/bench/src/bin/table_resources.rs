//! §IV in-text numbers: resource utilisation and deployed accuracy.
//!
//! The paper reports: the power striker consumes **15.03% of logic
//! slices**; each strike lasts **10 ns**; the untampered model reaches
//! **96.17%** test accuracy; DSPs run double data rate. This binary
//! regenerates all of them from the fabric netlists and the trained
//! deployment.

use accel::schedule::AccelConfig;
use bench::{emit_series, trained_lenet};
use deepstrike::hypervisor::{attacker_netlist, deploy, victim_netlist};
use deepstrike::striker::StrikerBank;
use deepstrike::tdc::{TdcConfig, TdcSensor};
use fpga_fabric::device::Device;

fn main() {
    let device = Device::zynq_7020();
    let accel = AccelConfig::default();
    let striker = StrikerBank::new(8_000).expect("cells > 0");
    let tdc = TdcSensor::calibrated(TdcConfig::default(), 100.0, 90).expect("calibration");

    let striker_usage = striker.resource_usage();
    let striker_util = device.utilization(&striker_usage);
    let tdc_usage = tdc.netlist().resource_usage();
    let victim_usage = victim_netlist(&accel, 32).resource_usage();
    let attacker_usage = attacker_netlist(&striker, &tdc).resource_usage();

    emit_series(
        "Resource utilisation on the Zynq-7020 (13,300 slices, 220 DSP, 140 BRAM36)",
        "component,luts,ffs,latches,carry4,dsp,bram,slices,slice_pct",
        [
            ("power_striker(8000 cells)", striker_usage),
            ("tdc_sensor", tdc_usage),
            ("victim_accelerator", victim_usage),
            ("attacker_total", attacker_usage),
        ]
        .iter()
        .map(|(name, u)| {
            format!(
                "{name},{},{},{},{},{},{},{},{:.2}",
                u.luts,
                u.flip_flops,
                u.latches,
                u.carry4,
                u.dsp,
                u.bram,
                u.slices(),
                device.utilization(u).slice_pct
            )
        }),
    );

    // Full two-tenant deployment must pass the provider checks.
    let deployment = deploy(&device, &accel, &striker, &tdc).expect("deployment succeeds");
    println!(
        "# hypervisor: combined image deployable, victim-attacker distance {:.2} (normalised)",
        deployment.tenant_distance
    );

    // Strike duration at the 100 MHz fSRAM clock.
    let strike_ns = 1000.0 / accel.clock_mhz;
    println!("# strike duration: {strike_ns:.0} ns (one fSRAM cycle)");

    // Deployed accuracy.
    let (_, acc) = trained_lenet();
    println!("# untampered deployed accuracy: {:.2}% (paper: 96.17%)", acc * 100.0);

    assert!(
        (13.0..17.0).contains(&striker_util.slice_pct),
        "striker slice share {:.2}% should straddle the paper's 15.03%",
        striker_util.slice_pct
    );
    assert!((strike_ns - 10.0).abs() < 1e-9);
    assert!(acc > 0.90, "deployed accuracy {acc} must be in the paper regime");
    println!("# shape-check: PASS (≈15% slices, 10 ns strikes, mid-90s accuracy)");
}
