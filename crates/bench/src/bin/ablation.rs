//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Strike duration** — the paper uses 10 ns (one cycle) strikes and
//!    notes longer activations "will work as well but … may increase the
//!    temperature". Sweep the on-time and report fault yield + heating.
//! 2. **Placement distance** — Fig. 6a places the victim far from the
//!    attacker; sweep the separation and report the victim-side droop.
//! 3. **DDR vs SDR DSP clocking** — §IV blames double-data-rate timing for
//!    DSP vulnerability; compare fault rates at the same droop.

use accel::dsp::DspOp;
use accel::fault::{DspTiming, FaultModel};
use accel::pe::PeArray;
use bench::{emit_series, HARNESS_SEED};
use deepstrike::striker::StrikerBank;
use pdn::delay::DelayModel;
use pdn::grid::{GridParams, SpatialPdn};
use pdn::rlc::LumpedPdn;
use pdn::thermal::ThermalModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Worst droop at the victim node for a strike of `on_cycles` from a bank
/// at `attacker_fx` (victim fixed at fx = 0.12).
fn strike_droop(cells: usize, on_cycles: usize, attacker_fx: f64) -> (f64, f64) {
    let mut grid =
        SpatialPdn::new(LumpedPdn::zynq_like(), GridParams::default()).expect("default grid");
    let victim = grid.node_at_fraction(0.12, 0.5);
    let attacker = grid.node_at_fraction(attacker_fx, 0.5);
    grid.inject(victim, 1.0).expect("victim node");
    for _ in 0..5_000 {
        grid.step(1e-9);
    }
    let mut bank = StrikerBank::new(cells).expect("cells > 0");
    bank.set_enabled(true);
    let mut v_min = grid.voltage_at(victim).expect("victim node");
    let mut energy_j = 0.0;
    for _ in 0..on_cycles * 10 {
        let va = grid.voltage_at(attacker).expect("attacker node");
        grid.inject(attacker, bank.current_a(va)).expect("attacker node");
        grid.step(1e-9);
        v_min = v_min.min(grid.voltage_at(victim).expect("victim node"));
        energy_j += bank.power_w(va) * 1e-9;
    }
    (v_min, energy_j)
}

fn main() {
    // Every sweep point below is independently seeded, so each ablation
    // fans its points out on the worker pool and merges in sweep order.

    // --- Ablation 1: strike duration -------------------------------------
    let model = FaultModel::paper();
    let durations = [1usize, 2, 4, 8, 16];
    let duration_points = par::map_items(&durations, |&on_cycles| {
        let (v_min, energy_j) = strike_droop(8_000, on_cycles, 0.88);
        let mut pe = PeArray::new(8, model);
        let mut rng = StdRng::seed_from_u64(HARNESS_SEED);
        let ops = (0..5_000).map(|i| DspOp { a: 100 + (i % 27), b: 120, d: 7 });
        let rate = pe.characterize(ops, v_min, &mut rng).total_fault_rate();
        // Heating if this strike repeated at a 50% duty cycle for 10 ms.
        let mut thermal = ThermalModel::zynq_like();
        let avg_power = energy_j / (on_cycles as f64 * 10e-9) * 0.5;
        thermal.step(avg_power + 1.0, 10e-3);
        (rate, format!("{on_cycles},{v_min:.4},{rate:.4},{:.2}", thermal.junction_temp()))
    });
    let duration_yield: Vec<f64> = duration_points.iter().map(|(r, _)| *r).collect();
    let rows: Vec<String> = duration_points.into_iter().map(|(_, row)| row).collect();
    emit_series(
        "Ablation 1: strike duration (8k cells, victim-side droop, fault rate, 10ms 50%-duty temp)",
        "on_cycles,victim_v_min,total_fault_rate,temp_c_after_10ms_burst_train",
        rows,
    );
    assert!(
        duration_yield.windows(2).all(|w| w[1] >= w[0] - 0.02),
        "longer strikes must not reduce fault yield: {duration_yield:?}"
    );

    // --- Ablation 2: placement distance ----------------------------------
    let positions = [0.2, 0.4, 0.6, 0.88];
    let placement_points = par::map_items(&positions, |&fx| {
        let (v_min, _) = strike_droop(8_000, 1, fx);
        (1.0 - v_min, format!("{fx:.2},{v_min:.4},{:.1}", (1.0 - v_min) * 1000.0))
    });
    let droops: Vec<f64> = placement_points.iter().map(|(d, _)| *d).collect();
    let rows: Vec<String> = placement_points.into_iter().map(|(_, row)| row).collect();
    emit_series(
        "Ablation 2: attacker placement (victim at fx=0.12)",
        "attacker_fx,victim_v_min,droop_mv",
        rows,
    );
    assert!(
        droops.first().unwrap() > droops.last().unwrap(),
        "a nearby attacker must droop the victim more (local mesh component)"
    );

    // --- Ablation 3: DDR vs SDR ------------------------------------------
    let delay = DelayModel::default();
    let clockings = [("ddr", DspTiming::paper_ddr()), ("sdr", DspTiming::paper_sdr())];
    let clocking_points = par::map_items(&clockings, |&(name, timing)| {
        let m = FaultModel::new(timing, delay);
        let mut pe = PeArray::new(8, m);
        let mut rng = StdRng::seed_from_u64(HARNESS_SEED);
        let mut op_rng = StdRng::seed_from_u64(1);
        let ops = (0..10_000).map(|_| DspOp {
            a: op_rng.gen_range(-128..128),
            b: op_rng.gen_range(-128..128),
            d: op_rng.gen_range(-128..128),
        });
        let rate = pe.characterize(ops, 0.80, &mut rng).total_fault_rate();
        (rate, format!("{name},{:.0},{rate:.4}", timing.budget_ps))
    });
    let rates: Vec<f64> = clocking_points.iter().map(|(r, _)| *r).collect();
    let rows: Vec<String> = clocking_points.into_iter().map(|(_, row)| row).collect();
    emit_series(
        "Ablation 3: DDR vs SDR DSP clocking at 0.80 V",
        "clocking,budget_ps,total_fault_rate",
        rows,
    );
    assert!(rates[0] > 0.3, "DDR must fault substantially at 0.80 V ({:.3})", rates[0]);
    assert!(rates[1] < 0.01, "SDR slack must absorb the same droop ({:.3})", rates[1]);

    println!("# shape-check: PASS (duration monotone, distance matters, DDR is the vulnerability)");
}
