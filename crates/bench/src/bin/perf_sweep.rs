//! Performance sweep: measures the campaign hot paths serial vs parallel
//! and writes the machine-readable `BENCH_sweep.json` at the repo root.
//!
//! Three measurements:
//!
//! 1. **fig5b slice** — a 64-point guided-attack campaign (the fig5b inner
//!    loop at reduced image count), run with `DEEPSTRIKE_THREADS=1` and
//!    again on the full worker pool. The two passes must produce
//!    byte-identical outcomes (the `par` determinism contract); the
//!    speedup column is the wall-clock ratio. On a multi-core box the
//!    parallel pass is expected to be ≥ 3× faster at 4+ cores; on a
//!    single-core box both passes cost the same and `speedup ≈ 1`.
//! 2. **conv forward** — the im2col fast path vs the original loop nest
//!    (`forward_naive`, kept as the exactness oracle).
//! 3. **grid step** — the spatial PDN step in the settled state (where the
//!    early-exit fires after one sweep) vs mid-transient (all sweeps run).

use std::time::Instant;

use accel::fault::FaultModel;
use accel::schedule::AccelConfig;
use bench::report::{SweepEntry, SweepReport};
use bench::{test_set, trained_lenet, HARNESS_SEED};
use deepstrike::attack::{evaluate_attack, plan_attack, profile_victim, AttackOutcome};
use deepstrike::cosim::{CloudFpga, CosimConfig};
use dnn::layers::{Conv2d, Layer};
use dnn::lenet::STAGE_NAMES;
use dnn::tensor::Tensor;
use pdn::grid::SpatialPdn;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Campaign points in the fig5b slice.
const SLICE_POINTS: usize = 64;

/// Images scored per slice point (reduced from fig5b's 300 to keep the
/// sweep fast while leaving enough work per point to parallelise).
const SLICE_IMAGES: usize = 30;

fn seconds(f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64()
}

/// The fig5b inner loop at slice scale: one campaign point per
/// `(target, strike fraction)` pair, all starting from the same profiled
/// platform snapshot.
fn fig5b_slice(
    fpga: &CloudFpga,
    profile: &deepstrike::attack::VictimProfile,
    q: &dnn::quant::QuantizedNetwork,
    test: &dnn::digits::Dataset,
) -> Vec<AttackOutcome> {
    let targets = ["conv1", "conv2"];
    let points: Vec<(usize, u32)> = (0..SLICE_POINTS)
        .map(|i| {
            let target = i % targets.len();
            let (_, len) = profile.window(targets[target]).expect("profiled layer");
            let max_strikes = (len / 2).max(4) as u32;
            let frac = (i / targets.len() + 1) as f64 / (SLICE_POINTS / targets.len()) as f64;
            (target, ((f64::from(max_strikes) * frac) as u32).max(1))
        })
        .collect();
    par::map_items(&points, |&(target, strikes)| {
        let mut fpga = fpga.clone();
        let scheme =
            plan_attack(profile, targets[target], strikes).expect("slice points fit their windows");
        fpga.scheduler_mut().load_scheme(&scheme).expect("scheme fits");
        fpga.scheduler_mut().arm(true).expect("scheme loaded");
        let run = fpga.run_inference();
        evaluate_attack(
            q,
            fpga.schedule(),
            &run,
            test.iter().take(SLICE_IMAGES),
            FaultModel::paper(),
            HARNESS_SEED,
        )
    })
}

fn main() {
    let mut report = SweepReport::new();

    // --- fig5b slice: serial vs worker pool ------------------------------
    let (q, _) = trained_lenet();
    let test = test_set();
    let mut fpga = CloudFpga::new(&q, &AccelConfig::default(), 8_000, CosimConfig::default())
        .expect("platform assembles");
    fpga.settle(200);
    let profile = profile_victim(&mut fpga, &STAGE_NAMES, 1).expect("profiling");

    std::env::set_var(par::THREADS_ENV, "1");
    let mut serial_out = Vec::new();
    let serial_s = seconds(|| serial_out = fig5b_slice(&fpga, &profile, &q, &test));
    std::env::remove_var(par::THREADS_ENV);
    let threads = par::thread_count();
    let mut parallel_out = Vec::new();
    let parallel_s = seconds(|| parallel_out = fig5b_slice(&fpga, &profile, &q, &test));
    assert_eq!(
        serial_out, parallel_out,
        "1-thread and {threads}-thread campaigns must be bit-identical"
    );
    let speedup = serial_s / parallel_s;
    println!(
        "fig5b_slice/{SLICE_POINTS}pt: serial {serial_s:.2}s, {threads}-thread {parallel_s:.2}s \
         ({speedup:.2}x), outcomes identical"
    );
    report.push(
        SweepEntry::new(format!("fig5b_slice/{SLICE_POINTS}pt"))
            .metric("points", SLICE_POINTS as f64)
            .metric("images_per_point", SLICE_IMAGES as f64)
            .metric("serial_s", serial_s)
            .metric("parallel_s", parallel_s)
            .metric("parallel_threads", threads as f64)
            .metric("speedup", speedup),
    );

    // --- conv forward: naive loop nest vs im2col fast path ---------------
    let mut rng = StdRng::seed_from_u64(HARNESS_SEED);
    let mut conv = Conv2d::new("conv2", 6, 16, 5, &mut rng);
    let input = Tensor::from_vec(
        (0..6 * 14 * 14).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        &[6, 14, 14],
    );
    const CONV_ITERS: usize = 400;
    let naive_s = seconds(|| {
        for _ in 0..CONV_ITERS {
            std::hint::black_box(conv.forward_naive(std::hint::black_box(&input)));
        }
    });
    let fast_s = seconds(|| {
        for _ in 0..CONV_ITERS {
            std::hint::black_box(conv.forward(std::hint::black_box(&input)));
        }
    });
    let conv_speedup = naive_s / fast_s;
    println!(
        "conv_forward/6x14x14_k5x16: naive {:.1}us, im2col {:.1}us ({conv_speedup:.2}x)",
        naive_s / CONV_ITERS as f64 * 1e6,
        fast_s / CONV_ITERS as f64 * 1e6
    );
    report.push(
        SweepEntry::new("conv_forward/6x14x14_k5x16")
            .metric("naive_us", naive_s / CONV_ITERS as f64 * 1e6)
            .metric("fast_us", fast_s / CONV_ITERS as f64 * 1e6)
            .metric("speedup", conv_speedup),
    );

    // --- grid step: settled (early-exit) vs transient ---------------------
    const GRID_ITERS: usize = 20_000;
    let mut grid = SpatialPdn::zynq_like();
    let node = grid.node_at_fraction(0.2, 0.5);
    grid.inject(node, 1.0).expect("node on mesh");
    for _ in 0..5_000 {
        grid.step(1e-9);
    }
    let settled_s = seconds(|| {
        for _ in 0..GRID_ITERS {
            std::hint::black_box(grid.step(1e-9));
        }
    });
    // Re-excite the field every step so every sweep runs.
    let mut amps = 1.0;
    let transient_s = seconds(|| {
        for _ in 0..GRID_ITERS {
            amps = if amps > 1.5 { 1.0 } else { amps + 0.01 };
            grid.inject(node, amps).expect("node on mesh");
            std::hint::black_box(grid.step(1e-9));
        }
    });
    let grid_speedup = transient_s / settled_s;
    println!(
        "grid_step/160_nodes: transient {:.0}ns, settled {:.0}ns ({grid_speedup:.2}x early-exit)",
        transient_s / GRID_ITERS as f64 * 1e9,
        settled_s / GRID_ITERS as f64 * 1e9
    );
    report.push(
        SweepEntry::new("grid_step/160_nodes")
            .metric("transient_ns", transient_s / GRID_ITERS as f64 * 1e9)
            .metric("settled_ns", settled_s / GRID_ITERS as f64 * 1e9)
            .metric("early_exit_speedup", grid_speedup),
    );

    let path = {
        let mut p = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        p.pop();
        p.pop();
        p.push("BENCH_sweep.json");
        p
    };
    report.write_to(&path).expect("report is writable");
    println!("wrote {}", path.display());
}
