//! Performance sweep: measures the campaign hot paths serial vs parallel
//! and writes the machine-readable `BENCH_sweep.json` at the repo root.
//!
//! Four measurements:
//!
//! 1. **fig5b snapshot sweep** — the fig5b candidate sweep across all five
//!    layers, evaluated once by naive full replay and once through the
//!    fork-point snapshot engine (`deepstrike::snapshot`). The two passes
//!    must produce bit-identical `InferenceRun`s *and* outcomes — the
//!    process aborts otherwise, which is the CI gate — and the speedup is
//!    recorded as a dated entry in the `BENCH_sweep.json` trajectory.
//! 2. **fig5b slice** — a guided-attack campaign slice run with
//!    `DEEPSTRIKE_THREADS=1` and again on the full worker pool. The two
//!    passes must produce byte-identical outcomes (the `par` determinism
//!    contract); the speedup column is the wall-clock ratio. On a
//!    single-core box both passes cost the same and `speedup ≈ 1`.
//! 3. **conv forward** — the im2col fast path vs the original loop nest
//!    (`forward_naive`, kept as the exactness oracle).
//! 4. **grid step** — the spatial PDN step in the settled state (where the
//!    early-exit fires after one sweep) vs mid-transient (all sweeps run).
//!
//! Grid sizes honour `DEEPSTRIKE_PERF_SNAP_POINTS`,
//! `DEEPSTRIKE_PERF_SLICE_POINTS` and `DEEPSTRIKE_PERF_IMAGES` so CI can
//! run a small grid.

use std::time::Instant;

use accel::fault::FaultModel;
use accel::schedule::AccelConfig;
use bench::report::{SweepEntry, SweepReport};
use bench::{test_set, trained_lenet, HARNESS_SEED};
use deepstrike::attack::{
    clean_predictions, evaluate_attack, evaluate_attack_cached, plan_attack, profile_victim,
    AttackOutcome,
};
use deepstrike::cosim::{CloudFpga, CosimConfig};
use deepstrike::snapshot::SnapshotEngine;
use dnn::layers::{Conv2d, Layer};
use dnn::lenet::STAGE_NAMES;
use dnn::tensor::Tensor;
use pdn::grid::SpatialPdn;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Campaign points in the snapshot-vs-replay sweep (one per layer ×
/// strike-count rung, like fig5b's guided grid).
const SNAP_POINTS: usize = 30;

/// Campaign points in the fig5b thread-scaling slice.
const SLICE_POINTS: usize = 64;

/// Images scored per campaign point (reduced from fig5b's 300 to keep the
/// sweep fast while leaving enough work per point to parallelise).
const SLICE_IMAGES: usize = 30;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).filter(|&n| n > 0).unwrap_or(default)
}

fn seconds(f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64()
}

/// The fig5b inner loop at slice scale: one campaign point per
/// `(target, strike fraction)` pair, all starting from the same profiled
/// platform snapshot.
/// The guided campaign grid: one `(target, strikes)` point per layer ×
/// strike-count rung, mirroring fig5b's guided sweep.
fn campaign_points(
    profile: &deepstrike::attack::VictimProfile,
    targets: &[&str],
    n: usize,
) -> Vec<(usize, u32)> {
    (0..n)
        .map(|i| {
            let target = i % targets.len();
            let (_, len) = profile.window(targets[target]).expect("profiled layer");
            let max_strikes = (len / 2).max(4) as u32;
            let frac = (i / targets.len() + 1) as f64 / (n / targets.len()).max(1) as f64;
            (target, ((f64::from(max_strikes) * frac.min(1.0)) as u32).max(1))
        })
        .collect()
}

fn fig5b_slice(
    fpga: &CloudFpga,
    profile: &deepstrike::attack::VictimProfile,
    q: &dnn::quant::QuantizedNetwork,
    test: &dnn::digits::Dataset,
    slice_points: usize,
    images: usize,
) -> Vec<AttackOutcome> {
    let targets = ["conv1", "conv2"];
    let points = campaign_points(profile, &targets, slice_points);
    par::map_items(&points, |&(target, strikes)| {
        let mut fpga = fpga.clone();
        let scheme =
            plan_attack(profile, targets[target], strikes).expect("slice points fit their windows");
        fpga.scheduler_mut().load_scheme(&scheme).expect("scheme fits");
        fpga.scheduler_mut().arm(true).expect("scheme loaded");
        let run = fpga.run_inference();
        evaluate_attack(
            q,
            fpga.schedule(),
            &run,
            test.iter().take(images),
            FaultModel::paper(),
            HARNESS_SEED,
        )
    })
}

fn main() {
    let mut report = SweepReport::new();
    let snap_points = env_usize("DEEPSTRIKE_PERF_SNAP_POINTS", SNAP_POINTS);
    let slice_points = env_usize("DEEPSTRIKE_PERF_SLICE_POINTS", SLICE_POINTS);
    let images = env_usize("DEEPSTRIKE_PERF_IMAGES", SLICE_IMAGES);

    let (q, _) = trained_lenet();
    let test = test_set();
    let mut fpga = CloudFpga::new(&q, &AccelConfig::default(), 8_000, CosimConfig::default())
        .expect("platform assembles");
    fpga.settle(200);
    let profile = profile_victim(&mut fpga, &STAGE_NAMES, 1).expect("profiling");

    // --- fig5b candidate sweep: snapshot engine vs naive replay ----------
    // Same platform, same candidate grid, two evaluation modes. The runs
    // and outcomes must match bit-for-bit; the wall-clock ratio is the
    // engine's algorithmic speedup (thread-count independent).
    let points = campaign_points(&profile, &STAGE_NAMES, snap_points);
    let schemes: Vec<_> = points
        .iter()
        .map(|&(target, strikes)| {
            plan_attack(&profile, STAGE_NAMES[target], strikes).expect("points fit their windows")
        })
        .collect();

    let mut replay_results = Vec::with_capacity(schemes.len());
    let replay_s = seconds(|| {
        for scheme in &schemes {
            let mut fpga = fpga.clone();
            fpga.scheduler_mut().load_scheme(scheme).expect("scheme fits");
            fpga.scheduler_mut().arm(true).expect("scheme loaded");
            let run = fpga.run_inference();
            let outcome = evaluate_attack(
                &q,
                fpga.schedule(),
                &run,
                test.iter().take(images),
                FaultModel::paper(),
                HARNESS_SEED,
            );
            replay_results.push((run, outcome));
        }
    });

    let start = Instant::now();
    let engine = SnapshotEngine::capture(&fpga).expect("snapshot capture");
    let clean = clean_predictions(&q, test.iter().take(images));
    let snapshot_results: Vec<_> = schemes
        .iter()
        .map(|scheme| {
            let run = engine.run_guided(scheme).expect("guided run");
            let outcome = evaluate_attack_cached(
                &q,
                fpga.schedule(),
                &run,
                test.iter().take(images),
                FaultModel::paper(),
                HARNESS_SEED,
                &clean,
            );
            (run, outcome)
        })
        .collect();
    let snapshot_s = start.elapsed().as_secs_f64();
    assert_eq!(
        replay_results, snapshot_results,
        "snapshot-mode output must be bit-identical to naive replay"
    );
    let stats = engine.stats();
    let snap_speedup = replay_s / snapshot_s;
    let suffix_fraction = if stats.forked_runs > 0 {
        stats.suffix_cycles as f64 / (stats.forked_runs * engine.total_cycles()) as f64
    } else {
        f64::NAN
    };
    println!(
        "fig5b_snapshot/{snap_points}pt: replay {replay_s:.2}s, snapshot {snapshot_s:.2}s \
         ({snap_speedup:.2}x), bit-identical; {} of {} forked runs rejoined, \
         mean suffix fraction {suffix_fraction:.3}",
        stats.rejoined, stats.forked_runs
    );
    let snapshot_entry = SweepEntry::new(format!("fig5b_snapshot/{snap_points}pt"))
        .metric("points", snap_points as f64)
        .metric("images_per_point", images as f64)
        .metric("replay_s", replay_s)
        .metric("snapshot_s", snapshot_s)
        .metric("speedup", snap_speedup)
        .metric("forked_runs", stats.forked_runs as f64)
        .metric("rejoined", stats.rejoined as f64)
        .metric("suffix_fraction", suffix_fraction);
    report.push_history(&snapshot_entry);
    report.push(snapshot_entry);

    // --- fig5b slice: serial vs worker pool ------------------------------
    std::env::set_var(par::THREADS_ENV, "1");
    let mut serial_out = Vec::new();
    let serial_s =
        seconds(|| serial_out = fig5b_slice(&fpga, &profile, &q, &test, slice_points, images));
    std::env::remove_var(par::THREADS_ENV);
    let threads = par::thread_count();
    let mut parallel_out = Vec::new();
    let parallel_s =
        seconds(|| parallel_out = fig5b_slice(&fpga, &profile, &q, &test, slice_points, images));
    assert_eq!(
        serial_out, parallel_out,
        "1-thread and {threads}-thread campaigns must be bit-identical"
    );
    let speedup = serial_s / parallel_s;
    println!(
        "fig5b_slice/{slice_points}pt: serial {serial_s:.2}s, {threads}-thread {parallel_s:.2}s \
         ({speedup:.2}x), outcomes identical"
    );
    report.push(
        SweepEntry::new(format!("fig5b_slice/{slice_points}pt"))
            .metric("points", slice_points as f64)
            .metric("images_per_point", images as f64)
            .metric("serial_s", serial_s)
            .metric("parallel_s", parallel_s)
            .metric("parallel_threads", threads as f64)
            .metric("speedup", speedup),
    );

    // --- conv forward: naive loop nest vs im2col fast path ---------------
    let mut rng = StdRng::seed_from_u64(HARNESS_SEED);
    let mut conv = Conv2d::new("conv2", 6, 16, 5, &mut rng);
    let input = Tensor::from_vec(
        (0..6 * 14 * 14).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        &[6, 14, 14],
    );
    const CONV_ITERS: usize = 400;
    let naive_s = seconds(|| {
        for _ in 0..CONV_ITERS {
            std::hint::black_box(conv.forward_naive(std::hint::black_box(&input)));
        }
    });
    let fast_s = seconds(|| {
        for _ in 0..CONV_ITERS {
            std::hint::black_box(conv.forward(std::hint::black_box(&input)));
        }
    });
    let conv_speedup = naive_s / fast_s;
    println!(
        "conv_forward/6x14x14_k5x16: naive {:.1}us, im2col {:.1}us ({conv_speedup:.2}x)",
        naive_s / CONV_ITERS as f64 * 1e6,
        fast_s / CONV_ITERS as f64 * 1e6
    );
    report.push(
        SweepEntry::new("conv_forward/6x14x14_k5x16")
            .metric("naive_us", naive_s / CONV_ITERS as f64 * 1e6)
            .metric("fast_us", fast_s / CONV_ITERS as f64 * 1e6)
            .metric("speedup", conv_speedup),
    );

    // --- grid step: settled (early-exit) vs transient ---------------------
    const GRID_ITERS: usize = 20_000;
    let mut grid = SpatialPdn::zynq_like();
    let node = grid.node_at_fraction(0.2, 0.5);
    grid.inject(node, 1.0).expect("node on mesh");
    for _ in 0..5_000 {
        grid.step(1e-9);
    }
    let settled_s = seconds(|| {
        for _ in 0..GRID_ITERS {
            std::hint::black_box(grid.step(1e-9));
        }
    });
    // Re-excite the field every step so every sweep runs.
    let mut amps = 1.0;
    let transient_s = seconds(|| {
        for _ in 0..GRID_ITERS {
            amps = if amps > 1.5 { 1.0 } else { amps + 0.01 };
            grid.inject(node, amps).expect("node on mesh");
            std::hint::black_box(grid.step(1e-9));
        }
    });
    let grid_speedup = transient_s / settled_s;
    println!(
        "grid_step/160_nodes: transient {:.0}ns, settled {:.0}ns ({grid_speedup:.2}x early-exit)",
        transient_s / GRID_ITERS as f64 * 1e9,
        settled_s / GRID_ITERS as f64 * 1e9
    );
    report.push(
        SweepEntry::new("grid_step/160_nodes")
            .metric("transient_ns", transient_s / GRID_ITERS as f64 * 1e9)
            .metric("settled_ns", settled_s / GRID_ITERS as f64 * 1e9)
            .metric("early_exit_speedup", grid_speedup),
    );

    let path = {
        let mut p = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        p.pop();
        p.pop();
        p.push("BENCH_sweep.json");
        p
    };
    report.load_history(&path);
    report.write_to(&path).expect("report is writable");
    println!("wrote {}", path.display());
}
