//! Fig. 1b — TDC readout trace across three DNN layer executions.
//!
//! The paper's preliminary study runs a max-pooling layer, a 3×3
//! convolution and a 1×1 convolution back to back while the TDC samples
//! the shared rail (`F_dr` = 200 MHz, `DL_LUT` = 4, `DL_CARRY` = 128,
//! θ → readout ≈ 90). Expected shape: stalls plateau near 90, every layer
//! depresses the readout, and convolution phases fluctuate far more than
//! pooling.

use accel::schedule::AccelConfig;
use bench::emit_series;
use deepstrike::cosim::{CloudFpga, CosimConfig};
use deepstrike::profile::{segment_trace, SegmenterConfig};
use dnn::fixed::QFormat;
use dnn::layers::{Conv2d, MaxPool2d, Tanh};
use dnn::network::Sequential;
use dnn::quant::QuantizedNetwork;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The paper's three-layer probe victim: maxpool, conv 3×3, conv 1×1.
    let mut rng = StdRng::seed_from_u64(bench::HARNESS_SEED);
    let mut net = Sequential::new("fig1b_probe");
    net.push(Box::new(MaxPool2d::new("maxpool", 2)));
    net.push(Box::new(Conv2d::new("conv3x3", 2, 8, 3, &mut rng)));
    net.push(Box::new(Tanh::new("conv3x3_tanh")));
    net.push(Box::new(Conv2d::new("conv1x1", 8, 8, 1, &mut rng)));
    let q = QuantizedNetwork::from_sequential(&net, &[2, 24, 24], QFormat::paper())
        .expect("probe net quantises");

    let mut fpga = CloudFpga::new(&q, &AccelConfig::default(), 8_000, CosimConfig::default())
        .expect("platform assembles");
    fpga.settle(200);
    let run = fpga.run_inference();

    // Decimate for plotting (full rate is 2 samples / 10 ns cycle).
    emit_series(
        "Fig 1b: TDC readout while executing maxpool -> conv3x3 -> conv1x1",
        "sample,readout",
        run.tdc_trace.iter().step_by(8).enumerate().map(|(i, &v)| format!("{},{v}", i * 8)),
    );

    // Per-phase statistics (the claims the paper draws from this figure).
    let segments = segment_trace(&run.tdc_trace, &SegmenterConfig::default());
    let names = ["maxpool", "conv3x3", "conv1x1"];
    emit_series(
        "Fig 1b phases: per-layer readout statistics",
        "layer,start_sample,len_samples,mean,std,min",
        segments.iter().enumerate().map(|(i, s)| {
            format!(
                "{},{},{},{:.2},{:.2},{}",
                names.get(i).unwrap_or(&"?"),
                s.start,
                s.len,
                s.mean,
                s.variance.sqrt(),
                s.min
            )
        }),
    );

    // Machine-checkable shape criteria.
    assert_eq!(segments.len(), 3, "three layer executions must be visible");
    let idle_mean: f64 =
        run.tdc_trace[..segments[0].start].iter().map(|&v| f64::from(v)).sum::<f64>()
            / segments[0].start.max(1) as f64;
    assert!((86.0..92.0).contains(&idle_mean), "stall plateau {idle_mean} should sit near 90");
    assert!(
        segments[1].variance > 2.0 * segments[0].variance,
        "conv fluctuation must exceed pooling fluctuation"
    );
    println!("# shape-check: PASS (3 phases, stalls ≈ 90, conv variance > pool variance)");
}
