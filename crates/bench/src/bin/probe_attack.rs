//! Diagnostic: prints the strike-cycle voltage distribution and the fault
//! species mix for one guided conv2 campaign. Not a paper figure — a
//! calibration aid (kept because it documents the operating point).

use accel::fault::FaultModel;
use accel::schedule::AccelConfig;
use bench::{test_set, trained_lenet, HARNESS_SEED};
use deepstrike::attack::{evaluate_attack, plan_attack, profile_victim, StrikeHook};
use deepstrike::cosim::{CloudFpga, CosimConfig};
use dnn::lenet::STAGE_NAMES;

fn main() {
    let (q, _) = trained_lenet();
    let test = test_set();
    let mut fpga = CloudFpga::new(&q, &AccelConfig::default(), 8_000, CosimConfig::default())
        .expect("platform assembles");
    fpga.settle(200);
    let profile = profile_victim(&mut fpga, &STAGE_NAMES, 1).expect("profiling");

    let model = FaultModel::paper();
    println!(
        "# fault model: safe {:.3} V, early-stage safe {:.3} V",
        model.safe_voltage(),
        model.early_stage().safe_voltage()
    );
    for (target, strikes) in [("conv2", 4500u32), ("fc1", 4500), ("conv1", 2000)] {
        let scheme = match plan_attack(&profile, target, strikes) {
            Ok(s) => s,
            Err(e) => {
                println!("{target}: plan failed: {e}");
                continue;
            }
        };
        fpga.scheduler_mut().load_scheme(&scheme).expect("fits");
        fpga.scheduler_mut().arm(true).expect("armed");
        let run = fpga.run_inference();
        let struck_v: Vec<f64> = run
            .strike_cycles
            .iter()
            .map(|&c| run.min_voltage_in_flight(c, StrikeHook::LATENCY))
            .collect();
        let vmin = struck_v.iter().copied().fold(f64::INFINITY, f64::min);
        let vmean = struck_v.iter().sum::<f64>() / struck_v.len().max(1) as f64;
        let capture_v: Vec<f64> = run
            .strike_cycles
            .iter()
            .map(|&c| run.victim_voltage[(c as usize).min(run.victim_voltage.len() - 1)])
            .collect();
        let cmean = capture_v.iter().sum::<f64>() / capture_v.len().max(1) as f64;
        let p = model.probabilities(cmean);
        let outcome =
            evaluate_attack(&q, fpga.schedule(), &run, test.iter().take(60), model, HARNESS_SEED);
        println!(
            "{target}: strikes {}, v_strike mean {cmean:.3} (min {vmin:.3}, inflight-mean {vmean:.3}), \
             P(dup) {:.3} P(rand) {:.3} | faults/img {:.0} (dup {:.0}, rand {:.0}) | acc {:.1}% drop {:.1}",
            run.strike_cycles.len(),
            p.duplicate,
            p.random,
            outcome.mean_faults_per_image,
            outcome.mean_duplicate_per_image,
            outcome.mean_random_per_image,
            outcome.attacked_accuracy * 100.0,
            outcome.accuracy_drop(),
        );
        fpga.scheduler_mut().arm(false).expect("disarm");
    }
}
