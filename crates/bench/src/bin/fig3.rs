//! Fig. 3 — input of the DNN start detector.
//!
//! The 128-bit TDC vector is tapped in five zones; the detector watches
//! the Hamming weight of those taps. Expected shape: HW sits at 4 during
//! stalls (purified — no wobble), falls when a layer starts executing,
//! and the detector latches at HW ≤ 3 right at the first layer's start.

use accel::schedule::AccelConfig;
use bench::{emit_series, trained_lenet};
use deepstrike::attack::SAMPLES_PER_CYCLE;
use deepstrike::cosim::{CloudFpga, CosimConfig};
use deepstrike::detector::{DetectorConfig, StartDetector};

fn main() {
    let (q, _) = trained_lenet();
    let mut fpga = CloudFpga::new(&q, &AccelConfig::default(), 8_000, CosimConfig::default())
        .expect("platform assembles");
    fpga.settle(200);
    let run = fpga.run_inference();

    // Re-derive the raw thermometer vectors from the counts (the encoder
    // is lossless for thermometer codes) and feed the detector.
    let mut det = StartDetector::new(DetectorConfig::default()).expect("default config valid");
    let mut rows = Vec::new();
    let mut trigger_sample = None;
    for (i, &count) in run.tdc_trace.iter().enumerate() {
        let raw = if count == 0 { 0u128 } else { (1u128 << count.min(127)) - 1 };
        let hw = det.hamming_weight(raw);
        if det.push(raw) {
            trigger_sample = Some(i);
        }
        if i % 4 == 0 {
            rows.push(format!("{i},{count},{hw}"));
        }
    }
    emit_series(
        "Fig 3: DNN start detector input (5-zone Hamming weight)",
        "sample,tdc_readout,hamming_weight",
        rows,
    );

    let conv1 = fpga.schedule().window("conv1").expect("conv1 scheduled").clone();
    let trigger = trigger_sample.expect("detector must trigger");
    let trigger_cycle = trigger as u64 / SAMPLES_PER_CYCLE;
    println!("# detector latched at sample {trigger} (cycle {trigger_cycle})");
    println!("# conv1 executes cycles {}..{}", conv1.start_cycle, conv1.end_cycle());

    assert!(
        trigger_cycle >= conv1.start_cycle && trigger_cycle < conv1.start_cycle + 200,
        "trigger must latch within 200 cycles of conv1's start"
    );
    println!("# shape-check: PASS (HW=4 at idle, trigger at conv1 start)");
}
