//! Crash-safe sweep supervisor for the figure binaries.
//!
//! Wraps [`par::try_map_items`] with durable slice checkpoints: the grid
//! is computed in fixed-size slices, and after each slice the prefix of
//! completed results is saved through a [`ckpt::CheckpointStore`]
//! (atomic write-rename + CRC + generation rollback). A `kill -9`
//! mid-sweep therefore costs at most one slice of recomputation, and —
//! because items are pure functions of their index — the resumed run's
//! results are **byte-identical** to an uninterrupted one.
//!
//! The binaries opt in through environment variables:
//!
//! | variable | effect |
//! |---|---|
//! | `DEEPSTRIKE_CHECKPOINT_DIR` | enable durable checkpoints in this directory |
//! | `DEEPSTRIKE_SLICE_LEN` | grid points per checkpointed slice (default 8) |
//! | `DEEPSTRIKE_ABORT_AFTER_SLICES` | simulated crash: exit(3) after N slices (CI smoke) |
//!
//! Without `DEEPSTRIKE_CHECKPOINT_DIR` the supervisor degrades to a
//! plain panic-isolated sweep — no files are touched.
//!
//! Quarantined (panicking) items are *not* persisted as completed: a
//! resume retries them, and if they fail deterministically they are
//! re-reported. Checkpoint corruption is detected (CRC), rolled back to
//! the previous generation when possible, and never silently loaded —
//! with no good generation the sweep restarts from scratch with a
//! warning rather than dying.

use std::process::exit;

use ckpt::{wire, CheckpointStore};
use par::SweepOutcome;

/// Environment variable enabling durable checkpoints (the directory).
pub const CHECKPOINT_DIR_ENV: &str = "DEEPSTRIKE_CHECKPOINT_DIR";

/// Environment variable overriding the slice length (default 8).
pub const SLICE_LEN_ENV: &str = "DEEPSTRIKE_SLICE_LEN";

/// Environment variable injecting a simulated crash after N slices.
pub const ABORT_AFTER_ENV: &str = "DEEPSTRIKE_ABORT_AFTER_SLICES";

/// Exit code of a simulated abort (distinguishable from panics in CI).
pub const ABORT_EXIT_CODE: i32 = 3;

/// Encode/decode one sweep item result for the checkpoint payload. The
/// encoding must be bit-exact (use [`ckpt::wire`]'s `f64` helpers), or
/// resumed runs lose the byte-identical-output guarantee.
pub trait SliceCodec: Sized {
    /// Appends the encoded item to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one item; `None` on malformed input.
    fn decode(r: &mut wire::Reader<'_>) -> Option<Self>;
}

/// Outcome of a supervised sweep.
#[derive(Debug)]
pub enum SweepRun<T> {
    /// All slices ran (or were restored); results as
    /// [`par::SweepOutcome`] semantics — `None` at quarantined indices.
    Complete(SweepOutcome<T>),
    /// A simulated abort fired after `completed` items were durably
    /// checkpointed (test/CI path; the env-driven wrapper exits instead).
    Aborted {
        /// Items persisted before the abort.
        completed: usize,
        /// Checkpoint generation holding them.
        generation: u64,
    },
}

/// Payload layout: total item count (rejects resumes against a different
/// grid), then the count of completed prefix items, then each item
/// encoded by its [`SliceCodec`].
fn encode_prefix<T: SliceCodec>(total: usize, prefix: &[T]) -> Vec<u8> {
    let mut out = Vec::new();
    wire::put_u64(&mut out, total as u64);
    wire::put_u64(&mut out, prefix.len() as u64);
    for item in prefix {
        item.encode(&mut out);
    }
    out
}

fn decode_prefix<T: SliceCodec>(total: usize, payload: &[u8]) -> Option<Vec<T>> {
    let mut r = wire::Reader::new(payload);
    if r.take_u64()? as usize != total {
        return None;
    }
    let n = r.take_u64()? as usize;
    if n > total {
        return None;
    }
    let mut prefix = Vec::with_capacity(n);
    for _ in 0..n {
        prefix.push(T::decode(&mut r)?);
    }
    if !r.is_empty() {
        return None;
    }
    Some(prefix)
}

/// Loads the resumable prefix from `store`, degrading loudly (fresh
/// start + stderr warning) instead of dying on corruption or a grid
/// mismatch.
fn load_prefix<T: SliceCodec>(store: &CheckpointStore, total: usize) -> Vec<T> {
    match store.load() {
        Ok(None) => Vec::new(),
        Ok(Some(loaded)) => {
            if loaded.rolled_back {
                eprintln!(
                    "supervisor: checkpoint corrupt, rolled back to generation {}",
                    loaded.generation
                );
            }
            match decode_prefix(total, &loaded.payload) {
                Some(prefix) => prefix,
                None => {
                    eprintln!(
                        "supervisor: checkpoint payload does not match this sweep; starting fresh"
                    );
                    Vec::new()
                }
            }
        }
        Err(e) => {
            eprintln!("supervisor: {e}; starting fresh");
            Vec::new()
        }
    }
}

/// Runs `f` over `items` in checkpointed slices.
///
/// `store: None` disables durability (plain panic-isolated sweep).
/// `abort_after: Some(n)` returns [`SweepRun::Aborted`] after `n`
/// freshly-computed slices — the hook the kill-mid-sweep tests and the
/// CI smoke step use to simulate `kill -9` at a deterministic point.
///
/// Only the prefix of *consecutively completed* items is persisted: a
/// quarantined item ends the prefix, so it is retried on resume and its
/// report stays deterministic.
///
/// A quarantine-free completion clears the checkpoint store, so the next
/// invocation recomputes from scratch rather than replaying the stale
/// final prefix.
pub fn run_sliced<I, T, F>(
    items: &[I],
    f: F,
    mut store: Option<&mut CheckpointStore>,
    slice_len: usize,
    abort_after: Option<usize>,
) -> SweepRun<T>
where
    I: Sync,
    T: SliceCodec + Clone + Send,
    F: Fn(&I) -> T + Sync,
{
    let n = items.len();
    let slice_len = slice_len.max(1);
    let restored: Vec<T> = match store.as_deref() {
        Some(s) => load_prefix(s, n),
        None => Vec::new(),
    };
    let mut results: Vec<Option<T>> = restored.into_iter().map(Some).collect();
    let mut quarantine = Vec::new();
    let mut fresh_slices = 0usize;

    while results.len() < n {
        let start = results.len();
        let end = (start + slice_len).min(n);
        let slice = par::try_map(end - start, |k| f(&items[start + k]));
        for q in &slice.quarantine {
            quarantine
                .push(par::Quarantined { index: start + q.index, message: q.message.clone() });
        }
        results.extend(slice.results);
        fresh_slices += 1;
        if let Some(s) = store.as_deref_mut() {
            // Persist the consecutive completed prefix; a quarantined
            // slot ends it so the poison point is retried on resume.
            let prefix: Vec<T> =
                results.iter().take_while(|r| r.is_some()).flatten().cloned().collect();
            if let Err(e) = s.save(&encode_prefix(n, &prefix)) {
                eprintln!("supervisor: checkpoint save failed: {e}");
            } else if abort_after.is_some_and(|limit| fresh_slices >= limit) && results.len() < n {
                return SweepRun::Aborted { completed: prefix.len(), generation: s.generation() };
            }
        }
    }
    // A cleanly finished sweep retires its checkpoint — leaving the final
    // prefix on disk would make the next invocation replay stale results
    // instead of recomputing. A quarantined slot keeps the store so a
    // rerun retries the poison point from the persisted prefix.
    if quarantine.is_empty() {
        if let Some(s) = store {
            if let Err(e) = s.clear() {
                eprintln!("supervisor: failed to clear finished checkpoint: {e}");
            }
        }
    }
    SweepRun::Complete(SweepOutcome { results, quarantine })
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// The env-driven entry point for the figure binaries: reads
/// [`CHECKPOINT_DIR_ENV`] / [`SLICE_LEN_ENV`] / [`ABORT_AFTER_ENV`],
/// runs the supervised sweep, reports quarantined points on stderr and
/// returns the per-item results (`None` at quarantined indices).
///
/// On a simulated abort the process exits with [`ABORT_EXIT_CODE`]; a
/// quarantine-free completion clears the checkpoint files (in
/// [`run_sliced`]) so the next invocation starts fresh.
pub fn supervised_sweep<I, T, F>(name: &str, items: &[I], f: F) -> Vec<Option<T>>
where
    I: Sync,
    T: SliceCodec + Clone + Send,
    F: Fn(&I) -> T + Sync,
{
    let slice_len = env_usize(SLICE_LEN_ENV).unwrap_or(8);
    let abort_after = env_usize(ABORT_AFTER_ENV);
    let mut store = std::env::var(CHECKPOINT_DIR_ENV).ok().map(|dir| {
        CheckpointStore::new(dir, name)
            .unwrap_or_else(|e| panic!("checkpoint store for {name}: {e}"))
    });
    let outcome = run_sliced(items, f, store.as_mut(), slice_len, abort_after);
    match outcome {
        SweepRun::Aborted { completed, generation } => {
            eprintln!(
                "supervisor: simulated abort after {completed} items \
                 (checkpoint generation {generation})"
            );
            exit(ABORT_EXIT_CODE);
        }
        SweepRun::Complete(outcome) => {
            for q in &outcome.quarantine {
                eprintln!("supervisor: quarantined item {}: {}", q.index, q.message);
            }
            outcome.results
        }
    }
}

// Codec impls for the shapes the figure binaries sweep.

impl<T: SliceCodec> SliceCodec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Some(v) => {
                wire::put_bool(out, true);
                v.encode(out);
            }
            None => wire::put_bool(out, false),
        }
    }
    fn decode(r: &mut wire::Reader<'_>) -> Option<Self> {
        if r.take_bool()? {
            Some(Some(T::decode(r)?))
        } else {
            Some(None)
        }
    }
}

impl SliceCodec for deepstrike::attack::AttackOutcome {
    fn encode(&self, out: &mut Vec<u8>) {
        wire::put_f64(out, self.clean_accuracy);
        wire::put_f64(out, self.attacked_accuracy);
        wire::put_u64(out, self.strikes_fired as u64);
        wire::put_f64(out, self.mean_faults_per_image);
        wire::put_f64(out, self.mean_duplicate_per_image);
        wire::put_f64(out, self.mean_random_per_image);
    }
    fn decode(r: &mut wire::Reader<'_>) -> Option<Self> {
        Some(Self {
            clean_accuracy: r.take_f64()?,
            attacked_accuracy: r.take_f64()?,
            strikes_fired: r.take_u64()? as usize,
            mean_faults_per_image: r.take_f64()?,
            mean_duplicate_per_image: r.take_f64()?,
            mean_random_per_image: r.take_f64()?,
        })
    }
}

impl SliceCodec for (f64, f64) {
    fn encode(&self, out: &mut Vec<u8>) {
        wire::put_f64(out, self.0);
        wire::put_f64(out, self.1);
    }
    fn decode(r: &mut wire::Reader<'_>) -> Option<Self> {
        Some((r.take_f64()?, r.take_f64()?))
    }
}

impl SliceCodec for (f64, f64, f64, f64) {
    fn encode(&self, out: &mut Vec<u8>) {
        for v in [self.0, self.1, self.2, self.3] {
            wire::put_f64(out, v);
        }
    }
    fn decode(r: &mut wire::Reader<'_>) -> Option<Self> {
        Some((r.take_f64()?, r.take_f64()?, r.take_f64()?, r.take_f64()?))
    }
}

impl SliceCodec for (f64, f64, u64) {
    fn encode(&self, out: &mut Vec<u8>) {
        wire::put_f64(out, self.0);
        wire::put_f64(out, self.1);
        wire::put_u64(out, self.2);
    }
    fn decode(r: &mut wire::Reader<'_>) -> Option<Self> {
        Some((r.take_f64()?, r.take_f64()?, r.take_u64()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("deepstrike-supervisor-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn grid() -> Vec<u64> {
        (0..23u64).collect()
    }

    fn point(i: &u64) -> (f64, f64) {
        (*i as f64 * 1.5, (*i as f64).sqrt())
    }

    #[test]
    fn abort_then_resume_is_byte_identical_and_skips_completed_work() {
        let items = grid();
        let reference = match run_sliced(&items, point, None, 4, None) {
            SweepRun::Complete(o) => o.into_complete(),
            other => panic!("unexpected {other:?}"),
        };

        let dir = temp_dir("resume");
        let mut store = CheckpointStore::new(&dir, "sweep").expect("store");
        let aborted = run_sliced(&items, point, Some(&mut store), 4, Some(2));
        let completed = match aborted {
            SweepRun::Aborted { completed, generation } => {
                assert_eq!(completed, 8, "two slices of four");
                assert!(generation >= 1);
                completed
            }
            other => panic!("expected abort, got {other:?}"),
        };

        // Resume in a fresh store handle (the process "restarted").
        let computed = AtomicUsize::new(0);
        let mut store = CheckpointStore::new(&dir, "sweep").expect("store reopens");
        let resumed = run_sliced(
            &items,
            |i| {
                computed.fetch_add(1, Ordering::Relaxed);
                point(i)
            },
            Some(&mut store),
            4,
            None,
        );
        let resumed = match resumed {
            SweepRun::Complete(o) => o.into_complete(),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(resumed, reference, "resume must reproduce the uninterrupted sweep");
        assert_eq!(
            computed.load(Ordering::Relaxed),
            items.len() - completed,
            "completed prefix must not be recomputed"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn completed_sweep_clears_checkpoint_and_rerun_recomputes() {
        let items = grid();
        let dir = temp_dir("rerun");
        let mut store = CheckpointStore::new(&dir, "sweep").expect("store");
        let first = match run_sliced(&items, point, Some(&mut store), 4, None) {
            SweepRun::Complete(o) => o.into_complete(),
            other => panic!("unexpected {other:?}"),
        };
        // The finished sweep must retire its checkpoint (the lifecycle
        // bug this guards against: the final prefix stayed on disk) …
        assert!(
            store.load().expect("store readable").is_none(),
            "completed sweep must clear its checkpoint"
        );

        // … so a rerun recomputes every point instead of replaying a
        // stale full prefix.
        let computed = AtomicUsize::new(0);
        let mut store = CheckpointStore::new(&dir, "sweep").expect("store reopens");
        let rerun = run_sliced(
            &items,
            |i| {
                computed.fetch_add(1, Ordering::Relaxed);
                point(i)
            },
            Some(&mut store),
            4,
            None,
        );
        let rerun = match rerun {
            SweepRun::Complete(o) => o.into_complete(),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(rerun, first);
        assert_eq!(computed.load(Ordering::Relaxed), items.len(), "rerun must recompute all");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoint_rolls_back_and_still_completes() {
        let items = grid();
        let reference = match run_sliced(&items, point, None, 4, None) {
            SweepRun::Complete(o) => o.into_complete(),
            other => panic!("unexpected {other:?}"),
        };
        let dir = temp_dir("corrupt");
        let mut store = CheckpointStore::new(&dir, "sweep").expect("store");
        // Two checkpoint generations, then corrupt the current one.
        match run_sliced(&items, point, Some(&mut store), 4, Some(3)) {
            SweepRun::Aborted { .. } => {}
            other => panic!("expected abort, got {other:?}"),
        }
        let path = store.path().to_path_buf();
        let mut bytes = std::fs::read(&path).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("corrupt");

        let mut store = CheckpointStore::new(&dir, "sweep").expect("store reopens");
        let resumed = match run_sliced(&items, point, Some(&mut store), 4, None) {
            SweepRun::Complete(o) => o.into_complete(),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(resumed, reference, "rollback resume must still be byte-identical");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantined_point_ends_the_persisted_prefix_and_is_retried() {
        let items = grid();
        let dir = temp_dir("quarantine");
        let mut store = CheckpointStore::new(&dir, "sweep").expect("store");
        let attempt = std::sync::Mutex::new(0u32);
        let flaky = |i: &u64| {
            if *i == 5 {
                let mut a = attempt.lock().unwrap_or_else(|e| e.into_inner());
                *a += 1;
                if *a == 1 {
                    panic!("transient failure at 5");
                }
            }
            point(i)
        };
        // First pass: item 5 panics, everything else completes.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let first = run_sliced(&items, flaky, Some(&mut store), 4, None);
        std::panic::set_hook(hook);
        let first = match first {
            SweepRun::Complete(o) => o,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(first.quarantine.len(), 1);
        assert_eq!(first.quarantine[0].index, 5);

        // The persisted prefix stops at the quarantined slot …
        let loaded = store.load().expect("load").expect("present");
        let prefix: Vec<(f64, f64)> = decode_prefix(items.len(), &loaded.payload).expect("decodes");
        assert_eq!(prefix.len(), 5, "prefix must end before the quarantined index");

        // … so a resume retries it; the transient failure is gone and
        // the sweep now matches the clean reference.
        let reference = match run_sliced(&items, point, None, 4, None) {
            SweepRun::Complete(o) => o.into_complete(),
            other => panic!("unexpected {other:?}"),
        };
        let mut store = CheckpointStore::new(&dir, "sweep").expect("store reopens");
        let resumed = match run_sliced(&items, flaky, Some(&mut store), 4, None) {
            SweepRun::Complete(o) => o.into_complete(),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(resumed, reference);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
