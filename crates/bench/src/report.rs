//! Machine-readable benchmark report (`BENCH_sweep.json`).
//!
//! A purpose-built writer — the workspace has no serde — producing a flat,
//! stable JSON document the CI and the README's performance table can
//! consume:
//!
//! ```json
//! {
//!   "schema": "deepstrike-bench-sweep/2",
//!   "threads": 4,
//!   "date": "2026-08-07",
//!   "entries": [
//!     { "name": "fig5b_slice/64pt", "serial_s": 41.2, "parallel_s": 11.8,
//!       "speedup": 3.49 }
//!   ],
//!   "history": [
//!     { "date": "2026-08-07", "name": "fig5b_snapshot/30pt", "speedup": 3.4 }
//!   ]
//! }
//! ```
//!
//! `entries` is the current run; `history` is an append-only trajectory,
//! one line per dated benchmark run, carried over from the previous file
//! on rewrite so the repo accumulates a performance record. Every metric
//! is a finite `f64` (non-finite values are serialised as `null`, which
//! keeps the document valid JSON); names are free-form strings and are
//! escaped.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// One benchmarked configuration: a name plus key/value metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepEntry {
    name: String,
    metrics: Vec<(&'static str, f64)>,
}

impl SweepEntry {
    /// Starts an entry.
    pub fn new(name: impl Into<String>) -> Self {
        SweepEntry { name: name.into(), metrics: Vec::new() }
    }

    /// Adds one metric (builder-style).
    #[must_use]
    pub fn metric(mut self, key: &'static str, value: f64) -> Self {
        self.metrics.push((key, value));
        self
    }

    /// Renders the entry as a one-line JSON object, optionally prefixed
    /// with a `"date"` field — the `history` line format.
    fn to_json_line(&self, date: Option<&str>) -> String {
        let mut out = String::from("{ ");
        if let Some(date) = date {
            out.push_str("\"date\": ");
            write_json_string(&mut out, date);
            out.push_str(", ");
        }
        out.push_str("\"name\": ");
        write_json_string(&mut out, &self.name);
        for &(key, value) in &self.metrics {
            out.push_str(", ");
            write_json_string(&mut out, key);
            out.push_str(": ");
            write_json_number(&mut out, value);
        }
        out.push_str(" }");
        out
    }
}

/// The whole sweep report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepReport {
    entries: Vec<SweepEntry>,
    /// Past trajectory lines (verbatim one-line JSON objects), oldest first.
    history: Vec<String>,
    date: String,
}

impl SweepReport {
    /// An empty report stamped with [`bench_date`].
    pub fn new() -> Self {
        SweepReport { entries: Vec::new(), history: Vec::new(), date: bench_date() }
    }

    /// Appends an entry to the current run.
    pub fn push(&mut self, entry: SweepEntry) {
        self.entries.push(entry);
    }

    /// Appends a dated entry to the append-only trajectory.
    pub fn push_history(&mut self, entry: &SweepEntry) {
        let date = self.date.clone();
        self.history.push(entry.to_json_line(Some(&date)));
    }

    /// Carries the `history` lines of a previously written report over
    /// into this one, so rewriting the file preserves the trajectory.
    /// Tolerant line-based extraction (no JSON parser in the workspace):
    /// a missing file, the v1 schema, or an unrecognised layout simply
    /// yield no history.
    pub fn load_history(&mut self, path: impl AsRef<Path>) {
        let Ok(previous) = fs::read_to_string(path) else { return };
        let mut carried = Vec::new();
        let mut in_history = false;
        for line in previous.lines() {
            let trimmed = line.trim().trim_end_matches(',');
            if trimmed.starts_with("\"history\"") {
                in_history = true;
                continue;
            }
            if in_history {
                if trimmed.starts_with('{') && trimmed.ends_with('}') {
                    carried.push(trimmed.to_string());
                } else if trimmed.starts_with(']') {
                    break;
                }
            }
        }
        // Carried lines are older: they sort before anything already
        // pushed for the current run, regardless of call order.
        carried.append(&mut self.history);
        self.history = carried;
    }

    /// Renders the document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"deepstrike-bench-sweep/2\",\n");
        let _ = writeln!(out, "  \"threads\": {},", par::thread_count());
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let _ = writeln!(out, "  \"cores\": {cores},");
        out.push_str("  \"date\": ");
        write_json_string(&mut out, &self.date);
        out.push_str(",\n");
        out.push_str("  \"entries\": [");
        for (i, entry) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&entry.to_json_line(None));
        }
        out.push_str("\n  ],\n");
        out.push_str("  \"history\": [");
        for (i, line) in self.history.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(line);
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Writes the document to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.to_json())
    }
}

/// Today's date as `YYYY-MM-DD`, from `DEEPSTRIKE_BENCH_DATE` when set
/// (reproducible CI entries), otherwise from the system clock.
pub fn bench_date() -> String {
    if let Ok(date) = std::env::var("DEEPSTRIKE_BENCH_DATE") {
        if !date.is_empty() {
            return date;
        }
    }
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Days-since-epoch to (year, month, day), Howard Hinnant's algorithm.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_json_number(out: &mut String, value: f64) {
    if value.is_finite() {
        // `{}` prints the shortest representation that round-trips, which
        // is valid JSON for every finite f64.
        let _ = write!(out, "{value}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_entries_with_metrics() {
        let mut report = SweepReport::new();
        report.push(
            SweepEntry::new("fig5b_slice/64pt").metric("serial_s", 41.25).metric("speedup", 3.5),
        );
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"deepstrike-bench-sweep/2\""));
        assert!(json.contains("\"name\": \"fig5b_slice/64pt\""));
        assert!(json.contains("\"serial_s\": 41.25"));
        assert!(json.contains("\"speedup\": 3.5"));
    }

    #[test]
    fn escapes_names_and_nulls_non_finite() {
        let mut report = SweepReport::new();
        report.push(SweepEntry::new("quote\"back\\slash\n").metric("nan", f64::NAN));
        let json = report.to_json();
        assert!(json.contains("quote\\\"back\\\\slash\\u000a"));
        assert!(json.contains("\"nan\": null"));
    }

    #[test]
    fn empty_report_is_valid() {
        let json = SweepReport::new().to_json();
        assert!(json.contains("\"entries\": [\n  ]"));
        assert!(json.contains("\"history\": [\n  ]"));
    }

    #[test]
    fn history_survives_a_rewrite() {
        let dir = std::env::temp_dir().join(format!("deepstrike-report-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");

        std::env::set_var("DEEPSTRIKE_BENCH_DATE", "2026-01-01");
        let mut first = SweepReport::new();
        let entry = SweepEntry::new("fig5b_snapshot/8pt").metric("speedup", 3.4);
        first.push(entry.clone());
        first.push_history(&entry);
        first.write_to(&path).unwrap();

        std::env::set_var("DEEPSTRIKE_BENCH_DATE", "2026-02-02");
        let mut second = SweepReport::new();
        second.load_history(&path);
        let entry2 = SweepEntry::new("fig5b_snapshot/8pt").metric("speedup", 3.6);
        second.push(entry2.clone());
        second.push_history(&entry2);
        second.write_to(&path).unwrap();
        std::env::remove_var("DEEPSTRIKE_BENCH_DATE");

        let written = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        assert!(written.contains("\"date\": \"2026-02-02\""));
        assert!(
            written.contains("\"date\": \"2026-01-01\", \"name\": \"fig5b_snapshot/8pt\""),
            "first run's trajectory line must survive the rewrite: {written}"
        );
        assert_eq!(written.matches("\"speedup\": 3.6").count(), 2, "entry + history");
    }

    #[test]
    fn civil_date_conversion_is_correct() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1));
        assert_eq!(civil_from_days(20_672), (2026, 8, 7));
    }
}
