//! Machine-readable benchmark report (`BENCH_sweep.json`).
//!
//! A purpose-built writer — the workspace has no serde — producing a flat,
//! stable JSON document the CI and the README's performance table can
//! consume:
//!
//! ```json
//! {
//!   "schema": "deepstrike-bench-sweep/1",
//!   "threads": 4,
//!   "entries": [
//!     { "name": "fig5b_slice/64pt", "serial_s": 41.2, "parallel_s": 11.8,
//!       "speedup": 3.49 }
//!   ]
//! }
//! ```
//!
//! Every metric is a finite `f64` (non-finite values are serialised as
//! `null`, which keeps the document valid JSON); names are free-form
//! strings and are escaped.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// One benchmarked configuration: a name plus key/value metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepEntry {
    name: String,
    metrics: Vec<(&'static str, f64)>,
}

impl SweepEntry {
    /// Starts an entry.
    pub fn new(name: impl Into<String>) -> Self {
        SweepEntry { name: name.into(), metrics: Vec::new() }
    }

    /// Adds one metric (builder-style).
    #[must_use]
    pub fn metric(mut self, key: &'static str, value: f64) -> Self {
        self.metrics.push((key, value));
        self
    }
}

/// The whole sweep report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepReport {
    entries: Vec<SweepEntry>,
}

impl SweepReport {
    /// An empty report.
    pub fn new() -> Self {
        SweepReport::default()
    }

    /// Appends an entry.
    pub fn push(&mut self, entry: SweepEntry) {
        self.entries.push(entry);
    }

    /// Renders the document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"deepstrike-bench-sweep/1\",\n");
        let _ = writeln!(out, "  \"threads\": {},", par::thread_count());
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let _ = writeln!(out, "  \"cores\": {cores},");
        out.push_str("  \"entries\": [");
        for (i, entry) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    { \"name\": ");
            write_json_string(&mut out, &entry.name);
            for &(key, value) in &entry.metrics {
                out.push_str(", ");
                write_json_string(&mut out, key);
                out.push_str(": ");
                write_json_number(&mut out, value);
            }
            out.push_str(" }");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Writes the document to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.to_json())
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_json_number(out: &mut String, value: f64) {
    if value.is_finite() {
        // `{}` prints the shortest representation that round-trips, which
        // is valid JSON for every finite f64.
        let _ = write!(out, "{value}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_entries_with_metrics() {
        let mut report = SweepReport::new();
        report.push(
            SweepEntry::new("fig5b_slice/64pt").metric("serial_s", 41.25).metric("speedup", 3.5),
        );
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"deepstrike-bench-sweep/1\""));
        assert!(json.contains("\"name\": \"fig5b_slice/64pt\""));
        assert!(json.contains("\"serial_s\": 41.25"));
        assert!(json.contains("\"speedup\": 3.5"));
    }

    #[test]
    fn escapes_names_and_nulls_non_finite() {
        let mut report = SweepReport::new();
        report.push(SweepEntry::new("quote\"back\\slash\n").metric("nan", f64::NAN));
        let json = report.to_json();
        assert!(json.contains("quote\\\"back\\\\slash\\u000a"));
        assert!(json.contains("\"nan\": null"));
    }

    #[test]
    fn empty_report_is_valid() {
        let json = SweepReport::new().to_json();
        assert!(json.contains("\"entries\": [\n  ]"));
    }
}
