//! Golden-trace conformance scenarios (DESIGN.md §8).
//!
//! Each scenario is a seeded, miniaturised slice of one paper experiment,
//! run under a [`trace`] recording session. The rendered JSONL is the
//! conformance oracle: `tests/golden_trace.rs` replays every scenario at
//! `DEEPSTRIKE_THREADS` 1, 2 and 8 and diffs the output line-by-line
//! against `tests/golden/<name>.jsonl`, so a regression in *any* pipeline
//! stage — TDC readout, detector latch point, scheme compilation, strike
//! timing, PDN glitch depth, fault materialisation — shows up as a
//! specific event diff instead of a shifted figure endpoint.
//!
//! The victims here are deliberately tiny (a few hundred victim cycles):
//! golden files stay reviewable and the suite runs in seconds, while
//! every emission point in the chain is still exercised. The `trace_dump`
//! binary prints the same scenarios for ad-hoc inspection.

use accel::fault::FaultModel;
use accel::schedule::AccelConfig;
use deepstrike::attack::{evaluate_attack, plan_attack, profile_victim};
use deepstrike::cosim::{CloudFpga, CosimConfig};
use deepstrike::signal_ram::AttackScheme;
use dnn::fixed::QFormat;
use dnn::layers::{Conv2d, Dense, MaxPool2d, Tanh};
use dnn::network::Sequential;
use dnn::quant::QuantizedNetwork;
use dnn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Seed for every golden scenario (weights, planning, evaluation).
pub const GOLDEN_SEED: u64 = 0x00D5_2021;

/// Recording-session ring capacity. Scenarios are sized to fit well
/// within it; the conformance test asserts `dropped == 0`.
pub const SESSION_CAPACITY: usize = 1 << 16;

/// Scenario names, in the order the conformance suite replays them.
pub const SCENARIOS: &[&str] = &["fig1b_slice", "fig3_slice", "fig5b_slice", "remote_slice"];

/// Accelerator settings every golden scenario (and the chaos suite) uses.
pub fn accel_config() -> AccelConfig {
    AccelConfig { weight_bandwidth: 16, stall_cycles: 150, ..AccelConfig::default() }
}

/// Co-simulation settings every golden scenario (and the chaos suite)
/// uses.
pub fn cosim_config() -> CosimConfig {
    CosimConfig { pdn_substeps: 4, ..CosimConfig::default() }
}

/// The fig3/fig5b/remote victim: two dense layers on a 6×6 input, small
/// enough that one inference is a few hundred cycles yet each layer's
/// execution segment clears the profiler's minimum length. Public so the
/// chaos suite runs its local-vs-remote comparison on the same victim.
pub fn tiny_dense_victim() -> QuantizedNetwork {
    let mut rng = StdRng::seed_from_u64(GOLDEN_SEED);
    let mut net = Sequential::new("golden_dense");
    net.push(Box::new(Dense::new("fc1", 36, 16, &mut rng)));
    net.push(Box::new(Tanh::new("fc1_tanh")));
    net.push(Box::new(Dense::new("fc2", 16, 10, &mut rng)));
    QuantizedNetwork::from_sequential(&net, &[1, 6, 6], QFormat::paper()).expect("victim quantises")
}

/// Deterministic 6×6 evaluation images (no RNG: values are a fixed
/// arithmetic pattern, labels cycle through the classes).
pub fn golden_images(n: usize) -> Vec<(Tensor, usize)> {
    (0..n)
        .map(|i| {
            let data: Vec<f32> = (0..36).map(|j| ((i * 31 + j * 7) % 17) as f32 / 16.0).collect();
            (Tensor::from_vec(data, &[1, 6, 6]), i % 10)
        })
        .collect()
}

/// Runs one named scenario under a fresh recording session.
///
/// # Panics
///
/// Panics on an unknown scenario name.
pub fn run_scenario(name: &str) -> trace::TraceLog {
    match name {
        "fig1b_slice" => fig1b_slice(),
        "fig3_slice" => fig3_slice(),
        "fig5b_slice" => fig5b_slice(),
        "remote_slice" => remote_slice(),
        other => panic!("unknown golden scenario {other:?} (see golden::SCENARIOS)"),
    }
}

/// Fig. 1b slice: an unarmed inference of a maxpool → conv3×3 → conv1×1
/// probe — the TDC readout stream as the layers modulate the rail.
fn fig1b_slice() -> trace::TraceLog {
    let mut rng = StdRng::seed_from_u64(GOLDEN_SEED);
    let mut net = Sequential::new("golden_fig1b");
    net.push(Box::new(MaxPool2d::new("maxpool", 2)));
    net.push(Box::new(Conv2d::new("conv3x3", 2, 4, 3, &mut rng)));
    net.push(Box::new(Tanh::new("conv3x3_tanh")));
    net.push(Box::new(Conv2d::new("conv1x1", 4, 4, 1, &mut rng)));
    let q = QuantizedNetwork::from_sequential(&net, &[2, 12, 12], QFormat::paper())
        .expect("probe quantises");
    let mut fpga =
        CloudFpga::new(&q, &accel_config(), 8_000, cosim_config()).expect("platform assembles");
    fpga.settle(30);
    trace::capture(SESSION_CAPACITY, || {
        let _ = fpga.run_inference();
    })
    .1
}

/// Fig. 3 slice: an armed guided strike — detector Hamming-weight
/// transitions, the latch, signal-RAM playback, striker edges, strike
/// issuance and the PDN glitch windows they produce.
fn fig3_slice() -> trace::TraceLog {
    let q = tiny_dense_victim();
    let mut fpga =
        CloudFpga::new(&q, &accel_config(), 16_000, cosim_config()).expect("platform assembles");
    fpga.settle(30);
    trace::capture(SESSION_CAPACITY, || {
        let scheme = AttackScheme { delay_cycles: 20, strikes: 5, strike_cycles: 1, gap_cycles: 7 };
        fpga.scheduler_mut().load_scheme(&scheme).expect("scheme fits");
        fpga.scheduler_mut().arm(true).expect("arms");
        let _ = fpga.run_inference();
    })
    .1
}

/// Fig. 5b slice: the full campaign — profile, plan, strike, evaluate —
/// including the parallel per-image scoring (ImageScored / MacFault /
/// Inference events merged in index order by `par`).
fn fig5b_slice() -> trace::TraceLog {
    let q = tiny_dense_victim();
    let mut fpga =
        CloudFpga::new(&q, &accel_config(), 16_000, cosim_config()).expect("platform assembles");
    fpga.settle(30);
    trace::capture(SESSION_CAPACITY, || {
        let profile = profile_victim(&mut fpga, &["fc1", "fc2"], 1).expect("profiles");
        let scheme = plan_attack(&profile, "fc1", 6).expect("plan fits");
        fpga.scheduler_mut().load_scheme(&scheme).expect("loads");
        fpga.scheduler_mut().arm(true).expect("arms");
        let run = fpga.run_inference();
        let images = golden_images(6);
        let _ = evaluate_attack(
            &q,
            fpga.schedule(),
            &run,
            images.iter().map(|(t, y)| (t, *y)),
            FaultModel::paper(),
            GOLDEN_SEED,
        );
    })
    .1
}

/// Remote slice: the fig5b campaign driven end-to-end over a lossy UART
/// link — reliable-transport retries, a forced disconnect the backoff
/// rides out, the streamed profile, the chunked scheme upload and the
/// per-phase checkpoints, all in one trace.
fn remote_slice() -> trace::TraceLog {
    use deepstrike::remote::{RemoteCampaign, RemoteConfig, SimHost};
    use deepstrike::DeepStrikeError;
    use uart::link::{Endpoint, FaultConfig};
    use uart::transport::{TransportClient, TransportConfig, TransportShell};

    let q = tiny_dense_victim();
    let mut fpga =
        CloudFpga::new(&q, &accel_config(), 16_000, cosim_config()).expect("platform assembles");
    fpga.settle(30);
    // Modest bursty loss plus one disconnect window early in the profile
    // stream; the transport's retry span (30 + 60 + 120 + … pumps) rides
    // out the 25-tick outage, so the campaign completes without degrading.
    let fault = FaultConfig {
        loss: 0.02,
        corrupt: 0.02,
        burst_len: 12.0,
        max_jitter: 1,
        disconnects: vec![(20, 25)],
    };
    let (a, b) = Endpoint::faulty_pair(fault, GOLDEN_SEED);
    let mut link = TransportClient::with_config(
        a,
        TransportConfig { pump_budget: 30, max_retries: 10, backoff_cap: 240, chunk_len: 12 },
    );
    let mut host = SimHost::new(
        fpga,
        TransportShell::new(b),
        q.clone(),
        golden_images(4),
        FaultModel::paper(),
    );
    let mut config = RemoteConfig::new(&["fc1", "fc2"], "fc1", 6);
    config.profile_runs = 1;
    config.read_chunk = 32;
    config.eval_seed = GOLDEN_SEED;
    let mut campaign = RemoteCampaign::new(config);
    trace::capture(SESSION_CAPACITY, || {
        let mut resumes = 0;
        loop {
            match campaign.run(&mut link, &mut host) {
                Ok(_) => break,
                Err(DeepStrikeError::Interrupted { .. }) => {
                    resumes += 1;
                    assert!(resumes < 50, "remote slice never converged");
                }
                Err(e) => panic!("remote slice failed: {e}"),
            }
        }
    })
    .1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_produces_a_multi_stage_trace() {
        for &name in SCENARIOS {
            let log = run_scenario(name);
            assert_eq!(log.dropped, 0, "{name}: ring overflow");
            assert!(
                log.count(|e| matches!(e, trace::Event::TdcSample { .. })) > 100,
                "{name}: TDC stream missing"
            );
            // Unarmed runs legitimately record only the TDC stream (the
            // scheduler never consults the detector); armed ones span the
            // whole chain.
            let stages: std::collections::BTreeSet<_> =
                log.events.iter().map(|e| e.stage()).collect();
            if name != "fig1b_slice" {
                assert!(stages.len() >= 4, "{name}: only {stages:?}");
            }
        }
    }

    #[test]
    fn armed_scenarios_record_the_full_chain() {
        let log = run_scenario("fig3_slice");
        assert_eq!(log.count(|e| matches!(e, trace::Event::DetectorLatch { .. })), 1);
        assert_eq!(log.count(|e| matches!(e, trace::Event::StrikeIssued { .. })), 5);
        assert_eq!(log.count(|e| matches!(e, trace::Event::StrikerEdge { .. })), 5);
        assert!(log.count(|e| matches!(e, trace::Event::PdnGlitch { .. })) >= 1);
        let log = run_scenario("fig5b_slice");
        assert_eq!(log.count(|e| matches!(e, trace::Event::AttackPlanned { .. })), 1);
        assert_eq!(log.count(|e| matches!(e, trace::Event::ImageScored { .. })), 6);
        assert!(log.count(|e| matches!(e, trace::Event::MacFault { .. })) > 0);
    }

    #[test]
    fn remote_slice_records_the_transport_and_checkpoint_chain() {
        let log = run_scenario("remote_slice");
        assert_eq!(log.dropped, 0, "ring overflow");
        // One checkpoint per campaign phase.
        assert_eq!(log.count(|e| matches!(e, trace::Event::CheckpointSaved { .. })), 6);
        // The lossy link and forced disconnect must cost retransmissions,
        // but never the campaign's guidance level.
        assert!(log.count(|e| matches!(e, trace::Event::LinkRetry { .. })) >= 1);
        assert_eq!(log.count(|e| matches!(e, trace::Event::GuidanceDegraded { .. })), 0);
        // The 16-byte scheme uploads in two 12-byte chunks.
        assert_eq!(log.count(|e| matches!(e, trace::Event::UploadProgress { .. })), 2);
        assert_eq!(log.count(|e| matches!(e, trace::Event::AttackPlanned { .. })), 1);
    }
}
