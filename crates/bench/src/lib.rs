//! Shared harness code for the figure-regeneration binaries and Criterion
//! benches.
//!
//! Every quantitative result in the paper maps to one binary here (see
//! DESIGN.md §3):
//!
//! | paper result | binary |
//! |---|---|
//! | Fig. 1b (TDC layer traces) | `fig1b` |
//! | Fig. 3 (start-detector input) | `fig3` |
//! | Fig. 5b (accuracy vs strikes per layer) | `fig5b` |
//! | Fig. 6b (DSP fault rates vs striker cells) | `fig6b` |
//! | §IV in-text resources/accuracy | `table_resources` |
//! | §III-C DRC claim | `drc_audit` |
//! | §V future work (3 tenants, more DNNs) | `multi_tenant`, `arch_sweep` |

pub mod golden;
pub mod report;
pub mod supervisor;

use std::fs;
use std::path::PathBuf;

use dnn::digits::{Dataset, RenderParams};
use dnn::fixed::QFormat;
use dnn::lenet::lenet5;
use dnn::quant::QuantizedNetwork;
use dnn::train::{train, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Seed used throughout the harness so every figure regenerates
/// identically.
pub const HARNESS_SEED: u64 = 2021;

/// Training-set size for the LeNet victim (scaled from the paper's 60,000
/// MNIST images to keep regeneration minutes-fast; accuracy lands in the
/// same mid-90s regime).
pub const TRAIN_SAMPLES: usize = 4_000;

/// Held-out test-set size.
pub const TEST_SAMPLES: usize = 1_000;

/// Where trained models are cached between harness runs.
fn cache_path(name: &str) -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop(); // crates/
    p.pop(); // repo root
    p.push("target");
    p.push("deepstrike-cache");
    fs::create_dir_all(&p).expect("cache directory is creatable");
    p.push(name);
    p
}

/// FNV-1a over the little-endian encoding of each word.
fn fnv1a(words: &[u64]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for word in words {
        for byte in word.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// Cache key of the trained LeNet victim: a hash of everything that
/// changes the trained weights (seed, dataset sizes, every training
/// hyperparameter, quantisation format). Changing any of these switches
/// to a fresh cache file instead of silently reusing a stale model.
fn lenet_cache_key(config: &TrainConfig, quant: QFormat) -> u64 {
    fnv1a(&[
        HARNESS_SEED,
        TRAIN_SAMPLES as u64,
        TEST_SAMPLES as u64,
        config.epochs as u64,
        config.batch_size as u64,
        u64::from(config.sgd.lr.to_bits()),
        u64::from(config.sgd.momentum.to_bits()),
        u64::from(quant.is_signed()),
        u64::from(quant.frac_bits()),
    ])
}

/// The deterministic held-out test set used by all figures.
pub fn test_set() -> Dataset {
    let mut rng = StdRng::seed_from_u64(HARNESS_SEED ^ 0x07E5_75E7);
    Dataset::generate(TEST_SAMPLES, &RenderParams::challenging(), &mut rng)
}

/// Trains (or loads from cache) the paper's quantised LeNet-5 victim.
/// Returns the deployed network and its test accuracy.
///
/// The cache file name embeds [`lenet_cache_key`], so editing the seed or
/// any training hyperparameter invalidates the cache automatically.
pub fn trained_lenet() -> (QuantizedNetwork, f64) {
    let config = TrainConfig::default();
    let quant = QFormat::paper();
    let path = cache_path(&format!("lenet_q_{:016x}.bin", lenet_cache_key(&config, quant)));
    let test = test_set();
    if let Ok(bytes) = fs::read(&path) {
        if let Ok(q) = QuantizedNetwork::from_bytes(&bytes) {
            let acc = q.accuracy(test.iter());
            if acc > 0.85 {
                return (q, acc);
            }
        }
    }
    let mut rng = StdRng::seed_from_u64(HARNESS_SEED);
    let mut train_set = Dataset::generate(TRAIN_SAMPLES, &RenderParams::challenging(), &mut rng);
    let eval = train_set.split_off(TRAIN_SAMPLES / 10);
    let mut net = lenet5(&mut rng);
    train(&mut net, &train_set, Some(&eval), &config, &mut rng);
    let q =
        QuantizedNetwork::from_sequential(&net, &[1, 28, 28], quant).expect("LeNet-5 quantises");
    let _ = fs::write(&path, q.to_bytes());
    let acc = q.accuracy(test.iter());
    (q, acc)
}

/// Prints a CSV header + rows through a closure, prefixed with a title —
/// uniform output shape for all the figure binaries.
pub fn emit_series(title: &str, header: &str, rows: impl IntoIterator<Item = String>) {
    println!("# {title}");
    println!("{header}");
    for row in rows {
        println!("{row}");
    }
    println!();
}
