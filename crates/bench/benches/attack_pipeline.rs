//! Criterion benchmarks of the attack pipeline stages, including the
//! DDR-vs-SDR ablation called out in DESIGN.md.

use accel::dsp::DspOp;
use accel::fault::{DspTiming, FaultModel};
use accel::pe::PeArray;
use accel::schedule::{AccelConfig, Schedule};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use deepstrike::cosim::{CloudFpga, CosimConfig};
use deepstrike::profile::{segment_trace, SegmenterConfig};
use dnn::fixed::QFormat;
use dnn::quant::QuantizedNetwork;
use dnn::zoo::mlp;
use pdn::delay::DelayModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_victim() -> QuantizedNetwork {
    let net = mlp(&mut StdRng::seed_from_u64(0));
    QuantizedNetwork::from_sequential(&net, &[1, 28, 28], QFormat::paper()).unwrap()
}

fn bench_cosim_inference(c: &mut Criterion) {
    let victim = small_victim();
    let accel = AccelConfig { weight_bandwidth: 16, stall_cycles: 150, ..AccelConfig::default() };
    let mut fpga = CloudFpga::new(
        &victim,
        &accel,
        8_000,
        CosimConfig { pdn_substeps: 4, ..CosimConfig::default() },
    )
    .unwrap();
    fpga.settle(50);
    let mut group = c.benchmark_group("cosim");
    group.sample_size(10);
    group.bench_function("mlp_inference_4k_cycles", |b| {
        b.iter(|| black_box(fpga.run_inference().tdc_trace.len()));
    });
    group.finish();
}

fn bench_profiling(c: &mut Criterion) {
    let victim = small_victim();
    let accel = AccelConfig { weight_bandwidth: 16, stall_cycles: 150, ..AccelConfig::default() };
    let mut fpga = CloudFpga::new(
        &victim,
        &accel,
        8_000,
        CosimConfig { pdn_substeps: 4, ..CosimConfig::default() },
    )
    .unwrap();
    fpga.settle(50);
    let run = fpga.run_inference();
    c.bench_function("profile/segment_8k_samples", |b| {
        b.iter(|| black_box(segment_trace(&run.tdc_trace, &SegmenterConfig::default()).len()));
    });
}

fn bench_schedule(c: &mut Criterion) {
    let victim = small_victim();
    c.bench_function("schedule/build", |b| {
        b.iter(|| black_box(Schedule::for_network(&victim, &AccelConfig::default())));
    });
}

/// Ablation: fault characterisation throughput and yield for DDR vs SDR
/// DSP clocking at the same strike voltage — the design choice the paper
/// blames for DSP vulnerability.
fn bench_ddr_ablation(c: &mut Criterion) {
    let delay = DelayModel::default();
    let mut group = c.benchmark_group("ablation_ddr_vs_sdr");
    for (name, timing) in [("ddr", DspTiming::paper_ddr()), ("sdr", DspTiming::paper_sdr())] {
        group.bench_function(name, |b| {
            let model = FaultModel::new(timing, delay);
            b.iter(|| {
                let mut pe = PeArray::new(8, model);
                let mut rng = StdRng::seed_from_u64(1);
                let ops = (0..512).map(|i| DspOp { a: 100 + (i % 27), b: 120, d: 7 });
                black_box(pe.characterize(ops, 0.80, &mut rng).total_fault_rate())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cosim_inference,
    bench_profiling,
    bench_schedule,
    bench_ddr_ablation
);
criterion_main!(benches);
