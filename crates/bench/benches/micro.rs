//! Criterion micro-benchmarks of the simulation substrates: the costs
//! that bound how fast the figure harnesses can sweep.

use accel::dsp::{DspOp, DspSlice};
use accel::fault::FaultModel;
use accel::schedule::AccelConfig;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use deepstrike::attack::{evaluate_attack, plan_attack, profile_victim};
use deepstrike::cosim::{CloudFpga, CosimConfig};
use deepstrike::striker::StrikerBank;
use deepstrike::tdc::{TdcConfig, TdcSensor};
use dnn::fixed::QFormat;
use dnn::layers::{Conv2d, Layer};
use dnn::quant::QuantizedNetwork;
use dnn::tensor::Tensor;
use dnn::zoo::mlp;
use fpga_fabric::drc;
use pdn::grid::SpatialPdn;
use pdn::rlc::LumpedPdn;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_pdn(c: &mut Criterion) {
    c.bench_function("pdn/lumped_step", |b| {
        let mut pdn = LumpedPdn::zynq_like();
        b.iter(|| black_box(pdn.step(black_box(1.3), 1e-9)));
    });
    // Settled mesh: the bit-unchanged early exit fires after one sweep.
    c.bench_function("pdn/spatial_step_160_nodes", |b| {
        let mut grid = SpatialPdn::zynq_like();
        let node = grid.node_at_fraction(0.2, 0.5);
        grid.inject(node, 1.0).unwrap();
        b.iter(|| black_box(grid.step(1e-9)));
    });
    // Re-excited mesh: the injection changes every step, so every sweep
    // runs — the pre-optimisation cost profile.
    c.bench_function("pdn/spatial_step_160_nodes_transient", |b| {
        let mut grid = SpatialPdn::zynq_like();
        let node = grid.node_at_fraction(0.2, 0.5);
        let mut amps = 1.0;
        b.iter(|| {
            amps = if amps > 1.5 { 1.0 } else { amps + 0.01 };
            grid.inject(node, amps).unwrap();
            black_box(grid.step(1e-9))
        });
    });
}

fn bench_conv(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let input = Tensor::from_vec(
        (0..6 * 14 * 14).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        &[6, 14, 14],
    );
    // The LeNet conv2 shape — the hottest layer of every training and
    // attack-evaluation run. Naive is the original loop nest, kept as the
    // bit-exactness oracle for the im2col fast path.
    c.bench_function("conv/forward_naive_6x14x14_k5x16", |b| {
        let mut conv = Conv2d::new("conv2", 6, 16, 5, &mut rng);
        b.iter(|| black_box(conv.forward_naive(black_box(&input))));
    });
    c.bench_function("conv/forward_im2col_6x14x14_k5x16", |b| {
        let mut conv = Conv2d::new("conv2", 6, 16, 5, &mut rng);
        b.iter(|| black_box(conv.forward(black_box(&input))));
    });
    c.bench_function("conv/backward_6x14x14_k5x16", |b| {
        let mut conv = Conv2d::new("conv2", 6, 16, 5, &mut rng);
        let out = conv.forward(&input);
        let grad = Tensor::full(out.shape(), 0.3);
        b.iter(|| black_box(conv.backward(black_box(&grad))));
    });
}

/// A 64-point slice of the fig5b campaign (reduced image count), the
/// workload `par` distributes. One sample is a whole slice, so this bench
/// directly tracks the campaign wall-clock the perf_sweep binary records.
fn bench_fig5b_slice(c: &mut Criterion) {
    let net = mlp(&mut StdRng::seed_from_u64(0));
    let q = QuantizedNetwork::from_sequential(&net, &[1, 28, 28], QFormat::paper()).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let images: Vec<(Tensor, usize)> =
        (0..8).map(|d| (Tensor::full(&[1, 28, 28], 0.1 * d as f32), d as usize % 10)).collect();
    let accel = AccelConfig { weight_bandwidth: 16, stall_cycles: 150, ..AccelConfig::default() };
    let mut fpga = CloudFpga::new(
        &q,
        &accel,
        8_000,
        CosimConfig { pdn_substeps: 4, ..CosimConfig::default() },
    )
    .unwrap();
    fpga.settle(50);
    let profile = profile_victim(&mut fpga, &["fc1", "fc2", "fc3"], 1).unwrap();
    let strikes: Vec<u32> = (0..64).map(|_| rng.gen_range(10u32..60)).collect();
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    group.bench_function("fig5b_slice_64pt_mlp", |b| {
        b.iter(|| {
            black_box(par::map_items(&strikes, |&n| {
                let mut fpga = fpga.clone();
                let scheme = plan_attack(&profile, "fc1", n).expect("fits");
                fpga.scheduler_mut().load_scheme(&scheme).expect("fits");
                fpga.scheduler_mut().arm(true).expect("armed");
                let run = fpga.run_inference();
                evaluate_attack(
                    &q,
                    fpga.schedule(),
                    &run,
                    images.iter().map(|(x, y)| (x, *y)),
                    FaultModel::paper(),
                    1,
                )
                .attacked_accuracy
            }))
        });
    });
    group.finish();
}

fn bench_tdc(c: &mut Criterion) {
    c.bench_function("tdc/sample", |b| {
        let mut tdc = TdcSensor::calibrated(TdcConfig::default(), 100.0, 90).unwrap();
        b.iter(|| black_box(tdc.sample(black_box(0.97))));
    });
}

fn bench_dsp(c: &mut Criterion) {
    c.bench_function("dsp/issue_tick_nominal", |b| {
        let mut dsp = DspSlice::new(FaultModel::paper());
        let mut rng = StdRng::seed_from_u64(0);
        let mut i = 0i32;
        b.iter(|| {
            i = i.wrapping_add(1);
            dsp.issue(DspOp { a: i & 0x7F, b: 101, d: 3 });
            black_box(dsp.tick(1.0, &mut rng))
        });
    });
    c.bench_function("dsp/issue_tick_glitched", |b| {
        let mut dsp = DspSlice::new(FaultModel::paper());
        let mut rng = StdRng::seed_from_u64(0);
        let mut i = 0i32;
        b.iter(|| {
            i = i.wrapping_add(1);
            dsp.issue(DspOp { a: i & 0x7F, b: 101, d: 3 });
            black_box(dsp.tick(0.80, &mut rng))
        });
    });
}

fn bench_quant_inference(c: &mut Criterion) {
    let net = mlp(&mut StdRng::seed_from_u64(0));
    let q = QuantizedNetwork::from_sequential(&net, &[1, 28, 28], QFormat::paper()).unwrap();
    let x = Tensor::full(&[1, 28, 28], 0.4);
    c.bench_function("quant/mlp_infer_logits", |b| {
        b.iter(|| black_box(q.infer_logits(black_box(&x))));
    });
}

fn bench_drc(c: &mut Criterion) {
    let bank = StrikerBank::new(1_000).unwrap();
    let netlist = bank.netlist();
    c.bench_function("drc/check_striker_1000_cells", |b| {
        b.iter(|| black_box(drc::check(black_box(&netlist)).is_deployable()));
    });
}

criterion_group!(
    benches,
    bench_pdn,
    bench_conv,
    bench_tdc,
    bench_dsp,
    bench_quant_inference,
    bench_drc,
    bench_fig5b_slice
);
criterion_main!(benches);
