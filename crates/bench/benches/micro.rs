//! Criterion micro-benchmarks of the simulation substrates: the costs
//! that bound how fast the figure harnesses can sweep.

use accel::dsp::{DspOp, DspSlice};
use accel::fault::FaultModel;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use deepstrike::striker::StrikerBank;
use deepstrike::tdc::{TdcConfig, TdcSensor};
use dnn::fixed::QFormat;
use dnn::quant::QuantizedNetwork;
use dnn::tensor::Tensor;
use dnn::zoo::mlp;
use fpga_fabric::drc;
use pdn::grid::SpatialPdn;
use pdn::rlc::LumpedPdn;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_pdn(c: &mut Criterion) {
    c.bench_function("pdn/lumped_step", |b| {
        let mut pdn = LumpedPdn::zynq_like();
        b.iter(|| black_box(pdn.step(black_box(1.3), 1e-9)));
    });
    c.bench_function("pdn/spatial_step_160_nodes", |b| {
        let mut grid = SpatialPdn::zynq_like();
        let node = grid.node_at_fraction(0.2, 0.5);
        grid.inject(node, 1.0).unwrap();
        b.iter(|| black_box(grid.step(1e-9)));
    });
}

fn bench_tdc(c: &mut Criterion) {
    c.bench_function("tdc/sample", |b| {
        let mut tdc = TdcSensor::calibrated(TdcConfig::default(), 100.0, 90).unwrap();
        b.iter(|| black_box(tdc.sample(black_box(0.97))));
    });
}

fn bench_dsp(c: &mut Criterion) {
    c.bench_function("dsp/issue_tick_nominal", |b| {
        let mut dsp = DspSlice::new(FaultModel::paper());
        let mut rng = StdRng::seed_from_u64(0);
        let mut i = 0i32;
        b.iter(|| {
            i = i.wrapping_add(1);
            dsp.issue(DspOp { a: i & 0x7F, b: 101, d: 3 });
            black_box(dsp.tick(1.0, &mut rng))
        });
    });
    c.bench_function("dsp/issue_tick_glitched", |b| {
        let mut dsp = DspSlice::new(FaultModel::paper());
        let mut rng = StdRng::seed_from_u64(0);
        let mut i = 0i32;
        b.iter(|| {
            i = i.wrapping_add(1);
            dsp.issue(DspOp { a: i & 0x7F, b: 101, d: 3 });
            black_box(dsp.tick(0.80, &mut rng))
        });
    });
}

fn bench_quant_inference(c: &mut Criterion) {
    let net = mlp(&mut StdRng::seed_from_u64(0));
    let q = QuantizedNetwork::from_sequential(&net, &[1, 28, 28], QFormat::paper()).unwrap();
    let x = Tensor::full(&[1, 28, 28], 0.4);
    c.bench_function("quant/mlp_infer_logits", |b| {
        b.iter(|| black_box(q.infer_logits(black_box(&x))));
    });
}

fn bench_drc(c: &mut Criterion) {
    let bank = StrikerBank::new(1_000).unwrap();
    let netlist = bank.netlist();
    c.bench_function("drc/check_striker_1000_cells", |b| {
        b.iter(|| black_box(drc::check(black_box(&netlist)).is_deployable()));
    });
}

criterion_group!(
    benches,
    bench_pdn,
    bench_tdc,
    bench_dsp,
    bench_quant_inference,
    bench_drc
);
criterion_main!(benches);
