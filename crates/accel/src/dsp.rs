//! Cycle-level DSP48E1-like slice model.
//!
//! The paper's victim configures its DSPs "to add two inputs and multiply
//! with the third input" — `P = (A + D) × B` — "which is the configuration
//! for convolution computation", and fetches the result after five clock
//! cycles (the DSPs have no result-ready signal). This module models that
//! pipeline behaviourally: ops flow through a fixed-latency pipe, each op
//! remembers the worst rail voltage it saw in flight, and at the capture
//! cycle the [`FaultModel`](crate::fault::FaultModel) decides whether the
//! output register got the right value, the previous value (duplication) or
//! garbage (random fault).

use std::collections::VecDeque;

use rand::Rng;

use crate::fault::{FaultModel, MacFault};

/// Inputs of one `(A + D) × B` operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DspOp {
    /// Pre-adder input A.
    pub a: i32,
    /// Multiplier input B.
    pub b: i32,
    /// Pre-adder input D.
    pub d: i32,
}

impl DspOp {
    /// The mathematically correct result.
    pub fn correct(&self) -> i64 {
        (i64::from(self.a) + i64::from(self.d)) * i64::from(self.b)
    }
}

/// A completed DSP operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DspResult {
    /// The op as issued.
    pub op: DspOp,
    /// The value captured in the P register.
    pub value: i64,
    /// What the glitch did to it.
    pub fault: MacFault,
}

impl DspResult {
    /// Whether the captured value equals the correct product.
    ///
    /// A duplication fault can coincidentally capture the right value when
    /// two consecutive ops have equal products; this checks the value, not
    /// the fault label.
    pub fn is_correct(&self) -> bool {
        self.value == self.op.correct()
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct InFlight {
    op: DspOp,
    age: usize,
    min_voltage: f64,
}

/// One DSP slice with a five-stage result pipeline.
///
/// # Example
///
/// ```
/// use accel::dsp::{DspOp, DspSlice};
/// use accel::fault::FaultModel;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut dsp = DspSlice::new(FaultModel::paper());
/// dsp.issue(DspOp { a: 3, b: 5, d: 2 });
/// let mut result = None;
/// for _ in 0..DspSlice::LATENCY {
///     result = dsp.tick(1.0, &mut rng);
/// }
/// assert_eq!(result.unwrap().value, 25);
/// ```
#[derive(Debug, Clone)]
pub struct DspSlice {
    fault_model: FaultModel,
    pipe: VecDeque<InFlight>,
    last_p: i64,
    issued: u64,
    completed: u64,
}

impl DspSlice {
    /// Result latency in cycles (issue to capture), as in the paper's
    /// fetch-after-five-cycles harness.
    pub const LATENCY: usize = 5;

    /// Creates an idle slice.
    pub fn new(fault_model: FaultModel) -> Self {
        DspSlice { fault_model, pipe: VecDeque::new(), last_p: 0, issued: 0, completed: 0 }
    }

    /// The fault model in use.
    pub fn fault_model(&self) -> &FaultModel {
        &self.fault_model
    }

    /// Issues one op into the pipeline (one issue per cycle is the
    /// caller's responsibility; the model does not enforce initiation
    /// intervals).
    pub fn issue(&mut self, op: DspOp) {
        self.pipe.push_back(InFlight { op, age: 0, min_voltage: f64::INFINITY });
        self.issued += 1;
    }

    /// Number of ops currently in flight.
    pub fn in_flight(&self) -> usize {
        self.pipe.len()
    }

    /// Total ops issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Total ops completed.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Advances one clock cycle at the given rail voltage. Returns the op
    /// captured this cycle, if any.
    pub fn tick(&mut self, voltage: f64, rng: &mut impl Rng) -> Option<DspResult> {
        for op in &mut self.pipe {
            op.age += 1;
            op.min_voltage = op.min_voltage.min(voltage);
        }
        if self.pipe.front().is_some_and(|f| f.age >= Self::LATENCY) {
            let f = self.pipe.pop_front().expect("front just checked");
            // The capture stage (this cycle's voltage) is the critical
            // path; the earlier stages carry extra slack and only corrupt
            // under much deeper in-flight droop. Small products exercise
            // less of the multiplier array (shorter carry chains).
            let correct = f.op.correct();
            let scale = FaultModel::path_scale(
                correct.clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32,
            );
            let fault =
                self.fault_model.sample_pipelined_scaled(voltage, f.min_voltage, scale, rng);
            let value = match fault {
                MacFault::None => correct,
                MacFault::Duplicate => self.last_p,
                MacFault::Random => {
                    // Garbage capture: corrupt product-magnitude bits (the
                    // multiplier array output) — patternless from the
                    // observer's point of view.
                    let mask = i64::from(rng.gen_range(1u32..(1 << 14)));
                    correct ^ mask
                }
            };
            // The correct product settles in P one cycle later regardless
            // (what the paper calls the duplicated result being "absorbed
            // by more serial summations" downstream).
            self.last_p = correct;
            self.completed += 1;
            return Some(DspResult { op: f.op, value, fault });
        }
        None
    }

    /// Drains the pipeline at a constant voltage, returning remaining ops.
    pub fn drain(&mut self, voltage: f64, rng: &mut impl Rng) -> Vec<DspResult> {
        let mut out = Vec::with_capacity(self.pipe.len());
        while !self.pipe.is_empty() {
            if let Some(r) = self.tick(voltage, rng) {
                out.push(r);
            }
        }
        out
    }
}

/// Aggregated fault statistics over a batch of DSP results.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultTally {
    /// Ops that captured correctly.
    pub correct: u64,
    /// Duplication faults.
    pub duplicate: u64,
    /// Random faults.
    pub random: u64,
}

impl FaultTally {
    /// Accumulates one result.
    pub fn record(&mut self, r: &DspResult) {
        match r.fault {
            MacFault::None => self.correct += 1,
            MacFault::Duplicate => self.duplicate += 1,
            MacFault::Random => self.random += 1,
        }
    }

    /// Total ops recorded.
    pub fn total(&self) -> u64 {
        self.correct + self.duplicate + self.random
    }

    /// Duplication-fault rate.
    pub fn duplicate_rate(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.duplicate as f64 / self.total() as f64
    }

    /// Random-fault rate.
    pub fn random_rate(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.random as f64 / self.total() as f64
    }

    /// Combined fault rate (the paper's "total fault rate").
    pub fn total_fault_rate(&self) -> f64 {
        self.duplicate_rate() + self.random_rate()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn computes_a_plus_d_times_b() {
        let op = DspOp { a: 7, b: -3, d: 5 };
        assert_eq!(op.correct(), -36);
    }

    #[test]
    fn latency_is_five_cycles() {
        let mut dsp = DspSlice::new(FaultModel::paper());
        let mut r = rng();
        dsp.issue(DspOp { a: 1, b: 2, d: 3 });
        for _ in 0..DspSlice::LATENCY - 1 {
            assert!(dsp.tick(1.0, &mut r).is_none());
        }
        let out = dsp.tick(1.0, &mut r).expect("result after 5 ticks");
        assert_eq!(out.value, 8);
        assert_eq!(out.fault, MacFault::None);
        assert!(out.is_correct());
    }

    #[test]
    fn pipelined_back_to_back_ops() {
        let mut dsp = DspSlice::new(FaultModel::paper());
        let mut r = rng();
        let mut results = Vec::new();
        for i in 0..10i32 {
            dsp.issue(DspOp { a: i, b: 1, d: 0 });
            if let Some(out) = dsp.tick(1.0, &mut r) {
                results.push(out);
            }
        }
        results.extend(dsp.drain(1.0, &mut r));
        assert_eq!(results.len(), 10);
        for (i, res) in results.iter().enumerate() {
            assert_eq!(res.value, i as i64, "in-order completion");
        }
        assert_eq!(dsp.completed(), 10);
        assert_eq!(dsp.in_flight(), 0);
    }

    /// Runs 400 single-op trials with a one-cycle glitch of depth `v` at
    /// pipeline cycle `glitch_cycle` and returns the fault tally.
    fn glitch_trials(v: f64, glitch_cycle: usize) -> FaultTally {
        let mut tally = FaultTally::default();
        let mut r = rng();
        for trial in 0..400 {
            let mut dsp = DspSlice::new(FaultModel::paper());
            dsp.issue(DspOp { a: trial, b: 3, d: 1 });
            for cycle in 0..DspSlice::LATENCY {
                let vc = if cycle == glitch_cycle { v } else { 1.0 };
                if let Some(out) = dsp.tick(vc, &mut r) {
                    tally.record(&out);
                }
            }
        }
        tally
    }

    #[test]
    fn capture_cycle_glitch_faults_reliably() {
        // A deep glitch on the capture edge (the critical stage) faults
        // nearly every op; at nominal voltage nothing faults.
        let hit = glitch_trials(0.72, DspSlice::LATENCY - 1);
        assert!(hit.total_fault_rate() > 0.9, "glitched rate {}", hit.total_fault_rate());
        let miss = glitch_trials(1.0, 0);
        assert_eq!(miss.total_fault_rate(), 0.0);
    }

    #[test]
    fn mid_flight_glitch_needs_deeper_droop_and_randomises() {
        // The non-capture stages carry extra slack: a moderate mid-flight
        // glitch is harmless, a deep one corrupts the cone (random fault).
        let moderate = glitch_trials(0.84, 2);
        assert_eq!(
            moderate.total_fault_rate(),
            0.0,
            "moderate mid-flight glitch must be absorbed by stage slack"
        );
        let deep = glitch_trials(0.62, 2);
        assert!(deep.total_fault_rate() > 0.5, "deep rate {}", deep.total_fault_rate());
        assert_eq!(deep.duplicate, 0, "mid-cone corruption is always random");
    }

    #[test]
    fn duplication_fault_outputs_previous_result() {
        // Force duplication by choosing a voltage where duplication
        // dominates, and verify the stale-value semantics.
        let model = FaultModel::paper();
        // Find the voltage with the highest duplication probability (the
        // jitter-vs-window geometry caps it near 0.5).
        let mut v = 1.0;
        let mut best = (1.0, 0.0f64);
        while v > 0.7 {
            let p = model.probabilities(v).duplicate;
            if p > best.1 {
                best = (v, p);
            }
            v -= 0.001;
        }
        let v = best.0;
        assert!(best.1 > 0.15, "no duplication-prone voltage found (peak {})", best.1);
        let mut r = rng();
        let mut dsp = DspSlice::new(FaultModel::paper());
        let mut outs = Vec::new();
        // Full-width operands so the ops exercise the whole critical path
        // (the closed-form voltage search above assumes scale = 1).
        for i in 1..=40i32 {
            dsp.issue(DspOp { a: 100 + i, b: 120, d: 7 });
            if let Some(out) = dsp.tick(v, &mut r) {
                outs.push(out);
            }
        }
        outs.extend(dsp.drain(v, &mut r));
        let dups: Vec<&DspResult> =
            outs.iter().filter(|o| o.fault == MacFault::Duplicate).collect();
        assert!(!dups.is_empty(), "expected duplication faults at v = {v}");
        for d in dups {
            let idx = (d.op.a - 101) as usize;
            if idx > 0 {
                assert_eq!(d.value, outs[idx - 1].op.correct(), "stale previous result");
            }
        }
    }

    #[test]
    fn random_faults_corrupt_value() {
        let mut r = rng();
        let mut dsp = DspSlice::new(FaultModel::paper());
        let mut corrupted = 0;
        let mut total = 0;
        for i in 0..200i32 {
            dsp.issue(DspOp { a: i, b: 7, d: 2 });
            if let Some(out) = dsp.tick(0.70, &mut r) {
                total += 1;
                assert_eq!(out.fault, MacFault::Random, "deep droop randomises");
                if !out.is_correct() {
                    corrupted += 1;
                }
            }
        }
        let _ = total;
        assert!(corrupted > 150, "random faults must corrupt values: {corrupted}");
    }

    #[test]
    fn tally_rates() {
        let mut t = FaultTally::default();
        assert_eq!(t.total_fault_rate(), 0.0);
        let op = DspOp { a: 1, b: 1, d: 0 };
        t.record(&DspResult { op, value: 1, fault: MacFault::None });
        t.record(&DspResult { op, value: 0, fault: MacFault::Duplicate });
        t.record(&DspResult { op, value: 9, fault: MacFault::Random });
        t.record(&DspResult { op, value: 9, fault: MacFault::Random });
        assert_eq!(t.total(), 4);
        assert!((t.duplicate_rate() - 0.25).abs() < 1e-12);
        assert!((t.random_rate() - 0.5).abs() < 1e-12);
        assert!((t.total_fault_rate() - 0.75).abs() < 1e-12);
    }
}
