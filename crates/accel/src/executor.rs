//! Fault-aware integer inference.
//!
//! This executor replays the exact MAC-level arithmetic of
//! [`dnn::quant::QuantizedNetwork`] (the two agree bit-for-bit when no
//! faults fire — see the integration tests) while consulting a [`MacHook`]
//! on every multiply. The hook decides, per op, whether the DSP captured
//! the correct product, a stale one (duplication fault) or garbage (random
//! fault); the attack crate supplies hooks driven by its strike schedule,
//! and tests use [`FixedRateHook`].
//!
//! Fault semantics follow §IV-A of the paper:
//!
//! * **Duplication** — the accumulator receives the *previous* product the
//!   PE computed; the correct product lands next cycle and is "absorbed by
//!   more serial summations" (so long dense accumulations shrug it off,
//!   which is why FC1 suffers much less than CONV2).
//! * **Random** — the product is XOR-corrupted in its low bits, which after
//!   `tanh` saturation ruins that output element.
//!
//! Pooling runs in fabric LUTs with large timing slack; it only faults at
//! droops far deeper than the striker produces (see
//! [`pool_fault_model`]), so strikes timed into `pool1` mostly waste
//! themselves — visible in the reproduced Fig. 5b.

use dnn::quant::{Activation, CodeMap, QConv, QDense, QLayer, QuantizedNetwork};
use dnn::tensor::Tensor;
use rand::Rng;

use crate::fault::{DspTiming, FaultModel, MacFault};

/// Per-MAC fault decision callback.
pub trait MacHook {
    /// Decides the fate of op `op_index` (0-based within the stage) of
    /// stage `stage_index` (0-based within the network), given the weight
    /// and activation codes it multiplies — small products exercise less
    /// of the DSP's critical path (see
    /// [`FaultModel::path_scale`](crate::fault::FaultModel::path_scale)).
    fn fault(&mut self, stage_index: usize, op_index: u64, weight: i8, activation: i8) -> MacFault;
}

/// A hook that never faults (reference behaviour).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl MacHook for NoFaults {
    fn fault(&mut self, _stage: usize, _op: u64, _w: i8, _x: i8) -> MacFault {
        MacFault::None
    }
}

/// A hook applying fixed per-op fault probabilities to every stage —
/// useful for tests and for the paper's "blind attack" baseline arithmetic.
#[derive(Debug, Clone)]
pub struct FixedRateHook<R: Rng> {
    /// Probability of a duplication fault per op.
    pub duplicate: f64,
    /// Probability of a random fault per op.
    pub random: f64,
    /// RNG for sampling.
    pub rng: R,
}

impl<R: Rng> MacHook for FixedRateHook<R> {
    fn fault(&mut self, _stage: usize, _op: u64, _w: i8, _x: i8) -> MacFault {
        let x: f64 = self.rng.gen();
        if x < self.random {
            MacFault::Random
        } else if x < self.random + self.duplicate {
            MacFault::Duplicate
        } else {
            MacFault::None
        }
    }
}

/// The timing of the fabric pooling comparators: single data rate with a
/// short LUT path, so slack is huge and the striker cannot realistically
/// reach its fault threshold (≈ 0.63 V).
pub fn pool_fault_model() -> FaultModel {
    FaultModel::new(
        DspTiming {
            stage_delay_ps: 3000.0,
            budget_ps: 10_000.0,
            window_frac: 0.12,
            jitter_frac: 0.10,
        },
        pdn::delay::DelayModel::default(),
    )
}

/// Counts of faults the executor actually applied during one inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AppliedFaults {
    /// Duplication faults applied.
    pub duplicate: u64,
    /// Random faults applied.
    pub random: u64,
}

impl AppliedFaults {
    /// Total faults applied.
    pub fn total(&self) -> u64 {
        self.duplicate + self.random
    }
}

/// Runs one inference with fault injection; returns the final-stage
/// accumulators (full-precision logits) and the applied-fault tally.
///
/// # Panics
///
/// Panics if `input` does not match the network's input shape.
pub fn infer_with_faults(
    net: &QuantizedNetwork,
    input: &Tensor,
    hook: &mut dyn MacHook,
    rng: &mut impl Rng,
) -> (Vec<i32>, AppliedFaults) {
    let mut map = net.quantize_input(input);
    let mut tally = AppliedFaults::default();
    let last = net.layers().len() - 1;
    for (stage_index, stage) in net.layers().iter().enumerate() {
        match stage {
            QLayer::Conv(c) => {
                map = run_conv(net, c, &map, stage_index, hook, rng, &mut tally);
            }
            QLayer::MaxPool { window, .. } => {
                // Pool comparators do not share the DSP timing; strikes at
                // attack-level droop cannot fault them, so the hook is not
                // consulted (see `pool_fault_model` for the margin).
                map = net.run_stage(stage, &map);
                let _ = window;
            }
            QLayer::Dense(d) => {
                let accs = run_dense(d, &map, stage_index, hook, rng, &mut tally);
                if stage_index == last {
                    return (accs, tally);
                }
                let codes = accs
                    .iter()
                    .map(|&acc| match d.activation {
                        Activation::Tanh => net.tanh_code(acc),
                        Activation::None => {
                            (acc as f32 / net.format().scale()).round().clamp(-128.0, 127.0) as i8
                        }
                    })
                    .collect();
                map = CodeMap { shape: vec![d.outputs], codes };
            }
        }
    }
    (map.codes.iter().map(|&c| i32::from(c)).collect(), tally)
}

#[allow(clippy::too_many_arguments)]
fn run_conv(
    net: &QuantizedNetwork,
    c: &QConv,
    input: &CodeMap,
    stage_index: usize,
    hook: &mut dyn MacHook,
    rng: &mut impl Rng,
    tally: &mut AppliedFaults,
) -> CodeMap {
    assert_eq!(input.shape[0], c.in_channels, "conv input channels");
    let (h, w) = (input.shape[1], input.shape[2]);
    let (oh, ow) = (h - c.kernel + 1, w - c.kernel + 1);
    let mut codes = vec![0i8; c.out_channels * oh * ow];
    let mut op_index = 0u64;
    // Per-PE P registers: with round-robin issue, the product a given DSP
    // produced before op `i` is op `i − PE_COUNT`, not `i − 1`.
    let mut last_products = DupRing::default();
    for oc in 0..c.out_channels {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc: i32 = c.bias[oc];
                for ic in 0..c.in_channels {
                    for ky in 0..c.kernel {
                        for kx in 0..c.kernel {
                            let wv = c.weights
                                [((oc * c.in_channels + ic) * c.kernel + ky) * c.kernel + kx];
                            let xv = input.codes[(ic * h + oy + ky) * w + ox + kx];
                            let product = i32::from(wv) * i32::from(xv);
                            // Conv engines sum through adder trees: a late
                            // product misses its slot, so duplication
                            // faults corrupt conv outputs unconditionally.
                            acc += apply_fault(
                                product,
                                hook.fault(stage_index, op_index, wv, xv),
                                false,
                                &mut last_products,
                                rng,
                                tally,
                                stage_index,
                                op_index,
                            );
                            op_index += 1;
                        }
                    }
                }
                codes[(oc * oh + oy) * ow + ox] = match c.activation {
                    Activation::Tanh => net.tanh_code(acc),
                    Activation::None => {
                        (acc as f32 / net.format().scale()).round().clamp(-128.0, 127.0) as i8
                    }
                };
            }
        }
    }
    CodeMap { shape: vec![c.out_channels, oh, ow], codes }
}

fn run_dense(
    d: &QDense,
    input: &CodeMap,
    stage_index: usize,
    hook: &mut dyn MacHook,
    rng: &mut impl Rng,
    tally: &mut AppliedFaults,
) -> Vec<i32> {
    assert_eq!(input.codes.len(), d.inputs, "dense input size");
    let mut accs = vec![0i32; d.outputs];
    let mut op_index = 0u64;
    let mut last_products = DupRing::default();
    for (o, acc_out) in accs.iter_mut().enumerate() {
        let mut acc: i32 = d.bias[o];
        let row = &d.weights[o * d.inputs..(o + 1) * d.inputs];
        for (k, (wv, xv)) in row.iter().zip(&input.codes).enumerate() {
            let product = i32::from(*wv) * i32::from(*xv);
            // Dense stages accumulate serially on one DSP: a late product
            // still lands next cycle ("absorbed by more serial
            // summations"), so only a duplication at the fetch deadline
            // (the chain's last op) leaves a stale value.
            acc += apply_fault(
                product,
                hook.fault(stage_index, op_index, *wv, *xv),
                k + 1 < d.inputs,
                &mut last_products,
                rng,
                tally,
                stage_index,
                op_index,
            );
            op_index += 1;
        }
        *acc_out = acc;
    }
    accs
}

/// Applies one fault decision to a product inside an accumulation chain.
///
/// Duplication faults are the "result arrives one cycle late" species.
/// When `absorbed` is true (mid-chain op of a *serial* accumulation, i.e. a
/// dense stage), the late product still lands next cycle and the sum is
/// unharmed — the paper's "absorbed by more serial summations". Otherwise
/// (conv adder trees, or a fetch-deadline op) the stale previous product is
/// summed instead. Random faults corrupt unconditionally.
/// Ring of the last product each PE produced (round-robin issue over
/// [`DupRing::PE_COUNT`] DSPs).
#[derive(Debug, Clone, Default)]
struct DupRing {
    ring: [i32; DupRing::PE_COUNT],
    pos: usize,
}

impl DupRing {
    /// Matches [`crate::schedule::AccelConfig::default`]'s `pe_count`.
    const PE_COUNT: usize = 8;

    /// Returns the issuing PE's previous product and records the new one.
    fn exchange(&mut self, product: i32) -> i32 {
        let stale = self.ring[self.pos];
        self.ring[self.pos] = product;
        self.pos = (self.pos + 1) % Self::PE_COUNT;
        stale
    }
}

#[allow(clippy::too_many_arguments)]
fn apply_fault(
    product: i32,
    fault: MacFault,
    absorbed: bool,
    last_products: &mut DupRing,
    rng: &mut impl Rng,
    tally: &mut AppliedFaults,
    stage_index: usize,
    op_index: u64,
) -> i32 {
    let stale = last_products.exchange(product);
    if fault != MacFault::None {
        trace::emit(|| trace::Event::MacFault {
            stage: stage_index as u32,
            op: op_index,
            kind: match fault {
                MacFault::Random => trace::FaultKind::Random,
                _ => trace::FaultKind::Duplicate,
            },
        });
    }
    match fault {
        MacFault::None => product,
        MacFault::Duplicate => {
            tally.duplicate += 1;
            if absorbed {
                product
            } else {
                stale
            }
        }
        MacFault::Random => {
            tally.random += 1;
            product ^ rng.gen_range(1i32..(1 << 16))
        }
    }
}

/// Classification with fault injection: argmax of faulty logits.
pub fn predict_with_faults(
    net: &QuantizedNetwork,
    input: &Tensor,
    hook: &mut dyn MacHook,
    rng: &mut impl Rng,
) -> usize {
    let (logits, _) = infer_with_faults(net, input, hook, rng);
    logits
        .iter()
        .enumerate()
        .max_by_key(|(i, &v)| (v, std::cmp::Reverse(*i)))
        .map(|(i, _)| i)
        .expect("non-empty logits")
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use dnn::fixed::QFormat;
    use dnn::lenet::lenet5;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn qnet(seed: u64) -> QuantizedNetwork {
        let net = lenet5(&mut StdRng::seed_from_u64(seed));
        QuantizedNetwork::from_sequential(&net, &[1, 28, 28], QFormat::paper()).unwrap()
    }

    #[test]
    fn no_faults_matches_reference_bit_for_bit() {
        let q = qnet(3);
        let mut rng = StdRng::seed_from_u64(0);
        for k in 0..5 {
            let x = Tensor::full(&[1, 28, 28], 0.1 + 0.15 * k as f32);
            let (logits, tally) = infer_with_faults(&q, &x, &mut NoFaults, &mut rng);
            assert_eq!(logits, q.infer_logits(&x), "divergence on input {k}");
            assert_eq!(tally.total(), 0);
        }
    }

    #[test]
    fn full_random_faulting_changes_logits() {
        let q = qnet(4);
        let x = Tensor::full(&[1, 28, 28], 0.4);
        let mut rng = StdRng::seed_from_u64(1);
        let mut hook = FixedRateHook { duplicate: 0.0, random: 1.0, rng: StdRng::seed_from_u64(2) };
        let (logits, tally) = infer_with_faults(&q, &x, &mut hook, &mut rng);
        assert_ne!(logits, q.infer_logits(&x));
        assert!(tally.random > 100_000, "every DSP op faulted: {}", tally.random);
        assert_eq!(tally.duplicate, 0);
    }

    #[test]
    fn duplication_is_much_gentler_than_random() {
        // Same fault count, different species: random corrupts logits far
        // more than duplication — the paper's CONV2-vs-FC1 explanation.
        let q = qnet(5);
        let x = Tensor::full(&[1, 28, 28], 0.35);
        let clean = q.infer_logits(&x);
        let l1 = |a: &[i32], b: &[i32]| -> i64 {
            a.iter().zip(b).map(|(x, y)| i64::from((x - y).abs())).sum()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let mut dup_hook =
            FixedRateHook { duplicate: 0.3, random: 0.0, rng: StdRng::seed_from_u64(4) };
        let (dup_logits, dup_tally) = infer_with_faults(&q, &x, &mut dup_hook, &mut rng);
        let mut rnd_hook =
            FixedRateHook { duplicate: 0.0, random: 0.3, rng: StdRng::seed_from_u64(4) };
        let (rnd_logits, rnd_tally) = infer_with_faults(&q, &x, &mut rnd_hook, &mut rng);
        assert!(dup_tally.duplicate > 0 && rnd_tally.random > 0);
        let dup_err = l1(&dup_logits, &clean);
        let rnd_err = l1(&rnd_logits, &clean);
        assert!(
            rnd_err > dup_err * 3,
            "random error {rnd_err} must dwarf duplication error {dup_err}"
        );
    }

    #[test]
    fn hook_sees_correct_stage_indices_and_op_counts() {
        struct Recorder {
            per_stage: Vec<u64>,
        }
        impl MacHook for Recorder {
            fn fault(&mut self, stage_index: usize, _op: u64, _w: i8, _x: i8) -> MacFault {
                if self.per_stage.len() <= stage_index {
                    self.per_stage.resize(stage_index + 1, 0);
                }
                self.per_stage[stage_index] += 1;
                MacFault::None
            }
        }
        let q = qnet(6);
        let x = Tensor::zeros(&[1, 28, 28]);
        let mut rec = Recorder { per_stage: Vec::new() };
        let mut rng = StdRng::seed_from_u64(0);
        infer_with_faults(&q, &x, &mut rec, &mut rng);
        // Stages: conv1(0), pool1(1, no hook), conv2(2), fc1(3), fc2(4).
        assert_eq!(rec.per_stage.len(), 5);
        assert_eq!(rec.per_stage[0], 6 * 24 * 24 * 25);
        assert_eq!(rec.per_stage[1], 0, "pool never consults the hook");
        assert_eq!(rec.per_stage[2], 16 * 8 * 8 * 150);
        assert_eq!(rec.per_stage[3], 1024 * 120);
        assert_eq!(rec.per_stage[4], 120 * 10);
    }

    #[test]
    fn pool_fault_model_needs_extreme_droop() {
        let m = pool_fault_model();
        assert_eq!(m.probabilities(0.80).total(), 0.0, "striker-level droop is harmless");
        assert!(m.probabilities(0.55).total() > 0.0, "but deep brown-out still faults");
    }

    #[test]
    fn predict_with_faults_matches_reference_when_clean() {
        let q = qnet(7);
        let x = Tensor::full(&[1, 28, 28], 0.25);
        let mut rng = StdRng::seed_from_u64(9);
        assert_eq!(predict_with_faults(&q, &x, &mut NoFaults, &mut rng), q.predict(&x));
    }
}
