//! Per-layer execution schedules.
//!
//! The victim accelerator executes one layer at a time (the paper's Fig. 1b
//! shows clean per-layer phases with "stalls" between them). The schedule
//! maps each stage of a quantised network to a cycle window, using a
//! throughput model with the two properties the paper's §IV analysis rests
//! on:
//!
//! * convolutions are compute-bound on the DSP array (all PEs busy, double
//!   data rate ⇒ 2 MACs/DSP/cycle), while
//! * fully connected layers are weight-bandwidth-bound (each weight is used
//!   once, so the memory interface, not the DSP array, sets the pace) —
//!   which is why FC1 "takes the longest time to execute" despite fewer
//!   MACs than CONV2.

use dnn::quant::{QLayer, QuantizedNetwork};

/// What kind of compute a stage performs (drives power + fault modelling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// DSP-array convolution.
    Conv,
    /// Fabric (LUT) max-pooling.
    Pool,
    /// DSP fully connected, bandwidth-bound.
    Dense,
}

/// Accelerator throughput parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelConfig {
    /// Number of DSP processing elements.
    pub pe_count: usize,
    /// Accelerator clock in MHz.
    pub clock_mhz: f64,
    /// Whether DSPs run double data rate (2 MACs per DSP per cycle).
    pub double_data_rate: bool,
    /// Weights the memory interface can stream per cycle (bounds FC).
    pub weight_bandwidth: usize,
    /// Pooling comparators operating per cycle.
    pub pool_lanes: usize,
    /// Idle cycles inserted between layers (the Fig. 1b "stalls").
    pub stall_cycles: u64,
}

impl Default for AccelConfig {
    fn default() -> Self {
        AccelConfig {
            pe_count: 8,
            clock_mhz: 100.0,
            double_data_rate: true,
            weight_bandwidth: 4,
            pool_lanes: 4,
            stall_cycles: 600,
        }
    }
}

impl AccelConfig {
    /// MAC throughput per cycle for convolution stages.
    pub fn conv_macs_per_cycle(&self) -> u64 {
        (self.pe_count * if self.double_data_rate { 2 } else { 1 }) as u64
    }

    /// MAC throughput per cycle for dense stages (bandwidth-bound).
    pub fn dense_macs_per_cycle(&self) -> u64 {
        self.weight_bandwidth as u64
    }

    /// Clock period in nanoseconds.
    pub fn period_ns(&self) -> f64 {
        1000.0 / self.clock_mhz
    }
}

/// One stage's cycle window.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerWindow {
    /// Stage name (e.g. `conv2`).
    pub name: String,
    /// Compute class.
    pub kind: StageKind,
    /// First cycle of the window.
    pub start_cycle: u64,
    /// Window length in cycles.
    pub cycles: u64,
    /// MAC (or comparator) operations executed in the window.
    pub ops: u64,
    /// Output elements produced.
    pub outputs: u64,
}

impl LayerWindow {
    /// One past the last cycle of the window.
    pub fn end_cycle(&self) -> u64 {
        self.start_cycle + self.cycles
    }

    /// Whether `cycle` falls inside the window.
    pub fn contains(&self, cycle: u64) -> bool {
        (self.start_cycle..self.end_cycle()).contains(&cycle)
    }

    /// The cycle at which op `i` executes (ops spread uniformly).
    ///
    /// # Panics
    ///
    /// Panics if `i >= ops`.
    pub fn cycle_of_op(&self, i: u64) -> u64 {
        assert!(i < self.ops, "op {i} out of range ({} ops)", self.ops);
        self.start_cycle + i * self.cycles / self.ops.max(1)
    }
}

/// The full execution schedule of one inference.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    config: AccelConfig,
    windows: Vec<LayerWindow>,
    total_cycles: u64,
}

impl Schedule {
    /// Builds the schedule for a quantised network.
    ///
    /// # Panics
    ///
    /// Panics if the network input shape is not `[c, h, w]`.
    pub fn for_network(net: &QuantizedNetwork, config: &AccelConfig) -> Self {
        let shape = net.input_shape();
        assert_eq!(shape.len(), 3, "expected [c, h, w] input");
        let mut cur = [shape[0], shape[1], shape[2]];
        let mut cycle = config.stall_cycles; // initial load stall
        let mut windows = Vec::new();
        for layer in net.layers() {
            let (kind, ops, outputs, next) = match layer {
                QLayer::Conv(c) => {
                    let oh = cur[1] - c.kernel + 1;
                    let ow = cur[2] - c.kernel + 1;
                    let outputs = (c.out_channels * oh * ow) as u64;
                    let ops = outputs * (c.in_channels * c.kernel * c.kernel) as u64;
                    (StageKind::Conv, ops, outputs, [c.out_channels, oh, ow])
                }
                QLayer::MaxPool { window, .. } => {
                    let oh = cur[1] / window;
                    let ow = cur[2] / window;
                    let outputs = (cur[0] * oh * ow) as u64;
                    let ops = outputs * (window * window) as u64;
                    (StageKind::Pool, ops, outputs, [cur[0], oh, ow])
                }
                QLayer::Dense(d) => {
                    let ops = (d.inputs * d.outputs) as u64;
                    (StageKind::Dense, ops, d.outputs as u64, [d.outputs, 1, 1])
                }
            };
            let throughput = match kind {
                StageKind::Conv => config.conv_macs_per_cycle(),
                StageKind::Pool => config.pool_lanes as u64,
                StageKind::Dense => config.dense_macs_per_cycle(),
            }
            .max(1);
            let cycles = ops.div_ceil(throughput).max(1);
            windows.push(LayerWindow {
                name: layer.name().to_string(),
                kind,
                start_cycle: cycle,
                cycles,
                ops,
                outputs,
            });
            cycle += cycles + config.stall_cycles;
            cur = next;
        }
        Schedule { config: *config, windows, total_cycles: cycle }
    }

    /// Throughput configuration.
    pub fn config(&self) -> &AccelConfig {
        &self.config
    }

    /// Stage windows in execution order.
    pub fn windows(&self) -> &[LayerWindow] {
        &self.windows
    }

    /// Window of the named stage.
    pub fn window(&self, name: &str) -> Option<&LayerWindow> {
        self.windows.iter().find(|w| w.name == name)
    }

    /// Total cycles for one inference, including stalls.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Total wall-clock time for one inference in microseconds.
    pub fn total_us(&self) -> f64 {
        self.total_cycles as f64 * self.config.period_ns() / 1000.0
    }

    /// Which stage (if any) is executing at `cycle`; `None` means a stall.
    pub fn stage_at(&self, cycle: u64) -> Option<&LayerWindow> {
        self.windows.iter().find(|w| w.contains(cycle))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use dnn::fixed::QFormat;
    use dnn::lenet::lenet5;
    use dnn::quant::QuantizedNetwork;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lenet_schedule() -> Schedule {
        let net = lenet5(&mut StdRng::seed_from_u64(0));
        let q = QuantizedNetwork::from_sequential(&net, &[1, 28, 28], QFormat::paper()).unwrap();
        Schedule::for_network(&q, &AccelConfig::default())
    }

    #[test]
    fn lenet_windows_have_paper_op_counts() {
        let s = lenet_schedule();
        let names: Vec<&str> = s.windows().iter().map(|w| w.name.as_str()).collect();
        assert_eq!(names, vec!["conv1", "pool1", "conv2", "fc1", "fc2"]);
        assert_eq!(s.window("conv1").unwrap().ops, 6 * 24 * 24 * 25);
        assert_eq!(s.window("conv2").unwrap().ops, 16 * 8 * 8 * 6 * 25);
        assert_eq!(s.window("fc1").unwrap().ops, 1024 * 120);
        assert_eq!(s.window("fc2").unwrap().ops, 120 * 10);
    }

    #[test]
    fn fc1_is_the_longest_layer_and_conv2_longest_conv() {
        // The paper: "FC1 takes the longest time to execute", while CONV2
        // is the biggest conv and receives the most strikes.
        let s = lenet_schedule();
        let fc1 = s.window("fc1").unwrap().cycles;
        for w in s.windows() {
            if w.name != "fc1" {
                assert!(w.cycles < fc1, "{} ({} cycles) >= fc1 ({fc1})", w.name, w.cycles);
            }
        }
        let conv1 = s.window("conv1").unwrap().cycles;
        let conv2 = s.window("conv2").unwrap().cycles;
        assert!(conv2 > conv1, "conv2 must run longer than conv1");
    }

    #[test]
    fn conv2_window_supports_thousands_of_strikes() {
        // The paper applies up to 4500 strikes while CONV2 executes; with a
        // one-cycle strike and one-cycle recovery that needs >= 9000 cycles.
        let s = lenet_schedule();
        assert!(
            s.window("conv2").unwrap().cycles >= 9000,
            "conv2 window too short: {}",
            s.window("conv2").unwrap().cycles
        );
    }

    #[test]
    fn windows_are_disjoint_and_ordered_with_stalls() {
        let s = lenet_schedule();
        let stall = s.config().stall_cycles;
        let mut prev_end = 0u64;
        for w in s.windows() {
            assert_eq!(w.start_cycle, prev_end + stall, "stall before {}", w.name);
            prev_end = w.end_cycle();
        }
        assert_eq!(s.total_cycles(), prev_end + stall);
    }

    #[test]
    fn stage_lookup() {
        let s = lenet_schedule();
        let conv1 = s.window("conv1").unwrap();
        assert_eq!(s.stage_at(conv1.start_cycle).unwrap().name, "conv1");
        assert!(s.stage_at(conv1.start_cycle - 1).is_none(), "stall before conv1");
        assert!(s.window("nonexistent").is_none());
    }

    #[test]
    fn op_cycles_are_within_window_and_monotone() {
        let s = lenet_schedule();
        let w = s.window("conv2").unwrap();
        let mut prev = 0u64;
        for i in [0, 1, w.ops / 2, w.ops - 1] {
            let c = w.cycle_of_op(i);
            assert!(w.contains(c), "op {i} cycle {c} outside window");
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn ddr_halves_conv_time() {
        let net = lenet5(&mut StdRng::seed_from_u64(0));
        let q = QuantizedNetwork::from_sequential(&net, &[1, 28, 28], QFormat::paper()).unwrap();
        let ddr = Schedule::for_network(&q, &AccelConfig::default());
        let sdr = Schedule::for_network(
            &q,
            &AccelConfig { double_data_rate: false, ..AccelConfig::default() },
        );
        let c_ddr = ddr.window("conv2").unwrap().cycles;
        let c_sdr = sdr.window("conv2").unwrap().cycles;
        assert!((c_sdr as f64 / c_ddr as f64 - 2.0).abs() < 0.01);
    }

    #[test]
    fn total_time_is_sub_millisecond() {
        let s = lenet_schedule();
        let us = s.total_us();
        assert!((50.0..2000.0).contains(&us), "inference {us} µs out of plausible range");
    }
}
