//! Voltage-dependent DSP fault model.
//!
//! §IV-A of the paper observes two fault species in glitched DSP slices:
//!
//! * **Duplication faults** — "the DSP output is the correct result of the
//!   previous input. In this case, the DSP computation simply takes more
//!   cycles to complete and cannot produce the correct result in time."
//!   Electrically: the droop-stretched path misses the capture edge by a
//!   small margin, so the output register re-captures its old contents; the
//!   correct product lands one cycle later.
//! * **Random faults** — "the faulty output does not have obvious
//!   patterns." The violation is deep enough that internal nodes are still
//!   switching at capture, latching garbage.
//!
//! The model: an op's realised path delay is
//! `D = D_nom · factor(V_min) · u`, where `factor` is the alpha-power
//! voltage→delay law from [`pdn::delay`], `V_min` the worst rail voltage
//! while the op was in flight, and `u` a per-op data-dependent jitter drawn
//! uniformly from `[1−j, 1+j]` (different operand patterns exercise
//! different-length carry and booth chains). With capture budget `B` and a
//! metastability window `W`:
//!
//! * `D ≤ B` → correct;
//! * `B < D ≤ B + W` → duplication fault;
//! * `D > B + W` → random fault.
//!
//! Because `u` is uniform, closed-form per-op probabilities exist
//! ([`FaultModel::probabilities`]); the cycle-level simulator *samples* the
//! same distribution, so statistical and cycle modes agree (tested in the
//! integration suite).

use pdn::delay::DelayModel;
use rand::Rng;

/// What happened to one MAC operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MacFault {
    /// Result captured correctly.
    None,
    /// Output register holds the previous op's result.
    Duplicate,
    /// Output register latched garbage.
    Random,
}

/// DSP path-timing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DspTiming {
    /// Nominal (full-voltage) critical-path delay of the capture-limiting
    /// pipeline stage, in picoseconds.
    pub stage_delay_ps: f64,
    /// Capture budget in picoseconds (clock period; half that under DDR).
    pub budget_ps: f64,
    /// Metastability window as a fraction of the budget: violations inside
    /// `budget .. budget·(1+window)` duplicate, beyond it they randomise.
    pub window_frac: f64,
    /// Half-width of the data-dependent delay jitter (uniform ±fraction).
    pub jitter_frac: f64,
}

impl DspTiming {
    /// The paper's victim configuration: (A+D)×B DSPs behind a 100 MHz
    /// accelerator clock, double-data-rate ("the designers usually adopt
    /// double-data-rate while using DSP"), so the capture budget is half a
    /// 10 ns period. The nominal path uses 80% of it — the design meets
    /// timing at nominal voltage, as the paper's mapping-tool run confirms.
    pub fn paper_ddr() -> Self {
        DspTiming {
            stage_delay_ps: 3220.0,
            budget_ps: 5000.0,
            window_frac: 0.08,
            jitter_frac: 0.18,
        }
    }

    /// Same pipeline clocked single-data-rate: full 10 ns budget. Used by
    /// the ablation bench to show why DDR DSPs are the vulnerable ones.
    pub fn paper_sdr() -> Self {
        DspTiming { budget_ps: 10_000.0, ..DspTiming::paper_ddr() }
    }

    /// Nominal slack in picoseconds.
    pub fn nominal_slack_ps(&self) -> f64 {
        self.budget_ps - self.stage_delay_ps
    }
}

/// Per-op fault probabilities at a given rail voltage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultProbabilities {
    /// Probability of a duplication fault.
    pub duplicate: f64,
    /// Probability of a random fault.
    pub random: f64,
}

impl FaultProbabilities {
    /// Combined fault probability.
    pub fn total(&self) -> f64 {
        self.duplicate + self.random
    }
}

/// The voltage → fault-species model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    timing: DspTiming,
    delay: DelayModel,
}

impl FaultModel {
    /// Creates a fault model from timing and delay-law parameters.
    pub fn new(timing: DspTiming, delay: DelayModel) -> Self {
        FaultModel { timing, delay }
    }

    /// The paper's configuration: DDR DSP timing and default delay law.
    pub fn paper() -> Self {
        FaultModel::new(DspTiming::paper_ddr(), DelayModel::default())
    }

    /// Timing parameters.
    pub fn timing(&self) -> &DspTiming {
        &self.timing
    }

    /// Delay-law parameters.
    pub fn delay(&self) -> &DelayModel {
        &self.delay
    }

    /// Closed-form per-op fault probabilities at rail voltage `v`.
    ///
    /// With `D = D_nom·f(v)·u`, `u ~ U[1−j, 1+j]`:
    /// `P(D > x) = clamp(((1+j) − x/(D_nom·f)) / 2j, 0, 1)`.
    pub fn probabilities(&self, v: f64) -> FaultProbabilities {
        let t = &self.timing;
        let scaled = t.stage_delay_ps * self.delay.factor(v);
        let j = t.jitter_frac;
        let exceed = |x_ps: f64| -> f64 {
            if j <= 0.0 {
                return if scaled > x_ps { 1.0 } else { 0.0 };
            }
            (((1.0 + j) - x_ps / scaled) / (2.0 * j)).clamp(0.0, 1.0)
        };
        let p_any = exceed(t.budget_ps);
        let p_random = exceed(t.budget_ps * (1.0 + t.window_frac));
        FaultProbabilities { duplicate: p_any - p_random, random: p_random }
    }

    /// Samples the fault outcome of one op at worst in-flight voltage `v`,
    /// assuming the full critical path is exercised (`scale = 1`).
    pub fn sample(&self, v: f64, rng: &mut impl Rng) -> MacFault {
        self.sample_scaled(v, 1.0, rng)
    }

    /// Samples with a path-length scale in `(0, 1]` (see
    /// [`FaultModel::path_scale`]).
    pub fn sample_scaled(&self, v: f64, scale: f64, rng: &mut impl Rng) -> MacFault {
        if scale <= 0.0 {
            return MacFault::None;
        }
        let t = &self.timing;
        let u = 1.0 + rng.gen_range(-t.jitter_frac..=t.jitter_frac);
        let d = t.stage_delay_ps * scale * self.delay.factor(v) * u;
        if d <= t.budget_ps {
            MacFault::None
        } else if d <= t.budget_ps * (1.0 + t.window_frac) {
            MacFault::Duplicate
        } else {
            MacFault::Random
        }
    }

    /// Fraction of the critical path a multiply with the given product
    /// magnitude exercises.
    ///
    /// The DSP's critical path runs through the multiplier's carry/booth
    /// chains, whose active length grows with the operands' bit widths: a
    /// zero product toggles nothing (no timing fault possible), small
    /// products use a fraction of the array, full-width products exercise
    /// it all. This is the data dependence behind the paper's observation
    /// that layers crunching large (tanh-saturated) activations fault far
    /// more readily than the input layer's small pixel values.
    pub fn path_scale(product: i32) -> f64 {
        let magnitude = product.unsigned_abs();
        if magnitude == 0 {
            return 0.0;
        }
        let bits = (32 - magnitude.leading_zeros()).min(14) as f64;
        0.85 + 0.15 * bits / 14.0
    }

    /// The lowest voltage at which every op is still fault-free (worst-case
    /// jitter included).
    pub fn safe_voltage(&self) -> f64 {
        let t = &self.timing;
        // Need D_nom·f(v)·(1+j) ≤ B.
        let needed_factor = t.budget_ps / (t.stage_delay_ps * (1.0 + t.jitter_frac));
        // factor(v) = ((v_nom − v_th)/(v − v_th))^α  ⇒ invert.
        let d = self.delay;
        d.v_th + (d.v_nom - d.v_th) / needed_factor.powf(1.0 / d.alpha)
    }

    /// Slack margin of the non-capture pipeline stages relative to the
    /// critical capture stage: earlier stages use ~25% less of the budget,
    /// so they only fail under much deeper droop.
    pub const EARLY_STAGE_MARGIN: f64 = 0.75;

    /// A fault model for the non-capture (earlier) pipeline stages.
    pub fn early_stage(&self) -> FaultModel {
        FaultModel {
            timing: DspTiming {
                stage_delay_ps: self.timing.stage_delay_ps * Self::EARLY_STAGE_MARGIN,
                ..self.timing
            },
            delay: self.delay,
        }
    }

    /// Samples the fate of one op given the rail voltage at its *capture*
    /// cycle and the worst voltage over its whole flight.
    ///
    /// The capture stage is the critical path (fails first); the earlier
    /// stages carry [`Self::EARLY_STAGE_MARGIN`] more slack and only fail
    /// under much deeper droop, producing mid-cone corruption — always a
    /// *random* fault, since partially-evaluated logic is latched
    /// downstream.
    pub fn sample_pipelined(
        &self,
        v_capture: f64,
        v_min_in_flight: f64,
        rng: &mut impl Rng,
    ) -> MacFault {
        self.sample_pipelined_scaled(v_capture, v_min_in_flight, 1.0, rng)
    }

    /// [`Self::sample_pipelined`] with an operand-dependent path scale.
    pub fn sample_pipelined_scaled(
        &self,
        v_capture: f64,
        v_min_in_flight: f64,
        scale: f64,
        rng: &mut impl Rng,
    ) -> MacFault {
        match self.sample_scaled(v_capture, scale, rng) {
            MacFault::None => match self.early_stage().sample_scaled(v_min_in_flight, scale, rng) {
                MacFault::None => MacFault::None,
                _ => MacFault::Random,
            },
            fault => fault,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn nominal_voltage_is_fault_free() {
        let m = FaultModel::paper();
        let p = m.probabilities(1.0);
        assert_eq!(p.total(), 0.0, "design meets timing at nominal voltage");
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            assert_eq!(m.sample(1.0, &mut rng), MacFault::None);
        }
    }

    #[test]
    fn deep_droop_is_always_random() {
        let m = FaultModel::paper();
        let p = m.probabilities(0.70);
        assert!(p.random > 0.99, "random {p:?}");
        assert!(p.duplicate < 0.01);
    }

    #[test]
    fn duplication_band_sits_between() {
        let m = FaultModel::paper();
        // Sweep down: total must be monotone non-decreasing; duplication
        // must rise then fall (it converts into random faults).
        let mut v = 1.0;
        let mut prev_total = 0.0;
        let mut peak_dup: f64 = 0.0;
        while v > 0.70 {
            let p = m.probabilities(v);
            assert!(p.total() >= prev_total - 1e-9, "total non-monotone at {v}");
            prev_total = p.total();
            peak_dup = peak_dup.max(p.duplicate);
            v -= 0.002;
        }
        // With ±18% data-dependent jitter the species mix smoothly; the
        // duplication phase peaks around a third of ops.
        assert!(peak_dup > 0.15, "duplication phase invisible: peak {peak_dup}");
        let end = m.probabilities(0.70);
        assert!(end.duplicate < peak_dup / 2.0, "duplication must decay at deep droop");
    }

    #[test]
    fn sampling_matches_closed_form() {
        let m = FaultModel::paper();
        let v = 0.82;
        let p = m.probabilities(v);
        assert!(p.total() > 0.1, "test voltage must sit inside the fault band");
        let mut rng = StdRng::seed_from_u64(7);
        let n = 40_000usize;
        let mut dup = 0usize;
        let mut rnd = 0usize;
        for _ in 0..n {
            match m.sample(v, &mut rng) {
                MacFault::Duplicate => dup += 1,
                MacFault::Random => rnd += 1,
                MacFault::None => {}
            }
        }
        let dup_rate = dup as f64 / n as f64;
        let rnd_rate = rnd as f64 / n as f64;
        assert!((dup_rate - p.duplicate).abs() < 0.02, "dup {dup_rate} vs {}", p.duplicate);
        assert!((rnd_rate - p.random).abs() < 0.02, "rand {rnd_rate} vs {}", p.random);
    }

    #[test]
    fn ddr_is_more_vulnerable_than_sdr() {
        let delay = DelayModel::default();
        let ddr = FaultModel::new(DspTiming::paper_ddr(), delay);
        let sdr = FaultModel::new(DspTiming::paper_sdr(), delay);
        let v = 0.84;
        assert!(ddr.probabilities(v).total() > 0.0);
        assert_eq!(sdr.probabilities(v).total(), 0.0, "SDR has huge slack");
        assert!(sdr.safe_voltage() < ddr.safe_voltage());
    }

    #[test]
    fn safe_voltage_is_consistent() {
        let m = FaultModel::paper();
        let v_safe = m.safe_voltage();
        assert!((0.5..1.0).contains(&v_safe), "safe voltage {v_safe}");
        assert_eq!(m.probabilities(v_safe + 0.005).total(), 0.0);
        assert!(m.probabilities(v_safe - 0.01).total() > 0.0);
    }

    #[test]
    fn paper_timing_has_positive_nominal_slack() {
        assert!(DspTiming::paper_ddr().nominal_slack_ps() > 0.0);
        assert!(
            DspTiming::paper_sdr().nominal_slack_ps() > DspTiming::paper_ddr().nominal_slack_ps()
        );
    }
}
