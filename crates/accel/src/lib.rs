//! Cycle-level DNN accelerator simulator — the DeepStrike victim.
//!
//! The paper's victim is an open-source FPGA CNN engine whose processing
//! elements are DSP48 slices configured as `(A + D) × B` with a
//! fetch-after-five-cycles result path, clocked double data rate. This
//! crate models that machine at the level the attack interacts with it:
//!
//! * [`dsp`] — one DSP slice as a five-stage pipeline whose capture
//!   behaviour depends on the rail voltage seen in flight.
//! * [`fault`] — the voltage → {duplication, random} fault model (§IV-A),
//!   with closed-form probabilities and a sampling path that agree.
//! * [`pe`] — a DSP array with round-robin issue, driving the Fig. 6b
//!   characterisation.
//! * [`schedule`] — per-layer cycle windows with conv-compute-bound /
//!   FC-bandwidth-bound throughput, reproducing the paper's layer-duration
//!   ordering (FC1 longest; CONV2 the longest conv).
//! * [`power`] — activity-based current signatures (conv ≫ pool
//!   fluctuation) that give the TDC its per-layer fingerprints.
//! * [`executor`] — fault-aware integer inference that replays
//!   [`dnn::quant`] arithmetic exactly, consulting a per-MAC fault hook.
//!
//! # Example: fault characterisation at a fixed droop
//!
//! ```
//! use accel::dsp::DspOp;
//! use accel::fault::FaultModel;
//! use accel::pe::PeArray;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut pe = PeArray::new(8, FaultModel::paper());
//! let ops = (0..2000).map(|i| DspOp { a: i, b: 7, d: 3 });
//! let tally = pe.characterize(ops, 0.83, &mut rng);
//! assert!(tally.total_fault_rate() > 0.0);
//! ```

#![deny(clippy::unwrap_used)]

pub mod dsp;
pub mod executor;
pub mod fault;
pub mod pe;
pub mod power;
pub mod schedule;
