//! DSP processing-element array.
//!
//! A thin round-robin wrapper over [`DspSlice`]s used by the Fig. 6
//! characterisation harness: the paper feeds "10,000 randomly generated
//! inputs" through DSP slices and strikes while they execute.

use rand::Rng;

use crate::dsp::{DspOp, DspResult, DspSlice, FaultTally};
use crate::fault::FaultModel;

/// An array of identical DSP slices with round-robin issue.
#[derive(Debug, Clone)]
pub struct PeArray {
    slices: Vec<DspSlice>,
    next: usize,
}

impl PeArray {
    /// Creates `n` slices sharing one fault model.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, fault_model: FaultModel) -> Self {
        assert!(n > 0, "at least one PE required");
        PeArray { slices: vec![DspSlice::new(fault_model); n], next: 0 }
    }

    /// Number of slices.
    pub fn len(&self) -> usize {
        self.slices.len()
    }

    /// Whether the array has no slices (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }

    /// Issues an op to the next slice round-robin.
    pub fn issue(&mut self, op: DspOp) {
        self.slices[self.next].issue(op);
        self.next = (self.next + 1) % self.slices.len();
    }

    /// Ticks every slice one cycle at the given voltage; returns all
    /// results captured this cycle.
    pub fn tick(&mut self, voltage: f64, rng: &mut impl Rng) -> Vec<DspResult> {
        self.slices.iter_mut().filter_map(|s| s.tick(voltage, rng)).collect()
    }

    /// Drains every slice at a constant voltage.
    pub fn drain(&mut self, voltage: f64, rng: &mut impl Rng) -> Vec<DspResult> {
        let mut out = Vec::new();
        for s in &mut self.slices {
            out.extend(s.drain(voltage, rng));
        }
        out
    }

    /// Ops still in flight across all slices.
    pub fn in_flight(&self) -> usize {
        self.slices.iter().map(DspSlice::in_flight).sum()
    }

    /// Runs a whole batch at a fixed voltage (one issue per slice per
    /// cycle) and tallies the fault outcomes — the inner loop of the
    /// Fig. 6b characterisation.
    pub fn characterize(
        &mut self,
        ops: impl Iterator<Item = DspOp>,
        voltage: f64,
        rng: &mut impl Rng,
    ) -> FaultTally {
        let mut tally = FaultTally::default();
        for op in ops {
            self.issue(op);
            for r in self.tick(voltage, rng) {
                tally.record(&r);
            }
        }
        for r in self.drain(voltage, rng) {
            tally.record(&r);
        }
        tally
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_robin_distributes_ops() {
        let mut pe = PeArray::new(4, FaultModel::paper());
        for i in 0..8 {
            pe.issue(DspOp { a: i, b: 1, d: 0 });
        }
        assert_eq!(pe.in_flight(), 8);
        assert_eq!(pe.len(), 4);
    }

    #[test]
    fn characterize_clean_batch() {
        let mut pe = PeArray::new(4, FaultModel::paper());
        let mut rng = StdRng::seed_from_u64(0);
        let ops = (0..1000).map(|i| DspOp { a: i, b: 3, d: 1 });
        let tally = pe.characterize(ops, 1.0, &mut rng);
        assert_eq!(tally.total(), 1000);
        assert_eq!(tally.total_fault_rate(), 0.0);
        assert_eq!(pe.in_flight(), 0);
    }

    #[test]
    fn characterize_glitched_batch_faults() {
        let mut pe = PeArray::new(4, FaultModel::paper());
        let mut rng = StdRng::seed_from_u64(0);
        let ops = (0..1000).map(|i| DspOp { a: i, b: 3, d: 1 });
        let tally = pe.characterize(ops, 0.72, &mut rng);
        assert_eq!(tally.total(), 1000);
        assert!(tally.total_fault_rate() > 0.95, "rate {}", tally.total_fault_rate());
    }

    #[test]
    #[should_panic(expected = "at least one PE")]
    fn zero_sized_array_panics() {
        PeArray::new(0, FaultModel::paper());
    }
}
