//! Activity-based current model.
//!
//! The TDC traces in the paper's Fig. 1b distinguish layers because each
//! layer type has a characteristic current signature: convolutions keep the
//! whole DSP array and its operand-fetch network toggling (high mean, large
//! fluctuation), pooling only moves comparators (low mean, small
//! fluctuation), dense layers sit in between, and stalls draw almost
//! nothing. The model combines a per-kind mean, a periodic component (the
//! row/tile rhythm of the loop nest) and deterministic pseudo-noise, so the
//! same cycle always yields the same current — traces are reproducible
//! without carrying an RNG through the co-simulation.

use crate::schedule::{Schedule, StageKind};

/// Current signature of one stage kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurrentSignature {
    /// Mean draw in amps while the stage executes.
    pub mean: f64,
    /// Peak amplitude of the periodic (loop-rhythm) component, in amps.
    pub ripple: f64,
    /// Period of the rhythm, in cycles.
    pub ripple_period: u64,
    /// Peak amplitude of the pseudo-random component, in amps.
    pub noise: f64,
}

/// Per-kind current signatures plus the idle floor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivityModel {
    /// Convolution signature.
    pub conv: CurrentSignature,
    /// Pooling signature.
    pub pool: CurrentSignature,
    /// Dense signature.
    pub dense: CurrentSignature,
    /// Static + clock-tree draw during stalls, in amps.
    pub idle: f64,
}

impl Default for ActivityModel {
    fn default() -> Self {
        ActivityModel {
            conv: CurrentSignature { mean: 1.10, ripple: 0.22, ripple_period: 96, noise: 0.25 },
            pool: CurrentSignature { mean: 0.52, ripple: 0.05, ripple_period: 48, noise: 0.08 },
            dense: CurrentSignature { mean: 0.90, ripple: 0.15, ripple_period: 256, noise: 0.16 },
            idle: 0.15,
        }
    }
}

impl ActivityModel {
    /// Signature for a stage kind.
    pub fn signature(&self, kind: StageKind) -> &CurrentSignature {
        match kind {
            StageKind::Conv => &self.conv,
            StageKind::Pool => &self.pool,
            StageKind::Dense => &self.dense,
        }
    }

    /// Victim current draw at an absolute schedule cycle, in amps.
    pub fn current_at(&self, schedule: &Schedule, cycle: u64) -> f64 {
        match schedule.stage_at(cycle) {
            None => self.idle,
            Some(w) => {
                let sig = self.signature(w.kind);
                let local = cycle - w.start_cycle;
                let phase = local % sig.ripple_period.max(1);
                let wave =
                    (phase as f64 / sig.ripple_period.max(1) as f64 * std::f64::consts::TAU).sin();
                let noise = hash_noise(cycle, stage_seed(&w.name));
                (sig.mean + sig.ripple * wave + sig.noise * noise).max(0.0)
            }
        }
    }
}

/// Deterministic per-cycle noise in `[-1, 1]` (SplitMix64 finaliser).
fn hash_noise(cycle: u64, seed: u64) -> f64 {
    let mut z = cycle.wrapping_add(seed).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z as f64 / u64::MAX as f64) * 2.0 - 1.0
}

fn stage_seed(name: &str) -> u64 {
    name.bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::schedule::AccelConfig;
    use dnn::fixed::QFormat;
    use dnn::lenet::lenet5;
    use dnn::quant::QuantizedNetwork;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schedule() -> Schedule {
        let net = lenet5(&mut StdRng::seed_from_u64(0));
        let q = QuantizedNetwork::from_sequential(&net, &[1, 28, 28], QFormat::paper()).unwrap();
        Schedule::for_network(&q, &AccelConfig::default())
    }

    fn window_stats(m: &ActivityModel, s: &Schedule, name: &str) -> (f64, f64) {
        let w = s.window(name).unwrap();
        let n = w.cycles.min(4000);
        let vals: Vec<f64> =
            (w.start_cycle..w.start_cycle + n).map(|c| m.current_at(s, c)).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
        (mean, var)
    }

    #[test]
    fn conv_draws_more_and_fluctuates_more_than_pool() {
        let m = ActivityModel::default();
        let s = schedule();
        let (conv_mean, conv_var) = window_stats(&m, &s, "conv2");
        let (pool_mean, pool_var) = window_stats(&m, &s, "pool1");
        assert!(conv_mean > 2.0 * pool_mean, "conv {conv_mean} vs pool {pool_mean}");
        assert!(conv_var > 5.0 * pool_var, "conv var {conv_var} vs pool var {pool_var}");
    }

    #[test]
    fn stalls_draw_the_idle_floor() {
        let m = ActivityModel::default();
        let s = schedule();
        assert_eq!(m.current_at(&s, 0), m.idle);
        let after = s.window("conv1").unwrap().end_cycle() + 1;
        assert_eq!(m.current_at(&s, after), m.idle);
    }

    #[test]
    fn current_is_deterministic_and_nonnegative() {
        let m = ActivityModel::default();
        let s = schedule();
        for c in (0..s.total_cycles()).step_by(997) {
            let a = m.current_at(&s, c);
            let b = m.current_at(&s, c);
            assert_eq!(a, b, "cycle {c} not deterministic");
            assert!(a >= 0.0);
        }
    }

    #[test]
    fn different_stages_have_different_noise_streams() {
        // Same local cycle offset in two conv layers must not produce the
        // same draw pattern (stage seed differs).
        let m = ActivityModel::default();
        let s = schedule();
        let c1 = s.window("conv1").unwrap();
        let c2 = s.window("conv2").unwrap();
        let diffs = (0..200u64)
            .filter(|&k| {
                (m.current_at(&s, c1.start_cycle + k) - m.current_at(&s, c2.start_cycle + k)).abs()
                    > 1e-9
            })
            .count();
        assert!(diffs > 150, "streams look identical: only {diffs}/200 differ");
    }

    #[test]
    fn hash_noise_is_in_range_and_spread() {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for c in 0..10_000u64 {
            let v = hash_noise(c, 12345);
            assert!((-1.0..=1.0).contains(&v));
            min = min.min(v);
            max = max.max(v);
        }
        assert!(min < -0.9 && max > 0.9, "noise poorly spread: [{min}, {max}]");
    }
}
