//! Property-based tests for the accelerator simulator.

use accel::dsp::{DspOp, DspSlice};
use accel::executor::{infer_with_faults, FixedRateHook, NoFaults};
use accel::fault::{DspTiming, FaultModel};
use accel::schedule::{AccelConfig, Schedule};
use dnn::fixed::QFormat;
use dnn::layers::{Conv2d, Dense, MaxPool2d, Tanh};
use dnn::network::Sequential;
use dnn::quant::QuantizedNetwork;
use dnn::tensor::Tensor;
use pdn::delay::DelayModel;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Fault probabilities are a valid, voltage-monotone distribution for
    /// any physically sensible timing parameters.
    #[test]
    fn probabilities_valid_and_monotone(
        stage in 2_000.0f64..4_800.0,
        window in 0.01f64..0.3,
        jitter in 0.02f64..0.3,
        v in 0.5f64..1.1,
    ) {
        let m = FaultModel::new(
            DspTiming { stage_delay_ps: stage, budget_ps: 5_000.0, window_frac: window, jitter_frac: jitter },
            DelayModel::default(),
        );
        let p = m.probabilities(v);
        prop_assert!(p.duplicate >= 0.0 && p.random >= 0.0);
        prop_assert!(p.total() <= 1.0 + 1e-12);
        let deeper = m.probabilities(v - 0.05);
        prop_assert!(deeper.total() >= p.total() - 1e-12);
    }

    /// Sampling at nominal voltage never faults for any op inputs.
    #[test]
    fn nominal_ops_never_fault(a in -128i32..128, b in -128i32..128, d in -128i32..128) {
        let mut dsp = DspSlice::new(FaultModel::paper());
        let mut rng = StdRng::seed_from_u64(7);
        dsp.issue(DspOp { a, b, d });
        let results = dsp.drain(1.0, &mut rng);
        prop_assert_eq!(results.len(), 1);
        prop_assert!(results[0].is_correct());
        prop_assert_eq!(results[0].value, (i64::from(a) + i64::from(d)) * i64::from(b));
    }

    /// Schedule windows are disjoint, ordered and cover every op exactly
    /// once, for arbitrary small conv architectures.
    #[test]
    fn schedule_invariants(
        out1 in 1usize..6,
        k1 in 1usize..4,
        hidden in 1usize..40,
        stall in 1u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = Sequential::new("t");
        net.push(Box::new(Conv2d::new("conv1", 1, out1, k1, &mut rng)));
        net.push(Box::new(Tanh::new("t1")));
        net.push(Box::new(MaxPool2d::new("pool1", 2)));
        let side = (12 - k1).div_ceil(2);
        net.push(Box::new(Dense::new("fc1", out1 * side * side, hidden, &mut rng)));
        net.push(Box::new(Dense::new("fc2", hidden, 10, &mut rng)));
        // Pool needs even input: only keep cases where 12-k1+1 is even.
        prop_assume!((12 - k1 + 1) % 2 == 0);
        let q = QuantizedNetwork::from_sequential(&net, &[1, 12, 12], QFormat::paper()).unwrap();
        let schedule = Schedule::for_network(
            &q,
            &AccelConfig { stall_cycles: stall, ..AccelConfig::default() },
        );
        let mut prev_end = 0u64;
        for w in schedule.windows() {
            prop_assert_eq!(w.start_cycle, prev_end + stall);
            prop_assert!(w.cycles >= 1);
            prop_assert!(w.ops >= w.outputs);
            prev_end = w.end_cycle();
        }
        prop_assert_eq!(schedule.total_cycles(), prev_end + stall);
        // cycle_of_op stays in range for boundary ops of every window.
        for w in schedule.windows() {
            for op in [0, w.ops - 1] {
                prop_assert!(w.contains(w.cycle_of_op(op)));
            }
        }
    }

    /// The executor's fault tally equals what the hook injected.
    #[test]
    fn executor_counts_what_the_hook_injects(dup in 0.0f64..0.2, rnd in 0.0f64..0.2, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Sequential::new("t");
        net.push(Box::new(Dense::new("fc1", 64, 16, &mut StdRng::seed_from_u64(2))));
        net.push(Box::new(Tanh::new("t1")));
        net.push(Box::new(Dense::new("fc2", 16, 4, &mut StdRng::seed_from_u64(3))));
        let q = QuantizedNetwork::from_sequential(&net, &[1, 8, 8], QFormat::paper()).unwrap();
        let x = Tensor::full(&[1, 8, 8], 0.3);
        let mut hook = FixedRateHook { duplicate: dup, random: rnd, rng: StdRng::seed_from_u64(seed) };
        let (_, tally) = infer_with_faults(&q, &x, &mut hook, &mut rng);
        let total_ops = (64 * 16 + 16 * 4) as f64;
        let expected = (dup + rnd) * total_ops;
        // Binomial tolerance: 5 sigma.
        let sigma = (total_ops * (dup + rnd) * (1.0 - dup - rnd).max(0.01)).sqrt();
        prop_assert!(
            (tally.total() as f64 - expected).abs() <= 5.0 * sigma + 3.0,
            "tally {} vs expected {expected}",
            tally.total()
        );
    }

    /// Fault-free execution matches the reference for random inputs.
    #[test]
    fn clean_execution_matches_reference(fill in 0.0f32..1.0, seed in 0u64..50) {
        let net = dnn::zoo::mlp(&mut StdRng::seed_from_u64(seed));
        let q = QuantizedNetwork::from_sequential(&net, &[1, 28, 28], QFormat::paper()).unwrap();
        let x = Tensor::full(&[1, 28, 28], fill);
        let mut rng = StdRng::seed_from_u64(0);
        let (logits, _) = infer_with_faults(&q, &x, &mut NoFaults, &mut rng);
        prop_assert_eq!(logits, q.infer_logits(&x));
    }
}
