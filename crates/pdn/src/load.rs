//! Named current-load bookkeeping.
//!
//! The co-simulation has several independent current sinks on the shared
//! rail — the victim accelerator, the striker bank, static leakage, and
//! optionally further tenants. A [`LoadBook`] aggregates them by name so
//! each component updates only its own draw each tick.

use std::collections::BTreeMap;

use crate::error::{PdnError, Result};

/// A set of named current loads with a stable total.
///
/// # Example
///
/// ```
/// use pdn::load::LoadBook;
///
/// let mut book = LoadBook::new();
/// book.set("leakage", 0.25)?;
/// book.set("victim", 1.2)?;
/// book.set("striker", 0.0)?;
/// assert!((book.total() - 1.45).abs() < 1e-12);
/// book.set("striker", 7.5)?;
/// assert!((book.total() - 8.95).abs() < 1e-12);
/// # Ok::<(), pdn::PdnError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LoadBook {
    loads: BTreeMap<String, f64>,
}

impl LoadBook {
    /// Creates an empty book.
    pub fn new() -> Self {
        LoadBook::default()
    }

    /// Sets the draw of one named load in amps, replacing any prior value.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidParameter`] for negative or non-finite
    /// currents.
    pub fn set(&mut self, name: &str, amps: f64) -> Result<()> {
        if !(amps.is_finite() && amps >= 0.0) {
            return Err(PdnError::InvalidParameter { name: "amps", value: amps });
        }
        self.loads.insert(name.to_string(), amps);
        Ok(())
    }

    /// Current draw of a named load, if registered.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.loads.get(name).copied()
    }

    /// Removes a load; returns its last value.
    pub fn remove(&mut self, name: &str) -> Option<f64> {
        self.loads.remove(name)
    }

    /// Sum of all loads in amps.
    pub fn total(&self) -> f64 {
        self.loads.values().sum()
    }

    /// Number of registered loads.
    pub fn len(&self) -> usize {
        self.loads.len()
    }

    /// Whether no loads are registered.
    pub fn is_empty(&self) -> bool {
        self.loads.is_empty()
    }

    /// Iterates `(name, amps)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.loads.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn set_replaces_and_totals() {
        let mut b = LoadBook::new();
        b.set("a", 1.0).unwrap();
        b.set("b", 2.0).unwrap();
        b.set("a", 0.5).unwrap();
        assert!((b.total() - 2.5).abs() < 1e-12);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn rejects_bad_values() {
        let mut b = LoadBook::new();
        assert!(b.set("x", -0.1).is_err());
        assert!(b.set("x", f64::INFINITY).is_err());
        assert!(b.is_empty());
    }

    #[test]
    fn remove_returns_last_value() {
        let mut b = LoadBook::new();
        b.set("x", 3.0).unwrap();
        assert_eq!(b.remove("x"), Some(3.0));
        assert_eq!(b.remove("x"), None);
        assert_eq!(b.total(), 0.0);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut b = LoadBook::new();
        b.set("z", 1.0).unwrap();
        b.set("a", 2.0).unwrap();
        let names: Vec<&str> = b.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "z"]);
    }
}
