//! Voltage → propagation-delay model.
//!
//! The fault mechanism in the paper: "the voltage drop increases the signal
//! propagation time in FPGA components that share the same PDN, inducing
//! timing violations and computation or data loading faults". This module
//! provides the standard alpha-power-law delay model used for that
//! conversion, plus slack helpers the DSP fault model builds on.

use crate::error::{PdnError, Result};

/// Alpha-power-law delay model: `t_pd(V) = t_nom · ((V_nom − V_th)/(V − V_th))^α`.
///
/// `α ≈ 1.3` for deep-submicron CMOS; `V_th` is the effective threshold.
/// As `V` approaches `V_th` the delay diverges — captured here with a
/// saturating cap so the simulation stays finite even through a crash-level
/// glitch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayModel {
    /// Nominal rail voltage in volts.
    pub v_nom: f64,
    /// Effective threshold voltage in volts.
    pub v_th: f64,
    /// Velocity-saturation exponent.
    pub alpha: f64,
    /// Largest delay multiplier returned (model saturation).
    pub max_factor: f64,
}

impl Default for DelayModel {
    fn default() -> Self {
        DelayModel { v_nom: 1.0, v_th: 0.35, alpha: 1.3, max_factor: 100.0 }
    }
}

impl DelayModel {
    /// Creates a validated model.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidParameter`] if `v_nom <= v_th`, or any
    /// field is non-finite/non-positive.
    pub fn new(v_nom: f64, v_th: f64, alpha: f64, max_factor: f64) -> Result<Self> {
        for (name, value) in
            [("v_nom", v_nom), ("v_th", v_th), ("alpha", alpha), ("max_factor", max_factor)]
        {
            if !(value.is_finite() && value > 0.0) {
                return Err(PdnError::InvalidParameter { name, value });
            }
        }
        if v_nom <= v_th {
            return Err(PdnError::InvalidParameter { name: "v_nom", value: v_nom });
        }
        if max_factor < 1.0 {
            return Err(PdnError::InvalidParameter { name: "max_factor", value: max_factor });
        }
        Ok(DelayModel { v_nom, v_th, alpha, max_factor })
    }

    /// Delay multiplier relative to nominal at voltage `v`.
    ///
    /// Returns 1.0 at `v = v_nom`, grows as `v` falls, saturates at
    /// [`DelayModel::max_factor`] at/below threshold. Overdrive (`v > v_nom`)
    /// speeds paths up (factor < 1), floored at 0.5.
    pub fn factor(&self, v: f64) -> f64 {
        if !v.is_finite() {
            return self.max_factor;
        }
        let headroom = v - self.v_th;
        if headroom <= 0.0 {
            return self.max_factor;
        }
        let nominal_headroom = self.v_nom - self.v_th;
        ((nominal_headroom / headroom).powf(self.alpha)).clamp(0.5, self.max_factor)
    }

    /// Scaled propagation delay in picoseconds.
    pub fn delay_ps(&self, nominal_ps: f64, v: f64) -> f64 {
        nominal_ps * self.factor(v)
    }

    /// The voltage below which a path with `nominal_ps` of logic delay
    /// misses a capture edge `budget_ps` after launch (i.e. the fault
    /// threshold voltage for that path).
    ///
    /// Solves `factor(v) = budget/nominal` for `v`. Returns `v_th` if even
    /// the saturated model cannot miss the budget (infinitely robust path)
    /// — callers treat voltages at/below the returned value as faulting.
    pub fn fault_threshold_voltage(&self, nominal_ps: f64, budget_ps: f64) -> f64 {
        if nominal_ps <= 0.0 || budget_ps <= nominal_ps * 0.5 {
            // Budget below the floored fastest delay: always faulting.
            return self.v_nom;
        }
        let required_factor = budget_ps / nominal_ps;
        if required_factor >= self.max_factor {
            return self.v_th;
        }
        // factor = ((v_nom - v_th)/(v - v_th))^alpha  =>
        // v = v_th + (v_nom - v_th) / factor^(1/alpha)
        self.v_th + (self.v_nom - self.v_th) / required_factor.powf(1.0 / self.alpha)
    }

    /// Timing slack in picoseconds for a path at voltage `v`:
    /// `budget − nominal·factor(v)`. Negative slack ⇒ timing violation.
    pub fn slack_ps(&self, nominal_ps: f64, budget_ps: f64, v: f64) -> f64 {
        budget_ps - self.delay_ps(nominal_ps, v)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn nominal_voltage_gives_unity_factor() {
        let m = DelayModel::default();
        assert!((m.factor(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn factor_is_monotone_decreasing_in_voltage() {
        let m = DelayModel::default();
        let mut prev = f64::INFINITY;
        let mut v = 0.30;
        while v < 1.2 {
            let f = m.factor(v);
            assert!(f <= prev + 1e-12, "factor must not increase with voltage");
            prev = f;
            v += 0.01;
        }
    }

    #[test]
    fn saturates_at_threshold_and_below() {
        let m = DelayModel::default();
        assert_eq!(m.factor(0.35), 100.0);
        assert_eq!(m.factor(0.0), 100.0);
        assert_eq!(m.factor(f64::NAN), 100.0);
    }

    #[test]
    fn overdrive_floors_at_half() {
        let m = DelayModel::default();
        assert!(m.factor(5.0) >= 0.5);
    }

    #[test]
    fn fault_threshold_roundtrips_with_factor() {
        let m = DelayModel::default();
        // A path with 4000 ps logic in a 5000 ps budget.
        let v_fault = m.fault_threshold_voltage(4000.0, 5000.0);
        assert!(v_fault > m.v_th && v_fault < m.v_nom, "threshold {v_fault}");
        // Exactly at the threshold the delay equals the budget.
        let d = m.delay_ps(4000.0, v_fault);
        assert!((d - 5000.0).abs() < 1.0, "delay at threshold {d}");
        // Slightly above: meets timing. Slightly below: violates.
        assert!(m.slack_ps(4000.0, 5000.0, v_fault + 0.01) > 0.0);
        assert!(m.slack_ps(4000.0, 5000.0, v_fault - 0.01) < 0.0);
    }

    #[test]
    fn tight_paths_fault_at_higher_voltage() {
        let m = DelayModel::default();
        let relaxed = m.fault_threshold_voltage(2500.0, 5000.0);
        let tight = m.fault_threshold_voltage(4500.0, 5000.0);
        assert!(
            tight > relaxed,
            "tighter path must fault earlier: tight {tight} vs relaxed {relaxed}"
        );
    }

    #[test]
    fn degenerate_budgets() {
        let m = DelayModel::default();
        assert_eq!(m.fault_threshold_voltage(1000.0, 100.0), m.v_nom, "impossible budget");
        assert_eq!(m.fault_threshold_voltage(10.0, 100_000.0), m.v_th, "unmissable budget");
    }

    #[test]
    fn constructor_validation() {
        assert!(DelayModel::new(0.3, 0.35, 1.3, 100.0).is_err(), "v_nom <= v_th");
        assert!(DelayModel::new(1.0, 0.35, -1.0, 100.0).is_err());
        assert!(DelayModel::new(1.0, 0.35, 1.3, 0.5).is_err());
        assert!(DelayModel::new(1.0, 0.35, 1.3, 100.0).is_ok());
    }
}
