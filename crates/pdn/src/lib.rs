//! Transient power-distribution-network (PDN) simulation.
//!
//! Every tenant on a multi-tenant FPGA shares the PDN; that shared
//! impedance is DeepStrike's attack surface. This crate provides the
//! electrical substrate the attack runs on:
//!
//! * [`rlc`] — a second-order lumped model of the package + die supply
//!   (series R–L into the on-die decoupling capacitance). A sudden current
//!   step produces the classic transient droop `ΔV ≈ ΔI·√(L/C)` followed by
//!   a damped recovery — exactly the glitch the power striker manufactures.
//! * [`grid`] — a spatial RC mesh layered on top of the lumped model, so a
//!   current transient injected in the attacker's region is seen attenuated
//!   in the victim's region depending on floorplan distance.
//! * [`load`] — current-load bookkeeping for multiple named tenants.
//! * [`delay`] — the alpha-power voltage→delay law that converts droop into
//!   timing-margin loss (and therefore DSP faults).
//! * [`thermal`] — a first-order thermal RC model; sustained striker
//!   activity heats the die, which the paper warns "may increase the
//!   temperature of the FPGA chip or even crash it".
//! * [`trace`] — voltage-trace recording with the statistics the TDC
//!   profiler consumes.
//! * [`analysis`] — droop metrics (worst droop, settling, glitch windows).
//!
//! # Example
//!
//! ```
//! use pdn::rlc::LumpedPdn;
//!
//! let mut pdn = LumpedPdn::zynq_like();
//! // 1 µs of quiet, then a 5 A striker burst for 10 ns.
//! let dt = 1e-9;
//! for _ in 0..1000 { pdn.step(0.5, dt); }
//! let quiet = pdn.voltage();
//! let mut worst = quiet;
//! for _ in 0..10 { worst = worst.min(pdn.step(5.5, dt)); }
//! assert!(worst < quiet - 0.02, "burst must droop the rail");
//! ```

#![deny(clippy::unwrap_used)]

pub mod analysis;
pub mod delay;
pub mod grid;
pub mod load;
pub mod rlc;
pub mod thermal;
pub mod trace;

mod error;

pub use error::{PdnError, Result};
