//! Second-order lumped PDN model.
//!
//! The supply path is modelled as the classic board→package→die ladder
//! collapsed to one stage: an ideal regulator `Vdd` behind a series
//! resistance `R` and inductance `L`, feeding the on-die decoupling
//! capacitance `C` that the logic draws its current from:
//!
//! ```text
//!   Vdd ──R──L──┬───────┬──
//!               │       │
//!               C     i_load(t)
//!               │       │
//!   GND ────────┴───────┴──
//! ```
//!
//! State equations (solved with semi-implicit Euler, which is symplectic and
//! stable for `dt·ω₀ < 1`):
//!
//! ```text
//!   L·di/dt = Vdd − v − R·i
//!   C·dv/dt = i − i_load
//! ```
//!
//! A current step `ΔI` produces a first droop of roughly `ΔI·√(L/C)`
//! (the PDN's characteristic impedance) plus the static `ΔI·R` IR drop —
//! this is the glitch mechanism the power striker exploits.

use crate::error::{PdnError, Result};

/// Electrical parameters of the lumped supply model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RlcParams {
    /// Regulator voltage in volts.
    pub vdd: f64,
    /// Series resistance in ohms.
    pub r: f64,
    /// Series inductance in henries.
    pub l: f64,
    /// On-die + package decoupling capacitance in farads.
    pub c: f64,
}

impl RlcParams {
    /// Validates that all parameters are positive and finite.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidParameter`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        let fields = [("vdd", self.vdd), ("r", self.r), ("l", self.l), ("c", self.c)];
        for (name, value) in fields {
            if !(value.is_finite() && value > 0.0) {
                return Err(PdnError::InvalidParameter { name, value });
            }
        }
        Ok(())
    }

    /// Characteristic impedance `√(L/C)` in ohms — the peak droop per amp
    /// of fast current step.
    pub fn characteristic_impedance(&self) -> f64 {
        (self.l / self.c).sqrt()
    }

    /// Natural (angular) frequency `1/√(LC)` in rad/s.
    pub fn omega0(&self) -> f64 {
        1.0 / (self.l * self.c).sqrt()
    }

    /// Damping ratio `ζ = (R/2)·√(C/L)`.
    pub fn damping_ratio(&self) -> f64 {
        self.r / 2.0 * (self.c / self.l).sqrt()
    }

    /// Largest stable timestep for the semi-implicit solver (one radian of
    /// the natural oscillation).
    pub fn max_dt(&self) -> f64 {
        1.0 / self.omega0()
    }
}

/// Lumped PDN with live state.
///
/// # Example
///
/// ```
/// use pdn::rlc::{LumpedPdn, RlcParams};
///
/// let mut pdn = LumpedPdn::new(RlcParams { vdd: 1.0, r: 0.02, l: 100e-12, c: 200e-9 })?;
/// let settled = pdn.settle(0.5);
/// assert!(settled < 1.0 && settled > 0.97, "static IR drop only");
/// # Ok::<(), pdn::PdnError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LumpedPdn {
    params: RlcParams,
    v: f64,
    i_l: f64,
}

impl LumpedPdn {
    /// Creates a PDN at its unloaded operating point (`v = Vdd`, `i = 0`).
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidParameter`] for non-physical parameters.
    pub fn new(params: RlcParams) -> Result<Self> {
        params.validate()?;
        Ok(LumpedPdn { params, v: params.vdd, i_l: 0.0 })
    }

    /// A parameterisation in the ballpark of a Zynq-7020 class device: a
    /// 1.0 V rail, 45 mΩ effective series resistance (regulator + package +
    /// grid IR), 100 pH loop inductance, 200 nF effective decap.
    /// `√(L/C)` ≈ 22 mΩ on top of the IR path, so a ≈ 3.6 A striker
    /// transient (24,000 cells) droops the rail by ≈ 0.24 V — the regime
    /// behind the paper's near-100% fault rate in Fig. 6b — while the
    /// victim's own ≈ 1 A activity modulates the rail by the few tens of
    /// millivolts that make layers readable on the TDC (Fig. 1b).
    pub fn zynq_like() -> Self {
        LumpedPdn::new(RlcParams { vdd: 1.0, r: 0.045, l: 100e-12, c: 200e-9 })
            .expect("static parameters are valid")
    }

    /// Model parameters.
    pub fn params(&self) -> &RlcParams {
        &self.params
    }

    /// Present die voltage in volts.
    pub fn voltage(&self) -> f64 {
        self.v
    }

    /// Present inductor (supply) current in amps.
    pub fn inductor_current(&self) -> f64 {
        self.i_l
    }

    /// Resets to the unloaded operating point.
    pub fn reset(&mut self) {
        self.v = self.params.vdd;
        self.i_l = 0.0;
    }

    /// Advances one timestep with the given load current and returns the
    /// new die voltage.
    ///
    /// Uses semi-implicit Euler: the inductor current is updated with the
    /// old voltage, then the capacitor voltage with the *new* current.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `dt` is within the stability bound
    /// ([`RlcParams::max_dt`]); release builds clamp instead.
    pub fn step(&mut self, i_load: f64, dt: f64) -> f64 {
        debug_assert!(
            dt <= self.params.max_dt(),
            "dt {dt:.3e} exceeds stability bound {:.3e}",
            self.params.max_dt()
        );
        let dt = dt.min(self.params.max_dt());
        let p = &self.params;
        self.i_l += dt * (p.vdd - self.v - p.r * self.i_l) / p.l;
        self.v += dt * (self.i_l - i_load) / p.c;
        self.v
    }

    /// Runs the model to steady state under a constant load and returns the
    /// settled voltage (`Vdd − I·R`).
    pub fn settle(&mut self, i_load: f64) -> f64 {
        // March several natural periods with strong numerical margin.
        let dt = self.params.max_dt() * 0.25;
        let steps = (400.0 / (dt * self.params.omega0())).ceil() as usize;
        for _ in 0..steps.max(1000) {
            self.step(i_load, dt);
        }
        // Snap to the analytic operating point to kill residual ringing.
        self.v = self.params.vdd - i_load * self.params.r;
        self.i_l = i_load;
        self.v
    }

    /// Analytic estimate of the worst transient droop for a fast current
    /// step of `delta_i` amps from steady state: `ΔI·(√(L/C) + R)`, clamped
    /// to the rail.
    pub fn droop_estimate(&self, delta_i: f64) -> f64 {
        (delta_i * (self.params.characteristic_impedance() + self.params.r))
            .clamp(0.0, self.params.vdd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pdn() -> LumpedPdn {
        LumpedPdn::zynq_like()
    }

    #[test]
    fn rejects_nonphysical_parameters() {
        for bad in [
            RlcParams { vdd: 0.0, r: 0.02, l: 1e-10, c: 2e-7 },
            RlcParams { vdd: 1.0, r: -1.0, l: 1e-10, c: 2e-7 },
            RlcParams { vdd: 1.0, r: 0.02, l: f64::NAN, c: 2e-7 },
            RlcParams { vdd: 1.0, r: 0.02, l: 1e-10, c: 0.0 },
        ] {
            assert!(LumpedPdn::new(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn static_operating_point_is_ir_drop() {
        let mut p = pdn();
        let v = p.settle(0.5);
        let expect = 1.0 - 0.5 * p.params().r;
        assert!((v - expect).abs() < 1e-6, "settled {v}, expected {expect}");
    }

    #[test]
    fn current_step_causes_transient_droop_then_recovery() {
        let mut p = pdn();
        p.settle(0.5);
        let v0 = p.voltage();
        let dt = 1e-9;
        // Strike: +8 A for 10 ns.
        let mut worst = v0;
        for _ in 0..10 {
            worst = worst.min(p.step(8.5, dt));
        }
        assert!(worst < v0 - 0.05, "droop too small: {}", v0 - worst);
        // Recovery: droop must decay once the load returns to quiescent.
        for _ in 0..20_000 {
            p.step(0.5, dt);
        }
        assert!((p.voltage() - v0).abs() < 0.02, "rail failed to recover: {}", p.voltage());
    }

    #[test]
    fn droop_scales_with_step_magnitude() {
        let dt = 1e-9;
        let droop_for = |delta: f64| {
            let mut p = pdn();
            p.settle(0.5);
            let v0 = p.voltage();
            let mut worst = v0;
            for _ in 0..10 {
                worst = worst.min(p.step(0.5 + delta, dt));
            }
            v0 - worst
        };
        let d2 = droop_for(2.0);
        let d4 = droop_for(4.0);
        let d8 = droop_for(8.0);
        assert!(d4 > d2 * 1.5 && d8 > d4 * 1.5, "droop must grow with ΔI: {d2} {d4} {d8}");
    }

    #[test]
    fn droop_estimate_brackets_simulation() {
        let mut p = pdn();
        p.settle(0.0);
        let est = p.droop_estimate(8.0);
        let dt = p.params().max_dt() * 0.2;
        let mut worst = p.voltage();
        // Long enough to reach the first minimum (~quarter natural period).
        let quarter_period = std::f64::consts::FRAC_PI_2 / p.params().omega0();
        let steps = (quarter_period / dt).ceil() as usize * 2;
        for _ in 0..steps {
            worst = worst.min(p.step(8.0, dt));
        }
        let sim = 1.0 - worst;
        assert!(sim > 0.3 * est && sim < 1.5 * est, "sim droop {sim} vs estimate {est}");
    }

    #[test]
    fn derived_quantities_are_consistent() {
        let p = pdn();
        let z0 = p.params().characteristic_impedance();
        assert!((z0 - (100e-12f64 / 200e-9).sqrt()).abs() < 1e-12);
        assert!(p.params().damping_ratio() > 0.1);
        assert!(p.params().max_dt() > 1e-9, "1 ns co-sim step must be stable");
    }

    #[test]
    fn reset_restores_unloaded_point() {
        let mut p = pdn();
        p.settle(1.0);
        p.reset();
        assert_eq!(p.voltage(), 1.0);
        assert_eq!(p.inductor_current(), 0.0);
    }
}
