//! Second-order lumped PDN model.
//!
//! The supply path is modelled as the classic board→package→die ladder
//! collapsed to one stage: an ideal regulator `Vdd` behind a series
//! resistance `R` and inductance `L`, feeding the on-die decoupling
//! capacitance `C` that the logic draws its current from:
//!
//! ```text
//!   Vdd ──R──L──┬───────┬──
//!               │       │
//!               C     i_load(t)
//!               │       │
//!   GND ────────┴───────┴──
//! ```
//!
//! State equations (solved with semi-implicit Euler, which is symplectic and
//! stable for `dt·ω₀ < 1`):
//!
//! ```text
//!   L·di/dt = Vdd − v − R·i
//!   C·dv/dt = i − i_load
//! ```
//!
//! A current step `ΔI` produces a first droop of roughly `ΔI·√(L/C)`
//! (the PDN's characteristic impedance) plus the static `ΔI·R` IR drop —
//! this is the glitch mechanism the power striker exploits.

use crate::error::{PdnError, Result};

/// How many times [`LumpedPdn::try_step`] halves the timestep before
/// declaring [`PdnError::SolverDiverged`] (64 substeps at the last
/// attempt).
pub const MAX_STEP_HALVINGS: u32 = 6;

/// Electrical parameters of the lumped supply model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RlcParams {
    /// Regulator voltage in volts.
    pub vdd: f64,
    /// Series resistance in ohms.
    pub r: f64,
    /// Series inductance in henries.
    pub l: f64,
    /// On-die + package decoupling capacitance in farads.
    pub c: f64,
}

impl RlcParams {
    /// Validates that all parameters are positive and finite.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidParameter`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        let fields = [("vdd", self.vdd), ("r", self.r), ("l", self.l), ("c", self.c)];
        for (name, value) in fields {
            if !(value.is_finite() && value > 0.0) {
                return Err(PdnError::InvalidParameter { name, value });
            }
        }
        Ok(())
    }

    /// Characteristic impedance `√(L/C)` in ohms — the peak droop per amp
    /// of fast current step.
    pub fn characteristic_impedance(&self) -> f64 {
        (self.l / self.c).sqrt()
    }

    /// Natural (angular) frequency `1/√(LC)` in rad/s.
    pub fn omega0(&self) -> f64 {
        1.0 / (self.l * self.c).sqrt()
    }

    /// Damping ratio `ζ = (R/2)·√(C/L)`.
    pub fn damping_ratio(&self) -> f64 {
        self.r / 2.0 * (self.c / self.l).sqrt()
    }

    /// Largest stable timestep for the semi-implicit solver (one radian of
    /// the natural oscillation).
    pub fn max_dt(&self) -> f64 {
        1.0 / self.omega0()
    }
}

/// Lumped PDN with live state.
///
/// # Example
///
/// ```
/// use pdn::rlc::{LumpedPdn, RlcParams};
///
/// let mut pdn = LumpedPdn::new(RlcParams { vdd: 1.0, r: 0.02, l: 100e-12, c: 200e-9 })?;
/// let settled = pdn.settle(0.5);
/// assert!(settled < 1.0 && settled > 0.97, "static IR drop only");
/// # Ok::<(), pdn::PdnError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LumpedPdn {
    params: RlcParams,
    v: f64,
    i_l: f64,
}

impl LumpedPdn {
    /// Creates a PDN at its unloaded operating point (`v = Vdd`, `i = 0`).
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidParameter`] for non-physical parameters.
    pub fn new(params: RlcParams) -> Result<Self> {
        params.validate()?;
        Ok(LumpedPdn { params, v: params.vdd, i_l: 0.0 })
    }

    /// A parameterisation in the ballpark of a Zynq-7020 class device: a
    /// 1.0 V rail, 45 mΩ effective series resistance (regulator + package +
    /// grid IR), 100 pH loop inductance, 200 nF effective decap.
    /// `√(L/C)` ≈ 22 mΩ on top of the IR path, so a ≈ 3.6 A striker
    /// transient (24,000 cells) droops the rail by ≈ 0.24 V — the regime
    /// behind the paper's near-100% fault rate in Fig. 6b — while the
    /// victim's own ≈ 1 A activity modulates the rail by the few tens of
    /// millivolts that make layers readable on the TDC (Fig. 1b).
    pub fn zynq_like() -> Self {
        // Invariant: the literal parameters above are positive and
        // finite, so `validate` cannot fail.
        LumpedPdn::new(RlcParams { vdd: 1.0, r: 0.045, l: 100e-12, c: 200e-9 })
            .expect("static parameters are valid")
    }

    /// Model parameters.
    pub fn params(&self) -> &RlcParams {
        &self.params
    }

    /// Present die voltage in volts.
    pub fn voltage(&self) -> f64 {
        self.v
    }

    /// Present inductor (supply) current in amps.
    pub fn inductor_current(&self) -> f64 {
        self.i_l
    }

    /// Resets to the unloaded operating point.
    pub fn reset(&mut self) {
        self.v = self.params.vdd;
        self.i_l = 0.0;
    }

    /// Advances one timestep with the given load current and returns the
    /// new die voltage.
    ///
    /// Uses semi-implicit Euler: the inductor current is updated with the
    /// old voltage, then the capacitor voltage with the *new* current.
    /// Timesteps beyond the stability bound ([`RlcParams::max_dt`]) are
    /// clamped to it; for divergence *detection and recovery* use
    /// [`LumpedPdn::try_step`]. Never panics.
    pub fn step(&mut self, i_load: f64, dt: f64) -> f64 {
        let dt = dt.min(self.params.max_dt());
        self.raw_step(i_load, dt);
        self.v
    }

    /// One unclamped semi-implicit Euler update.
    fn raw_step(&mut self, i_load: f64, dt: f64) {
        let p = &self.params;
        self.i_l += dt * (p.vdd - self.v - p.r * self.i_l) / p.l;
        self.v += dt * (self.i_l - i_load) / p.c;
    }

    /// True while the state is inside the trust region: finite, and
    /// within an order of magnitude of the physical operating envelope
    /// (`|v| ≤ 10·Vdd`, `|i_L| ≤ 10·Vdd/R`). Anything outside is numeric
    /// runaway, not physics.
    fn state_in_trust_region(&self) -> bool {
        let p = &self.params;
        self.v.is_finite()
            && self.i_l.is_finite()
            && self.v.abs() <= 10.0 * p.vdd
            && self.i_l.abs() <= 10.0 * p.vdd / p.r
    }

    /// Advances one timestep with divergence detection and step-halving
    /// recovery.
    ///
    /// The step is attempted at `dt`; if the state leaves the trust
    /// region (non-finite or runaway voltage/current), the state is
    /// restored and the slice is re-integrated with the step halved
    /// (1 → 2 → 4 … substeps), emitting one
    /// [`trace::Event::SolverStepHalved`] per halving, up to
    /// [`MAX_STEP_HALVINGS`]. A `dt` beyond the stability bound is
    /// halved up-front — the semi-implicit scheme is known-unstable
    /// there even while individual updates still look finite. Each retry covers the same `dt` of
    /// simulated time, so a recovered step is indistinguishable to the
    /// caller apart from the trace trail.
    ///
    /// # Errors
    ///
    /// - [`PdnError::InvalidParameter`] for non-finite `i_load` or a
    ///   non-positive/non-finite `dt`.
    /// - [`PdnError::SolverDiverged`] when every halving still leaves the
    ///   trust region; the pre-step state is restored so the model stays
    ///   usable.
    pub fn try_step(&mut self, i_load: f64, dt: f64) -> Result<f64> {
        if !(dt.is_finite() && dt > 0.0) {
            return Err(PdnError::InvalidParameter { name: "dt", value: dt });
        }
        if !i_load.is_finite() {
            return Err(PdnError::InvalidParameter { name: "i_load", value: i_load });
        }
        let saved = (self.v, self.i_l);
        let mut worst = self.v;
        for halvings in 0..=MAX_STEP_HALVINGS {
            if halvings > 0 {
                trace::emit(|| trace::Event::SolverStepHalved { halvings });
            }
            let substeps = 1u32 << halvings;
            let sub_dt = dt / f64::from(substeps);
            // A substep beyond the stability bound is known-unstable a
            // priori (the scheme rings exponentially even while each
            // individual update still looks finite) — halve immediately
            // instead of wasting an attempt, as long as halvings remain.
            if sub_dt > self.params.max_dt() && halvings < MAX_STEP_HALVINGS {
                continue;
            }
            let mut sane = true;
            for _ in 0..substeps {
                self.raw_step(i_load, sub_dt);
                if !self.state_in_trust_region() {
                    sane = false;
                    break;
                }
            }
            if sane {
                return Ok(self.v);
            }
            worst = if self.v.is_finite() { self.v } else { self.i_l };
            (self.v, self.i_l) = saved;
        }
        Err(PdnError::SolverDiverged { dt, value: worst })
    }

    /// Runs the model to steady state under a constant load and returns the
    /// settled voltage (`Vdd − I·R`).
    pub fn settle(&mut self, i_load: f64) -> f64 {
        // March several natural periods with strong numerical margin.
        let dt = self.params.max_dt() * 0.25;
        let steps = (400.0 / (dt * self.params.omega0())).ceil() as usize;
        for _ in 0..steps.max(1000) {
            self.step(i_load, dt);
        }
        // Snap to the analytic operating point to kill residual ringing.
        self.v = self.params.vdd - i_load * self.params.r;
        self.i_l = i_load;
        self.v
    }

    /// Analytic estimate of the worst transient droop for a fast current
    /// step of `delta_i` amps from steady state: `ΔI·(√(L/C) + R)`, clamped
    /// to the rail.
    pub fn droop_estimate(&self, delta_i: f64) -> f64 {
        (delta_i * (self.params.characteristic_impedance() + self.params.r))
            .clamp(0.0, self.params.vdd)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn pdn() -> LumpedPdn {
        LumpedPdn::zynq_like()
    }

    #[test]
    fn rejects_nonphysical_parameters() {
        for bad in [
            RlcParams { vdd: 0.0, r: 0.02, l: 1e-10, c: 2e-7 },
            RlcParams { vdd: 1.0, r: -1.0, l: 1e-10, c: 2e-7 },
            RlcParams { vdd: 1.0, r: 0.02, l: f64::NAN, c: 2e-7 },
            RlcParams { vdd: 1.0, r: 0.02, l: 1e-10, c: 0.0 },
        ] {
            assert!(LumpedPdn::new(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn static_operating_point_is_ir_drop() {
        let mut p = pdn();
        let v = p.settle(0.5);
        let expect = 1.0 - 0.5 * p.params().r;
        assert!((v - expect).abs() < 1e-6, "settled {v}, expected {expect}");
    }

    #[test]
    fn current_step_causes_transient_droop_then_recovery() {
        let mut p = pdn();
        p.settle(0.5);
        let v0 = p.voltage();
        let dt = 1e-9;
        // Strike: +8 A for 10 ns.
        let mut worst = v0;
        for _ in 0..10 {
            worst = worst.min(p.step(8.5, dt));
        }
        assert!(worst < v0 - 0.05, "droop too small: {}", v0 - worst);
        // Recovery: droop must decay once the load returns to quiescent.
        for _ in 0..20_000 {
            p.step(0.5, dt);
        }
        assert!((p.voltage() - v0).abs() < 0.02, "rail failed to recover: {}", p.voltage());
    }

    #[test]
    fn droop_scales_with_step_magnitude() {
        let dt = 1e-9;
        let droop_for = |delta: f64| {
            let mut p = pdn();
            p.settle(0.5);
            let v0 = p.voltage();
            let mut worst = v0;
            for _ in 0..10 {
                worst = worst.min(p.step(0.5 + delta, dt));
            }
            v0 - worst
        };
        let d2 = droop_for(2.0);
        let d4 = droop_for(4.0);
        let d8 = droop_for(8.0);
        assert!(d4 > d2 * 1.5 && d8 > d4 * 1.5, "droop must grow with ΔI: {d2} {d4} {d8}");
    }

    #[test]
    fn droop_estimate_brackets_simulation() {
        let mut p = pdn();
        p.settle(0.0);
        let est = p.droop_estimate(8.0);
        let dt = p.params().max_dt() * 0.2;
        let mut worst = p.voltage();
        // Long enough to reach the first minimum (~quarter natural period).
        let quarter_period = std::f64::consts::FRAC_PI_2 / p.params().omega0();
        let steps = (quarter_period / dt).ceil() as usize * 2;
        for _ in 0..steps {
            worst = worst.min(p.step(8.0, dt));
        }
        let sim = 1.0 - worst;
        assert!(sim > 0.3 * est && sim < 1.5 * est, "sim droop {sim} vs estimate {est}");
    }

    #[test]
    fn derived_quantities_are_consistent() {
        let p = pdn();
        let z0 = p.params().characteristic_impedance();
        assert!((z0 - (100e-12f64 / 200e-9).sqrt()).abs() < 1e-12);
        assert!(p.params().damping_ratio() > 0.1);
        assert!(p.params().max_dt() > 1e-9, "1 ns co-sim step must be stable");
    }

    #[test]
    fn try_step_matches_step_on_stable_inputs() {
        let mut a = pdn();
        let mut b = pdn();
        a.settle(0.5);
        b.settle(0.5);
        let dt = 1e-9;
        for k in 0..1000 {
            let load = if (200..220).contains(&k) { 8.5 } else { 0.5 };
            let va = a.step(load, dt);
            let vb = b.try_step(load, dt).expect("stable step succeeds");
            assert_eq!(va.to_bits(), vb.to_bits(), "divergence at step {k}");
        }
    }

    #[test]
    fn try_step_recovers_an_unstable_timestep_by_halving() {
        // 10× the stability bound: the raw update rings exponentially,
        // but a few halvings land back inside the stable region.
        let mut p = pdn();
        p.settle(0.5);
        let dt = p.params().max_dt() * 10.0;
        let ((), log) = trace::capture(64, || {
            let v = p.try_step(2.0, dt).expect("halving must recover");
            assert!(v.is_finite() && v > 0.0 && v < 1.5);
        });
        let halvings: Vec<u32> = log
            .events
            .iter()
            .filter_map(|e| match e {
                trace::Event::SolverStepHalved { halvings } => Some(*halvings),
                _ => None,
            })
            .collect();
        assert!(!halvings.is_empty(), "recovery must leave a SolverStepHalved trail");
        assert_eq!(halvings, (1..=halvings.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn try_step_gives_up_with_solver_diverged_and_full_trail() {
        // A finite but absurd load blows the trust region at every
        // halving; the API must surface a typed error, not panic, and
        // leave the pre-step state restored.
        let mut p = pdn();
        p.settle(0.5);
        let v0 = p.voltage();
        let i0 = p.inductor_current();
        let (result, log) = trace::capture(64, || p.try_step(1e300, 1e-9));
        match result {
            Err(PdnError::SolverDiverged { dt, .. }) => assert_eq!(dt, 1e-9),
            other => panic!("expected SolverDiverged, got {other:?}"),
        }
        assert_eq!(p.voltage().to_bits(), v0.to_bits(), "state must be restored");
        assert_eq!(p.inductor_current().to_bits(), i0.to_bits());
        let halvings: Vec<u32> = log
            .events
            .iter()
            .filter_map(|e| match e {
                trace::Event::SolverStepHalved { halvings } => Some(*halvings),
                _ => None,
            })
            .collect();
        assert_eq!(halvings, (1..=MAX_STEP_HALVINGS).collect::<Vec<_>>());
    }

    #[test]
    fn try_step_rejects_nonfinite_inputs_with_typed_errors() {
        let mut p = pdn();
        assert!(matches!(
            p.try_step(f64::NAN, 1e-9),
            Err(PdnError::InvalidParameter { name: "i_load", .. })
        ));
        assert!(matches!(p.try_step(0.5, 0.0), Err(PdnError::InvalidParameter { name: "dt", .. })));
        assert!(matches!(
            p.try_step(0.5, f64::INFINITY),
            Err(PdnError::InvalidParameter { name: "dt", .. })
        ));
    }

    #[test]
    fn reset_restores_unloaded_point() {
        let mut p = pdn();
        p.settle(1.0);
        p.reset();
        assert_eq!(p.voltage(), 1.0);
        assert_eq!(p.inductor_current(), 0.0);
    }
}
