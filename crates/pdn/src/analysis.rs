//! Droop and glitch analysis over voltage traces.

use crate::trace::Trace;

/// Summary of supply behaviour over a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DroopStats {
    /// Nominal voltage the droops are measured against.
    pub v_nom: f64,
    /// Deepest excursion below nominal, in volts (≥ 0).
    pub worst_droop: f64,
    /// Index of the deepest sample.
    pub worst_index: usize,
    /// Mean voltage over the trace.
    pub mean: f64,
    /// Fraction of samples more than `threshold` below nominal.
    pub glitch_fraction: f64,
}

/// Computes droop statistics for `trace` against `v_nom`, counting samples
/// below `v_nom - threshold` as glitched.
///
/// Returns `None` for an empty trace.
///
/// # Example
///
/// ```
/// use pdn::trace::Trace;
/// use pdn::analysis::droop_stats;
///
/// let t = Trace::from_samples(1e-9, vec![1.0, 0.99, 0.80, 0.98])?;
/// let s = droop_stats(&t, 1.0, 0.05).unwrap();
/// assert!((s.worst_droop - 0.20).abs() < 1e-12);
/// assert_eq!(s.worst_index, 2);
/// assert!((s.glitch_fraction - 0.25).abs() < 1e-12);
/// # Ok::<(), pdn::PdnError>(())
/// ```
pub fn droop_stats(trace: &Trace, v_nom: f64, threshold: f64) -> Option<DroopStats> {
    if trace.is_empty() {
        return None;
    }
    let samples = trace.samples();
    let mut worst = f64::NEG_INFINITY;
    let mut worst_index = 0;
    let mut glitched = 0usize;
    for (i, &v) in samples.iter().enumerate() {
        let droop = v_nom - v;
        if droop > worst {
            worst = droop;
            worst_index = i;
        }
        if droop > threshold {
            glitched += 1;
        }
    }
    Some(DroopStats {
        v_nom,
        worst_droop: worst.max(0.0),
        worst_index,
        mean: trace.mean(),
        glitch_fraction: glitched as f64 / samples.len() as f64,
    })
}

/// A contiguous run of samples below a voltage threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlitchWindow {
    /// First sample index at or below threshold.
    pub start: usize,
    /// One past the last glitched sample.
    pub end: usize,
}

impl GlitchWindow {
    /// Window length in samples.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the window is empty (never produced by the detector).
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// Finds all maximal contiguous windows where the trace is below
/// `v_threshold`.
///
/// When a [`trace`](::trace) session is recording, each window is also
/// emitted as a `PdnGlitch` event carrying its nadir voltage in integer
/// microvolts (rounded), so golden traces stay float-format independent.
pub fn glitch_windows(trace: &Trace, v_threshold: f64) -> Vec<GlitchWindow> {
    let mut out = Vec::new();
    let mut start: Option<usize> = None;
    let mut nadir = f64::INFINITY;
    let close = |s: usize, end: usize, nadir: f64| {
        ::trace::emit(|| ::trace::Event::PdnGlitch {
            start: s as u64,
            len: (end - s) as u64,
            nadir_uv: (nadir.max(0.0) * 1e6).round() as u64,
        });
        GlitchWindow { start: s, end }
    };
    for (i, &v) in trace.samples().iter().enumerate() {
        if v < v_threshold {
            if start.is_none() {
                start = Some(i);
                nadir = f64::INFINITY;
            }
            nadir = nadir.min(v);
        } else if let Some(s) = start.take() {
            out.push(close(s, i, nadir));
        }
    }
    if let Some(s) = start {
        out.push(close(s, trace.len(), nadir));
    }
    out
}

/// Number of samples after `from` until the trace stays within `band` of
/// `v_nom` for the rest of the trace (settling time in samples), or `None`
/// if it never settles.
pub fn settling_samples(trace: &Trace, from: usize, v_nom: f64, band: f64) -> Option<usize> {
    let samples = trace.samples();
    if from >= samples.len() {
        return None;
    }
    let mut settled_at = None;
    for (i, &v) in samples.iter().enumerate().skip(from) {
        if (v - v_nom).abs() <= band {
            if settled_at.is_none() {
                settled_at = Some(i);
            }
        } else {
            settled_at = None;
        }
    }
    settled_at.map(|i| i - from)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn trace(vals: &[f64]) -> Trace {
        Trace::from_samples(1e-9, vals.to_vec()).unwrap()
    }

    #[test]
    fn empty_trace_yields_none() {
        let t = Trace::new(1e-9).unwrap();
        assert!(droop_stats(&t, 1.0, 0.1).is_none());
    }

    #[test]
    fn worst_droop_never_negative() {
        let t = trace(&[1.05, 1.02, 1.1]);
        let s = droop_stats(&t, 1.0, 0.1).unwrap();
        assert_eq!(s.worst_droop, 0.0, "overshoot is not droop");
    }

    #[test]
    fn glitch_windows_found_and_maximal() {
        let t = trace(&[1.0, 0.8, 0.7, 1.0, 0.9, 0.6, 0.6]);
        let w = glitch_windows(&t, 0.85);
        assert_eq!(w, vec![GlitchWindow { start: 1, end: 3 }, GlitchWindow { start: 5, end: 7 }]);
        assert_eq!(w[0].len(), 2);
        assert!(!w[0].is_empty());
    }

    #[test]
    fn trailing_glitch_is_closed_at_end() {
        let t = trace(&[1.0, 0.5]);
        let w = glitch_windows(&t, 0.9);
        assert_eq!(w, vec![GlitchWindow { start: 1, end: 2 }]);
    }

    #[test]
    fn settling_detection() {
        let t = trace(&[0.7, 0.8, 0.97, 0.99, 1.0, 1.0]);
        assert_eq!(settling_samples(&t, 0, 1.0, 0.05), Some(2));
        let t = trace(&[0.7, 0.99, 0.7]);
        assert_eq!(settling_samples(&t, 0, 1.0, 0.05), None, "relapses never settle");
        assert_eq!(settling_samples(&t, 10, 1.0, 0.05), None, "from beyond end");
    }
}
