//! Voltage-trace recording.
//!
//! The TDC sensor, the profiler and the figure harnesses all consume
//! sampled voltage (or sensor-readout) series; [`Trace`] is the shared
//! container with the statistics they need.

use crate::error::{PdnError, Result};

/// A uniformly sampled series with its sample interval.
///
/// # Example
///
/// ```
/// use pdn::trace::Trace;
///
/// let mut t = Trace::new(1e-9)?;
/// for k in 0..100 { t.push(1.0 - 0.001 * k as f64); }
/// assert_eq!(t.len(), 100);
/// assert!((t.duration() - 100e-9).abs() < 1e-15);
/// assert!(t.min() < t.max());
/// # Ok::<(), pdn::PdnError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    dt: f64,
    samples: Vec<f64>,
}

impl Trace {
    /// Creates an empty trace with sample interval `dt` seconds.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidParameter`] if `dt` is not positive.
    pub fn new(dt: f64) -> Result<Self> {
        if !(dt.is_finite() && dt > 0.0) {
            return Err(PdnError::InvalidParameter { name: "dt", value: dt });
        }
        Ok(Trace { dt, samples: Vec::new() })
    }

    /// Creates a trace from existing samples.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidParameter`] if `dt` is not positive.
    pub fn from_samples(dt: f64, samples: Vec<f64>) -> Result<Self> {
        let mut t = Trace::new(dt)?;
        t.samples = samples;
        Ok(t)
    }

    /// Sample interval in seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Appends one sample.
    pub fn push(&mut self, value: f64) {
        self.samples.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Recorded duration in seconds.
    pub fn duration(&self) -> f64 {
        self.dt * self.samples.len() as f64
    }

    /// Underlying samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Smallest sample (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest sample (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Population variance (0 when empty).
    pub fn variance(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let m = self.mean();
        self.samples.iter().map(|s| (s - m).powi(2)).sum::<f64>() / self.samples.len() as f64
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// A sub-trace covering samples `[start, end)`.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::OutOfRange`] for an invalid window.
    pub fn window(&self, start: usize, end: usize) -> Result<Trace> {
        if start > end || end > self.samples.len() {
            return Err(PdnError::OutOfRange(format!("window {start}..{end}")));
        }
        Ok(Trace { dt: self.dt, samples: self.samples[start..end].to_vec() })
    }

    /// Keeps every `factor`-th sample (sample-and-hold decimation).
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::OutOfRange`] if `factor` is zero.
    pub fn decimate(&self, factor: usize) -> Result<Trace> {
        if factor == 0 {
            return Err(PdnError::OutOfRange("decimation factor 0".into()));
        }
        Ok(Trace {
            dt: self.dt * factor as f64,
            samples: self.samples.iter().copied().step_by(factor).collect(),
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Trace {
        let mut t = Trace::new(1e-9).unwrap();
        for k in 0..n {
            t.push(k as f64);
        }
        t
    }

    #[test]
    fn stats_on_known_series() {
        let t = Trace::from_samples(1.0, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(t.min(), 1.0);
        assert_eq!(t.max(), 4.0);
        assert!((t.mean() - 2.5).abs() < 1e-12);
        assert!((t.variance() - 1.25).abs() < 1e-12);
        assert!((t.std_dev() - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_stats_are_defined() {
        let t = Trace::new(1e-9).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.variance(), 0.0);
        assert_eq!(t.min(), f64::INFINITY);
        assert_eq!(t.max(), f64::NEG_INFINITY);
    }

    #[test]
    fn window_and_decimate() {
        let t = ramp(100);
        let w = t.window(10, 20).unwrap();
        assert_eq!(w.len(), 10);
        assert_eq!(w.samples()[0], 10.0);
        let d = t.decimate(10).unwrap();
        assert_eq!(d.len(), 10);
        assert!((d.dt() - 1e-8).abs() < 1e-20);
        assert_eq!(d.samples()[1], 10.0);
    }

    #[test]
    fn invalid_windows_rejected() {
        let t = ramp(10);
        assert!(t.window(5, 3).is_err());
        assert!(t.window(0, 11).is_err());
        assert!(t.decimate(0).is_err());
        assert!(Trace::new(0.0).is_err());
        assert!(Trace::new(-1.0).is_err());
    }

    #[test]
    fn duration_tracks_pushes() {
        let mut t = Trace::new(2e-9).unwrap();
        assert_eq!(t.duration(), 0.0);
        t.push(1.0);
        t.push(1.0);
        assert!((t.duration() - 4e-9).abs() < 1e-20);
    }
}
