//! First-order thermal model.
//!
//! The paper notes that holding the striker on "may increase the
//! temperature of the FPGA chip or even crash it", and that the victim is
//! placed far from the attacker partly "to minimize the influence of
//! temperature changes". This model captures that secondary channel: die
//! temperature follows dissipated power through a thermal RC, and a
//! configurable junction limit flags thermal shutdown.

use crate::error::{PdnError, Result};

/// Thermal RC parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalParams {
    /// Junction-to-ambient thermal resistance in kelvin per watt.
    pub r_th: f64,
    /// Thermal capacitance in joules per kelvin.
    pub c_th: f64,
    /// Ambient temperature in °C.
    pub t_ambient: f64,
    /// Junction temperature that triggers shutdown, in °C.
    pub t_shutdown: f64,
}

impl Default for ThermalParams {
    fn default() -> Self {
        // Zynq-7020 with a small heatsink: ~5 K/W, seconds-scale time
        // constant, commercial-grade 85 °C limit (the silicon survives to
        // 125 °C; the board monitor trips earlier).
        ThermalParams { r_th: 5.0, c_th: 2.0, t_ambient: 25.0, t_shutdown: 85.0 }
    }
}

/// Die thermal state.
///
/// # Example
///
/// ```
/// use pdn::thermal::{ThermalModel, ThermalParams};
///
/// let mut t = ThermalModel::new(ThermalParams::default())?;
/// // 20 W sustained would settle at 25 + 100 = 125 °C — shutdown territory.
/// for _ in 0..100_000 { t.step(20.0, 1e-3); }
/// assert!(t.is_overheated());
/// # Ok::<(), pdn::PdnError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalModel {
    params: ThermalParams,
    t_junction: f64,
}

impl ThermalModel {
    /// Creates a model at ambient temperature.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidParameter`] for non-physical parameters.
    pub fn new(params: ThermalParams) -> Result<Self> {
        for (name, value) in [("r_th", params.r_th), ("c_th", params.c_th)] {
            if !(value.is_finite() && value > 0.0) {
                return Err(PdnError::InvalidParameter { name, value });
            }
        }
        if params.t_shutdown <= params.t_ambient {
            return Err(PdnError::InvalidParameter {
                name: "t_shutdown",
                value: params.t_shutdown,
            });
        }
        Ok(ThermalModel { params, t_junction: params.t_ambient })
    }

    /// Model with default Zynq-like parameters.
    pub fn zynq_like() -> Self {
        // Invariant: `ThermalParams::default()` is a static, in-range
        // literal set, so validation cannot fail.
        ThermalModel::new(ThermalParams::default()).expect("static parameters are valid")
    }

    /// Present junction temperature in °C.
    pub fn junction_temp(&self) -> f64 {
        self.t_junction
    }

    /// Model parameters.
    pub fn params(&self) -> &ThermalParams {
        &self.params
    }

    /// Advances the thermal state by `dt` seconds while dissipating
    /// `power_w` watts; returns the new junction temperature.
    pub fn step(&mut self, power_w: f64, dt: f64) -> f64 {
        let p = &self.params;
        // Exact exponential update of the first-order system: immune to the
        // stiff-timestep instability an Euler step would have at dt >> RC.
        let t_target = p.t_ambient + power_w.max(0.0) * p.r_th;
        let tau = p.r_th * p.c_th;
        let decay = (-dt / tau).exp();
        self.t_junction = t_target + (self.t_junction - t_target) * decay;
        self.t_junction
    }

    /// Whether the junction exceeds the shutdown limit.
    pub fn is_overheated(&self) -> bool {
        self.t_junction >= self.params.t_shutdown
    }

    /// Additional delay derating from temperature: roughly +0.1%/K above
    /// ambient for wire+transistor slowdown.
    pub fn delay_derating(&self) -> f64 {
        1.0 + 0.001 * (self.t_junction - self.params.t_ambient).max(0.0)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn settles_at_ambient_plus_p_rth() {
        let mut t = ThermalModel::zynq_like();
        for _ in 0..200_000 {
            t.step(2.0, 1e-3);
        }
        assert!((t.junction_temp() - 35.0).abs() < 0.1, "T = {}", t.junction_temp());
        assert!(!t.is_overheated());
    }

    #[test]
    fn sustained_striker_power_overheats() {
        let mut t = ThermalModel::zynq_like();
        for _ in 0..200_000 {
            t.step(15.0, 1e-3);
        }
        assert!(t.is_overheated(), "T = {}", t.junction_temp());
    }

    #[test]
    fn exact_update_is_stable_for_huge_dt() {
        let mut t = ThermalModel::zynq_like();
        t.step(10.0, 1e6);
        assert!((t.junction_temp() - 75.0).abs() < 1e-6, "jumps to equilibrium");
        t.step(0.0, 1e6);
        assert!((t.junction_temp() - 25.0).abs() < 1e-6, "cools back");
    }

    #[test]
    fn negative_power_treated_as_zero() {
        let mut t = ThermalModel::zynq_like();
        t.step(-5.0, 10.0);
        assert!(t.junction_temp() >= 25.0 - 1e-9);
    }

    #[test]
    fn derating_grows_with_temperature() {
        let mut t = ThermalModel::zynq_like();
        let d0 = t.delay_derating();
        t.step(15.0, 1e3);
        assert!(t.delay_derating() > d0);
    }

    #[test]
    fn validation() {
        let bad = ThermalParams { r_th: 0.0, ..ThermalParams::default() };
        assert!(ThermalModel::new(bad).is_err());
        let bad = ThermalParams { t_shutdown: 10.0, ..ThermalParams::default() };
        assert!(ThermalModel::new(bad).is_err());
    }
}
