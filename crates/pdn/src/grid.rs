//! Spatial RC mesh on top of the lumped supply.
//!
//! The lumped model in [`crate::rlc`] captures the *global* droop every
//! tenant sees; this mesh adds the *local* gradient: a current transient
//! injected at the attacker's grid node droops nearby nodes more than
//! distant ones. The victim-vs-attacker floorplan distance therefore
//! modulates attack strength, as in the paper's Fig. 6a placement.
//!
//! Numerically, the node voltage is decomposed as
//! `v_node = v_die(t) + δ_node`: the *common-mode* component `v_die` comes
//! from the lumped transient model (global droop reaches every node within
//! one step, as it does physically through the power planes), while the
//! *local deviation* field `δ` solves the resistive mesh around the
//! injected currents. `δ` is quasi-static relative to the 1 ns step and is
//! relaxed by a few warm-started Gauss–Seidel sweeps per step — injections
//! only change at cycle boundaries, so a handful of sweeps suffices.

use crate::error::{PdnError, Result};
use crate::rlc::LumpedPdn;

/// Parameters of the spatial mesh.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridParams {
    /// Nodes in x.
    pub nx: usize,
    /// Nodes in y.
    pub ny: usize,
    /// Conductance from each node up to the die-level rail, in siemens.
    pub g_supply: f64,
    /// Conductance between neighbouring nodes, in siemens.
    pub g_mesh: f64,
    /// Gauss–Seidel sweeps per step.
    pub sweeps: usize,
}

impl Default for GridParams {
    fn default() -> Self {
        // λ = √(g_mesh/g_supply) ≈ 5 node spacings: local droop decays to
        // ~1/e five nodes away, so cross-die placement attenuates the local
        // component substantially while the global droop is fully shared.
        GridParams { nx: 16, ny: 10, g_supply: 5.0, g_mesh: 125.0, sweeps: 8 }
    }
}

impl GridParams {
    /// Validates geometry and conductances.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidParameter`] or [`PdnError::OutOfRange`].
    pub fn validate(&self) -> Result<()> {
        if self.nx == 0 || self.ny == 0 {
            return Err(PdnError::OutOfRange("grid dimensions".into()));
        }
        for (name, value) in [("g_supply", self.g_supply), ("g_mesh", self.g_mesh)] {
            if !(value.is_finite() && value > 0.0) {
                return Err(PdnError::InvalidParameter { name, value });
            }
        }
        if self.sweeps == 0 {
            return Err(PdnError::OutOfRange("sweeps".into()));
        }
        Ok(())
    }

    /// Characteristic attenuation length of local droop, in node spacings.
    pub fn attenuation_length(&self) -> f64 {
        (self.g_mesh / self.g_supply).sqrt()
    }
}

/// A node coordinate on the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId {
    /// Column.
    pub x: usize,
    /// Row.
    pub y: usize,
}

/// Spatial PDN: lumped transient backbone + resistive mesh.
///
/// # Example
///
/// ```
/// use pdn::grid::{GridParams, NodeId, SpatialPdn};
/// use pdn::rlc::LumpedPdn;
///
/// let mut g = SpatialPdn::new(LumpedPdn::zynq_like(), GridParams::default())?;
/// let attacker = NodeId { x: 1, y: 1 };
/// let victim = NodeId { x: 14, y: 8 };
/// g.inject(attacker, 6.0)?;
/// for _ in 0..20 { g.step(1e-9); }
/// assert!(g.voltage_at(attacker)? < g.voltage_at(victim)?);
/// # Ok::<(), pdn::PdnError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialPdn {
    lumped: LumpedPdn,
    params: GridParams,
    /// Local deviation below the die rail, per node.
    delta: Vec<f64>,
    i_inj: Vec<f64>,
    /// Precomputed per-node total conductance (supply + present
    /// neighbours) — the Gauss–Seidel denominator, constant per geometry.
    g_sum: Vec<f64>,
}

impl SpatialPdn {
    /// Creates a mesh at the unloaded operating point.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidParameter`] / [`PdnError::OutOfRange`] for
    /// bad parameters.
    pub fn new(lumped: LumpedPdn, params: GridParams) -> Result<Self> {
        params.validate()?;
        lumped.params().validate()?;
        let n = params.nx * params.ny;
        // Stencil denominators, accumulated in the same left/right/up/down
        // order the relaxation visits neighbours in.
        let g_sum = (0..n)
            .map(|i| {
                let (x, y) = (i % params.nx, i / params.nx);
                let mut g = params.g_supply;
                if x > 0 {
                    g += params.g_mesh;
                }
                if x + 1 < params.nx {
                    g += params.g_mesh;
                }
                if y > 0 {
                    g += params.g_mesh;
                }
                if y + 1 < params.ny {
                    g += params.g_mesh;
                }
                g
            })
            .collect();
        Ok(SpatialPdn { lumped, params, delta: vec![0.0; n], i_inj: vec![0.0; n], g_sum })
    }

    /// Convenience constructor with default mesh over a Zynq-like supply.
    pub fn zynq_like() -> Self {
        // Invariant: `GridParams::default()` and the zynq parameters are
        // static, in-range literals, so validation cannot fail.
        SpatialPdn::new(LumpedPdn::zynq_like(), GridParams::default())
            .expect("default parameters are valid")
    }

    /// Mesh parameters.
    pub fn params(&self) -> &GridParams {
        &self.params
    }

    /// The lumped backbone (for inspecting the global state).
    pub fn lumped(&self) -> &LumpedPdn {
        &self.lumped
    }

    fn index(&self, node: NodeId) -> Result<usize> {
        if node.x >= self.params.nx || node.y >= self.params.ny {
            return Err(PdnError::OutOfRange(format!("node ({}, {})", node.x, node.y)));
        }
        Ok(node.y * self.params.nx + node.x)
    }

    /// Sets the current drawn at `node` (amps); replaces any previous value
    /// for that node.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::OutOfRange`] for coordinates off the mesh and
    /// [`PdnError::InvalidParameter`] for negative or non-finite current.
    pub fn inject(&mut self, node: NodeId, amps: f64) -> Result<()> {
        if !(amps.is_finite() && amps >= 0.0) {
            return Err(PdnError::InvalidParameter { name: "amps", value: amps });
        }
        let i = self.index(node)?;
        self.i_inj[i] = amps;
        Ok(())
    }

    /// Clears all injected currents.
    pub fn clear_loads(&mut self) {
        self.i_inj.iter_mut().for_each(|i| *i = 0.0);
    }

    /// Total injected current in amps.
    pub fn total_load(&self) -> f64 {
        self.i_inj.iter().sum()
    }

    /// Advances the lumped backbone one step and relaxes the local
    /// deviation field. Returns the die-level (lumped) voltage.
    pub fn step(&mut self, dt: f64) -> f64 {
        let total = self.total_load();
        let v_die = self.lumped.step(total, dt);
        self.relax();
        v_die
    }

    /// [`SpatialPdn::step`] with divergence detection and step-halving
    /// recovery on the lumped backbone (see [`LumpedPdn::try_step`]),
    /// plus a finiteness check on the relaxed deviation field.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidParameter`] for a bad `dt` and
    /// [`PdnError::SolverDiverged`] when recovery gives up or the local
    /// field turns non-finite.
    pub fn try_step(&mut self, dt: f64) -> Result<f64> {
        let total = self.total_load();
        let v_die = self.lumped.try_step(total, dt)?;
        self.relax();
        if let Some(bad) = self.delta.iter().copied().find(|d| !d.is_finite()) {
            return Err(PdnError::SolverDiverged { dt, value: bad });
        }
        Ok(v_die)
    }

    /// Gauss–Seidel relaxation of the local deviation field `δ` around the
    /// injected currents (`δ = 0` where nothing is drawn).
    ///
    /// Optimised form of the original 8-branch-per-node sweep: the
    /// denominator comes from the precomputed `g_sum` stencil, interior
    /// nodes run a branch-free inner loop, and the sweep loop exits as
    /// soon as one full sweep leaves every node bit-unchanged (a
    /// Gauss–Seidel sweep is a deterministic map, so once it is the
    /// identity every remaining sweep would be too — results are exactly
    /// those of always running `params.sweeps` sweeps). Warm-started
    /// steady states therefore pay for one sweep instead of eight.
    fn relax(&mut self) {
        let (nx, ny) = (self.params.nx, self.params.ny);
        debug_assert_eq!(self.delta.len(), nx * ny);
        let gm = self.params.g_mesh;
        for _ in 0..self.params.sweeps {
            let mut changed = false;
            for y in 0..ny {
                let row = y * nx;
                let up = y > 0;
                let down = y + 1 < ny;
                self.relax_node(row, false, nx > 1, up, down, &mut changed);
                if nx >= 2 {
                    if up && down {
                        // Interior rows: all four neighbours exist —
                        // branch-free flow accumulation in the same
                        // left/right/up/down order as the general case.
                        for x in 1..nx - 1 {
                            let i = row + x;
                            let flow = gm * self.delta[i - 1]
                                + gm * self.delta[i + 1]
                                + gm * self.delta[i - nx]
                                + gm * self.delta[i + nx];
                            let v = (flow - self.i_inj[i]) / self.g_sum[i];
                            changed |= v.to_bits() != self.delta[i].to_bits();
                            self.delta[i] = v;
                        }
                    } else {
                        for x in 1..nx - 1 {
                            self.relax_node(row + x, true, true, up, down, &mut changed);
                        }
                    }
                    self.relax_node(row + nx - 1, true, false, up, down, &mut changed);
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// One Gauss–Seidel node update with explicit neighbour presence.
    #[inline]
    fn relax_node(
        &mut self,
        i: usize,
        left: bool,
        right: bool,
        up: bool,
        down: bool,
        changed: &mut bool,
    ) {
        let gm = self.params.g_mesh;
        let nx = self.params.nx;
        let mut flow = 0.0;
        if left {
            flow += gm * self.delta[i - 1];
        }
        if right {
            flow += gm * self.delta[i + 1];
        }
        if up {
            flow += gm * self.delta[i - nx];
        }
        if down {
            flow += gm * self.delta[i + nx];
        }
        let v = (flow - self.i_inj[i]) / self.g_sum[i];
        *changed |= v.to_bits() != self.delta[i].to_bits();
        self.delta[i] = v;
    }

    /// Voltage at a mesh node in volts (`v_die + δ_node`).
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::OutOfRange`] for coordinates off the mesh.
    pub fn voltage_at(&self, node: NodeId) -> Result<f64> {
        Ok(self.lumped.voltage() + self.delta[self.index(node)?])
    }

    /// Maps a normalised floorplan position (`0..=1` in both axes) to the
    /// nearest mesh node.
    pub fn node_at_fraction(&self, fx: f64, fy: f64) -> NodeId {
        let x = ((fx.clamp(0.0, 1.0)) * (self.params.nx - 1) as f64).round() as usize;
        let y = ((fy.clamp(0.0, 1.0)) * (self.params.ny - 1) as f64).round() as usize;
        NodeId { x, y }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn settled_grid() -> SpatialPdn {
        let mut g = SpatialPdn::zynq_like();
        for _ in 0..5000 {
            g.step(1e-9);
        }
        g
    }

    #[test]
    fn validates_parameters() {
        let bad = GridParams { nx: 0, ..GridParams::default() };
        assert!(SpatialPdn::new(LumpedPdn::zynq_like(), bad).is_err());
        let bad = GridParams { g_mesh: -1.0, ..GridParams::default() };
        assert!(SpatialPdn::new(LumpedPdn::zynq_like(), bad).is_err());
        let bad = GridParams { sweeps: 0, ..GridParams::default() };
        assert!(SpatialPdn::new(LumpedPdn::zynq_like(), bad).is_err());
    }

    #[test]
    fn validate_rejects_each_bad_field() {
        let good = GridParams::default();
        assert!(good.validate().is_ok());
        assert!(GridParams { nx: 0, ..good }.validate().is_err(), "nx = 0");
        assert!(GridParams { ny: 0, ..good }.validate().is_err(), "ny = 0");
        assert!(GridParams { sweeps: 0, ..good }.validate().is_err(), "sweeps = 0");
        for bad in [f64::NAN, f64::INFINITY, 0.0, -3.0] {
            assert!(GridParams { g_supply: bad, ..good }.validate().is_err(), "g_supply {bad}");
            assert!(GridParams { g_mesh: bad, ..good }.validate().is_err(), "g_mesh {bad}");
        }
    }

    #[test]
    fn construction_rejects_bad_rlc_backbone_params() {
        let good = *LumpedPdn::zynq_like().params();
        assert!(good.validate().is_ok());
        // Non-finite or non-positive capacitance/inductance (and the rest
        // of the RLC backbone) must never reach the mesh solver.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -1e-9] {
            for field in 0..4 {
                let mut p = good;
                match field {
                    0 => p.vdd = bad,
                    1 => p.r = bad,
                    2 => p.l = bad,
                    _ => p.c = bad,
                }
                assert!(p.validate().is_err(), "field {field} = {bad}");
                assert!(LumpedPdn::new(p).is_err(), "LumpedPdn must reject field {field}");
            }
        }
    }

    /// The original, unoptimised Gauss–Seidel sweep: always runs all
    /// `sweeps` passes, recomputing the stencil denominator per node.
    fn reference_relax(g: &mut SpatialPdn) {
        let (nx, ny) = (g.params.nx, g.params.ny);
        let gs = g.params.g_supply;
        let gm = g.params.g_mesh;
        for _ in 0..g.params.sweeps {
            for y in 0..ny {
                for x in 0..nx {
                    let i = y * nx + x;
                    let mut g_sum = gs;
                    let mut flow = 0.0;
                    if x > 0 {
                        g_sum += gm;
                        flow += gm * g.delta[i - 1];
                    }
                    if x + 1 < nx {
                        g_sum += gm;
                        flow += gm * g.delta[i + 1];
                    }
                    if y > 0 {
                        g_sum += gm;
                        flow += gm * g.delta[i - nx];
                    }
                    if y + 1 < ny {
                        g_sum += gm;
                        flow += gm * g.delta[i + nx];
                    }
                    g.delta[i] = (flow - g.i_inj[i]) / g_sum;
                }
            }
        }
    }

    #[test]
    fn fast_relax_is_bit_identical_to_reference() {
        // Transient, steady-state (early-exit) and post-load-change
        // phases must all match the always-8-sweeps reference exactly,
        // on the default mesh and on degenerate 1-wide/1-tall meshes.
        for params in [
            GridParams::default(),
            GridParams { nx: 1, ny: 7, ..GridParams::default() },
            GridParams { nx: 7, ny: 1, ..GridParams::default() },
            GridParams { nx: 2, ny: 2, ..GridParams::default() },
        ] {
            let mut fast = SpatialPdn::new(LumpedPdn::zynq_like(), params).unwrap();
            let mut reference = fast.clone();
            let node = NodeId { x: 0, y: params.ny - 1 };
            fast.inject(node, 2.5).unwrap();
            reference.inject(node, 2.5).unwrap();
            for step in 0..600 {
                if step == 400 {
                    // Mid-run load change re-excites the field.
                    fast.clear_loads();
                    reference.clear_loads();
                }
                fast.step(1e-9);
                let v = reference.lumped.step(reference.total_load(), 1e-9);
                reference_relax(&mut reference);
                assert!(v.to_bits() == fast.lumped.voltage().to_bits());
                for (i, (a, b)) in fast.delta.iter().zip(&reference.delta).enumerate() {
                    assert!(
                        a.to_bits() == b.to_bits(),
                        "nx={} ny={} step {step} node {i}: {a:e} vs {b:e}",
                        params.nx,
                        params.ny
                    );
                }
            }
        }
    }

    #[test]
    fn unloaded_mesh_sits_at_rail() {
        let g = settled_grid();
        for y in 0..g.params().ny {
            for x in 0..g.params().nx {
                let v = g.voltage_at(NodeId { x, y }).unwrap();
                assert!((v - 1.0).abs() < 1e-3, "node ({x},{y}) at {v}");
            }
        }
    }

    #[test]
    fn local_injection_droops_near_more_than_far() {
        let mut g = settled_grid();
        let near = NodeId { x: 1, y: 1 };
        let mid = NodeId { x: 8, y: 5 };
        let far = NodeId { x: 15, y: 9 };
        g.inject(near, 6.0).unwrap();
        for _ in 0..50 {
            g.step(1e-9);
        }
        let vn = g.voltage_at(near).unwrap();
        let vm = g.voltage_at(mid).unwrap();
        let vf = g.voltage_at(far).unwrap();
        assert!(vn < vm && vm < vf, "monotone decay violated: {vn} {vm} {vf}");
        // Everyone shares the global droop.
        assert!(vf < 1.0 - 0.01, "far node must still see global droop: {vf}");
    }

    #[test]
    fn injection_bookkeeping() {
        let mut g = SpatialPdn::zynq_like();
        g.inject(NodeId { x: 0, y: 0 }, 1.0).unwrap();
        g.inject(NodeId { x: 2, y: 3 }, 2.5).unwrap();
        assert!((g.total_load() - 3.5).abs() < 1e-12);
        g.inject(NodeId { x: 0, y: 0 }, 0.25).unwrap();
        assert!((g.total_load() - 2.75).abs() < 1e-12, "inject replaces");
        g.clear_loads();
        assert_eq!(g.total_load(), 0.0);
    }

    #[test]
    fn bad_injections_rejected() {
        let mut g = SpatialPdn::zynq_like();
        assert!(g.inject(NodeId { x: 99, y: 0 }, 1.0).is_err());
        assert!(g.inject(NodeId { x: 0, y: 0 }, -1.0).is_err());
        assert!(g.inject(NodeId { x: 0, y: 0 }, f64::NAN).is_err());
        assert!(g.voltage_at(NodeId { x: 0, y: 99 }).is_err());
    }

    #[test]
    fn fraction_mapping_hits_corners() {
        let g = SpatialPdn::zynq_like();
        assert_eq!(g.node_at_fraction(0.0, 0.0), NodeId { x: 0, y: 0 });
        assert_eq!(g.node_at_fraction(1.0, 1.0), NodeId { x: 15, y: 9 });
        assert_eq!(g.node_at_fraction(-3.0, 7.0), NodeId { x: 0, y: 9 }, "clamped");
    }

    #[test]
    fn attenuation_length_is_in_design_band() {
        let p = GridParams::default();
        let lambda = p.attenuation_length();
        assert!((3.0..8.0).contains(&lambda), "λ = {lambda}");
    }

    #[test]
    fn try_step_matches_step_and_surfaces_divergence_typed() {
        let mut a = settled_grid();
        let mut b = a.clone();
        a.inject(NodeId { x: 1, y: 1 }, 6.0).unwrap();
        b.inject(NodeId { x: 1, y: 1 }, 6.0).unwrap();
        for k in 0..50 {
            let va = a.step(1e-9);
            let vb = b.try_step(1e-9).expect("stable grid step succeeds");
            assert_eq!(va.to_bits(), vb.to_bits(), "divergence at step {k}");
        }
        for (da, db) in a.delta.iter().zip(&b.delta) {
            assert_eq!(da.to_bits(), db.to_bits());
        }
        // A pathological injection diverges as a typed error, no panic.
        let mut g = settled_grid();
        g.inject(NodeId { x: 0, y: 0 }, 1e300).unwrap();
        assert!(matches!(g.try_step(1e-9), Err(PdnError::SolverDiverged { .. })));
    }
}
