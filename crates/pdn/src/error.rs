use std::error::Error;
use std::fmt;

/// Errors raised by PDN simulation setup.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PdnError {
    /// A physical parameter was non-positive or non-finite.
    InvalidParameter { name: &'static str, value: f64 },
    /// The requested timestep violates the solver's stability bound.
    UnstableTimestep { dt: f64, max_dt: f64 },
    /// A grid coordinate or node index was out of range.
    OutOfRange(String),
    /// Numeric integration diverged (non-finite or runaway state) and
    /// step-halving recovery gave up. `value` is the offending state
    /// sample; `dt` the requested (pre-halving) timestep.
    SolverDiverged { dt: f64, value: f64 },
}

impl fmt::Display for PdnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdnError::InvalidParameter { name, value } => {
                write!(f, "invalid parameter {name} = {value}")
            }
            PdnError::UnstableTimestep { dt, max_dt } => {
                write!(f, "timestep {dt:.3e} s exceeds stability bound {max_dt:.3e} s")
            }
            PdnError::OutOfRange(what) => write!(f, "{what} out of range"),
            PdnError::SolverDiverged { dt, value } => {
                write!(
                    f,
                    "solver diverged at dt {dt:.3e} s (state reached {value:.3e}) \
                     after step-halving recovery gave up"
                )
            }
        }
    }
}

impl Error for PdnError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, PdnError>;

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = PdnError::InvalidParameter { name: "c_die", value: -1.0 };
        assert!(e.to_string().contains("c_die"));
        let e = PdnError::UnstableTimestep { dt: 1e-6, max_dt: 1e-9 };
        assert!(e.to_string().contains("stability"));
        let e = PdnError::SolverDiverged { dt: 1e-9, value: f64::INFINITY };
        assert!(e.to_string().contains("diverged"));
    }
}
