use std::error::Error;
use std::fmt;

/// Errors raised by PDN simulation setup.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PdnError {
    /// A physical parameter was non-positive or non-finite.
    InvalidParameter { name: &'static str, value: f64 },
    /// The requested timestep violates the solver's stability bound.
    UnstableTimestep { dt: f64, max_dt: f64 },
    /// A grid coordinate or node index was out of range.
    OutOfRange(String),
}

impl fmt::Display for PdnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdnError::InvalidParameter { name, value } => {
                write!(f, "invalid parameter {name} = {value}")
            }
            PdnError::UnstableTimestep { dt, max_dt } => {
                write!(f, "timestep {dt:.3e} s exceeds stability bound {max_dt:.3e} s")
            }
            PdnError::OutOfRange(what) => write!(f, "{what} out of range"),
        }
    }
}

impl Error for PdnError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, PdnError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = PdnError::InvalidParameter { name: "c_die", value: -1.0 };
        assert!(e.to_string().contains("c_die"));
        let e = PdnError::UnstableTimestep { dt: 1e-6, max_dt: 1e-9 };
        assert!(e.to_string().contains("stability"));
    }
}
