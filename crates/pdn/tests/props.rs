//! Property-based tests for the PDN models.

use pdn::analysis::{droop_stats, glitch_windows};
use pdn::delay::DelayModel;
use pdn::grid::{GridParams, NodeId, SpatialPdn};
use pdn::rlc::{LumpedPdn, RlcParams};
use pdn::thermal::{ThermalModel, ThermalParams};
use pdn::trace::Trace;
use proptest::prelude::*;

proptest! {
    /// The settled operating point is exactly Vdd − I·R for any load.
    #[test]
    fn settle_is_ir_drop(i_load in 0.0f64..5.0, r in 0.005f64..0.2) {
        let mut pdn = LumpedPdn::new(RlcParams { vdd: 1.0, r, l: 100e-12, c: 200e-9 }).unwrap();
        let v = pdn.settle(i_load);
        prop_assert!((v - (1.0 - i_load * r)).abs() < 1e-6);
    }

    /// Deeper current steps always droop at least as deep (transient
    /// monotonicity).
    #[test]
    fn droop_monotone_in_step(base in 0.0f64..1.0, d1 in 0.5f64..4.0, extra in 0.5f64..4.0) {
        let run = |delta: f64| {
            let mut pdn = LumpedPdn::zynq_like();
            pdn.settle(base);
            let mut worst = pdn.voltage();
            for _ in 0..20 {
                worst = worst.min(pdn.step(base + delta, 1e-9));
            }
            worst
        };
        prop_assert!(run(d1 + extra) <= run(d1) + 1e-9);
    }

    /// Mesh voltages always sit at or below the die rail when loads draw,
    /// and the loaded node is the (weakly) deepest of any pair.
    #[test]
    fn mesh_local_droop_is_deepest_at_the_load(amps in 0.1f64..6.0, fx in 0.0f64..1.0, fy in 0.0f64..1.0) {
        let mut g = SpatialPdn::new(LumpedPdn::zynq_like(), GridParams::default()).unwrap();
        let node = g.node_at_fraction(fx, fy);
        g.inject(node, amps).unwrap();
        for _ in 0..200 {
            g.step(1e-9);
        }
        let v_load = g.voltage_at(node).unwrap();
        for x in 0..g.params().nx {
            for y in 0..g.params().ny {
                let v = g.voltage_at(NodeId { x, y }).unwrap();
                prop_assert!(v_load <= v + 1e-9, "loaded node must be deepest");
                prop_assert!(v <= g.lumped().voltage() + 1e-9);
            }
        }
    }

    /// The delay factor inverse (fault_threshold_voltage) is consistent
    /// with the forward law for any feasible path/budget pair.
    #[test]
    fn delay_threshold_inverse(nominal in 500.0f64..9_000.0, slack_frac in 1.05f64..3.0) {
        let m = DelayModel::default();
        let budget = nominal * slack_frac;
        let v = m.fault_threshold_voltage(nominal, budget);
        if v > m.v_th + 1e-6 && v < m.v_nom - 1e-6 {
            prop_assert!((m.delay_ps(nominal, v) - budget).abs() < budget * 1e-6);
        }
    }

    /// Thermal equilibrium equals ambient + P·R exactly for any dt split.
    #[test]
    fn thermal_equilibrium_exact(power in 0.0f64..10.0, steps in 1usize..50) {
        let mut t = ThermalModel::new(ThermalParams::default()).unwrap();
        for _ in 0..steps {
            t.step(power, 1e4 / steps as f64);
        }
        let expect = 25.0 + power * 5.0;
        prop_assert!((t.junction_temp() - expect).abs() < 1e-3);
    }

    /// Glitch windows partition exactly the below-threshold samples.
    #[test]
    fn glitch_windows_cover_exactly(samples in prop::collection::vec(0.5f64..1.1, 1..300), thr in 0.7f64..1.0) {
        let trace = Trace::from_samples(1e-9, samples.clone()).unwrap();
        let windows = glitch_windows(&trace, thr);
        let mut covered = vec![false; samples.len()];
        for w in &windows {
            prop_assert!(w.start < w.end);
            for c in covered.iter_mut().take(w.end).skip(w.start) {
                prop_assert!(!*c, "windows must not overlap");
                *c = true;
            }
        }
        for (i, &s) in samples.iter().enumerate() {
            prop_assert_eq!(covered[i], s < thr, "sample {} miscovered", i);
        }
    }

    /// Droop stats: worst index really is the minimum sample.
    #[test]
    fn droop_stats_worst_is_min(samples in prop::collection::vec(0.5f64..1.1, 1..200)) {
        let trace = Trace::from_samples(1e-9, samples.clone()).unwrap();
        let stats = droop_stats(&trace, 1.0, 0.05).unwrap();
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert!((stats.v_nom - stats.worst_droop - min).abs() < 1e-9
            || stats.worst_droop == 0.0);
        prop_assert!((samples[stats.worst_index] - min).abs() < 1e-12);
    }

    /// Decimation never changes the value set it samples from.
    #[test]
    fn decimation_subsets(samples in prop::collection::vec(-5.0f64..5.0, 1..100), factor in 1usize..10) {
        let trace = Trace::from_samples(1e-9, samples.clone()).unwrap();
        let d = trace.decimate(factor).unwrap();
        for (k, &v) in d.samples().iter().enumerate() {
            prop_assert_eq!(v, samples[k * factor]);
        }
    }
}
