//! End-to-end attack campaign (§III-D summary + §IV evaluation).
//!
//! The three steps of the paper:
//!
//! 1. **Profile** — run the victim while recording the TDC stream, segment
//!    it into layer executions and learn the per-layer signatures
//!    ([`profile_victim`]).
//! 2. **Plan** — pick a target layer; compile an attack scheme whose
//!    *attack delay* spans the time from the detector trigger to the
//!    target layer's start and whose strikes tile the layer's window
//!    ([`plan_attack`]).
//! 3. **Launch** — arm the scheduler, run inferences, and score the
//!    classification accuracy under fault injection ([`evaluate_attack`]).
//!
//! The *blind* baseline (paper Fig. 5b, top curve) sprays the same number
//! of strikes uniformly over the whole inference instead of into the
//! target layer ([`plan_blind`]).

use accel::executor::{infer_with_faults, MacHook};
use accel::fault::{FaultModel, MacFault};
use accel::schedule::{Schedule, StageKind};
use dnn::quant::QuantizedNetwork;
use dnn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cosim::{CloudFpga, InferenceRun};
use crate::error::{DeepStrikeError, Result};
use crate::profile::{segment_trace, SegmenterConfig, SignatureLibrary};
use crate::signal_ram::AttackScheme;

/// TDC samples per victim cycle (200 MHz sensor vs 100 MHz victim clock).
pub const SAMPLES_PER_CYCLE: u64 = 2;

/// What profiling learned about the victim.
#[derive(Debug, Clone, PartialEq)]
pub struct VictimProfile {
    /// Layer signatures keyed by name.
    pub library: SignatureLibrary,
    /// Per-layer `(name, start_cycle, len_cycles)` as seen by the sensor.
    pub layer_windows: Vec<(String, u64, u64)>,
    /// Victim cycle at which the detector is expected to latch.
    pub trigger_cycle: u64,
}

impl VictimProfile {
    /// Window of a named layer.
    pub fn window(&self, name: &str) -> Option<(u64, u64)> {
        self.layer_windows.iter().find(|(n, _, _)| n == name).map(|(_, s, l)| (*s, *l))
    }
}

/// Profiles the victim over `runs` unarmed inferences.
///
/// The attacker knows the architecture *family* it is hunting (the paper's
/// library is "for different types of DNN layers at different sizes"), so
/// segments are labelled by `layer_names` in execution order.
///
/// # Errors
///
/// Returns [`DeepStrikeError::LayerNotFound`] if segmentation does not
/// produce one segment per expected layer.
pub fn profile_victim(
    fpga: &mut CloudFpga,
    layer_names: &[&str],
    runs: usize,
) -> Result<VictimProfile> {
    let traces: Vec<Vec<u8>> = (0..runs.max(1)).map(|_| fpga.run_inference().tdc_trace).collect();
    profile_from_traces(&traces, layer_names)
}

/// Profiles the victim from already-captured TDC traces, one per unarmed
/// inference. This is [`profile_victim`] with the platform access factored
/// out: the remote driver ([`crate::remote`]) streams the same bytes over
/// the UART link and must land on bit-identical windows.
///
/// # Errors
///
/// Returns [`DeepStrikeError::LayerNotFound`] if segmentation does not
/// produce one segment per expected layer, and
/// [`DeepStrikeError::InvalidConfig`] when `traces` is empty.
pub fn profile_from_traces(traces: &[Vec<u8>], layer_names: &[&str]) -> Result<VictimProfile> {
    if traces.is_empty() {
        return Err(DeepStrikeError::InvalidConfig("at least one trace required".into()));
    }
    let mut library = SignatureLibrary::new();
    let mut sums: Vec<(u64, u64)> = vec![(0, 0); layer_names.len()];
    let mut trigger_sum = 0u64;
    let seg_config = SegmenterConfig::default();
    for tdc_trace in traces {
        let segments = segment_trace(tdc_trace, &seg_config);
        if segments.len() != layer_names.len() {
            return Err(DeepStrikeError::LayerNotFound(format!(
                "expected {} execution segments, found {}",
                layer_names.len(),
                segments.len()
            )));
        }
        for (name, seg) in layer_names.iter().zip(&segments) {
            library.learn(name, seg);
        }
        for (i, seg) in segments.iter().enumerate() {
            sums[i].0 += seg.start as u64 / SAMPLES_PER_CYCLE;
            sums[i].1 += seg.len as u64 / SAMPLES_PER_CYCLE;
        }
        // The detector latches `debounce` samples into the first layer.
        trigger_sum += segments[0].start as u64 / SAMPLES_PER_CYCLE + 2;
    }
    let n = traces.len() as u64;
    Ok(VictimProfile {
        library,
        layer_windows: layer_names
            .iter()
            .zip(&sums)
            .map(|(name, &(s, l))| (name.to_string(), s / n, l / n))
            .collect(),
        trigger_cycle: trigger_sum / n,
    })
}

/// Compiles a guided attack scheme: wait from the trigger until `target`
/// starts, then tile its window with `strikes` one-cycle strikes.
///
/// # Errors
///
/// Returns [`DeepStrikeError::LayerNotFound`] for an unknown target, and
/// [`DeepStrikeError::InvalidConfig`] if `strikes` cannot fit the window.
pub fn plan_attack(profile: &VictimProfile, target: &str, strikes: u32) -> Result<AttackScheme> {
    let (start, len) =
        profile.window(target).ok_or_else(|| DeepStrikeError::LayerNotFound(target.to_string()))?;
    if strikes == 0 {
        return Err(DeepStrikeError::InvalidConfig("at least one strike required".into()));
    }
    let delay = start.saturating_sub(profile.trigger_cycle) as u32;
    // One on-cycle plus a gap chosen so the strikes span the window.
    let per_strike = (len / u64::from(strikes)).max(2);
    let gap = (per_strike - 1) as u32;
    if u64::from(strikes) * per_strike > len + per_strike {
        return Err(DeepStrikeError::InvalidConfig(format!(
            "{strikes} strikes cannot fit a {len}-cycle window"
        )));
    }
    let scheme = AttackScheme { delay_cycles: delay, strikes, strike_cycles: 1, gap_cycles: gap };
    emit_planned(&scheme);
    Ok(scheme)
}

fn emit_planned(scheme: &AttackScheme) {
    trace::emit(|| trace::Event::AttackPlanned {
        delay_cycles: u64::from(scheme.delay_cycles),
        strikes: scheme.strikes,
        strike_cycles: scheme.strike_cycles,
        gap_cycles: scheme.gap_cycles,
    });
}

/// Compiles a multi-target program: after the trigger, strike each named
/// layer in turn with its own strike budget ("dynamically target at
/// different DNN layers", §III-D). Targets must be given in execution
/// order.
///
/// # Errors
///
/// Returns [`DeepStrikeError::LayerNotFound`] for unknown targets,
/// [`DeepStrikeError::InvalidConfig`] for zero strikes, out-of-order
/// targets, or budgets that do not fit their windows.
pub fn plan_multi_attack(
    profile: &VictimProfile,
    targets: &[(&str, u32)],
) -> Result<crate::signal_ram::SchemeProgram> {
    if targets.is_empty() {
        return Err(DeepStrikeError::InvalidConfig("at least one target required".into()));
    }
    let mut phases = Vec::with_capacity(targets.len());
    // Each phase's delay counts from the end of the previous phase.
    let mut elapsed = profile.trigger_cycle;
    for &(target, strikes) in targets {
        let (start, len) = profile
            .window(target)
            .ok_or_else(|| DeepStrikeError::LayerNotFound(target.to_string()))?;
        if strikes == 0 {
            return Err(DeepStrikeError::InvalidConfig("at least one strike required".into()));
        }
        // The trigger latches a couple of cycles into the first layer, so
        // tolerate a program that reaches a target slightly late — but not
        // one whose window has mostly passed (out-of-order targets).
        if elapsed > start + len / 2 {
            return Err(DeepStrikeError::InvalidConfig(format!(
                "target {target} starts at cycle {start}, before the program reaches it \
                 (cycle {elapsed}); list targets in execution order"
            )));
        }
        let per_strike = (len / u64::from(strikes)).max(2);
        if u64::from(strikes) * per_strike > len + per_strike {
            return Err(DeepStrikeError::InvalidConfig(format!(
                "{strikes} strikes cannot fit {target}'s {len}-cycle window"
            )));
        }
        let phase = AttackScheme {
            delay_cycles: start.saturating_sub(elapsed) as u32,
            strikes,
            strike_cycles: 1,
            gap_cycles: (per_strike - 1) as u32,
        };
        elapsed += phase.total_bits() as u64;
        emit_planned(&phase);
        phases.push(phase);
    }
    Ok(crate::signal_ram::SchemeProgram::new(phases))
}

/// The blind baseline: the same strike count spread over the entire
/// inference, launched immediately (no TDC guidance).
pub fn plan_blind(schedule: &Schedule, strikes: u32) -> AttackScheme {
    plan_blind_cycles(schedule.total_cycles(), strikes)
}

/// [`plan_blind`] against a *cycle estimate* instead of the real schedule —
/// what a remote attacker who never managed to profile must fall back to
/// (it only knows roughly how long an inference lasts).
pub fn plan_blind_cycles(total_cycles: u64, strikes: u32) -> AttackScheme {
    let per_strike = (total_cycles / u64::from(strikes.max(1))).max(2);
    let scheme = AttackScheme {
        delay_cycles: 0,
        strikes,
        strike_cycles: 1,
        gap_cycles: (per_strike - 1) as u32,
    };
    emit_planned(&scheme);
    scheme
}

/// A [`MacHook`] that converts a recorded [`InferenceRun`] into per-op
/// fault decisions: an op faults according to the worst rail voltage it
/// would have seen while in flight.
#[derive(Debug)]
pub struct StrikeHook<'a> {
    windows: Vec<Option<usize>>,
    schedule: &'a Schedule,
    capture_voltage: Vec<f64>,
    in_flight_voltage: Vec<f64>,
    fault_model: FaultModel,
    safe_voltage: f64,
    early_safe_voltage: f64,
    rng: StdRng,
}

impl<'a> StrikeHook<'a> {
    /// DSP pipeline latency assumed for the in-flight window, in cycles.
    pub const LATENCY: u64 = 5;

    /// Path-length scale of accumulate-dominated (dense) DSP ops.
    pub const DENSE_PATH_SCALE: f64 = 0.85;

    /// Builds the hook from a recorded run.
    pub fn new(
        net: &QuantizedNetwork,
        schedule: &'a Schedule,
        run: &InferenceRun,
        fault_model: FaultModel,
        seed: u64,
    ) -> Self {
        // Stage i of the network maps to window i of the schedule.
        let windows =
            (0..net.layers().len()).map(|i| (i < schedule.windows().len()).then_some(i)).collect();
        let n = run.victim_voltage.len();
        let capture_voltage: Vec<f64> = (0..n)
            .map(|c| {
                let cap = (c + Self::LATENCY as usize).min(n.saturating_sub(1));
                run.victim_voltage[cap]
            })
            .collect();
        let in_flight_voltage =
            (0..n as u64).map(|c| run.min_voltage_in_flight(c, Self::LATENCY)).collect();
        let safe_voltage = fault_model.safe_voltage();
        let early_safe_voltage = fault_model.early_stage().safe_voltage();
        StrikeHook {
            windows,
            schedule,
            capture_voltage,
            in_flight_voltage,
            fault_model,
            safe_voltage,
            early_safe_voltage,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl MacHook for StrikeHook<'_> {
    fn fault(&mut self, stage_index: usize, op_index: u64, weight: i8, activation: i8) -> MacFault {
        let Some(window_index) = self.windows.get(stage_index).copied().flatten() else {
            return MacFault::None;
        };
        let window = &self.schedule.windows()[window_index];
        if op_index >= window.ops {
            return MacFault::None;
        }
        let cycle = window.cycle_of_op(op_index) as usize;
        let (v_capture, v_min) =
            match (self.capture_voltage.get(cycle), self.in_flight_voltage.get(cycle)) {
                (Some(&a), Some(&b)) => (a, b),
                _ => return MacFault::None,
            };
        // Fast path: nothing in the op's flight can violate timing.
        if v_capture >= self.safe_voltage && v_min >= self.early_safe_voltage {
            return MacFault::None;
        }
        // Convolution ops exercise the full multiplier array (path length
        // grows with the product width); fully connected stages are
        // accumulate-dominated — "only adds k×k prior multiplication
        // results" (§IV) — so their critical path is the short ALU add.
        let scale = match window.kind {
            StageKind::Dense => Self::DENSE_PATH_SCALE,
            _ => FaultModel::path_scale(i32::from(weight) * i32::from(activation)),
        };
        self.fault_model.sample_pipelined_scaled(v_capture, v_min, scale, &mut self.rng)
    }
}

/// Outcome of one attack evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackOutcome {
    /// Accuracy of the untampered deployment on the same images.
    pub clean_accuracy: f64,
    /// Accuracy under the attack.
    pub attacked_accuracy: f64,
    /// Strikes actually fired during the recorded run.
    pub strikes_fired: usize,
    /// Mean MAC faults applied per image.
    pub mean_faults_per_image: f64,
    /// Mean duplication faults per image.
    pub mean_duplicate_per_image: f64,
    /// Mean random faults per image.
    pub mean_random_per_image: f64,
}

impl AttackOutcome {
    /// Accuracy lost to the attack, in percentage points.
    pub fn accuracy_drop(&self) -> f64 {
        (self.clean_accuracy - self.attacked_accuracy) * 100.0
    }
}

/// Scores an attack: runs the recorded fault pattern over a test set.
///
/// The recorded run's voltage waveform is input-independent (the
/// accelerator's schedule is static), so one co-simulated run prices the
/// fault distribution and each image samples it independently — the
/// statistical mode described in DESIGN.md §4.
///
/// Images are scored on the [`par`] worker pool: image `i` draws from an
/// `StdRng` seeded by `par::seed_for(seed ^ 0xD5, i)` (and its
/// [`StrikeHook`] from `seed + i`, as before), so the outcome is a pure
/// function of `(inputs, seed)` — bit-identical at any thread count,
/// including `DEEPSTRIKE_THREADS=1`.
pub fn evaluate_attack<'a>(
    net: &QuantizedNetwork,
    schedule: &Schedule,
    run: &InferenceRun,
    samples: impl Iterator<Item = (&'a Tensor, usize)>,
    fault_model: FaultModel,
    seed: u64,
) -> AttackOutcome {
    evaluate_attack_impl(net, schedule, run, &samples.collect::<Vec<_>>(), fault_model, seed, None)
}

/// Precomputes the per-image clean verdicts `evaluate_attack` derives
/// internally (`net.predict(x) == y`). The clean pass is candidate-
/// independent, so a campaign sweeping hundreds of schemes over one test
/// set computes it once and passes it to
/// [`evaluate_attack_cached`], which then scores bit-identically to
/// [`evaluate_attack`] while skipping the redundant clean inference per
/// image per candidate.
pub fn clean_predictions<'a>(
    net: &QuantizedNetwork,
    samples: impl Iterator<Item = (&'a Tensor, usize)>,
) -> Vec<bool> {
    let samples: Vec<(&Tensor, usize)> = samples.collect();
    par::map_items(&samples, |&(x, y)| net.predict(x) == y)
}

/// [`evaluate_attack`] with the clean verdicts precomputed by
/// [`clean_predictions`] over the *same* samples in the same order.
/// Bit-identical to the uncached path: the verdicts are deterministic
/// booleans, so substituting them changes no sampled value.
pub fn evaluate_attack_cached<'a>(
    net: &QuantizedNetwork,
    schedule: &Schedule,
    run: &InferenceRun,
    samples: impl Iterator<Item = (&'a Tensor, usize)>,
    fault_model: FaultModel,
    seed: u64,
    clean: &[bool],
) -> AttackOutcome {
    let samples: Vec<(&Tensor, usize)> = samples.collect();
    assert_eq!(samples.len(), clean.len(), "clean verdicts must cover the sample set");
    evaluate_attack_impl(net, schedule, run, &samples, fault_model, seed, Some(clean))
}

fn evaluate_attack_impl(
    net: &QuantizedNetwork,
    schedule: &Schedule,
    run: &InferenceRun,
    samples: &[(&Tensor, usize)],
    fault_model: FaultModel,
    seed: u64,
    clean: Option<&[bool]>,
) -> AttackOutcome {
    struct ImageScore {
        clean_ok: bool,
        attacked_ok: bool,
        duplicate: u64,
        random: u64,
    }
    let scores = par::map_seeded(samples.len(), seed ^ 0xD5, |i, rng| {
        let (x, y) = samples[i];
        let mut hook =
            StrikeHook::new(net, schedule, run, fault_model, seed.wrapping_add(i as u64));
        let (logits, tally) = infer_with_faults(net, x, &mut hook, rng);
        // Invariant: a QuantizedNetwork always ends in a layer with at
        // least one output class, so the logits vector is non-empty.
        let predicted = logits
            .iter()
            .enumerate()
            .max_by_key(|(k, &v)| (v, std::cmp::Reverse(*k)))
            .map(|(k, _)| k)
            .expect("non-empty logits");
        let clean_ok = match clean {
            Some(c) => c[i],
            None => net.predict(x) == y,
        };
        let attacked_ok = predicted == y;
        trace::emit(|| trace::Event::ImageScored {
            index: i as u64,
            clean_ok,
            attacked_ok,
            duplicate: tally.duplicate,
            random: tally.random,
        });
        ImageScore { clean_ok, attacked_ok, duplicate: tally.duplicate, random: tally.random }
    });
    let total = scores.len();
    let clean_correct = scores.iter().filter(|s| s.clean_ok).count();
    let attacked_correct = scores.iter().filter(|s| s.attacked_ok).count();
    let dup_sum: u64 = scores.iter().map(|s| s.duplicate).sum();
    let rand_sum: u64 = scores.iter().map(|s| s.random).sum();
    let denom = total.max(1) as f64;
    AttackOutcome {
        clean_accuracy: clean_correct as f64 / denom,
        attacked_accuracy: attacked_correct as f64 / denom,
        strikes_fired: run.strike_cycles.len(),
        mean_faults_per_image: (dup_sum + rand_sum) as f64 / denom,
        mean_duplicate_per_image: dup_sum as f64 / denom,
        mean_random_per_image: rand_sum as f64 / denom,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::cosim::CosimConfig;
    use accel::schedule::AccelConfig;
    use dnn::digits::{Dataset, RenderParams};
    use dnn::fixed::QFormat;
    use dnn::zoo::mlp;
    use rand::rngs::StdRng;

    fn small_victim() -> QuantizedNetwork {
        let net = mlp(&mut StdRng::seed_from_u64(0));
        QuantizedNetwork::from_sequential(&net, &[1, 28, 28], QFormat::paper()).unwrap()
    }

    fn accel_config() -> AccelConfig {
        AccelConfig { weight_bandwidth: 16, stall_cycles: 150, ..AccelConfig::default() }
    }

    fn platform(cells: usize, q: &QuantizedNetwork) -> CloudFpga {
        let mut fpga = CloudFpga::new(
            q,
            &accel_config(),
            cells,
            CosimConfig { pdn_substeps: 4, ..CosimConfig::default() },
        )
        .unwrap();
        fpga.settle(50);
        fpga
    }

    #[test]
    fn profiling_finds_all_dense_layers() {
        let q = small_victim();
        let mut fpga = platform(8_000, &q);
        let profile = profile_victim(&mut fpga, &["fc1", "fc2", "fc3"], 2).unwrap();
        assert_eq!(profile.layer_windows.len(), 3);
        let (s1, l1) = profile.window("fc1").unwrap();
        let w1 = fpga.schedule().window("fc1").unwrap();
        // Sensor-side estimate within 15% of ground truth.
        assert!(
            (s1 as f64 - w1.start_cycle as f64).abs() < 0.15 * w1.start_cycle as f64 + 40.0,
            "start estimate {s1} vs truth {}",
            w1.start_cycle
        );
        assert!(
            (l1 as f64 - w1.cycles as f64).abs() < 0.25 * w1.cycles as f64,
            "length estimate {l1} vs truth {}",
            w1.cycles
        );
        assert!(profile.trigger_cycle >= w1.start_cycle.saturating_sub(40));
        assert!(profile.library.signature("fc1").unwrap().observations == 2);
    }

    #[test]
    fn wrong_layer_count_is_reported() {
        let q = small_victim();
        let mut fpga = platform(8_000, &q);
        let err = profile_victim(&mut fpga, &["a", "b", "c", "d", "e"], 1).unwrap_err();
        assert!(matches!(err, DeepStrikeError::LayerNotFound(_)));
    }

    #[test]
    fn plan_places_strikes_inside_the_target_window() {
        let q = small_victim();
        let mut fpga = platform(10_000, &q);
        let profile = profile_victim(&mut fpga, &["fc1", "fc2", "fc3"], 1).unwrap();
        let scheme = plan_attack(&profile, "fc1", 40).unwrap();
        fpga.scheduler_mut().load_scheme(&scheme).unwrap();
        fpga.scheduler_mut().arm(true).unwrap();
        let run = fpga.run_inference();
        assert_eq!(run.strike_cycles.len(), 40);
        let w = fpga.schedule().window("fc1").unwrap();
        let inside =
            run.strike_cycles.iter().filter(|&&c| c >= w.start_cycle && c < w.end_cycle()).count();
        assert!(
            inside as f64 >= 0.8 * 40.0,
            "only {inside}/40 strikes landed in fc1 ({}..{})",
            w.start_cycle,
            w.end_cycle()
        );
    }

    #[test]
    fn plan_rejects_bad_targets() {
        let profile = VictimProfile {
            library: SignatureLibrary::new(),
            layer_windows: vec![("fc1".into(), 100, 50)],
            trigger_cycle: 90,
        };
        assert!(matches!(
            plan_attack(&profile, "nope", 10),
            Err(DeepStrikeError::LayerNotFound(_))
        ));
        assert!(plan_attack(&profile, "fc1", 0).is_err());
        assert!(plan_attack(&profile, "fc1", 500).is_err(), "window too small");
    }

    #[test]
    fn guided_strikes_concentrate_where_blind_strikes_scatter() {
        // Target the *small* fc2 window: TDC guidance lands nearly every
        // strike inside it, while the blind spray mostly misses — the
        // mechanism behind Fig. 5b's guided-vs-blind gap. (The accuracy
        // impact comparison runs on LeNet in the fig5b bench, where the
        // target layer is a minority of the runtime.)
        let q = small_victim();
        let strikes = 50u32;

        let mut fpga = platform(14_000, &q);
        let profile = profile_victim(&mut fpga, &["fc1", "fc2", "fc3"], 1).unwrap();
        let scheme = plan_attack(&profile, "fc2", strikes).unwrap();
        fpga.scheduler_mut().load_scheme(&scheme).unwrap();
        fpga.scheduler_mut().arm(true).unwrap();
        let guided_run = fpga.run_inference();

        let mut fpga_b = platform(14_000, &q);
        let blind_scheme = plan_blind(fpga_b.schedule(), strikes);
        fpga_b.scheduler_mut().load_scheme(&blind_scheme).unwrap();
        fpga_b.scheduler_mut().arm(true).unwrap();
        fpga_b.scheduler_mut().force_start();
        let blind_run = fpga_b.run_inference();

        let w = fpga.schedule().window("fc2").unwrap().clone();
        let inside = |cycles: &[u64]| {
            cycles.iter().filter(|&&c| c >= w.start_cycle && c < w.end_cycle()).count() as f64
                / cycles.len().max(1) as f64
        };
        let guided_frac = inside(&guided_run.strike_cycles);
        let blind_frac = inside(&blind_run.strike_cycles);
        assert!(guided_frac > 0.7, "guided hit rate {guided_frac}");
        assert!(blind_frac < 0.3, "blind hit rate {blind_frac}");
        assert!(!blind_run.strike_cycles.is_empty(), "blind must actually strike");

        // And the guided strikes actually cause faults in the evaluation.
        let mut rng = StdRng::seed_from_u64(77);
        let images = Dataset::generate(80, &RenderParams::default(), &mut rng);
        let guided = evaluate_attack(
            &q,
            fpga.schedule(),
            &guided_run,
            images.iter(),
            FaultModel::paper(),
            1,
        );
        // The victim here is an *untrained* random MLP (clean accuracy sits
        // at the 10-class chance level), so "attacked ≤ clean" would be a
        // coin flip — the accuracy-drop claim is tested on trained LeNet in
        // the fig5b bench. What must hold here: guided strikes fault the
        // target layer heavily, and the faulted accuracy stays at chance.
        assert!(
            guided.mean_faults_per_image > 10.0,
            "guided strikes must fault the window heavily: {} faults/img",
            guided.mean_faults_per_image
        );
        assert!(
            guided.attacked_accuracy < 0.35,
            "faulted random net must stay near chance: {}",
            guided.attacked_accuracy
        );
    }

    #[test]
    fn multi_target_program_strikes_both_layers() {
        let q = small_victim();
        let mut fpga = platform(12_000, &q);
        let profile = profile_victim(&mut fpga, &["fc1", "fc2", "fc3"], 1).unwrap();
        let program = plan_multi_attack(&profile, &[("fc1", 30), ("fc3", 5)]).unwrap();
        assert_eq!(program.total_strikes(), 35);
        fpga.scheduler_mut().load_program(&program).unwrap();
        fpga.scheduler_mut().arm(true).unwrap();
        let run = fpga.run_inference();
        assert_eq!(run.strike_cycles.len(), 35);
        let w1 = fpga.schedule().window("fc1").unwrap().clone();
        let w3 = fpga.schedule().window("fc3").unwrap().clone();
        let in1 = run.strike_cycles.iter().filter(|&&c| w1.contains(c)).count();
        let in3 = run.strike_cycles.iter().filter(|&&c| w3.contains(c)).count();
        assert!(in1 >= 24, "fc1 phase landed {in1}/30");
        assert!(in3 >= 3, "fc3 phase landed {in3}/5");
    }

    #[test]
    fn multi_target_rejects_out_of_order_and_unknown() {
        let profile = VictimProfile {
            library: SignatureLibrary::new(),
            layer_windows: vec![("a".into(), 100, 50), ("b".into(), 300, 50)],
            trigger_cycle: 90,
        };
        assert!(plan_multi_attack(&profile, &[]).is_err());
        assert!(plan_multi_attack(&profile, &[("zz", 1)]).is_err());
        assert!(
            plan_multi_attack(&profile, &[("b", 5), ("a", 5)]).is_err(),
            "out-of-order targets must be rejected"
        );
        assert!(plan_multi_attack(&profile, &[("a", 5), ("b", 5)]).is_ok());
        assert!(plan_multi_attack(&profile, &[("a", 0)]).is_err());
    }

    #[test]
    fn outcome_accuracy_drop() {
        let o = AttackOutcome {
            clean_accuracy: 0.96,
            attacked_accuracy: 0.82,
            strikes_fired: 100,
            mean_faults_per_image: 5.0,
            mean_duplicate_per_image: 4.0,
            mean_random_per_image: 1.0,
        };
        assert!((o.accuracy_drop() - 14.0).abs() < 1e-9);
    }
}
