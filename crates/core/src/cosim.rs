//! The prototyped cloud FPGA: victim + attacker co-simulation.
//!
//! This is the paper's experimental platform in software. One shared
//! [`SpatialPdn`] couples two tenants placed at opposite ends of the die:
//!
//! * the **victim** — a DNN accelerator whose per-layer schedule and
//!   activity model turn execution into a current waveform;
//! * the **attacker** — TDC sensor, DNN start detector, signal RAM and
//!   power striker, wired together by the [`AttackScheduler`].
//!
//! Each victim clock cycle (10 ns at 100 MHz) the loop: reads the victim's
//! current draw, asks the scheduler for the striker `Start` level, injects
//! both currents into the PDN mesh, advances the mesh in 1 ns substeps,
//! lets the TDC sample the attacker-side rail at 200 MHz, and records the
//! worst victim-side voltage of the cycle (what the in-flight DSP ops
//! experience). The recorded [`InferenceRun`] is everything the attack
//! evaluation needs: the TDC trace (Fig. 1b), the detector trigger point
//! (Fig. 3) and the per-cycle victim voltage under strikes (Figs. 5b, 6b).

use std::collections::VecDeque;

use accel::power::ActivityModel;
use accel::schedule::{AccelConfig, Schedule};
use dnn::quant::QuantizedNetwork;
use pdn::grid::{GridParams, NodeId, SpatialPdn};
use pdn::rlc::LumpedPdn;
use pdn::thermal::ThermalModel;
use uart::proto::StatusInfo;
use uart::session::ShellHandler;

use crate::detector::{DetectorConfig, StartDetector};
use crate::error::Result;
use crate::scheduler::AttackScheduler;
use crate::signal_ram::{AttackScheme, SignalRam};
use crate::striker::StrikerBank;
use crate::tdc::{TdcConfig, TdcSensor};

/// Co-simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosimConfig {
    /// Victim clock in MHz (the paper's accelerator runs at 100 MHz).
    pub victim_clock_mhz: f64,
    /// PDN integration substeps per victim cycle.
    pub pdn_substeps: usize,
    /// Victim placement as a fraction of the die (x, y).
    pub victim_pos: (f64, f64),
    /// Attacker placement as a fraction of the die (x, y).
    pub attacker_pos: (f64, f64),
    /// TDC calibration target (the paper's ≈ 90).
    pub tdc_target: u8,
    /// TDC readout ring-buffer capacity for UART reads.
    pub trace_capacity: usize,
    /// Mesh relaxation sweeps per substep (warm-started).
    pub relax_sweeps: usize,
}

impl Default for CosimConfig {
    fn default() -> Self {
        CosimConfig {
            victim_clock_mhz: 100.0,
            pdn_substeps: 10,
            victim_pos: (0.12, 0.5),
            attacker_pos: (0.88, 0.5),
            tdc_target: 90,
            trace_capacity: 1 << 20,
            relax_sweeps: 2,
        }
    }
}

/// A square-wave background tenant (the §V multi-tenant extension).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bystander {
    /// Placement as a die fraction.
    pub pos: (f64, f64),
    /// Draw while on, in amps.
    pub amps: f64,
    /// Full on/off period in victim cycles.
    pub period_cycles: u64,
}

/// Everything recorded during one victim inference.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceRun {
    /// TDC readouts, one per 5 ns sample.
    pub tdc_trace: Vec<u8>,
    /// Worst victim-rail voltage per victim cycle.
    pub victim_voltage: Vec<f64>,
    /// Victim cycles during which the striker was enabled.
    pub strike_cycles: Vec<u64>,
    /// Victim cycle at which the detector latched, if it did.
    pub triggered_cycle: Option<u64>,
    /// Junction temperature at the end of the run, °C.
    pub final_temp_c: f64,
}

impl InferenceRun {
    /// Worst voltage an op issued at `cycle` can see while in flight
    /// (`latency` cycles).
    pub fn min_voltage_in_flight(&self, cycle: u64, latency: u64) -> f64 {
        let start = cycle as usize;
        let end = ((cycle + latency) as usize + 1).min(self.victim_voltage.len());
        self.victim_voltage[start.min(self.victim_voltage.len().saturating_sub(1))..end]
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }
}

/// The prototyped multi-tenant cloud FPGA.
///
/// `Clone` snapshots the whole platform state; campaign drivers clone one
/// profiled instance per sweep point so points can run on the worker pool
/// without sharing mutable state.
#[derive(Clone)]
pub struct CloudFpga {
    pub(crate) config: CosimConfig,
    pub(crate) schedule: Schedule,
    pub(crate) activity: ActivityModel,
    pub(crate) pdn: SpatialPdn,
    pub(crate) victim_node: NodeId,
    pub(crate) attacker_node: NodeId,
    pub(crate) tdc: TdcSensor,
    pub(crate) striker: StrikerBank,
    pub(crate) scheduler: AttackScheduler,
    pub(crate) thermal: ThermalModel,
    pub(crate) bystanders: Vec<Bystander>,
    pub(crate) trace_buf: VecDeque<u8>,
}

impl std::fmt::Debug for CloudFpga {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CloudFpga(striker {} cells, schedule {} cycles)",
            self.striker.cells(),
            self.schedule.total_cycles()
        )
    }
}

impl CloudFpga {
    /// Assembles the platform around a quantised victim network.
    ///
    /// # Errors
    ///
    /// Propagates TDC calibration and striker configuration failures.
    pub fn new(
        victim: &QuantizedNetwork,
        accel_config: &AccelConfig,
        striker_cells: usize,
        config: CosimConfig,
    ) -> Result<Self> {
        let schedule = Schedule::for_network(victim, accel_config);
        let pdn = SpatialPdn::new(
            LumpedPdn::zynq_like(),
            GridParams { sweeps: config.relax_sweeps, ..GridParams::default() },
        )?;
        let victim_node = pdn.node_at_fraction(config.victim_pos.0, config.victim_pos.1);
        let attacker_node = pdn.node_at_fraction(config.attacker_pos.0, config.attacker_pos.1);
        let tdc = TdcSensor::calibrated(TdcConfig::default(), 100.0, config.tdc_target)?;
        let striker = StrikerBank::new(striker_cells)?;
        // Two RAMB36s: campaigns that target late layers (e.g. 4,500
        // strikes into FC1 behind a ~17k-cycle delay) compile to ~48k bits.
        let scheduler = AttackScheduler::new(
            StartDetector::new(DetectorConfig::default())?,
            SignalRam::new(2)?,
        );
        Ok(CloudFpga {
            config,
            schedule,
            activity: ActivityModel::default(),
            pdn,
            victim_node,
            attacker_node,
            tdc,
            striker,
            scheduler,
            thermal: ThermalModel::zynq_like(),
            bystanders: Vec::new(),
            trace_buf: VecDeque::new(),
        })
    }

    /// The victim's execution schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The attack scheduler (for direct, non-UART control).
    pub fn scheduler_mut(&mut self) -> &mut AttackScheduler {
        &mut self.scheduler
    }

    /// The TDC sensor.
    pub fn tdc(&self) -> &TdcSensor {
        &self.tdc
    }

    /// The striker bank.
    pub fn striker(&self) -> &StrikerBank {
        &self.striker
    }

    /// Adds a background tenant (multi-tenant extension).
    pub fn add_bystander(&mut self, bystander: Bystander) {
        self.bystanders.push(bystander);
    }

    /// Lets the PDN settle at idle load for `cycles` victim cycles.
    pub fn settle(&mut self, cycles: u64) {
        let dt = self.substep_dt();
        for _ in 0..cycles {
            self.pdn
                .inject(self.victim_node, self.activity.idle)
                .expect("victim node is on the mesh");
            for _ in 0..self.config.pdn_substeps {
                self.pdn.step(dt);
            }
        }
    }

    pub(crate) fn substep_dt(&self) -> f64 {
        let period_s = 1.0e-6 / self.config.victim_clock_mhz;
        period_s / self.config.pdn_substeps as f64
    }

    /// Runs one full victim inference, recording everything.
    pub fn run_inference(&mut self) -> InferenceRun {
        self.scheduler.rearm();
        let total = self.schedule.total_cycles();
        let mut rec = RunRecorder::new(total, false);
        for cycle in 0..total {
            self.step_cycle(cycle, &mut rec);
        }
        self.finish_run(rec)
    }

    /// Advances the platform by exactly one victim cycle.
    ///
    /// This is the loop body of [`run_inference`](Self::run_inference),
    /// factored out so the snapshot engine (`crate::snapshot`) can resume
    /// the identical cycle sequence from a mid-run fork. The operation
    /// order here is load-bearing: any reordering changes float rounding
    /// and breaks the bit-identity contract between forked suffix runs
    /// and naive full replays.
    pub(crate) fn step_cycle(&mut self, cycle: u64, rec: &mut RunRecorder) {
        let dt = self.substep_dt();
        let substeps = self.config.pdn_substeps;
        // TDC samples twice per 10 ns victim cycle (200 MHz).
        let tdc_every = (substeps / 2).max(1);

        // Victim current for this cycle.
        let i_victim = self.activity.current_at(&self.schedule, cycle);
        // Scheduler decides the striker level using the latest sample.
        let was_triggered = self.scheduler.detector().is_triggered();
        let enable = self.scheduler.clock(rec.last_raw.take());
        if !was_triggered && self.scheduler.detector().is_triggered() {
            rec.triggered_cycle = Some(cycle);
        }
        if enable {
            if !self.striker.is_enabled() {
                trace::emit(|| trace::Event::StrikeIssued { cycle });
            }
            rec.strike_cycles.push(cycle);
        }
        // Inject all loads at their mesh nodes.
        self.pdn.inject(self.victim_node, i_victim).expect("victim node is on the mesh");
        let v_att_now =
            self.pdn.voltage_at(self.attacker_node).expect("attacker node is on the mesh");
        self.striker.set_enabled(enable);
        let i_striker = self.striker.current_a(v_att_now);
        self.pdn.inject(self.attacker_node, i_striker).expect("attacker node is on the mesh");
        for (k, b) in self.bystanders.iter().enumerate() {
            let on = (cycle / (b.period_cycles / 2).max(1)).is_multiple_of(2);
            let node = self.pdn.node_at_fraction(b.pos.0, b.pos.1);
            let _ = k;
            self.pdn
                .inject(node, if on { b.amps } else { 0.0 })
                .expect("bystander node is on the mesh");
        }

        // Advance the mesh; sample TDC mid-cycle and at cycle end.
        let mut v_victim_min = f64::INFINITY;
        for s in 0..substeps {
            self.pdn.step(dt);
            let vv = self.pdn.voltage_at(self.victim_node).expect("victim node is on the mesh");
            v_victim_min = v_victim_min.min(vv);
            if (s + 1) % tdc_every == 0 {
                let va =
                    self.pdn.voltage_at(self.attacker_node).expect("attacker node is on the mesh");
                let reading = self.tdc.sample(va);
                rec.tdc_trace.push(reading.count);
                if self.trace_buf.len() == self.config.trace_capacity {
                    self.trace_buf.pop_front();
                }
                self.trace_buf.push_back(reading.count);
                rec.last_raw = Some(reading.raw);
            }
        }
        rec.victim_voltage.push(v_victim_min);

        // Thermal integration (victim + striker dissipation).
        let v_now = self.pdn.voltage_at(self.victim_node).expect("victim node is on the mesh");
        let power = i_victim * v_now + self.striker.power_w(v_now);
        self.thermal.step(power, dt * substeps as f64);
        if let Some(powers) = rec.powers.as_mut() {
            powers.push(power);
        }
    }

    /// Runs the post-loop conformance pass and packages the recording.
    pub(crate) fn finish_run(&mut self, rec: RunRecorder) -> InferenceRun {
        let dt = self.substep_dt();
        let substeps = self.config.pdn_substeps;
        // Post-run PDN conformance pass: when recording, summarise every
        // victim-rail excursion below the DSP fault threshold (the
        // emission lives in `pdn::analysis::glitch_windows`).
        if trace::is_collecting() {
            if let Ok(t) =
                pdn::trace::Trace::from_samples(dt * substeps as f64, rec.victim_voltage.clone())
            {
                let safe = accel::fault::FaultModel::paper().safe_voltage();
                let _ = pdn::analysis::glitch_windows(&t, safe);
            }
        }
        InferenceRun {
            tdc_trace: rec.tdc_trace,
            victim_voltage: rec.victim_voltage,
            strike_cycles: rec.strike_cycles,
            triggered_cycle: rec.triggered_cycle,
            final_temp_c: self.thermal.junction_temp(),
        }
    }

    /// Behavioural state equality: every field that influences future
    /// dynamics, i.e. everything except the UART readout ring buffer
    /// (`trace_buf` only feeds `ReadTrace` drains, never the physics).
    pub fn state_eq(&self, other: &CloudFpga) -> bool {
        self.config == other.config
            && self.schedule == other.schedule
            && self.activity == other.activity
            && self.pdn == other.pdn
            && self.victim_node == other.victim_node
            && self.attacker_node == other.attacker_node
            && self.tdc == other.tdc
            && self.striker == other.striker
            && self.scheduler == other.scheduler
            && self.thermal == other.thermal
            && self.bystanders == other.bystanders
    }
}

/// Per-run recording state for the cycle loop, factored out of
/// [`CloudFpga::run_inference`] so a forked suffix run can seed it from a
/// snapshot (`last_raw` and `triggered_cycle` are carried machine state;
/// the vectors are the recording so far).
#[derive(Debug, Clone)]
pub(crate) struct RunRecorder {
    pub(crate) tdc_trace: Vec<u8>,
    pub(crate) victim_voltage: Vec<f64>,
    pub(crate) strike_cycles: Vec<u64>,
    pub(crate) triggered_cycle: Option<u64>,
    /// Raw TDC word sampled last; consumed by the scheduler next cycle.
    pub(crate) last_raw: Option<u128>,
    /// When `Some`, per-cycle thermal power is recorded (reference pass).
    pub(crate) powers: Option<Vec<f64>>,
}

impl RunRecorder {
    pub(crate) fn new(total: u64, record_powers: bool) -> Self {
        RunRecorder {
            tdc_trace: Vec::with_capacity((total as usize) * 2),
            victim_voltage: Vec::with_capacity(total as usize),
            strike_cycles: Vec::new(),
            triggered_cycle: None,
            last_raw: None,
            powers: record_powers.then(Vec::new),
        }
    }

    /// A recorder resuming mid-run from a fork point: the vectors start
    /// empty (the engine splices the shared prefix back in afterwards)
    /// while the carried machine state is restored from the snapshot.
    pub(crate) fn resume(triggered_cycle: Option<u64>, last_raw: Option<u128>) -> Self {
        RunRecorder {
            tdc_trace: Vec::new(),
            victim_voltage: Vec::new(),
            strike_cycles: Vec::new(),
            triggered_cycle,
            last_raw,
            powers: None,
        }
    }
}

impl ShellHandler for CloudFpga {
    /// Drains up to `max_samples` oldest readouts from the ring buffer.
    /// Streaming semantics (rather than a peek at the tail) let a remote
    /// client reconstruct the full trace chunk by chunk without loss —
    /// and the reliable transport's replay cache makes the drain safe to
    /// retransmit.
    fn read_trace(&mut self, max_samples: usize) -> Vec<u8> {
        let n = self.trace_buf.len().min(max_samples);
        self.trace_buf.drain(..n).collect()
    }

    fn load_scheme(&mut self, data: &[u8]) -> std::result::Result<(), u8> {
        let scheme = AttackScheme::from_bytes(data).map_err(|_| 1u8)?;
        self.scheduler.load_scheme(&scheme).map_err(|_| 2u8)
    }

    fn arm(&mut self, enabled: bool) -> std::result::Result<(), u8> {
        self.scheduler.arm(enabled).map_err(|_| 3u8)
    }

    fn status(&mut self) -> StatusInfo {
        self.scheduler.status()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use dnn::fixed::QFormat;
    use dnn::quant::QuantizedNetwork;
    use dnn::zoo::mlp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A small victim + fast co-sim settings so debug-mode tests stay quick.
    fn small_platform(striker_cells: usize) -> CloudFpga {
        let net = mlp(&mut StdRng::seed_from_u64(0));
        let q = QuantizedNetwork::from_sequential(&net, &[1, 28, 28], QFormat::paper()).unwrap();
        let accel =
            AccelConfig { weight_bandwidth: 16, stall_cycles: 150, ..AccelConfig::default() };
        let mut fpga = CloudFpga::new(
            &q,
            &accel,
            striker_cells,
            CosimConfig { pdn_substeps: 4, ..CosimConfig::default() },
        )
        .unwrap();
        fpga.settle(50);
        fpga
    }

    #[test]
    fn idle_tdc_reads_near_calibration_target() {
        let mut fpga = small_platform(8_000);
        let run = fpga.run_inference();
        // The first stall samples (before fc1 starts) sit near 90.
        let head: Vec<u8> = run.tdc_trace.iter().copied().take(100).collect();
        let mean = head.iter().map(|&v| f64::from(v)).sum::<f64>() / head.len() as f64;
        assert!((85.0..93.0).contains(&mean), "idle mean {mean}");
    }

    #[test]
    fn layer_execution_depresses_the_readout() {
        let mut fpga = small_platform(8_000);
        let run = fpga.run_inference();
        let w = fpga.schedule().window("fc1").unwrap();
        // TDC samples at 2 per cycle.
        let mid = (w.start_cycle + w.cycles / 2) as usize * 2;
        let exec_mean =
            run.tdc_trace[mid..mid + 200].iter().map(|&v| f64::from(v)).sum::<f64>() / 200.0;
        assert!(exec_mean < 86.0, "execution should droop the readout: {exec_mean}");
    }

    #[test]
    fn unarmed_attack_never_strikes_and_voltage_stays_safe() {
        let mut fpga = small_platform(8_000);
        let run = fpga.run_inference();
        assert!(run.strike_cycles.is_empty());
        assert!(run.triggered_cycle.is_none());
        let v_min = run.victim_voltage.iter().copied().fold(f64::INFINITY, f64::min);
        // The victim's own activity must never cross the DSP fault
        // threshold (the deployed design meets timing on its own).
        let safe = accel::fault::FaultModel::paper().safe_voltage();
        assert!(v_min > safe, "victim-only droop {v_min} crosses fault threshold {safe}");
    }

    #[test]
    fn armed_attack_triggers_and_droops_the_victim_rail() {
        let mut fpga = small_platform(12_000);
        fpga.scheduler_mut()
            .load_scheme(&AttackScheme {
                delay_cycles: 10,
                strikes: 50,
                strike_cycles: 1,
                gap_cycles: 1,
            })
            .unwrap();
        fpga.scheduler_mut().arm(true).unwrap();
        let run = fpga.run_inference();
        let trig = run.triggered_cycle.expect("detector must fire");
        let w = fpga.schedule().windows()[0].clone();
        assert!(
            trig >= w.start_cycle && trig < w.start_cycle + w.cycles / 2,
            "trigger {trig} not near the start of {} ({}..{})",
            w.name,
            w.start_cycle,
            w.end_cycle()
        );
        assert_eq!(run.strike_cycles.len(), 50);
        // Struck cycles droop well below the victim-only floor.
        let struck_min = run
            .strike_cycles
            .iter()
            .map(|&c| run.victim_voltage[c as usize])
            .fold(f64::INFINITY, f64::min);
        assert!(struck_min < 0.93, "strikes must droop the victim rail: {struck_min}");
        assert!(run.final_temp_c < 85.0, "short campaign must not overheat");
    }

    #[test]
    fn min_voltage_in_flight_scans_the_window() {
        let run = InferenceRun {
            tdc_trace: vec![],
            victim_voltage: vec![1.0, 1.0, 0.8, 1.0, 1.0, 1.0, 0.9],
            strike_cycles: vec![],
            triggered_cycle: None,
            final_temp_c: 25.0,
        };
        assert!((run.min_voltage_in_flight(0, 5) - 0.8).abs() < 1e-12);
        assert!((run.min_voltage_in_flight(3, 2) - 1.0).abs() < 1e-12);
        assert!((run.min_voltage_in_flight(5, 5) - 0.9).abs() < 1e-12, "clamps at end");
    }

    #[test]
    fn uart_shell_controls_the_platform() {
        use uart::link::Endpoint;
        use uart::proto::{Command, Response};
        use uart::session::{Client, Shell};

        let mut fpga = small_platform(8_000);
        let (a, b) = Endpoint::pair();
        let mut client = Client::new(a);
        let mut shell = Shell::new(b);
        // Load a scheme and arm over the wire.
        let scheme = AttackScheme::single(5);
        let r = client
            .transact_with(&Command::LoadScheme { data: scheme.to_bytes() }, || {
                shell.poll(&mut fpga);
            })
            .unwrap();
        assert_eq!(r, Response::Ack);
        let r = client
            .transact_with(&Command::Arm { enabled: true }, || {
                shell.poll(&mut fpga);
            })
            .unwrap();
        assert_eq!(r, Response::Ack);
        // Run an inference, then read the TDC trace back.
        let run = fpga.run_inference();
        assert!(!run.strike_cycles.is_empty());
        let r = client
            .transact_with(&Command::ReadTrace { max_samples: 256 }, || {
                shell.poll(&mut fpga);
            })
            .unwrap();
        match r {
            Response::Trace(samples) => {
                assert_eq!(samples.len(), 256);
            }
            other => panic!("expected trace, got {other:?}"),
        }
        // Status reflects the fired strikes.
        let r = client
            .transact_with(&Command::Status, || {
                shell.poll(&mut fpga);
            })
            .unwrap();
        match r {
            Response::Status(st) => {
                assert!(st.armed && st.triggered);
                assert_eq!(st.strikes_fired, 1);
            }
            other => panic!("expected status, got {other:?}"),
        }
        // Garbage scheme bytes are rejected with an error code.
        let err = client
            .transact_with(&Command::LoadScheme { data: vec![1, 2, 3] }, || {
                shell.poll(&mut fpga);
            })
            .unwrap_err();
        assert_eq!(err, uart::UartError::Remote(1));
    }

    #[test]
    fn bystander_load_adds_droop() {
        let mut quiet = small_platform(8_000);
        let quiet_run = quiet.run_inference();
        let mut busy = small_platform(8_000);
        busy.add_bystander(Bystander { pos: (0.5, 0.2), amps: 1.0, period_cycles: 64 });
        let busy_run = busy.run_inference();
        let mean =
            |r: &InferenceRun| r.victim_voltage.iter().sum::<f64>() / r.victim_voltage.len() as f64;
        assert!(mean(&busy_run) < mean(&quiet_run), "third tenant must add droop");
    }
}
