use std::error::Error;
use std::fmt;

use fpga_fabric::FabricError;
use pdn::PdnError;
use uart::UartError;

/// Errors raised by the attack stack.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeepStrikeError {
    /// Fabric-model failure (clocking, DRC, placement).
    Fabric(FabricError),
    /// PDN-model failure.
    Pdn(PdnError),
    /// A component was configured with impossible parameters.
    InvalidConfig(String),
    /// TDC calibration could not reach its target readout.
    Calibration(String),
    /// An attack scheme does not fit the signal RAM.
    SchemeTooLarge { bits: usize, capacity: usize },
    /// Scheme bytes failed to decode.
    MalformedScheme(String),
    /// Profiling could not identify the requested layer.
    LayerNotFound(String),
    /// The UART link failed (transport gave up, peer rejected a command).
    Link(UartError),
    /// A remote campaign was interrupted by a link outage; its checkpoint
    /// is intact and [`crate::remote::RemoteCampaign::run`] can be called
    /// again to resume from `phase`.
    Interrupted {
        /// The campaign phase that was executing when the link died.
        phase: trace::RemotePhase,
    },
    /// A campaign phase exceeded its wall-clock or link-tick budget
    /// (see `RemoteConfig::phase_wall_budget` / `phase_tick_budget`).
    /// Like [`DeepStrikeError::Interrupted`], the checkpoint is intact:
    /// during profiling the supervisor feeds this into the guidance
    /// ladder; elsewhere the campaign resumes the phase on the next run.
    PhaseDeadline {
        /// The phase whose budget ran out.
        phase: trace::RemotePhase,
    },
    /// A durable checkpoint could not be saved or restored (I/O failure
    /// or corruption with no good generation to roll back to).
    Checkpoint(String),
}

impl fmt::Display for DeepStrikeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeepStrikeError::Fabric(e) => write!(f, "fabric: {e}"),
            DeepStrikeError::Pdn(e) => write!(f, "pdn: {e}"),
            DeepStrikeError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            DeepStrikeError::Calibration(msg) => write!(f, "calibration failed: {msg}"),
            DeepStrikeError::SchemeTooLarge { bits, capacity } => {
                write!(f, "attack scheme of {bits} bits exceeds signal ram capacity {capacity}")
            }
            DeepStrikeError::MalformedScheme(msg) => write!(f, "malformed scheme: {msg}"),
            DeepStrikeError::LayerNotFound(name) => {
                write!(f, "layer {name} not found in the profile")
            }
            DeepStrikeError::Link(e) => write!(f, "uart link: {e}"),
            DeepStrikeError::Interrupted { phase } => {
                write!(
                    f,
                    "campaign interrupted during the {} phase; resume to continue",
                    phase.name()
                )
            }
            DeepStrikeError::PhaseDeadline { phase } => {
                write!(f, "campaign phase {} exceeded its deadline budget", phase.name())
            }
            DeepStrikeError::Checkpoint(msg) => write!(f, "durable checkpoint: {msg}"),
        }
    }
}

impl Error for DeepStrikeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DeepStrikeError::Fabric(e) => Some(e),
            DeepStrikeError::Pdn(e) => Some(e),
            DeepStrikeError::Link(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<FabricError> for DeepStrikeError {
    fn from(e: FabricError) -> Self {
        DeepStrikeError::Fabric(e)
    }
}

#[doc(hidden)]
impl From<PdnError> for DeepStrikeError {
    fn from(e: PdnError) -> Self {
        DeepStrikeError::Pdn(e)
    }
}

#[doc(hidden)]
impl From<UartError> for DeepStrikeError {
    fn from(e: UartError) -> Self {
        DeepStrikeError::Link(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, DeepStrikeError>;

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = DeepStrikeError::from(FabricError::NotFound("net".into()));
        assert!(e.to_string().contains("fabric"));
        assert!(e.source().is_some());
        let e = DeepStrikeError::SchemeTooLarge { bits: 100_000, capacity: 36_864 };
        assert!(e.to_string().contains("36864"));
        assert!(e.source().is_none());
    }
}
