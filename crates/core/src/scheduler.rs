//! The attack scheduler: detector + signal RAM → striker `Start` signal.
//!
//! §III-D ties the pieces together: once armed, the scheduler watches the
//! DNN start detector; when it fires, the signal RAM begins playing the
//! attack-scheme bit vector at `f_sRAM`, and each `1` bit asserts the
//! power striker's `Start` for that cycle.

use uart::proto::StatusInfo;

use crate::detector::StartDetector;
use crate::error::{DeepStrikeError, Result};
use crate::signal_ram::{AttackScheme, SignalRam};

/// The scheduler FSM.
///
/// # Example
///
/// ```
/// use deepstrike::detector::{DetectorConfig, StartDetector};
/// use deepstrike::scheduler::AttackScheduler;
/// use deepstrike::signal_ram::{AttackScheme, SignalRam};
///
/// let det = StartDetector::new(DetectorConfig::default())?;
/// let ram = SignalRam::new(1)?;
/// let mut sched = AttackScheduler::new(det, ram);
/// sched.load_scheme(&AttackScheme::single(0))?;
/// sched.arm(true)?;
/// // Idle readouts: no strikes.
/// assert!(!sched.clock(Some((1u128 << 90) - 1)));
/// # Ok::<(), deepstrike::DeepStrikeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AttackScheduler {
    detector: StartDetector,
    ram: SignalRam,
    armed: bool,
    forced: bool,
    strikes_fired: u64,
    last_enable: bool,
}

impl AttackScheduler {
    /// Wires a detector and a signal RAM together.
    pub fn new(detector: StartDetector, ram: SignalRam) -> Self {
        AttackScheduler {
            detector,
            ram,
            armed: false,
            forced: false,
            strikes_fired: 0,
            last_enable: false,
        }
    }

    /// The underlying detector.
    pub fn detector(&self) -> &StartDetector {
        &self.detector
    }

    /// The underlying signal RAM.
    pub fn ram(&self) -> &SignalRam {
        &self.ram
    }

    /// Snapshot-fork support (`crate::snapshot`): mutable RAM access for
    /// installing a candidate bit vector mid-flight.
    pub(crate) fn ram_mut(&mut self) -> &mut SignalRam {
        &mut self.ram
    }

    /// Whether playback was force-started (blind mode).
    pub fn is_forced(&self) -> bool {
        self.forced
    }

    /// Loads an attack scheme into the signal RAM (disarms first).
    ///
    /// # Errors
    ///
    /// Returns [`DeepStrikeError::SchemeTooLarge`] if it does not fit.
    pub fn load_scheme(&mut self, scheme: &AttackScheme) -> Result<()> {
        self.armed = false;
        self.ram.load(scheme)
    }

    /// Loads a multi-phase program (disarms first).
    ///
    /// # Errors
    ///
    /// Returns [`DeepStrikeError::SchemeTooLarge`] if it does not fit.
    pub fn load_program(&mut self, program: &crate::signal_ram::SchemeProgram) -> Result<()> {
        self.armed = false;
        self.ram.load_program(program)
    }

    /// Arms or disarms.
    ///
    /// # Errors
    ///
    /// Returns [`DeepStrikeError::InvalidConfig`] when arming without a
    /// loaded scheme.
    pub fn arm(&mut self, enabled: bool) -> Result<()> {
        if enabled && !self.ram.is_loaded() {
            return Err(DeepStrikeError::InvalidConfig("no scheme loaded".into()));
        }
        self.armed = enabled;
        trace::emit(|| trace::Event::SchedulerArmed { armed: enabled });
        if enabled {
            self.detector.reset();
            self.strikes_fired = 0;
            self.last_enable = false;
            self.forced = false;
        } else {
            self.ram.stop();
        }
        Ok(())
    }

    /// Whether the scheduler is armed.
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// Strikes fired (rising enable edges) since arming.
    pub fn strikes_fired(&self) -> u64 {
        self.strikes_fired
    }

    /// Advances one `f_sRAM` cycle. `tdc_raw` is the latest raw TDC vector
    /// (if a new sample landed this cycle). Returns the striker `Start`
    /// level for this cycle.
    pub fn clock(&mut self, tdc_raw: Option<u128>) -> bool {
        if let Some(raw) = tdc_raw {
            // In forced (blind) mode playback already runs; a detector
            // trigger must not restart the scheme mid-flight.
            if self.armed && self.detector.push(raw) && !self.forced {
                self.ram.start();
            }
        }
        let enable = self.armed && self.ram.next_bit();
        if enable && !self.last_enable {
            self.strikes_fired += 1;
        }
        self.last_enable = enable;
        enable
    }

    /// Status snapshot for the UART protocol.
    pub fn status(&self) -> StatusInfo {
        StatusInfo {
            armed: self.armed,
            triggered: self.detector.is_triggered(),
            strikes_fired: self.strikes_fired.min(u64::from(u32::MAX)) as u32,
            scheme_bits: self.ram.len_bits().min(u32::MAX as usize) as u32,
        }
    }

    /// Starts scheme playback immediately, bypassing the detector — the
    /// paper's *blind attack* baseline, "where the fault injections happen
    /// randomly along with the model execution". No-op unless armed.
    pub fn force_start(&mut self) {
        if self.armed {
            self.forced = true;
            self.ram.start();
        }
    }

    /// Re-arms detector and playback for the next inference without
    /// clearing the scheme.
    pub fn rearm(&mut self) {
        self.detector.reset();
        if self.forced {
            // Blind mode replays from the top of the scheme each run.
            self.ram.start();
        } else {
            self.ram.stop();
        }
        self.last_enable = false;
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::detector::DetectorConfig;

    fn thermometer(count: usize) -> u128 {
        if count >= 128 {
            u128::MAX
        } else {
            (1u128 << count) - 1
        }
    }

    fn scheduler() -> AttackScheduler {
        let det = StartDetector::new(DetectorConfig::default()).unwrap();
        let ram = SignalRam::new(1).unwrap();
        AttackScheduler::new(det, ram)
    }

    #[test]
    fn arming_requires_a_scheme() {
        let mut s = scheduler();
        assert!(s.arm(true).is_err());
        s.load_scheme(&AttackScheme::single(0)).unwrap();
        s.arm(true).unwrap();
        assert!(s.is_armed());
    }

    #[test]
    fn trigger_starts_playback_with_delay() {
        let mut s = scheduler();
        s.load_scheme(&AttackScheme {
            delay_cycles: 2,
            strikes: 2,
            strike_cycles: 1,
            gap_cycles: 1,
        })
        .unwrap();
        s.arm(true).unwrap();
        // Idle samples: nothing.
        for _ in 0..10 {
            assert!(!s.clock(Some(thermometer(90))));
        }
        // Droop for the debounce length (3 samples): trigger on the third.
        assert!(!s.clock(Some(thermometer(65))));
        assert!(!s.clock(Some(thermometer(65))));
        // Trigger cycle: playback starts this cycle with delay bit 0.
        let mut enables = vec![s.clock(Some(thermometer(65)))];
        for _ in 0..5 {
            enables.push(s.clock(None));
        }
        assert_eq!(enables, vec![false, false, true, false, true, false]);
        assert_eq!(s.strikes_fired(), 2);
    }

    #[test]
    fn disarmed_scheduler_never_strikes() {
        let mut s = scheduler();
        s.load_scheme(&AttackScheme::single(0)).unwrap();
        for _ in 0..20 {
            assert!(!s.clock(Some(thermometer(40))));
        }
        assert_eq!(s.strikes_fired(), 0);
    }

    #[test]
    fn status_reflects_state() {
        let mut s = scheduler();
        s.load_scheme(&AttackScheme::single(1)).unwrap();
        s.arm(true).unwrap();
        let st = s.status();
        assert!(st.armed && !st.triggered);
        assert_eq!(st.scheme_bits, 2);
        for _ in 0..5 {
            s.clock(Some(thermometer(50)));
        }
        let st = s.status();
        assert!(st.triggered);
        assert_eq!(st.strikes_fired, 1);
    }

    #[test]
    fn rearm_resets_detector_and_playback() {
        let mut s = scheduler();
        s.load_scheme(&AttackScheme::single(0)).unwrap();
        s.arm(true).unwrap();
        for _ in 0..5 {
            s.clock(Some(thermometer(50)));
        }
        assert!(s.detector().is_triggered());
        s.rearm();
        assert!(!s.detector().is_triggered());
        assert!(s.is_armed(), "rearm keeps the scheduler armed");
        // Triggers again on the next inference.
        for _ in 0..5 {
            s.clock(Some(thermometer(50)));
        }
        assert!(s.detector().is_triggered());
    }

    #[test]
    fn long_strike_counts_once() {
        let mut s = scheduler();
        s.load_scheme(&AttackScheme {
            delay_cycles: 0,
            strikes: 1,
            strike_cycles: 5,
            gap_cycles: 0,
        })
        .unwrap();
        s.arm(true).unwrap();
        for _ in 0..3 {
            s.clock(Some(thermometer(50)));
        }
        for _ in 0..6 {
            s.clock(None);
        }
        assert_eq!(s.strikes_fired(), 1, "one rising edge despite 5 on-cycles");
    }
}
