//! Fork-point snapshot engine for strike evaluation.
//!
//! Guided campaigns (Figs. 5b/6b) evaluate hundreds of candidate strike
//! schemes against the *same* victim inference. Naively each candidate
//! re-executes the whole co-simulation — accelerator schedule, PDN
//! integration, TDC sensing — from cycle 0, even though every candidate
//! shares an identical pre-strike prefix and, after its last strike, an
//! identical post-strike tail. This module eliminates both redundancies
//! while staying **bit-identical** to naive full replay:
//!
//! 1. **Shared prefix (fork ladder).** One *reference pass* runs the
//!    platform with an armed all-zero sentinel scheme and snapshots the
//!    full platform state every `fork_every` cycles. A candidate whose
//!    first `1` bit plays at cycle `F` forks from the deepest snapshot at
//!    or before `F` and only simulates the suffix. Arming with the
//!    sentinel (rather than running unarmed) makes the reference pass
//!    replicate the exact detector/RAM activity of a real candidate run:
//!    until its first strike a candidate is indistinguishable from the
//!    sentinel, so the fork state *is* the candidate's state — except for
//!    the RAM contents, which [`SignalRam::fork_install`] swaps in at the
//!    preserved playback position.
//!
//! 2. **Post-strike rejoin.** The PDN is linear, a disabled striker draws
//!    exactly 0.0 A, and the warm-started Gauss–Seidel relaxation is
//!    contracting with a bitwise early-exit — so a few hundred cycles
//!    after a candidate's last strike the mesh state becomes *bitwise
//!    equal* to the reference pass and stays that way. The reference pass
//!    stores a [`RejoinCheck`] (mesh state + last raw TDC word) every
//!    `check_every` cycles; once a forked suffix has exhausted its scheme
//!    and matches a check, the remaining recording is spliced from the
//!    reference and the remaining thermal integration replays the
//!    reference's per-cycle powers (the thermal model is feed-forward:
//!    its state never feeds back into the electrical loop).
//!
//! Determinism: a forked run performs the identical [`CloudFpga::step_cycle`]
//! sequence a naive replay would — same float operations in the same
//! order — so outputs agree bit-for-bit, not approximately (enforced by
//! `tests/snapshot_oracle.rs` and the property tests). Candidates the
//! argument does not cover — forced/blind playback, trace collection in
//! progress (per-candidate events cannot come from a shared prefix) —
//! fall back to naive full replay, still bit-identical by construction.
//!
//! Concurrency: [`SnapshotEngine::run_guided`] takes `&self` and clones
//! the fork before touching it, so suffix runs compose with the `par`
//! worker pool and its panic quarantine — a panicking suffix can never
//! corrupt the shared snapshot (property-tested in `crates/core/tests`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use pdn::grid::SpatialPdn;
use pdn::thermal::ThermalModel;

use crate::cosim::{CloudFpga, InferenceRun, RunRecorder};
use crate::error::Result;
use crate::scheduler::AttackScheduler;
use crate::signal_ram::AttackScheme;
use crate::striker::StrikerBank;
use crate::tdc::TdcSensor;

/// Snapshot cadence knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Full platform snapshot every this many cycles (the fork ladder).
    pub fork_every: u64,
    /// Rejoin check (mesh state + raw TDC word) every this many cycles.
    pub check_every: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        // ~100 forks and ~1600 checks on the 50k-cycle LeNet schedule:
        // a fork costs a full platform clone (~100 KiB), a check only the
        // mesh state, and a finer check grid shortens every suffix.
        EngineConfig { fork_every: 512, check_every: 32 }
    }
}

/// Full platform state at the start of a cycle, plus the carried
/// recorder state that lives outside [`CloudFpga`].
struct ForkPoint {
    cycle: u64,
    /// Sentinel-pass platform state (readout ring buffer cleared — it
    /// never feeds back into the physics and forked runs discard it).
    fpga: CloudFpga,
    /// Raw TDC word awaiting consumption by the scheduler next cycle.
    last_raw: Option<u128>,
    /// Detector trigger cycle, if it latched before this fork.
    triggered: Option<u64>,
}

/// Reference-pass state a finished candidate can bitwise-rejoin.
struct RejoinCheck {
    cycle: u64,
    pdn: SpatialPdn,
    last_raw: Option<u128>,
}

/// Counters for the engine's work-avoidance, updated with relaxed atomics
/// so `run_guided(&self)` can tally from the worker pool.
#[derive(Debug, Default)]
struct Counters {
    guided_runs: AtomicU64,
    reference_served: AtomicU64,
    forked_runs: AtomicU64,
    full_replays: AtomicU64,
    rejoined: AtomicU64,
    suffix_cycles: AtomicU64,
}

/// A point-in-time copy of the engine's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// `run_guided` calls.
    pub guided_runs: u64,
    /// Calls answered with the reference recording (no simulation at all).
    pub reference_served: u64,
    /// Calls that forked a snapshot and ran only a suffix.
    pub forked_runs: u64,
    /// Calls that fell back to naive full replay.
    pub full_replays: u64,
    /// Forked runs that bitwise-rejoined the reference before the end.
    pub rejoined: u64,
    /// Total cycles actually simulated across all forked runs.
    pub suffix_cycles: u64,
}

/// The fork-point snapshot engine. See the module docs.
pub struct SnapshotEngine {
    /// Pristine platform for naive-replay fallbacks.
    base: CloudFpga,
    total: u64,
    samples_per_cycle: usize,
    trigger: Option<u64>,
    reference: InferenceRun,
    /// Reference per-cycle thermal power, replayed after a rejoin.
    powers: Vec<f64>,
    forks: Vec<ForkPoint>,
    checks: Vec<RejoinCheck>,
    check_every: u64,
    counters: Counters,
}

impl std::fmt::Debug for SnapshotEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SnapshotEngine({} cycles, {} forks, {} checks, trigger {:?})",
            self.total,
            self.forks.len(),
            self.checks.len(),
            self.trigger
        )
    }
}

impl SnapshotEngine {
    /// Captures the fork ladder with default cadence.
    ///
    /// # Errors
    ///
    /// Propagates sentinel-scheme load/arm failures (none occur on a
    /// platform whose signal RAM has non-zero capacity).
    pub fn capture(base: &CloudFpga) -> Result<Self> {
        Self::capture_with(base, EngineConfig::default())
    }

    /// Captures the fork ladder: one full reference pass with an armed
    /// all-zero sentinel scheme, snapshotting platform state every
    /// `config.fork_every` cycles and rejoin state every
    /// `config.check_every` cycles.
    ///
    /// The reference pass advances the *clone's* state only; `base` is
    /// untouched and is kept as the pristine platform for fallback
    /// replays, exactly as campaign drivers clone one profiled instance
    /// per sweep point.
    ///
    /// # Errors
    ///
    /// Propagates sentinel-scheme load/arm failures.
    pub fn capture_with(base: &CloudFpga, config: EngineConfig) -> Result<Self> {
        let fork_every = config.fork_every.max(1);
        let check_every = config.check_every.max(1);
        let mut sentinel_pass = base.clone();
        // The sentinel: all delay, zero strikes. It compiles to an
        // all-zero bit vector filling the whole RAM, so playback never
        // exhausts mid-run (capacity >= any schedule we simulate) and the
        // cursor tracks exactly how many bits a real candidate would have
        // consumed by each cycle.
        let capacity = sentinel_pass.scheduler_mut().ram().capacity_bits();
        let sentinel = AttackScheme {
            delay_cycles: u32::try_from(capacity).unwrap_or(u32::MAX),
            strikes: 0,
            strike_cycles: 0,
            gap_cycles: 0,
        };
        sentinel_pass.scheduler_mut().load_scheme(&sentinel)?;
        sentinel_pass.scheduler_mut().arm(true)?;
        sentinel_pass.scheduler_mut().rearm();

        let total = sentinel_pass.schedule().total_cycles();
        let substeps = sentinel_pass.config.pdn_substeps;
        let samples_per_cycle = substeps / (substeps / 2).max(1);
        let mut rec = RunRecorder::new(total, true);
        let mut forks = Vec::with_capacity((total / fork_every + 1) as usize);
        let mut checks = Vec::with_capacity((total / check_every + 1) as usize);
        for cycle in 0..total {
            if cycle % fork_every == 0 {
                let mut fpga = sentinel_pass.clone();
                fpga.trace_buf.clear();
                forks.push(ForkPoint {
                    cycle,
                    fpga,
                    last_raw: rec.last_raw,
                    triggered: rec.triggered_cycle,
                });
            }
            if cycle % check_every == 0 {
                checks.push(RejoinCheck {
                    cycle,
                    pdn: sentinel_pass.pdn.clone(),
                    last_raw: rec.last_raw,
                });
            }
            sentinel_pass.step_cycle(cycle, &mut rec);
        }
        let powers = rec.powers.take().unwrap_or_default();
        let trigger = rec.triggered_cycle;
        let reference = sentinel_pass.finish_run(rec);
        debug_assert_eq!(reference.tdc_trace.len(), total as usize * samples_per_cycle);
        Ok(SnapshotEngine {
            base: base.clone(),
            total,
            samples_per_cycle,
            trigger,
            reference,
            powers,
            forks,
            checks,
            check_every,
            counters: Counters::default(),
        })
    }

    /// The reference recording: the run of any armed candidate *before*
    /// its first strike — and of any candidate that never strikes. Since
    /// armed-but-not-striking physics is bitwise identical to unarmed
    /// physics (detector pushes and RAM reads have no electrical effect),
    /// this is also a valid profiling trace.
    pub fn reference(&self) -> &InferenceRun {
        &self.reference
    }

    /// The detector trigger cycle observed in the reference pass.
    pub fn trigger_cycle(&self) -> Option<u64> {
        self.trigger
    }

    /// Victim schedule length in cycles.
    pub fn total_cycles(&self) -> u64 {
        self.total
    }

    /// A copy of the work-avoidance counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            guided_runs: self.counters.guided_runs.load(Ordering::Relaxed),
            reference_served: self.counters.reference_served.load(Ordering::Relaxed),
            forked_runs: self.counters.forked_runs.load(Ordering::Relaxed),
            full_replays: self.counters.full_replays.load(Ordering::Relaxed),
            rejoined: self.counters.rejoined.load(Ordering::Relaxed),
            suffix_cycles: self.counters.suffix_cycles.load(Ordering::Relaxed),
        }
    }

    /// Evaluates a detector-guided candidate: bit-identical to loading
    /// `scheme` on a clone of the base platform, arming, and calling
    /// [`CloudFpga::run_inference`] — but forked from the deepest
    /// snapshot at or before the candidate's first strike, and spliced
    /// back onto the reference once the post-strike state bitwise
    /// reconverges.
    ///
    /// # Errors
    ///
    /// Exactly the errors the naive path raises: `SchemeTooLarge` when
    /// the compiled vector exceeds RAM capacity, `InvalidConfig` when the
    /// scheme compiles to zero bits (arming without a loaded scheme).
    pub fn run_guided(&self, scheme: &AttackScheme) -> Result<InferenceRun> {
        self.run_guided_inner(scheme, None)
    }

    /// Test hook: like [`run_guided`](Self::run_guided) but panics once
    /// the forked suffix reaches `panic_at_cycle`, to prove a quarantined
    /// suffix panic cannot corrupt the shared snapshot.
    #[doc(hidden)]
    pub fn run_guided_with_fault(
        &self,
        scheme: &AttackScheme,
        panic_at_cycle: u64,
    ) -> Result<InferenceRun> {
        self.run_guided_inner(scheme, Some(panic_at_cycle))
    }

    fn run_guided_inner(
        &self,
        scheme: &AttackScheme,
        panic_at_cycle: Option<u64>,
    ) -> Result<InferenceRun> {
        self.counters.guided_runs.fetch_add(1, Ordering::Relaxed);
        // Per-candidate trace events (SchemeLoaded, PlaybackStart, ...)
        // cannot be synthesised from a shared prefix: replay naively.
        if trace::is_collecting() {
            self.counters.full_replays.fetch_add(1, Ordering::Relaxed);
            return self.replay_guided(scheme);
        }
        let bits = scheme.to_bits();
        if bits.is_empty() || bits.len() > self.base.scheduler.ram().capacity_bits() {
            // Replicate the naive load/arm error exactly.
            self.counters.full_replays.fetch_add(1, Ordering::Relaxed);
            return self.replay_guided(scheme);
        }
        // No trigger in the reference pass means no candidate can trigger
        // either (identical physics until a strike, and no strike without
        // a trigger): the run is the reference run. Likewise a candidate
        // whose first `1` bit never plays within the schedule.
        let Some(trigger) = self.trigger else {
            self.counters.reference_served.fetch_add(1, Ordering::Relaxed);
            return Ok(self.reference.clone());
        };
        let Some(first_one) = bits.iter().position(|&b| b) else {
            self.counters.reference_served.fetch_add(1, Ordering::Relaxed);
            return Ok(self.reference.clone());
        };
        let first_strike = trigger + first_one as u64;
        if first_strike >= self.total {
            self.counters.reference_served.fetch_add(1, Ordering::Relaxed);
            return Ok(self.reference.clone());
        }

        // Deepest fork at or before the first strike. Forks exist at
        // cycle 0, fork_every, ... so the search never comes up empty.
        let fork = match self.forks.binary_search_by_key(&first_strike, |f| f.cycle) {
            Ok(i) => &self.forks[i],
            Err(i) => &self.forks[i - 1],
        };
        self.counters.forked_runs.fetch_add(1, Ordering::Relaxed);

        let mut fpga = fork.fpga.clone();
        // Swap the candidate's bit vector into the sentinel's RAM at the
        // preserved playback position: bits consumed so far were all `0`
        // in both (the fork is at or before the first `1`), so the fork
        // state is exactly the candidate's naive state at this cycle.
        let started = fork.triggered.is_some();
        let cursor = fpga.scheduler.ram().cursor();
        fpga.scheduler.ram_mut().fork_install(bits, cursor, started);

        let mut rec = RunRecorder::resume(fork.triggered, fork.last_raw);
        for cycle in fork.cycle..self.total {
            if let Some(p) = panic_at_cycle {
                if cycle == p {
                    panic!("injected suffix fault at cycle {cycle}");
                }
            }
            // Rejoin: once the candidate has played out (scheme exhausted,
            // striker off, detector latched — all true only after the
            // last strike) and the mesh + pending TDC word bitwise equal
            // the reference pass, every future cycle is bitwise equal
            // too; splice the rest from the reference.
            if cycle > first_strike
                && cycle.is_multiple_of(self.check_every)
                && fpga.scheduler.detector().is_triggered()
                && !fpga.scheduler.ram().is_running()
                && !fpga.striker.is_enabled()
            {
                let check = &self.checks[(cycle / self.check_every) as usize];
                debug_assert_eq!(check.cycle, cycle);
                if check.last_raw == rec.last_raw && check.pdn == fpga.pdn {
                    self.counters.rejoined.fetch_add(1, Ordering::Relaxed);
                    self.counters.suffix_cycles.fetch_add(cycle - fork.cycle, Ordering::Relaxed);
                    return Ok(self.splice(fork.cycle, cycle, rec, fpga));
                }
            }
            fpga.step_cycle(cycle, &mut rec);
        }
        self.counters.suffix_cycles.fetch_add(self.total - fork.cycle, Ordering::Relaxed);
        Ok(self.assemble(fork.cycle, rec, fpga.thermal.junction_temp()))
    }

    /// Evaluates a blind (force-started) candidate. Blind playback starts
    /// at cycle 0, so there is no shared prefix to fork from: this is a
    /// naive full replay, kept on the engine so campaign code has one
    /// entry point for both modes.
    ///
    /// # Errors
    ///
    /// Propagates scheme load/arm failures.
    pub fn run_blind(&self, scheme: &AttackScheme) -> Result<InferenceRun> {
        let mut fpga = self.base.clone();
        fpga.scheduler_mut().load_scheme(scheme)?;
        fpga.scheduler_mut().arm(true)?;
        fpga.scheduler_mut().force_start();
        Ok(fpga.run_inference())
    }

    /// Naive guided replay from the pristine base (fallback path).
    fn replay_guided(&self, scheme: &AttackScheme) -> Result<InferenceRun> {
        let mut fpga = self.base.clone();
        fpga.scheduler_mut().load_scheme(scheme)?;
        fpga.scheduler_mut().arm(true)?;
        Ok(fpga.run_inference())
    }

    /// Builds the candidate's run from reference prefix + simulated
    /// suffix + reference tail, replaying reference powers through the
    /// candidate's thermal state for the spliced tail.
    fn splice(
        &self,
        fork_cycle: u64,
        rejoin_cycle: u64,
        rec: RunRecorder,
        mut fpga: CloudFpga,
    ) -> InferenceRun {
        let spc = self.samples_per_cycle;
        let dt_cycle = fpga.substep_dt() * fpga.config.pdn_substeps as f64;
        // From the rejoin on, the candidate's per-cycle power is bitwise
        // the reference's; the thermal model is feed-forward, so replay.
        for &power in &self.powers[rejoin_cycle as usize..] {
            fpga.thermal.step(power, dt_cycle);
        }
        let mut run = self.assemble(fork_cycle, rec, fpga.thermal.junction_temp());
        run.tdc_trace.extend_from_slice(&self.reference.tdc_trace[rejoin_cycle as usize * spc..]);
        run.victim_voltage
            .extend_from_slice(&self.reference.victim_voltage[rejoin_cycle as usize..]);
        run
    }

    /// Builds the candidate's run from reference prefix + simulated suffix.
    fn assemble(&self, fork_cycle: u64, rec: RunRecorder, final_temp_c: f64) -> InferenceRun {
        let spc = self.samples_per_cycle;
        let mut tdc_trace = Vec::with_capacity(fork_cycle as usize * spc + rec.tdc_trace.len());
        tdc_trace.extend_from_slice(&self.reference.tdc_trace[..fork_cycle as usize * spc]);
        tdc_trace.extend_from_slice(&rec.tdc_trace);
        let mut victim_voltage = Vec::with_capacity(fork_cycle as usize + rec.victim_voltage.len());
        victim_voltage.extend_from_slice(&self.reference.victim_voltage[..fork_cycle as usize]);
        victim_voltage.extend_from_slice(&rec.victim_voltage);
        InferenceRun {
            tdc_trace,
            victim_voltage,
            // The prefix is strike-free (the fork sits at or before the
            // first strike), so the suffix recorded every strike.
            strike_cycles: rec.strike_cycles,
            triggered_cycle: rec.triggered_cycle,
            final_temp_c,
        }
    }
}

/// A self-validating cache of whole [`CloudFpga::run_inference`] calls,
/// shared across campaign sweep points (e.g. the `remote_campaign` grid,
/// where every link-fault point drives an identical victim platform).
///
/// Each entry stores the full behavioural pre-state, the recorded run and
/// the behavioural post-state. A lookup serves an entry only on *exact*
/// behavioural state match ([`CloudFpga::state_eq`]), then applies the
/// post-state and the readout-buffer append exactly as the real run would
/// have — so a hit is bit-identical to a miss and the cache composes with
/// `par` determinism: whichever worker primes an entry, every consumer
/// observes the same bytes.
#[derive(Default)]
pub struct RunMemo {
    entries: Mutex<Vec<MemoEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

struct MemoEntry {
    /// Behavioural pre-state (readout ring buffer cleared; it is excluded
    /// from [`CloudFpga::state_eq`] and replayed separately).
    pre: CloudFpga,
    run: InferenceRun,
    post: PostState,
}

/// The fields `run_inference` mutates.
struct PostState {
    pdn: SpatialPdn,
    tdc: TdcSensor,
    striker: StrikerBank,
    scheduler: AttackScheduler,
    thermal: ThermalModel,
}

impl std::fmt::Debug for RunMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RunMemo({} hits, {} misses)", self.hits(), self.misses())
    }
}

impl RunMemo {
    /// An empty cache.
    pub fn new() -> Self {
        RunMemo::default()
    }

    /// Lookups served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that ran the simulation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<MemoEntry>> {
        // A panic while holding the lock can only occur between complete
        // entry pushes; the vector is always structurally valid.
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Runs one inference through the cache: serves a stored run when the
    /// platform state matches a previous pre-state exactly, otherwise
    /// simulates and records. Either way `fpga` ends in the state (and
    /// the caller receives the bytes) a plain
    /// [`CloudFpga::run_inference`] would have produced.
    ///
    /// Falls through to the real simulation whenever trace collection is
    /// active, since a served run cannot re-emit its per-cycle events.
    pub fn run_inference(&self, fpga: &mut CloudFpga) -> InferenceRun {
        if trace::is_collecting() {
            return fpga.run_inference();
        }
        {
            let entries = self.lock();
            for entry in entries.iter() {
                if fpga.state_eq(&entry.pre) {
                    fpga.pdn = entry.post.pdn.clone();
                    fpga.tdc = entry.post.tdc.clone();
                    fpga.striker = entry.post.striker.clone();
                    fpga.scheduler = entry.post.scheduler.clone();
                    fpga.thermal = entry.post.thermal;
                    // Append the readout samples with the same capacity
                    // trimming the live loop performs.
                    for &sample in &entry.run.tdc_trace {
                        if fpga.trace_buf.len() == fpga.config.trace_capacity {
                            fpga.trace_buf.pop_front();
                        }
                        fpga.trace_buf.push_back(sample);
                    }
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return entry.run.clone();
                }
            }
        }
        let pre = {
            let mut snap = fpga.clone();
            snap.trace_buf.clear();
            snap
        };
        let run = fpga.run_inference();
        let post = PostState {
            pdn: fpga.pdn.clone(),
            tdc: fpga.tdc.clone(),
            striker: fpga.striker.clone(),
            scheduler: fpga.scheduler.clone(),
            thermal: fpga.thermal,
        };
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.lock();
        // Another worker may have raced us to the same state; keep one.
        if !entries.iter().any(|e| pre.state_eq(&e.pre)) {
            entries.push(MemoEntry { pre, run: run.clone(), post });
        }
        run
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::cosim::CosimConfig;
    use accel::schedule::AccelConfig;
    use dnn::fixed::QFormat;
    use dnn::quant::QuantizedNetwork;
    use dnn::zoo::mlp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_platform(striker_cells: usize) -> CloudFpga {
        let net = mlp(&mut StdRng::seed_from_u64(0));
        let q = QuantizedNetwork::from_sequential(&net, &[1, 28, 28], QFormat::paper())
            .expect("mlp quantises");
        let accel =
            AccelConfig { weight_bandwidth: 16, stall_cycles: 150, ..AccelConfig::default() };
        let mut fpga = CloudFpga::new(
            &q,
            &accel,
            striker_cells,
            CosimConfig { pdn_substeps: 4, ..CosimConfig::default() },
        )
        .expect("platform assembles");
        fpga.settle(50);
        fpga
    }

    fn naive_guided(base: &CloudFpga, scheme: &AttackScheme) -> InferenceRun {
        let mut fpga = base.clone();
        fpga.scheduler_mut().load_scheme(scheme).expect("scheme fits");
        fpga.scheduler_mut().arm(true).expect("scheme loaded");
        fpga.run_inference()
    }

    #[test]
    fn forked_run_is_bit_identical_to_naive_replay() {
        let base = small_platform(12_000);
        let engine = SnapshotEngine::capture(&base).expect("capture");
        assert!(engine.trigger_cycle().is_some(), "reference pass must trigger");
        for scheme in [
            AttackScheme { delay_cycles: 10, strikes: 50, strike_cycles: 1, gap_cycles: 1 },
            AttackScheme { delay_cycles: 0, strikes: 1, strike_cycles: 3, gap_cycles: 0 },
            AttackScheme { delay_cycles: 700, strikes: 9, strike_cycles: 2, gap_cycles: 5 },
        ] {
            let naive = naive_guided(&base, &scheme);
            let forked = engine.run_guided(&scheme).expect("guided run");
            assert_eq!(naive, forked, "scheme {scheme:?} diverged");
        }
        let stats = engine.stats();
        assert_eq!(stats.forked_runs, 3, "all three schemes should fork");
        assert!(stats.rejoined >= 2, "short schemes should rejoin: {stats:?}");
        assert!(
            stats.suffix_cycles < 3 * engine.total_cycles(),
            "forking must simulate fewer cycles than naive replay"
        );
    }

    #[test]
    fn strike_free_and_oversized_schemes_replicate_naive_semantics() {
        let base = small_platform(8_000);
        let engine = SnapshotEngine::capture(&base).expect("capture");
        // All-delay scheme: no strikes, identical to the reference.
        let idle = AttackScheme { delay_cycles: 40, strikes: 0, strike_cycles: 0, gap_cycles: 0 };
        let naive = naive_guided(&base, &idle);
        assert_eq!(naive, engine.run_guided(&idle).expect("idle scheme runs"));
        // Zero-bit scheme: naive arming fails; the engine must too.
        let empty = AttackScheme { delay_cycles: 0, strikes: 0, strike_cycles: 0, gap_cycles: 0 };
        assert!(engine.run_guided(&empty).is_err());
        // Oversized scheme: same `SchemeTooLarge` as the naive path.
        let huge =
            AttackScheme { delay_cycles: u32::MAX, strikes: 0, strike_cycles: 0, gap_cycles: 0 };
        assert!(matches!(
            engine.run_guided(&huge),
            Err(crate::DeepStrikeError::SchemeTooLarge { .. })
        ));
    }

    #[test]
    fn blind_run_matches_naive_forced_replay() {
        let base = small_platform(12_000);
        let engine = SnapshotEngine::capture(&base).expect("capture");
        let scheme =
            AttackScheme { delay_cycles: 300, strikes: 20, strike_cycles: 1, gap_cycles: 1 };
        let mut fpga = base.clone();
        fpga.scheduler_mut().load_scheme(&scheme).expect("scheme fits");
        fpga.scheduler_mut().arm(true).expect("scheme loaded");
        fpga.scheduler_mut().force_start();
        let naive = fpga.run_inference();
        assert_eq!(naive, engine.run_blind(&scheme).expect("blind run"));
    }

    #[test]
    fn suffix_panic_leaves_engine_reusable() {
        let base = small_platform(12_000);
        let engine = SnapshotEngine::capture(&base).expect("capture");
        let scheme =
            AttackScheme { delay_cycles: 10, strikes: 50, strike_cycles: 1, gap_cycles: 1 };
        let before = engine.run_guided(&scheme).expect("guided run");
        let trigger = engine.trigger_cycle().expect("triggered");
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = engine.run_guided_with_fault(&scheme, trigger + 30);
        }));
        assert!(panicked.is_err(), "fault hook must panic mid-suffix");
        let after = engine.run_guided(&scheme).expect("engine survives the panic");
        assert_eq!(before, after, "panicking suffix corrupted the shared snapshot");
        assert_eq!(after, naive_guided(&base, &scheme));
    }

    #[test]
    fn run_memo_hit_is_bit_identical_to_miss() {
        let base = small_platform(8_000);
        let scheme = AttackScheme { delay_cycles: 5, strikes: 10, strike_cycles: 1, gap_cycles: 2 };
        let prep = |mut fpga: CloudFpga| {
            fpga.scheduler_mut().load_scheme(&scheme).expect("scheme fits");
            fpga.scheduler_mut().arm(true).expect("scheme loaded");
            fpga
        };
        let memo = RunMemo::new();
        let mut first = prep(base.clone());
        let miss = memo.run_inference(&mut first);
        let mut second = prep(base.clone());
        let hit = memo.run_inference(&mut second);
        assert_eq!(memo.hits(), 1);
        assert_eq!(memo.misses(), 1);
        assert_eq!(miss, hit);
        assert!(first.state_eq(&second), "post-state must match after a hit");
        assert_eq!(first.trace_buf, second.trace_buf, "readout buffer must match too");
        // A different platform state misses and simulates.
        let mut third = prep(base.clone());
        third.settle(3);
        let fresh = memo.run_inference(&mut third);
        assert_eq!(memo.misses(), 2);
        assert_ne!(fresh.victim_voltage, miss.victim_voltage);
    }
}
