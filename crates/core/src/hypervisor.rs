//! Provider-side deployment of the two tenants (paper §IV setup).
//!
//! "The hypervisor in the virtualized cloud-FPGA will compile and combine
//! applications of all the tenants (including the attacker's malicious
//! circuits and the victim's DNN inference), generate an unified bitstream
//! and deploy it on one FPGA device." This module builds both tenants'
//! netlists, floorplans them at opposite die ends, and runs the provider
//! checks — demonstrating that the whole DeepStrike payload passes DRC and
//! fits the PYNQ-Z1's resource budget alongside the victim.

use accel::schedule::AccelConfig;
use fpga_fabric::bitstream::{combine_with, Bitstream, TenantDesign};
use fpga_fabric::device::Device;
use fpga_fabric::drc::DrcPolicy;
use fpga_fabric::floorplan::Region;
use fpga_fabric::netlist::Netlist;
use fpga_fabric::primitive::PrimitiveKind;

use crate::error::Result;
use crate::striker::StrikerBank;
use crate::tdc::TdcSensor;

/// Synthesises a resource-accurate proxy netlist for the victim
/// accelerator: its DSP array, operand/result registers, weight BRAMs and
/// control logic.
pub fn victim_netlist(accel: &AccelConfig, weight_brams: usize) -> Netlist {
    let mut n = Netlist::new("dnn_accelerator");
    for i in 0..accel.pe_count {
        n.add_cell(&format!("pe{i}_dsp"), PrimitiveKind::Dsp48, None);
        // Operand staging + result fetch registers per PE.
        for r in 0..24 {
            n.add_cell(&format!("pe{i}_reg{r}"), PrimitiveKind::Fdre, None);
        }
        for l in 0..16 {
            n.add_cell(&format!("pe{i}_ctl{l}"), PrimitiveKind::Lut6, None);
        }
    }
    for b in 0..weight_brams {
        n.add_cell(&format!("weights{b}"), PrimitiveKind::Bram36, None);
    }
    // Global control FSM + activation LUT logic.
    for l in 0..400 {
        n.add_cell(&format!("ctrl{l}"), PrimitiveKind::Lut6, None);
    }
    n.add_cell("clk", PrimitiveKind::Bufg, None);
    n
}

/// Builds the attacker tenant: striker bank + TDC sensor + detector/
/// scheduler glue + the signal-RAM BRAM.
pub fn attacker_netlist(striker: &StrikerBank, tdc: &TdcSensor) -> Netlist {
    let mut n = striker.netlist();
    n.merge(&tdc.netlist(), "tdc");
    // Detector FSM + scheduler control (a few dozen LUTs/FFs).
    for l in 0..48 {
        n.add_cell(&format!("sched_lut{l}"), PrimitiveKind::Lut6, None);
    }
    for r in 0..32 {
        n.add_cell(&format!("sched_ff{r}"), PrimitiveKind::Fdre, None);
    }
    n.add_cell("signal_ram", PrimitiveKind::Bram36, None);
    n
}

/// A deployed two-tenant image plus its placement facts.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// The combined image.
    pub bitstream: Bitstream,
    /// Normalised victim↔attacker distance (0 = same spot, 1 = corners).
    pub tenant_distance: f64,
}

/// Compiles and deploys victim + attacker on a device, placing them at
/// opposite ends as in the paper's Fig. 6a layout.
///
/// # Errors
///
/// Propagates DRC rejections and placement failures — e.g. a striker bank
/// too large for the attacker's region.
pub fn deploy(
    device: &Device,
    accel: &AccelConfig,
    striker: &StrikerBank,
    tdc: &TdcSensor,
) -> Result<Deployment> {
    deploy_with_policy(device, accel, striker, tdc, DrcPolicy::standard())
}

/// [`deploy`] under an explicit provider screening policy.
///
/// With [`DrcPolicy::strict`] the latch-loop scan catches the striker and
/// the whole deployment is rejected — the countermeasure the paper's
/// §III-C refs [26][27] propose.
///
/// # Errors
///
/// As [`deploy`].
pub fn deploy_with_policy(
    device: &Device,
    accel: &AccelConfig,
    striker: &StrikerBank,
    tdc: &TdcSensor,
    policy: DrcPolicy,
) -> Result<Deployment> {
    let cols = device.grid().cols();
    let rows = device.grid().rows();
    // Victim on the left 40% of the die, attacker on the right 40%.
    let victim_region = Region::new(0, 0, cols * 2 / 5, rows - 1);
    let attacker_region = Region::new(cols * 3 / 5, 0, cols - 1, rows - 1);
    let tenants = vec![
        TenantDesign::new("victim", victim_netlist(accel, 32), victim_region),
        TenantDesign::new("attacker", attacker_netlist(striker, tdc), attacker_region),
    ];
    let bitstream = combine_with(device, tenants, policy)?;
    let tenant_distance = bitstream.floorplan().normalized_distance("victim", "attacker")?;
    Ok(Deployment { bitstream, tenant_distance })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::tdc::TdcConfig;
    use fpga_fabric::FabricError;

    fn tdc() -> TdcSensor {
        TdcSensor::calibrated(TdcConfig::default(), 100.0, 90).unwrap()
    }

    #[test]
    fn paper_deployment_fits_and_passes_drc() {
        let device = Device::zynq_7020();
        let striker = StrikerBank::new(8_000).unwrap();
        let deployment = deploy(&device, &AccelConfig::default(), &striker, &tdc()).unwrap();
        assert!(deployment.tenant_distance > 0.4, "tenants must be far apart");
        let usage = deployment.bitstream.total_usage();
        assert!(usage.dsp >= 8, "victim DSP array present");
        assert!(usage.latches >= 16_000, "striker latches present");
        for (_, report) in deployment.bitstream.drc_reports() {
            assert!(report.is_deployable());
        }
    }

    #[test]
    fn strict_policy_rejects_the_striker_tenant() {
        let device = Device::zynq_7020();
        let striker = StrikerBank::new(64).unwrap();
        // Standard screening admits the attack…
        deploy(&device, &AccelConfig::default(), &striker, &tdc()).unwrap();
        // …the latch-loop scanner does not.
        let err = deploy_with_policy(
            &device,
            &AccelConfig::default(),
            &striker,
            &tdc(),
            DrcPolicy::strict(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            crate::error::DeepStrikeError::Fabric(FabricError::DrcRejected { .. })
        ));
    }

    #[test]
    fn oversized_striker_is_rejected_by_placement() {
        let device = Device::zynq_7020();
        // 60k cells = 60k LUTs: more than the whole device.
        let striker = StrikerBank::new(60_000).unwrap();
        let err = deploy(&device, &AccelConfig::default(), &striker, &tdc()).unwrap_err();
        assert!(matches!(
            err,
            crate::error::DeepStrikeError::Fabric(FabricError::PlacementOverflow { .. })
        ));
    }

    #[test]
    fn victim_netlist_resources_scale_with_pes() {
        let small = victim_netlist(&AccelConfig { pe_count: 4, ..AccelConfig::default() }, 8);
        let large = victim_netlist(&AccelConfig { pe_count: 16, ..AccelConfig::default() }, 8);
        assert_eq!(small.resource_usage().dsp, 4);
        assert_eq!(large.resource_usage().dsp, 16);
        assert!(large.resource_usage().flip_flops > small.resource_usage().flip_flops);
    }

    #[test]
    fn attacker_netlist_contains_all_components() {
        let striker = StrikerBank::new(100).unwrap();
        let n = attacker_netlist(&striker, &tdc());
        let usage = n.resource_usage();
        assert_eq!(usage.latches, 200, "2 LDCE per striker cell");
        assert_eq!(usage.bram, 1, "signal RAM");
        assert_eq!(usage.carry4, 32, "TDC carry chain");
        assert!(n.cell_by_name("tdc/dl_lut0").is_some());
    }
}
