//! Signal RAM and the attack-scheme file (§III-D-2).
//!
//! The attack plan is "denoted as binary vectors and each bit represents
//! the action of DeepStrike during a separate clock cycle. We use '1' to
//! enable and '0' to disable the power striker" — *attack delay* is a run
//! of `0`s, *attack period* a run of `1`s, and the *number of attacks* is
//! however many `1`-runs the vector holds. The vector lives in on-chip
//! BRAM (one RAMB36 = 36,864 bits) and is played back at `f_sRAM`, one bit
//! per clock, after the DNN start detector fires.

use crate::error::{DeepStrikeError, Result};

/// Bit capacity of one RAMB36.
pub const BRAM36_BITS: usize = 36_864;

/// High-level description of a strike pattern, compiled to the bit vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackScheme {
    /// Cycles to wait after the trigger before the first strike
    /// (the paper's *attack delay*).
    pub delay_cycles: u32,
    /// Number of strikes (*number of attacks*).
    pub strikes: u32,
    /// Cycles the striker stays on per strike (*attack period*) — one
    /// cycle = 10 ns at the paper's 100 MHz `f_sRAM`.
    pub strike_cycles: u32,
    /// Idle cycles between consecutive strikes.
    pub gap_cycles: u32,
}

impl AttackScheme {
    /// A single 10 ns strike after `delay` cycles.
    pub fn single(delay_cycles: u32) -> Self {
        AttackScheme { delay_cycles, strikes: 1, strike_cycles: 1, gap_cycles: 0 }
    }

    /// Total length of the compiled bit vector.
    pub fn total_bits(&self) -> usize {
        self.delay_cycles as usize
            + self.strikes as usize * (self.strike_cycles as usize + self.gap_cycles as usize)
    }

    /// Compiles to the per-cycle enable bits.
    pub fn to_bits(&self) -> Vec<bool> {
        let mut bits = Vec::with_capacity(self.total_bits());
        bits.extend(std::iter::repeat_n(false, self.delay_cycles as usize));
        for _ in 0..self.strikes {
            bits.extend(std::iter::repeat_n(true, self.strike_cycles as usize));
            bits.extend(std::iter::repeat_n(false, self.gap_cycles as usize));
        }
        bits
    }

    /// Serialises the scheme for the UART `LoadScheme` command.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(16);
        v.extend_from_slice(&self.delay_cycles.to_le_bytes());
        v.extend_from_slice(&self.strikes.to_le_bytes());
        v.extend_from_slice(&self.strike_cycles.to_le_bytes());
        v.extend_from_slice(&self.gap_cycles.to_le_bytes());
        v
    }

    /// Parses a scheme from `LoadScheme` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DeepStrikeError::MalformedScheme`] unless exactly 16 bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() != 16 {
            return Err(DeepStrikeError::MalformedScheme(format!(
                "expected 16 bytes, got {}",
                bytes.len()
            )));
        }
        let word = |i: usize| u32::from_le_bytes(bytes[i..i + 4].try_into().expect("len 4"));
        Ok(AttackScheme {
            delay_cycles: word(0),
            strikes: word(4),
            strike_cycles: word(8),
            gap_cycles: word(12),
        })
    }
}

/// A multi-phase attack program: several schemes concatenated into one bit
/// vector, so a single trigger can strike *several* layers in one inference
/// ("the attacker [has] high flexibility to load different attack
/// strategies at run-time, i.e., dynamically target at different DNN
/// layers", §III-D).
///
/// # Example
///
/// ```
/// use deepstrike::signal_ram::{AttackScheme, SchemeProgram};
///
/// let program = SchemeProgram::new(vec![
///     AttackScheme { delay_cycles: 2, strikes: 1, strike_cycles: 1, gap_cycles: 0 },
///     AttackScheme { delay_cycles: 3, strikes: 1, strike_cycles: 1, gap_cycles: 0 },
/// ]);
/// let bits = program.to_bits();
/// assert_eq!(bits, [false, false, true, false, false, false, true]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SchemeProgram {
    phases: Vec<AttackScheme>,
}

impl SchemeProgram {
    /// Creates a program from its phases, in playback order. Each phase's
    /// `delay_cycles` counts from the end of the previous phase.
    pub fn new(phases: Vec<AttackScheme>) -> Self {
        SchemeProgram { phases }
    }

    /// The phases in playback order.
    pub fn phases(&self) -> &[AttackScheme] {
        &self.phases
    }

    /// Total compiled length in bits.
    pub fn total_bits(&self) -> usize {
        self.phases.iter().map(AttackScheme::total_bits).sum()
    }

    /// Total strikes across all phases.
    pub fn total_strikes(&self) -> u32 {
        self.phases.iter().map(|p| p.strikes).sum()
    }

    /// Compiles to the per-cycle enable bits.
    pub fn to_bits(&self) -> Vec<bool> {
        let mut bits = Vec::with_capacity(self.total_bits());
        for phase in &self.phases {
            bits.extend(phase.to_bits());
        }
        bits
    }

    /// Serialises the program for the UART `LoadScheme` command
    /// (16 bytes per phase).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(16 * self.phases.len());
        for phase in &self.phases {
            v.extend_from_slice(&phase.to_bytes());
        }
        v
    }

    /// Parses a program from `LoadScheme` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DeepStrikeError::MalformedScheme`] unless the length is a
    /// positive multiple of 16.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.is_empty() || !bytes.len().is_multiple_of(16) {
            return Err(DeepStrikeError::MalformedScheme(format!(
                "program length {} is not a positive multiple of 16",
                bytes.len()
            )));
        }
        Ok(SchemeProgram {
            phases: bytes
                .chunks_exact(16)
                .map(AttackScheme::from_bytes)
                .collect::<Result<Vec<_>>>()?,
        })
    }
}

impl From<AttackScheme> for SchemeProgram {
    fn from(scheme: AttackScheme) -> Self {
        SchemeProgram { phases: vec![scheme] }
    }
}

/// The BRAM-backed playback engine.
///
/// # Example
///
/// ```
/// use deepstrike::signal_ram::{AttackScheme, SignalRam};
///
/// let mut ram = SignalRam::new(1)?;
/// ram.load(&AttackScheme { delay_cycles: 2, strikes: 2, strike_cycles: 1, gap_cycles: 1 })?;
/// ram.start();
/// let played: Vec<bool> = (0..6).map(|_| ram.next_bit()).collect();
/// assert_eq!(played, [false, false, true, false, true, false]);
/// # Ok::<(), deepstrike::DeepStrikeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalRam {
    capacity_bits: usize,
    bits: Vec<bool>,
    cursor: usize,
    running: bool,
}

impl SignalRam {
    /// Creates an empty signal RAM backed by `brams` RAMB36 primitives.
    ///
    /// # Errors
    ///
    /// Returns [`DeepStrikeError::InvalidConfig`] if `brams == 0`.
    pub fn new(brams: usize) -> Result<Self> {
        if brams == 0 {
            return Err(DeepStrikeError::InvalidConfig("at least one BRAM required".into()));
        }
        Ok(SignalRam {
            capacity_bits: brams * BRAM36_BITS,
            bits: Vec::new(),
            cursor: 0,
            running: false,
        })
    }

    /// Bit capacity.
    pub fn capacity_bits(&self) -> usize {
        self.capacity_bits
    }

    /// Bits currently loaded.
    pub fn len_bits(&self) -> usize {
        self.bits.len()
    }

    /// Whether a scheme is loaded.
    pub fn is_loaded(&self) -> bool {
        !self.bits.is_empty()
    }

    /// Whether playback is active.
    pub fn is_running(&self) -> bool {
        self.running
    }

    /// Playback position: bits consumed since the last [`start`](Self::start).
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Snapshot-fork support (`crate::snapshot`): installs `bits` as if
    /// they had been loaded *before* playback began, positioned mid-flight.
    /// The cursor clamps to the vector length and playback self-stops when
    /// the position is already at (or past) the end — exactly the state a
    /// naive run reaches after consuming `cursor` bits of this vector.
    /// Emits no trace events: forked suffix runs only execute when trace
    /// collection is off.
    pub(crate) fn fork_install(&mut self, bits: Vec<bool>, cursor: usize, started: bool) {
        debug_assert!(bits.len() <= self.capacity_bits, "fork caller checks capacity");
        self.cursor = cursor.min(bits.len());
        self.running = started && self.cursor < bits.len();
        self.bits = bits;
    }

    /// Compiles and loads a scheme, replacing any previous one and
    /// stopping playback.
    ///
    /// # Errors
    ///
    /// Returns [`DeepStrikeError::SchemeTooLarge`] if the compiled vector
    /// exceeds capacity.
    pub fn load(&mut self, scheme: &AttackScheme) -> Result<()> {
        self.load_program(&SchemeProgram::from(*scheme))
    }

    /// Compiles and loads a multi-phase program.
    ///
    /// # Errors
    ///
    /// Returns [`DeepStrikeError::SchemeTooLarge`] if the compiled vector
    /// exceeds capacity.
    pub fn load_program(&mut self, program: &SchemeProgram) -> Result<()> {
        let bits = program.total_bits();
        if bits > self.capacity_bits {
            return Err(DeepStrikeError::SchemeTooLarge { bits, capacity: self.capacity_bits });
        }
        self.bits = program.to_bits();
        self.cursor = 0;
        self.running = false;
        trace::emit(|| trace::Event::SchemeLoaded {
            bits: bits as u64,
            strikes: program.total_strikes(),
            phases: program.phases().len() as u32,
        });
        Ok(())
    }

    /// Starts (or restarts) playback from bit 0.
    pub fn start(&mut self) {
        self.cursor = 0;
        self.running = self.is_loaded();
        if self.running {
            trace::emit(|| trace::Event::PlaybackStart { len_bits: self.bits.len() as u64 });
        }
    }

    /// Stops playback.
    pub fn stop(&mut self) {
        self.running = false;
    }

    /// Reads the next enable bit at `f_sRAM`; `false` when idle or the
    /// vector is exhausted (playback self-stops at the end).
    pub fn next_bit(&mut self) -> bool {
        if !self.running {
            return false;
        }
        match self.bits.get(self.cursor) {
            Some(&b) => {
                self.cursor += 1;
                if self.cursor >= self.bits.len() {
                    self.running = false;
                    trace::emit(|| trace::Event::PlaybackDone { bits_played: self.cursor as u64 });
                }
                b
            }
            None => {
                self.running = false;
                false
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn scheme_compiles_delay_then_strike_runs() {
        let s = AttackScheme { delay_cycles: 3, strikes: 2, strike_cycles: 2, gap_cycles: 1 };
        assert_eq!(s.total_bits(), 3 + 2 * 3);
        let bits = s.to_bits();
        assert_eq!(bits, vec![false, false, false, true, true, false, true, true, false]);
        assert_eq!(bits.len(), s.total_bits());
    }

    #[test]
    fn scheme_bytes_round_trip() {
        let s = AttackScheme { delay_cycles: 1000, strikes: 4500, strike_cycles: 1, gap_cycles: 1 };
        assert_eq!(AttackScheme::from_bytes(&s.to_bytes()).unwrap(), s);
        assert!(AttackScheme::from_bytes(&[0; 15]).is_err());
        assert!(AttackScheme::from_bytes(&[0; 17]).is_err());
    }

    #[test]
    fn ram_enforces_capacity() {
        let mut ram = SignalRam::new(1).unwrap();
        let too_big =
            AttackScheme { delay_cycles: 40_000, strikes: 1, strike_cycles: 1, gap_cycles: 0 };
        let err = ram.load(&too_big).unwrap_err();
        assert!(matches!(err, DeepStrikeError::SchemeTooLarge { .. }));
        // The paper's biggest campaign fits in one BRAM: 4500 strikes at
        // 1 on + 1 off.
        let paper =
            AttackScheme { delay_cycles: 600, strikes: 4500, strike_cycles: 1, gap_cycles: 1 };
        assert!(paper.total_bits() <= BRAM36_BITS);
        ram.load(&paper).unwrap();
        assert_eq!(ram.len_bits(), paper.total_bits());
    }

    #[test]
    fn playback_self_stops_and_restarts() {
        let mut ram = SignalRam::new(1).unwrap();
        ram.load(&AttackScheme::single(1)).unwrap();
        assert!(!ram.next_bit(), "not started yet");
        ram.start();
        assert!(!ram.next_bit());
        assert!(ram.next_bit());
        assert!(!ram.is_running(), "exhausted");
        assert!(!ram.next_bit());
        ram.start();
        assert!(!ram.next_bit());
        assert!(ram.next_bit(), "restart replays");
    }

    #[test]
    fn loading_stops_playback() {
        let mut ram = SignalRam::new(1).unwrap();
        ram.load(&AttackScheme::single(0)).unwrap();
        ram.start();
        ram.load(&AttackScheme::single(5)).unwrap();
        assert!(!ram.is_running());
    }

    #[test]
    fn strike_count_matches_played_ones() {
        let scheme = AttackScheme { delay_cycles: 10, strikes: 7, strike_cycles: 3, gap_cycles: 2 };
        let ones = scheme.to_bits().iter().filter(|&&b| b).count();
        assert_eq!(ones, 21);
        // Rising edges = number of strikes.
        let bits = scheme.to_bits();
        let rises = bits.windows(2).filter(|w| !w[0] && w[1]).count() + usize::from(bits[0]);
        assert_eq!(rises, 7);
    }

    #[test]
    fn zero_bram_rejected() {
        assert!(SignalRam::new(0).is_err());
    }
}
