//! DNN start detector (§III-D-1).
//!
//! Raw TDC readings wobble even when the victim is idle, so the paper
//! "purifies" them: the 128-bit TDC output is partitioned into five zones,
//! one bit is tapped from each zone, and a small FSM watches the Hamming
//! weight of those five bits. At idle (readout ≈ 90) four taps sit inside
//! the thermometer run (HW = 4); when a layer's execution droops the rail,
//! the run shortens past tap positions and the HW falls — the paper arms
//! its scheduler "when the DNN start detector gets an input Hamming weight
//! (HW) equals to 3, indicating the first layer just starts". A debounce
//! requirement filters the residual idle wobble.

use crate::error::{DeepStrikeError, Result};

/// Detector configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Tap positions: one bit from each of the five zones of the 128-bit
    /// TDC vector.
    pub taps: [usize; 5],
    /// Trigger when the tap Hamming weight falls to this value or below…
    pub trigger_hw: u8,
    /// …for this many consecutive samples.
    pub debounce: u8,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        // Zones of ~25 bits; taps bracket the idle run length (≈ 90): the
        // first four sit below it (idle HW = 4), the fifth above.
        DetectorConfig { taps: [12, 38, 64, 85, 110], trigger_hw: 3, debounce: 3 }
    }
}

/// Detector state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorState {
    /// Watching for the HW to fall.
    Idle,
    /// HW at/below the trigger for `n` consecutive samples.
    Candidate(u8),
    /// Execution start confirmed.
    Triggered,
}

/// The start-detector FSM.
///
/// # Example
///
/// ```
/// use deepstrike::detector::{DetectorConfig, StartDetector};
///
/// let mut det = StartDetector::new(DetectorConfig::default())?;
/// let idle = (1u128 << 90) - 1;    // readout 90
/// let active = (1u128 << 60) - 1;  // readout 60 (conv droop)
/// assert!(!det.push(idle));
/// for _ in 0..3 {
///     det.push(active);
/// }
/// assert!(det.is_triggered());
/// # Ok::<(), deepstrike::DeepStrikeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StartDetector {
    config: DetectorConfig,
    state: DetectorState,
    samples_seen: u64,
    triggered_at: Option<u64>,
    last_hw: Option<u8>,
}

impl StartDetector {
    /// Creates an idle detector.
    ///
    /// # Errors
    ///
    /// Returns [`DeepStrikeError::InvalidConfig`] for out-of-range taps,
    /// non-ascending taps, a trigger weight above 5 or zero debounce.
    pub fn new(config: DetectorConfig) -> Result<Self> {
        if config.taps.iter().any(|&t| t >= 128) {
            return Err(DeepStrikeError::InvalidConfig("taps must be below 128".into()));
        }
        if config.taps.windows(2).any(|w| w[0] >= w[1]) {
            return Err(DeepStrikeError::InvalidConfig("taps must be strictly ascending".into()));
        }
        if config.trigger_hw > 5 {
            return Err(DeepStrikeError::InvalidConfig("trigger weight exceeds 5 taps".into()));
        }
        if config.debounce == 0 {
            return Err(DeepStrikeError::InvalidConfig("debounce must be at least 1".into()));
        }
        Ok(StartDetector {
            config,
            state: DetectorState::Idle,
            samples_seen: 0,
            triggered_at: None,
            last_hw: None,
        })
    }

    /// Configuration in use.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Current FSM state.
    pub fn state(&self) -> DetectorState {
        self.state
    }

    /// Whether the detector has latched a trigger.
    pub fn is_triggered(&self) -> bool {
        self.state == DetectorState::Triggered
    }

    /// Sample index at which the trigger latched, if any.
    pub fn triggered_at(&self) -> Option<u64> {
        self.triggered_at
    }

    /// Hamming weight of the five tapped bits of a raw TDC vector.
    pub fn hamming_weight(&self, raw: u128) -> u8 {
        self.config.taps.iter().filter(|&&t| raw >> t & 1 == 1).count() as u8
    }

    /// Feeds one raw TDC sample; returns `true` exactly once, on the
    /// sample that latches the trigger.
    pub fn push(&mut self, raw: u128) -> bool {
        self.samples_seen += 1;
        let hw = self.hamming_weight(raw);
        if self.last_hw != Some(hw) {
            self.last_hw = Some(hw);
            trace::emit(|| trace::Event::DetectorHw { sample: self.samples_seen - 1, hw });
        }
        let low = hw <= self.config.trigger_hw;
        self.state = match self.state {
            DetectorState::Triggered => DetectorState::Triggered,
            DetectorState::Idle if low => DetectorState::Candidate(1),
            DetectorState::Idle => DetectorState::Idle,
            DetectorState::Candidate(n) if low => {
                if n + 1 >= self.config.debounce {
                    self.triggered_at = Some(self.samples_seen - 1);
                    trace::emit(|| trace::Event::DetectorLatch { sample: self.samples_seen - 1 });
                    DetectorState::Triggered
                } else {
                    DetectorState::Candidate(n + 1)
                }
            }
            DetectorState::Candidate(_) => DetectorState::Idle,
        };
        self.is_triggered() && self.triggered_at == Some(self.samples_seen - 1)
    }

    /// Re-arms the detector for the next inference.
    pub fn reset(&mut self) {
        self.state = DetectorState::Idle;
        self.triggered_at = None;
        self.samples_seen = 0;
        self.last_hw = None;
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn thermometer(count: usize) -> u128 {
        if count >= 128 {
            u128::MAX
        } else {
            (1u128 << count) - 1
        }
    }

    fn detector() -> StartDetector {
        StartDetector::new(DetectorConfig::default()).unwrap()
    }

    #[test]
    fn idle_readout_has_hw_4_and_never_triggers() {
        let mut det = detector();
        for _ in 0..1000 {
            assert!(!det.push(thermometer(90)));
        }
        assert_eq!(det.hamming_weight(thermometer(90)), 4);
        assert_eq!(det.state(), DetectorState::Idle);
    }

    #[test]
    fn idle_wobble_of_two_counts_is_ignored() {
        let mut det = detector();
        // Dither between 88 and 92: all taps below 85 stay set.
        for k in 0..500usize {
            let count = 88 + (k % 5);
            assert!(!det.push(thermometer(count)), "wobble must not trigger");
        }
        assert!(!det.is_triggered());
    }

    #[test]
    fn sustained_droop_triggers_after_debounce() {
        let mut det = detector();
        det.push(thermometer(90));
        assert!(!det.push(thermometer(70))); // HW 3: candidate 1
        assert!(!det.push(thermometer(70))); // candidate 2
        assert!(det.push(thermometer(70))); // debounce 3: trigger, exactly once
        assert!(det.is_triggered());
        assert_eq!(det.triggered_at(), Some(3));
        // Further pushes do not re-report.
        assert!(!det.push(thermometer(50)));
    }

    #[test]
    fn single_sample_glitch_is_debounced_away() {
        let mut det = detector();
        det.push(thermometer(90));
        det.push(thermometer(70)); // candidate
        det.push(thermometer(90)); // back to idle
        det.push(thermometer(70));
        det.push(thermometer(90));
        assert!(!det.is_triggered());
        assert_eq!(det.state(), DetectorState::Idle);
    }

    #[test]
    fn deeper_droop_lowers_hamming_weight_progressively() {
        let det = detector();
        assert_eq!(det.hamming_weight(thermometer(120)), 5);
        assert_eq!(det.hamming_weight(thermometer(90)), 4);
        assert_eq!(det.hamming_weight(thermometer(70)), 3);
        assert_eq!(det.hamming_weight(thermometer(50)), 2);
        assert_eq!(det.hamming_weight(thermometer(20)), 1);
        assert_eq!(det.hamming_weight(0), 0);
    }

    #[test]
    fn reset_rearms() {
        let mut det = detector();
        for _ in 0..5 {
            det.push(thermometer(60));
        }
        assert!(det.is_triggered());
        det.reset();
        assert!(!det.is_triggered());
        assert_eq!(det.state(), DetectorState::Idle);
        for _ in 0..5 {
            det.push(thermometer(60));
        }
        assert!(det.is_triggered(), "triggers again after reset");
    }

    #[test]
    fn invalid_configurations_rejected() {
        let bad = DetectorConfig { taps: [0, 1, 2, 3, 200], ..DetectorConfig::default() };
        assert!(StartDetector::new(bad).is_err());
        let bad = DetectorConfig { taps: [5, 5, 6, 7, 8], ..DetectorConfig::default() };
        assert!(StartDetector::new(bad).is_err());
        let bad = DetectorConfig { trigger_hw: 6, ..DetectorConfig::default() };
        assert!(StartDetector::new(bad).is_err());
        let bad = DetectorConfig { debounce: 0, ..DetectorConfig::default() };
        assert!(StartDetector::new(bad).is_err());
    }
}
