//! The remotely-guided campaign driver (§IV run end-to-end over UART).
//!
//! The paper's adversary never touches the platform directly: it "connects
//! to this prototyped cloud-FPGA from the UART serial port, with which the
//! adversary can gather on-chip side-channel leakage … and dynamically
//! configure the attacking scheme file". [`RemoteCampaign`] is that
//! adversary: every phase of profile → plan → upload → arm → strike →
//! evaluate runs through a [`TransportClient`]/[`TransportShell`] pair over
//! a (possibly lossy) [`uart::link`] channel.
//!
//! # Checkpoint / resume
//!
//! The campaign checkpoints its state after every completed phase (the
//! collected profiling traces, the learned profile, the compiled scheme).
//! When the reliable transport gives up on an outage
//! ([`uart::UartError::LinkDown`]), [`RemoteCampaign::run`] returns
//! [`DeepStrikeError::Interrupted`] with the failed phase — the checkpoint
//! is intact, and calling `run` again *resumes from that phase* instead of
//! restarting. Completed profiling runs are never re-read; an interrupted
//! scheme upload continues from the shell's staging watermark.
//!
//! # Degradation ladder
//!
//! Repeated outages during profiling walk the guidance ladder recorded as
//! [`trace::Event::GuidanceDegraded`] events:
//!
//! 1. [`trace::GuidanceLevel::Fresh`] — all requested profiling runs
//!    streamed; plan from the full profile.
//! 2. [`trace::GuidanceLevel::Checkpoint`] — profiling keeps dying after
//!    [`RemoteConfig::guidance_attempts`] resumes: plan from whatever
//!    complete traces the checkpoint already holds.
//! 3. [`trace::GuidanceLevel::Blind`] — not a single trace survived: spray
//!    the strike budget over [`RemoteConfig::blind_spray_cycles`] (the
//!    attacker's estimate of the inference length), the paper's unguided
//!    baseline.
//!
//! # Phase deadlines
//!
//! A lossy link can also fail by *crawling* instead of dying: every
//! retry eventually succeeds, so the transport never reports `LinkDown`,
//! but profiling would take unbounded time. [`RemoteConfig`] therefore
//! carries optional per-phase budgets — wall-clock
//! ([`RemoteConfig::phase_wall_budget`]) and simulated link ticks
//! ([`RemoteConfig::phase_tick_budget`]). A supervisor watchdog checks
//! them after every link exchange; a tripped budget emits
//! [`trace::Event::PhaseDeadlineExceeded`] and follows the same
//! degrade-don't-die policy as an outage: during profiling it feeds the
//! guidance ladder above, elsewhere it surfaces as the resumable
//! [`DeepStrikeError::PhaseDeadline`]. Both budgets default to `None`
//! (unbounded), which leaves the historical behaviour untouched.
//!
//! # Durable checkpoints
//!
//! [`RemoteCampaign::persist`] serializes the full resumable state
//! (phase, guidance, collected traces, compiled scheme) through a
//! [`ckpt::CheckpointStore`] — atomic write-rename, versioned header,
//! CRC, one-generation rollback — and [`RemoteCampaign::restore`] brings
//! a campaign back after a process kill. The learned profile is *not*
//! stored: it is recomputed deterministically from the stored traces, so
//! a restored campaign is bit-identical to one that never died.

use accel::fault::FaultModel;
use dnn::quant::QuantizedNetwork;
use dnn::tensor::Tensor;
use uart::proto::{Command, Response};
use uart::transport::{TransportClient, TransportShell};
use uart::UartError;

use crate::attack::{
    plan_attack, plan_blind_cycles, profile_from_traces, AttackOutcome, VictimProfile,
};
use crate::cosim::{CloudFpga, InferenceRun};
use crate::error::{DeepStrikeError, Result};
use crate::signal_ram::AttackScheme;

/// Campaign phases, re-exported from the bottom-of-stack [`trace`] crate
/// so checkpoints and trace events share one vocabulary.
pub use trace::{GuidanceLevel, RemotePhase};

/// Tunables of a remote campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteConfig {
    /// Expected layer names in execution order (the architecture family
    /// the attacker is hunting, as in [`crate::attack::profile_victim`]).
    pub layer_names: Vec<String>,
    /// Layer the guided plan targets.
    pub target: String,
    /// Strike budget.
    pub strikes: u32,
    /// Unarmed profiling inferences to stream.
    pub profile_runs: usize,
    /// TDC samples per `ReadTrace` exchange. Small reads keep response
    /// frames short enough to survive lossy links.
    pub read_chunk: u32,
    /// Interrupted-profiling resumes tolerated before walking down the
    /// guidance ladder.
    pub guidance_attempts: u32,
    /// Blind-fallback estimate of the inference length in victim cycles.
    pub blind_spray_cycles: u64,
    /// Seed for the host-side attack evaluation.
    pub eval_seed: u64,
    /// Wall-clock budget per phase attempt; `None` (default) disables
    /// the wall-clock watchdog.
    pub phase_wall_budget: Option<std::time::Duration>,
    /// Simulated link-tick budget per phase attempt; `None` (default)
    /// disables the tick watchdog. Deterministic, unlike wall-clock.
    pub phase_tick_budget: Option<u64>,
}

impl RemoteConfig {
    /// A config with the documented defaults: 2 profiling runs, 64-sample
    /// trace reads, 2 tolerated profiling outages, a 4096-cycle blind
    /// estimate and evaluation seed 7.
    pub fn new(layer_names: &[&str], target: &str, strikes: u32) -> Self {
        RemoteConfig {
            layer_names: layer_names.iter().map(|s| s.to_string()).collect(),
            target: target.to_string(),
            strikes,
            profile_runs: 2,
            read_chunk: 64,
            guidance_attempts: 2,
            blind_spray_cycles: 4096,
            eval_seed: 7,
            phase_wall_budget: None,
            phase_tick_budget: None,
        }
    }
}

/// On-disk wire version of the serialized campaign state.
const CAMPAIGN_WIRE_VERSION: u8 = 1;

/// CRC-32 fingerprint of the result-affecting config fields. A durable
/// checkpoint written under one config must not resume under another —
/// the traces/scheme would silently disagree with the new parameters.
/// The phase budgets are excluded: they bound time, not results.
fn config_fingerprint(config: &RemoteConfig) -> u32 {
    use ckpt::wire;
    let mut bytes = Vec::new();
    wire::put_u32(&mut bytes, config.layer_names.len() as u32);
    for name in &config.layer_names {
        wire::put_bytes(&mut bytes, name.as_bytes());
    }
    wire::put_bytes(&mut bytes, config.target.as_bytes());
    wire::put_u32(&mut bytes, config.strikes);
    wire::put_u64(&mut bytes, config.profile_runs as u64);
    wire::put_u32(&mut bytes, config.read_chunk);
    wire::put_u32(&mut bytes, config.guidance_attempts);
    wire::put_u64(&mut bytes, config.blind_spray_cycles);
    wire::put_u64(&mut bytes, config.eval_seed);
    ckpt::crc32(&bytes)
}

fn phase_code(phase: RemotePhase) -> u8 {
    match phase {
        RemotePhase::Profile => 0,
        RemotePhase::Plan => 1,
        RemotePhase::Upload => 2,
        RemotePhase::Arm => 3,
        RemotePhase::Strike => 4,
        RemotePhase::Evaluate => 5,
    }
}

fn phase_from_code(code: u8) -> Option<RemotePhase> {
    Some(match code {
        0 => RemotePhase::Profile,
        1 => RemotePhase::Plan,
        2 => RemotePhase::Upload,
        3 => RemotePhase::Arm,
        4 => RemotePhase::Strike,
        5 => RemotePhase::Evaluate,
        _ => return None,
    })
}

fn guidance_code(level: GuidanceLevel) -> u8 {
    match level {
        GuidanceLevel::Fresh => 0,
        GuidanceLevel::Checkpoint => 1,
        GuidanceLevel::Blind => 2,
    }
}

fn guidance_from_code(code: u8) -> Option<GuidanceLevel> {
    Some(match code {
        0 => GuidanceLevel::Fresh,
        1 => GuidanceLevel::Checkpoint,
        2 => GuidanceLevel::Blind,
        _ => return None,
    })
}

/// The supervisor watchdog: armed at the start of a phase attempt,
/// consulted after every link exchange. Budgets of `None` never trip.
struct Watchdog {
    phase: RemotePhase,
    started: std::time::Instant,
    start_tick: u64,
    wall: Option<std::time::Duration>,
    ticks: Option<u64>,
}

impl Watchdog {
    fn arm(config: &RemoteConfig, phase: RemotePhase, link: &mut TransportClient) -> Self {
        Watchdog {
            phase,
            started: std::time::Instant::now(),
            start_tick: link.endpoint_mut().now(),
            wall: config.phase_wall_budget,
            ticks: config.phase_tick_budget,
        }
    }

    /// Emits [`trace::Event::PhaseDeadlineExceeded`] and returns
    /// [`DeepStrikeError::PhaseDeadline`] once either budget is spent.
    fn check(&self, link: &mut TransportClient) -> Result<()> {
        let wall_spent = self.wall.is_some_and(|budget| self.started.elapsed() > budget);
        let ticks_spent = self.ticks.is_some_and(|budget| {
            link.endpoint_mut().now().saturating_sub(self.start_tick) > budget
        });
        if wall_spent || ticks_spent {
            let phase = self.phase;
            trace::emit(|| trace::Event::PhaseDeadlineExceeded { phase });
            return Err(DeepStrikeError::PhaseDeadline { phase });
        }
        Ok(())
    }
}

/// What the campaign driver needs from the far side of the link beyond the
/// protocol itself: something must run the FPGA-side transport shell, the
/// victim must execute its workload, and the attack is ultimately scored
/// by observing the victim's outputs.
pub trait CampaignHost {
    /// Services the FPGA-side transport shell once (one poll).
    fn pump(&mut self);

    /// Runs one victim inference on the platform (the tenant's own
    /// workload; the attacker only awaits it).
    fn victim_inference(&mut self);

    /// Scores the most recent victim inference against the clean model —
    /// the victim-side observable the paper reports as accuracy drop.
    ///
    /// # Errors
    ///
    /// Implementation-defined; the simulator host fails if no inference
    /// has run yet.
    fn evaluate(&mut self, seed: u64) -> Result<AttackOutcome>;
}

/// The co-simulated host: a [`CloudFpga`] behind a [`TransportShell`],
/// plus the evaluation set. This is the whole "far side" of the chaos
/// tests — the campaign driver itself only ever sees the [`CampaignHost`]
/// trait and the serial link.
#[derive(Debug)]
pub struct SimHost {
    fpga: CloudFpga,
    shell: TransportShell,
    net: QuantizedNetwork,
    images: Vec<(Tensor, usize)>,
    fault_model: FaultModel,
    last_run: Option<InferenceRun>,
    memo: Option<std::sync::Arc<crate::snapshot::RunMemo>>,
}

impl SimHost {
    /// Assembles the host around a platform and its victim network.
    pub fn new(
        fpga: CloudFpga,
        shell: TransportShell,
        net: QuantizedNetwork,
        images: Vec<(Tensor, usize)>,
        fault_model: FaultModel,
    ) -> Self {
        SimHost { fpga, shell, net, images, fault_model, last_run: None, memo: None }
    }

    /// Shares a [`crate::snapshot::RunMemo`] across hosts: campaign grids
    /// (e.g. `remote_campaign`'s link-fault sweep) drive bit-identical
    /// victim platforms at every point, so each distinct inference
    /// simulates once and every other point replays the recorded bytes.
    /// Serving is gated on exact behavioural state match, so results are
    /// unchanged — only the wall-clock is.
    #[must_use]
    pub fn with_run_memo(mut self, memo: std::sync::Arc<crate::snapshot::RunMemo>) -> Self {
        self.memo = Some(memo);
        self
    }

    /// The platform (schedule inspection in tests).
    pub fn fpga(&self) -> &CloudFpga {
        &self.fpga
    }

    /// The FPGA-side transport shell (replay/corruption counters).
    pub fn shell(&self) -> &TransportShell {
        &self.shell
    }
}

impl CampaignHost for SimHost {
    fn pump(&mut self) {
        self.shell.poll(&mut self.fpga);
    }

    fn victim_inference(&mut self) {
        self.last_run = Some(match &self.memo {
            Some(memo) => memo.run_inference(&mut self.fpga),
            None => self.fpga.run_inference(),
        });
    }

    fn evaluate(&mut self, seed: u64) -> Result<AttackOutcome> {
        let run = self.last_run.as_ref().ok_or_else(|| {
            DeepStrikeError::InvalidConfig("no victim inference has run yet".into())
        })?;
        Ok(crate::attack::evaluate_attack(
            &self.net,
            self.fpga.schedule(),
            run,
            self.images.iter().map(|(t, y)| (t, *y)),
            self.fault_model,
            seed,
        ))
    }
}

/// A snapshot of the campaign's resumable state.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The next phase to execute.
    pub phase: RemotePhase,
    /// Complete profiling traces collected so far.
    pub completed_traces: usize,
    /// The learned profile, once the profile phase finished (or degraded).
    pub profile: Option<VictimProfile>,
    /// The compiled scheme, once planning finished.
    pub scheme: Option<AttackScheme>,
    /// Where the campaign sits on the guidance ladder.
    pub guidance: GuidanceLevel,
}

/// Result of a completed remote campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteOutcome {
    /// The scheme that was uploaded and armed.
    pub scheme: AttackScheme,
    /// Host-side evaluation of the armed run.
    pub outcome: AttackOutcome,
    /// Final guidance level (Fresh unless the campaign degraded).
    pub guidance: GuidanceLevel,
    /// Strikes the scheduler reported over the link after the armed run.
    pub remote_strikes_fired: u32,
}

/// The remotely-guided campaign state machine. See the module docs for
/// the checkpoint/resume and degradation semantics.
#[derive(Debug)]
pub struct RemoteCampaign {
    config: RemoteConfig,
    phase: RemotePhase,
    traces: Vec<Vec<u8>>,
    profile: Option<VictimProfile>,
    scheme: Option<AttackScheme>,
    guidance: GuidanceLevel,
    profile_outages: u32,
    interrupted: bool,
}

impl RemoteCampaign {
    /// A fresh campaign at the start of its profile phase.
    pub fn new(config: RemoteConfig) -> Self {
        RemoteCampaign {
            config,
            phase: RemotePhase::Profile,
            traces: Vec::new(),
            profile: None,
            scheme: None,
            guidance: GuidanceLevel::Fresh,
            profile_outages: 0,
            interrupted: false,
        }
    }

    /// The current resumable state.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            phase: self.phase,
            completed_traces: self.traces.len(),
            profile: self.profile.clone(),
            scheme: self.scheme,
            guidance: self.guidance,
        }
    }

    /// Serializes the resumable state for a durable checkpoint: wire
    /// version, a fingerprint of the campaign config (resuming under a
    /// different config is refused), phase, guidance, outage count, the
    /// collected traces and the compiled scheme. The learned profile is
    /// omitted — [`RemoteCampaign::decode`] recomputes it from the
    /// traces, deterministically.
    pub fn encode(&self) -> Vec<u8> {
        use ckpt::wire;
        let mut out = Vec::new();
        wire::put_u8(&mut out, CAMPAIGN_WIRE_VERSION);
        wire::put_u32(&mut out, config_fingerprint(&self.config));
        wire::put_u8(&mut out, phase_code(self.phase));
        wire::put_u8(&mut out, guidance_code(self.guidance));
        wire::put_u32(&mut out, self.profile_outages);
        wire::put_bool(&mut out, self.profile.is_some());
        wire::put_u32(&mut out, self.traces.len() as u32);
        for tdc_trace in &self.traces {
            wire::put_bytes(&mut out, tdc_trace);
        }
        match &self.scheme {
            Some(scheme) => {
                wire::put_bool(&mut out, true);
                wire::put_bytes(&mut out, &scheme.to_bytes());
            }
            None => wire::put_bool(&mut out, false),
        }
        out
    }

    /// Rebuilds a campaign from [`RemoteCampaign::encode`] bytes. The
    /// restored campaign is marked interrupted, so its next `run` emits
    /// [`trace::Event::CampaignResumed`] and continues from the stored
    /// phase.
    ///
    /// # Errors
    ///
    /// [`DeepStrikeError::Checkpoint`] for malformed payloads or a
    /// config fingerprint mismatch; scheme/profile reconstruction errors
    /// pass through.
    pub fn decode(config: RemoteConfig, bytes: &[u8]) -> Result<Self> {
        let corrupt = |what: &str| DeepStrikeError::Checkpoint(format!("campaign payload: {what}"));
        let mut r = ckpt::wire::Reader::new(bytes);
        let version = r.take_u8().ok_or_else(|| corrupt("missing version"))?;
        if version != CAMPAIGN_WIRE_VERSION {
            return Err(corrupt("unsupported version"));
        }
        let fingerprint = r.take_u32().ok_or_else(|| corrupt("missing config fingerprint"))?;
        if fingerprint != config_fingerprint(&config) {
            return Err(DeepStrikeError::Checkpoint(
                "campaign config differs from the checkpointed one; refusing to resume".into(),
            ));
        }
        let phase = r.take_u8().and_then(phase_from_code).ok_or_else(|| corrupt("bad phase"))?;
        let guidance = r
            .take_u8()
            .and_then(guidance_from_code)
            .ok_or_else(|| corrupt("bad guidance level"))?;
        let profile_outages = r.take_u32().ok_or_else(|| corrupt("missing outage count"))?;
        let has_profile = r.take_bool().ok_or_else(|| corrupt("missing profile flag"))?;
        let n_traces = r.take_u32().ok_or_else(|| corrupt("missing trace count"))?;
        let mut traces = Vec::with_capacity(n_traces as usize);
        for _ in 0..n_traces {
            traces.push(r.take_bytes().ok_or_else(|| corrupt("truncated trace"))?.to_vec());
        }
        let scheme = if r.take_bool().ok_or_else(|| corrupt("missing scheme flag"))? {
            let scheme_bytes = r.take_bytes().ok_or_else(|| corrupt("truncated scheme"))?;
            Some(AttackScheme::from_bytes(scheme_bytes)?)
        } else {
            None
        };
        if !r.is_empty() {
            return Err(corrupt("trailing bytes"));
        }
        let profile = if has_profile {
            let names: Vec<&str> = config.layer_names.iter().map(String::as_str).collect();
            Some(profile_from_traces(&traces, &names)?)
        } else {
            None
        };
        Ok(RemoteCampaign {
            config,
            phase,
            traces,
            profile,
            scheme,
            guidance,
            profile_outages,
            interrupted: true,
        })
    }

    /// Durably saves the campaign through `store` (atomic write-rename +
    /// CRC + generation rollback) and returns the generation.
    ///
    /// # Errors
    ///
    /// [`DeepStrikeError::Checkpoint`] on I/O failure.
    pub fn persist(&self, store: &mut ckpt::CheckpointStore) -> Result<u64> {
        store.save(&self.encode()).map_err(|e| DeepStrikeError::Checkpoint(e.to_string()))
    }

    /// Loads the newest good generation from `store` and rebuilds the
    /// campaign; `Ok(None)` when no durable checkpoint exists yet.
    ///
    /// # Errors
    ///
    /// [`DeepStrikeError::Checkpoint`] when every generation is corrupt
    /// (never silently loaded) or on I/O failure; decode errors as in
    /// [`RemoteCampaign::decode`].
    pub fn restore(config: RemoteConfig, store: &ckpt::CheckpointStore) -> Result<Option<Self>> {
        match store.load() {
            Ok(None) => Ok(None),
            Ok(Some(loaded)) => RemoteCampaign::decode(config, &loaded.payload).map(Some),
            Err(e) => Err(DeepStrikeError::Checkpoint(e.to_string())),
        }
    }

    /// Drives the campaign to completion over `link`, resuming from the
    /// checkpointed phase if a previous call was interrupted.
    ///
    /// # Errors
    ///
    /// [`DeepStrikeError::Interrupted`] when the transport gives up on an
    /// outage (call `run` again to resume); [`DeepStrikeError::Link`] on
    /// protocol-level failures; planning and evaluation errors pass
    /// through.
    pub fn run(
        &mut self,
        link: &mut TransportClient,
        host: &mut dyn CampaignHost,
    ) -> Result<RemoteOutcome> {
        if self.interrupted {
            self.interrupted = false;
            let phase = self.phase;
            trace::emit(|| trace::Event::CampaignResumed { phase });
        }
        loop {
            match self.phase {
                RemotePhase::Profile => {
                    let watchdog = Watchdog::arm(&self.config, RemotePhase::Profile, link);
                    match self.profile_phase(link, host, &watchdog) {
                        Ok(profile) => {
                            self.profile = Some(profile);
                            self.advance(RemotePhase::Plan);
                        }
                        // Outages and blown deadlines share the
                        // degrade-don't-die policy: tolerate
                        // `guidance_attempts` of them, then walk the
                        // guidance ladder instead of hanging forever.
                        Err(DeepStrikeError::Link(UartError::LinkDown { .. }))
                        | Err(DeepStrikeError::PhaseDeadline { .. }) => {
                            self.profile_outages += 1;
                            if self.profile_outages > self.config.guidance_attempts {
                                self.degrade();
                            } else {
                                return self.interrupt();
                            }
                        }
                        Err(e) => return Err(e),
                    }
                }
                RemotePhase::Plan => {
                    // Planning is local to the attacker; it cannot be
                    // interrupted by the link.
                    let scheme = match (&self.guidance, &self.profile) {
                        (GuidanceLevel::Blind, _) | (_, None) => {
                            plan_blind_cycles(self.config.blind_spray_cycles, self.config.strikes)
                        }
                        (_, Some(profile)) => {
                            plan_attack(profile, &self.config.target, self.config.strikes)?
                        }
                    };
                    self.scheme = Some(scheme);
                    self.advance(RemotePhase::Upload);
                }
                RemotePhase::Upload => {
                    let watchdog = Watchdog::arm(&self.config, RemotePhase::Upload, link);
                    let bytes = self.scheme()?.to_bytes();
                    match link.upload_scheme(&bytes, || host.pump()) {
                        Ok(()) => {
                            self.deadline_gate(watchdog.check(link))?;
                            self.advance(RemotePhase::Arm);
                        }
                        Err(e) => return self.fail(e),
                    }
                }
                RemotePhase::Arm => {
                    let watchdog = Watchdog::arm(&self.config, RemotePhase::Arm, link);
                    match link.transact(&Command::Arm { enabled: true }, || host.pump()) {
                        Ok(Response::Ack) => {
                            self.deadline_gate(watchdog.check(link))?;
                            self.advance(RemotePhase::Strike);
                        }
                        Ok(other) => {
                            return Err(DeepStrikeError::Link(UartError::UnexpectedResponse(
                                format!("arm answered {other:?}"),
                            )))
                        }
                        Err(e) => return self.fail(e),
                    }
                }
                RemotePhase::Strike => {
                    // The victim runs its workload; the armed scheduler
                    // strikes on its own. Confirm over the link.
                    let watchdog = Watchdog::arm(&self.config, RemotePhase::Strike, link);
                    host.victim_inference();
                    match link.transact(&Command::Status, || host.pump()) {
                        Ok(Response::Status(status)) => {
                            self.deadline_gate(watchdog.check(link))?;
                            self.advance(RemotePhase::Evaluate);
                            return self.evaluate(host, status.strikes_fired);
                        }
                        Ok(other) => {
                            return Err(DeepStrikeError::Link(UartError::UnexpectedResponse(
                                format!("status answered {other:?}"),
                            )))
                        }
                        Err(e) => return self.fail(e),
                    }
                }
                RemotePhase::Evaluate => {
                    // Only reachable by resuming after an interrupt that
                    // landed exactly on the evaluate phase; the strike run
                    // is re-confirmed by re-running the strike phase.
                    self.phase = RemotePhase::Strike;
                }
            }
        }
    }

    fn evaluate(
        &mut self,
        host: &mut dyn CampaignHost,
        strikes_fired: u32,
    ) -> Result<RemoteOutcome> {
        let outcome = host.evaluate(self.config.eval_seed)?;
        trace::emit(|| trace::Event::CheckpointSaved { phase: RemotePhase::Evaluate });
        Ok(RemoteOutcome {
            scheme: *self.scheme()?,
            outcome,
            guidance: self.guidance,
            remote_strikes_fired: strikes_fired,
        })
    }

    fn scheme(&self) -> Result<&AttackScheme> {
        self.scheme
            .as_ref()
            .ok_or_else(|| DeepStrikeError::InvalidConfig("no scheme checkpointed".into()))
    }

    /// Marks `self.phase` complete and checkpoints.
    fn advance(&mut self, next: RemotePhase) {
        let done = self.phase;
        trace::emit(|| trace::Event::CheckpointSaved { phase: done });
        self.phase = next;
    }

    /// Converts a transport error into the resumable interrupt (link
    /// outage) or a hard failure (protocol error).
    fn fail(&mut self, e: UartError) -> Result<RemoteOutcome> {
        match e {
            UartError::LinkDown { .. } => self.interrupt(),
            other => Err(DeepStrikeError::Link(other)),
        }
    }

    fn interrupt(&mut self) -> Result<RemoteOutcome> {
        self.interrupted = true;
        Err(DeepStrikeError::Interrupted { phase: self.phase })
    }

    /// Makes a tripped non-profile deadline resumable: the phase is left
    /// as-is (its work is redone on resume) and the error propagates to
    /// the caller, which retries `run` exactly as for an outage.
    fn deadline_gate(&mut self, check: Result<()>) -> Result<()> {
        if check.is_err() {
            self.interrupted = true;
        }
        check
    }

    /// Walks one step down the guidance ladder after profiling kept
    /// failing: checkpointed traces if any segment cleanly, else blind.
    fn degrade(&mut self) {
        let names: Vec<&str> = self.config.layer_names.iter().map(String::as_str).collect();
        let level = match profile_from_traces(&self.traces, &names) {
            Ok(profile) if !self.traces.is_empty() => {
                self.profile = Some(profile);
                GuidanceLevel::Checkpoint
            }
            _ => {
                self.profile = None;
                GuidanceLevel::Blind
            }
        };
        self.guidance = level;
        trace::emit(|| trace::Event::GuidanceDegraded { level });
        self.phase = RemotePhase::Plan;
    }

    /// Streams the profiling traces: drain stale samples, let the victim
    /// run, then read the fresh trace chunk by chunk until empty.
    /// Completed traces are checkpointed; an interrupted read only costs
    /// the in-flight run.
    fn profile_phase(
        &mut self,
        link: &mut TransportClient,
        host: &mut dyn CampaignHost,
        watchdog: &Watchdog,
    ) -> Result<VictimProfile> {
        let want = self.config.profile_runs.max(1);
        while self.traces.len() < want {
            // Stale samples: idle noise, or the tail of a run whose read
            // an outage cut short (that run is redone from scratch).
            while !self.read_chunk(link, host)?.is_empty() {
                watchdog.check(link)?;
            }
            host.victim_inference();
            let mut tdc_trace = Vec::new();
            loop {
                let chunk = self.read_chunk(link, host)?;
                watchdog.check(link)?;
                if chunk.is_empty() {
                    break;
                }
                tdc_trace.extend(chunk);
            }
            self.traces.push(tdc_trace);
        }
        let names: Vec<&str> = self.config.layer_names.iter().map(String::as_str).collect();
        profile_from_traces(&self.traces, &names)
    }

    fn read_chunk(
        &self,
        link: &mut TransportClient,
        host: &mut dyn CampaignHost,
    ) -> Result<Vec<u8>> {
        match link
            .transact(&Command::ReadTrace { max_samples: self.config.read_chunk }, || host.pump())?
        {
            Response::Trace(samples) => Ok(samples),
            other => Err(DeepStrikeError::Link(UartError::UnexpectedResponse(format!(
                "read_trace answered {other:?}"
            )))),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::attack::{evaluate_attack, profile_victim};
    use crate::cosim::CosimConfig;
    use accel::schedule::AccelConfig;
    use dnn::fixed::QFormat;
    use dnn::layers::{Dense, Tanh};
    use dnn::network::Sequential;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use uart::link::{Endpoint, FaultConfig};
    use uart::transport::TransportConfig;

    fn tiny_victim(seed: u64) -> QuantizedNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Sequential::new("remote_dense");
        net.push(Box::new(Dense::new("fc1", 36, 16, &mut rng)));
        net.push(Box::new(Tanh::new("fc1_tanh")));
        net.push(Box::new(Dense::new("fc2", 16, 10, &mut rng)));
        QuantizedNetwork::from_sequential(&net, &[1, 6, 6], QFormat::paper()).unwrap()
    }

    fn platform(q: &QuantizedNetwork) -> CloudFpga {
        let accel =
            AccelConfig { weight_bandwidth: 16, stall_cycles: 150, ..AccelConfig::default() };
        let mut fpga = CloudFpga::new(
            q,
            &accel,
            16_000,
            CosimConfig { pdn_substeps: 4, ..CosimConfig::default() },
        )
        .unwrap();
        fpga.settle(30);
        fpga
    }

    fn eval_images(n: usize) -> Vec<(Tensor, usize)> {
        (0..n)
            .map(|i| {
                let data: Vec<f32> =
                    (0..36).map(|j| ((i * 31 + j * 7) % 17) as f32 / 16.0).collect();
                (Tensor::from_vec(data, &[1, 6, 6]), i % 10)
            })
            .collect()
    }

    #[test]
    fn remote_campaign_matches_the_local_driver_on_a_clean_link() {
        let q = tiny_victim(11);
        let config = RemoteConfig::new(&["fc1", "fc2"], "fc1", 6);

        // Local reference: the crate's direct driver, same platform state.
        let mut local = platform(&q);
        let profile = profile_victim(&mut local, &["fc1", "fc2"], config.profile_runs).unwrap();
        let local_scheme = plan_attack(&profile, "fc1", 6).unwrap();
        local.scheduler_mut().load_scheme(&local_scheme).unwrap();
        local.scheduler_mut().arm(true).unwrap();
        let run = local.run_inference();
        let local_outcome = evaluate_attack(
            &q,
            local.schedule(),
            &run,
            eval_images(6).iter().map(|(t, y)| (t, *y)),
            FaultModel::paper(),
            config.eval_seed,
        );

        // Remote: identical platform, everything through the link.
        let (a, b) = Endpoint::pair();
        let mut link = TransportClient::new(a);
        let mut host = SimHost::new(
            platform(&q),
            TransportShell::new(b),
            q.clone(),
            eval_images(6),
            FaultModel::paper(),
        );
        let mut campaign = RemoteCampaign::new(config);
        let remote = campaign.run(&mut link, &mut host).unwrap();

        assert_eq!(remote.scheme, local_scheme, "same bytes must compile to the same scheme");
        assert_eq!(remote.guidance, GuidanceLevel::Fresh);
        assert_eq!(remote.outcome, local_outcome, "same armed run must score identically");
        assert!(remote.remote_strikes_fired >= 1);
    }

    #[test]
    fn repeated_outages_degrade_to_blind_and_still_complete() {
        let q = tiny_victim(11);
        // The link is dead for its first 60 ticks — longer than the tiny
        // retry span below, so early transactions give up with LinkDown.
        let fault = FaultConfig { disconnects: vec![(0, 60)], ..FaultConfig::default() };
        let (a, b) = Endpoint::faulty_pair(fault, 5);
        let mut link = TransportClient::with_config(
            a,
            TransportConfig { pump_budget: 2, max_retries: 1, backoff_cap: 4, chunk_len: 16 },
        );
        let mut host = SimHost::new(
            platform(&q),
            TransportShell::new(b),
            q.clone(),
            eval_images(4),
            FaultModel::paper(),
        );
        let mut config = RemoteConfig::new(&["fc1", "fc2"], "fc1", 6);
        config.guidance_attempts = 1;
        config.blind_spray_cycles = 600;
        let mut campaign = RemoteCampaign::new(config);

        let mut interrupts = 0u32;
        let outcome = loop {
            match campaign.run(&mut link, &mut host) {
                Ok(o) => break o,
                Err(DeepStrikeError::Interrupted { phase }) => {
                    interrupts += 1;
                    if interrupts == 1 {
                        assert_eq!(phase, RemotePhase::Profile);
                        assert_eq!(campaign.checkpoint().phase, RemotePhase::Profile);
                    }
                    assert!(interrupts < 40, "campaign never recovered");
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        };
        assert!(interrupts >= 2, "the dead window must interrupt repeatedly");
        assert_eq!(outcome.guidance, GuidanceLevel::Blind);
        assert_eq!(outcome.scheme.delay_cycles, 0, "blind spray launches immediately");
        assert!(outcome.remote_strikes_fired >= 1, "the blind spray still fires");
        assert_eq!(campaign.checkpoint().completed_traces, 0, "no trace ever survived");
    }

    #[test]
    fn durable_roundtrip_is_bit_identical_after_a_simulated_kill() {
        let q = tiny_victim(11);
        let config = RemoteConfig::new(&["fc1", "fc2"], "fc1", 6);

        // Reference: one uninterrupted campaign over a clean link.
        let (a, b) = Endpoint::pair();
        let mut link = TransportClient::new(a);
        let mut host = SimHost::new(
            platform(&q),
            TransportShell::new(b),
            q.clone(),
            eval_images(6),
            FaultModel::paper(),
        );
        let mut reference = RemoteCampaign::new(config.clone());
        let expected = reference.run(&mut link, &mut host).unwrap();

        // Killed run: a link that dies mid-profile forces an interrupt;
        // the campaign is persisted, dropped (the "kill"), restored from
        // disk and driven to completion on a fresh healthy link.
        let dir =
            std::env::temp_dir().join(format!("deepstrike-campaign-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = ckpt::CheckpointStore::new(&dir, "campaign").unwrap();

        let fault = FaultConfig { disconnects: vec![(30, 80)], ..FaultConfig::default() };
        let (a, b) = Endpoint::faulty_pair(fault, 9);
        let mut flaky_link = TransportClient::with_config(
            a,
            TransportConfig { pump_budget: 2, max_retries: 1, backoff_cap: 4, chunk_len: 16 },
        );
        let mut flaky_host = SimHost::new(
            platform(&q),
            TransportShell::new(b),
            q.clone(),
            eval_images(6),
            FaultModel::paper(),
        );
        let mut victim_campaign = RemoteCampaign::new(config.clone());
        match victim_campaign.run(&mut flaky_link, &mut flaky_host) {
            Err(DeepStrikeError::Interrupted { .. }) => {}
            other => panic!("the dead window must interrupt, got {other:?}"),
        }
        let generation = victim_campaign.persist(&mut store).unwrap();
        assert_eq!(generation, 1);
        drop(victim_campaign); // kill -9

        let mut restored =
            RemoteCampaign::restore(config.clone(), &store).unwrap().expect("a checkpoint exists");
        assert_eq!(restored.checkpoint().phase, RemotePhase::Profile);
        // Completion on a fresh clean link + fresh platform must match
        // the reference bit-for-bit: the checkpointed traces were cut
        // mid-run, so the resumed profile phase redoes them identically.
        let (a, b) = Endpoint::pair();
        let mut clean_link = TransportClient::new(a);
        let mut clean_host = SimHost::new(
            platform(&q),
            TransportShell::new(b),
            q.clone(),
            eval_images(6),
            FaultModel::paper(),
        );
        let ((), log) = trace::capture(1 << 16, || {
            let resumed = loop {
                match restored.run(&mut clean_link, &mut clean_host) {
                    Ok(o) => break o,
                    Err(DeepStrikeError::Interrupted { .. }) => {}
                    Err(e) => panic!("unexpected error: {e}"),
                }
            };
            assert_eq!(resumed.scheme, expected.scheme);
            assert_eq!(resumed.outcome, expected.outcome);
        });
        assert!(
            log.to_jsonl().contains(r#""ev":"campaign_resumed""#),
            "restore must announce the resume:\n{}",
            log.to_jsonl()
        );

        // A corrupted current generation rolls back to the previous one
        // rather than being silently loaded.
        let mut store2 = ckpt::CheckpointStore::new(&dir, "campaign").unwrap();
        let fresh = RemoteCampaign::new(config.clone());
        fresh.persist(&mut store2).unwrap();
        let path = store2.path().to_path_buf();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let rolled = RemoteCampaign::restore(config.clone(), &store2).unwrap().unwrap();
        assert_eq!(
            rolled.checkpoint().phase,
            RemotePhase::Profile,
            "rollback must land on the generation-1 snapshot"
        );

        // A different config refuses the checkpoint outright.
        let mut other = config;
        other.strikes += 1;
        match RemoteCampaign::restore(other, &store2) {
            Err(DeepStrikeError::Checkpoint(msg)) => assert!(msg.contains("config")),
            o => panic!("config mismatch must be refused, got {o:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crawling_link_trips_the_deadline_and_degrades_to_blind() {
        let q = tiny_victim(11);
        // A perfectly healthy link, but a tick budget far below what one
        // profiling trace read costs: the transport never reports
        // LinkDown, so without the watchdog the campaign would profile
        // forever at this budget. Upload/arm/strike fit comfortably.
        let (a, b) = Endpoint::pair();
        let mut link = TransportClient::new(a);
        let mut host = SimHost::new(
            platform(&q),
            TransportShell::new(b),
            q.clone(),
            eval_images(4),
            FaultModel::paper(),
        );
        let mut config = RemoteConfig::new(&["fc1", "fc2"], "fc1", 6);
        config.guidance_attempts = 1;
        config.blind_spray_cycles = 600;
        // One-sample reads make profiling cost ~2,000 ticks per run; the
        // blind tail (plan → upload → arm → strike) costs < 10. A budget
        // of 200 starves profiling while the tail completes untouched.
        config.read_chunk = 1;
        config.phase_tick_budget = Some(200);
        let mut campaign = RemoteCampaign::new(config);

        let (outcome, log) = trace::capture(1 << 17, || {
            let mut interrupts = 0u32;
            loop {
                match campaign.run(&mut link, &mut host) {
                    Ok(o) => break o,
                    Err(DeepStrikeError::Interrupted { phase }) => {
                        assert_eq!(phase, RemotePhase::Profile);
                        interrupts += 1;
                        assert!(interrupts < 10, "deadline ladder never converged");
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
        });
        assert_eq!(outcome.guidance, GuidanceLevel::Blind);
        assert!(outcome.remote_strikes_fired >= 1);
        let rendered = log.to_jsonl();
        assert!(
            rendered.contains(
                r#""ev":"phase_deadline_exceeded","stage":"supervisor","phase":"profile""#
            ),
            "watchdog trip must be observable:\n{rendered}"
        );
        assert!(
            rendered.contains(r#""ev":"guidance_degraded""#),
            "deadline must feed the guidance ladder:\n{rendered}"
        );
    }

    #[test]
    fn encode_decode_roundtrip_preserves_campaign_state() {
        let config = RemoteConfig::new(&["fc1", "fc2"], "fc1", 6);
        let mut campaign = RemoteCampaign::new(config.clone());
        campaign.traces = vec![vec![1, 2, 3], vec![4, 5]];
        campaign.profile_outages = 2;
        campaign.guidance = GuidanceLevel::Blind;
        campaign.phase = RemotePhase::Upload;
        campaign.scheme = Some(crate::attack::plan_blind_cycles(600, 6));
        let bytes = campaign.encode();
        let decoded = RemoteCampaign::decode(config, &bytes).unwrap();
        assert_eq!(decoded.phase, RemotePhase::Upload);
        assert_eq!(decoded.guidance, GuidanceLevel::Blind);
        assert_eq!(decoded.profile_outages, 2);
        assert_eq!(decoded.traces, campaign.traces);
        assert_eq!(decoded.scheme, campaign.scheme);
        assert!(decoded.interrupted, "a restored campaign resumes");
        // Truncations at every prefix length decode to a typed error,
        // never a panic or a silent partial load.
        for cut in 0..bytes.len() {
            assert!(
                RemoteCampaign::decode(RemoteConfig::new(&["fc1", "fc2"], "fc1", 6), &bytes[..cut])
                    .is_err(),
                "truncation at {cut} must be rejected"
            );
        }
    }
}
