//! # DeepStrike
//!
//! A from-scratch reproduction of *DeepStrike: Remotely-Guided Fault
//! Injection Attacks on DNN Accelerator in Cloud-FPGA* (DAC 2021) as a
//! software co-simulation. The physical FPGA is replaced by behavioural
//! substrates (`fpga-fabric`, `pdn`, `accel`, `dnn`); this crate is the
//! attack itself:
//!
//! * [`tdc`] — the TDC-based delay sensor (`F_dr` = 200 MHz, `DL_LUT` = 4,
//!   `DL_CARRY` = 128, θ calibrated to a readout of ≈ 90).
//! * [`striker`] — the DRC-legal power striker: one `LUT6_2` as two
//!   parallel inverters closing two latch loops (paper Fig. 2).
//! * [`detector`] — the DNN start detector FSM over five TDC zone taps.
//! * [`signal_ram`] — the BRAM-resident attack-scheme bit vector (attack
//!   delay / attack period / number of attacks).
//! * [`scheduler`] — detector + signal RAM → striker `Start`.
//! * [`profile`] — TDC trace segmentation and the layer-signature library.
//! * [`cosim`] — the prototyped cloud FPGA: victim accelerator and
//!   attacker sharing one PDN, remotely driven over [`uart`].
//! * [`attack`] — profile → plan → launch → score, with the blind
//!   baseline.
//! * [`remote`] — the same campaign driven end-to-end over the lossy
//!   [`uart`] link: reliable transport, per-phase checkpoints, resume
//!   after disconnect, and the Fresh → Checkpoint → Blind guidance
//!   degradation ladder.
//! * [`hypervisor`] — tenant combination, DRC gating and floorplanning on
//!   the Zynq-7020 budget.
//!
//! * [`snapshot`] — the fork-point snapshot engine: shared-prefix forks
//!   and bitwise post-strike rejoin make candidate evaluation cost a
//!   suffix run instead of a full replay, bit-identically.
//!
//! # Example: one guided strike campaign
//!
//! ```no_run
//! use accel::fault::FaultModel;
//! use accel::schedule::AccelConfig;
//! use deepstrike::attack::{evaluate_attack, plan_attack, profile_victim};
//! use deepstrike::cosim::{CloudFpga, CosimConfig};
//! use dnn::digits::{Dataset, RenderParams};
//! use dnn::fixed::QFormat;
//! use dnn::lenet::lenet5;
//! use dnn::quant::QuantizedNetwork;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let victim = lenet5(&mut rng); // train first in a real run
//! let q = QuantizedNetwork::from_sequential(&victim, &[1, 28, 28], QFormat::paper())?;
//! let mut fpga = CloudFpga::new(&q, &AccelConfig::default(), 12_000, CosimConfig::default())?;
//! fpga.settle(100);
//! let profile = profile_victim(&mut fpga, &["conv1", "pool1", "conv2", "fc1", "fc2"], 3)?;
//! let scheme = plan_attack(&profile, "conv2", 4_500)?;
//! fpga.scheduler_mut().load_scheme(&scheme)?;
//! fpga.scheduler_mut().arm(true)?;
//! let run = fpga.run_inference();
//! let test = Dataset::generate(100, &RenderParams::default(), &mut rng);
//! let outcome =
//!     evaluate_attack(&q, fpga.schedule(), &run, test.iter(), FaultModel::paper(), 7);
//! println!("accuracy drop: {:.1} points", outcome.accuracy_drop());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(clippy::unwrap_used)]

pub mod attack;
pub mod cosim;
pub mod defense;
pub mod detector;
pub mod hypervisor;
pub mod profile;
pub mod remote;
pub mod scheduler;
pub mod signal_ram;
pub mod snapshot;
pub mod striker;
pub mod tdc;

mod error;

pub use error::{DeepStrikeError, Result};
