//! Victim profiling: trace segmentation and the layer-signature library.
//!
//! §III-B: the attacker watches the TDC stream while the victim classifies
//! images and "build[s] a library of sensor readout patterns for different
//! types of DNN layers at different sizes for future attack use". The
//! observables per execution phase are its duration, its mean readout
//! depression and its fluctuation — Fig. 1b shows exactly these three
//! separating max-pool from convolution phases, with near-90 "stalls"
//! between layers.

use crate::error::{DeepStrikeError, Result};

/// One active execution phase found in a TDC trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// First sample index of the phase.
    pub start: usize,
    /// Phase length in samples.
    pub len: usize,
    /// Mean readout inside the phase.
    pub mean: f64,
    /// Readout variance inside the phase (the "fluctuation").
    pub variance: f64,
    /// Deepest readout inside the phase.
    pub min: u8,
}

impl Segment {
    /// One past the last sample.
    pub fn end(&self) -> usize {
        self.start + self.len
    }
}

/// Segmentation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmenterConfig {
    /// The idle readout level (the calibrated ≈ 90).
    pub idle_level: f64,
    /// A sample is "active" when below `idle_level - droop_threshold`.
    pub droop_threshold: f64,
    /// Discard active runs shorter than this (noise blips).
    pub min_len: usize,
    /// Merge active runs separated by gaps shorter than this (brief
    /// within-layer returns toward idle).
    pub merge_gap: usize,
}

impl Default for SegmenterConfig {
    fn default() -> Self {
        SegmenterConfig { idle_level: 90.0, droop_threshold: 4.0, min_len: 20, merge_gap: 120 }
    }
}

/// Splits a TDC readout trace into execution segments.
///
/// # Example
///
/// ```
/// use deepstrike::profile::{segment_trace, SegmenterConfig};
///
/// let mut trace = vec![90u8; 100];
/// for s in trace.iter_mut().skip(30).take(40) { *s = 70; }
/// let segs = segment_trace(&trace, &SegmenterConfig::default());
/// assert_eq!(segs.len(), 1);
/// assert_eq!(segs[0].start, 30);
/// assert_eq!(segs[0].len, 40);
/// ```
pub fn segment_trace(samples: &[u8], config: &SegmenterConfig) -> Vec<Segment> {
    let threshold = config.idle_level - config.droop_threshold;
    // Raw active runs.
    let mut runs: Vec<(usize, usize)> = Vec::new();
    let mut start: Option<usize> = None;
    for (i, &s) in samples.iter().enumerate() {
        if f64::from(s) < threshold {
            if start.is_none() {
                start = Some(i);
            }
        } else if let Some(s0) = start.take() {
            runs.push((s0, i));
        }
    }
    if let Some(s0) = start {
        runs.push((s0, samples.len()));
    }
    // Merge nearby runs.
    let mut merged: Vec<(usize, usize)> = Vec::new();
    for (s, e) in runs {
        match merged.last_mut() {
            Some((_, prev_end)) if s - *prev_end <= config.merge_gap => *prev_end = e,
            _ => merged.push((s, e)),
        }
    }
    merged
        .into_iter()
        .filter(|(s, e)| e - s >= config.min_len)
        .map(|(s, e)| {
            let window = &samples[s..e];
            let mean = window.iter().map(|&v| f64::from(v)).sum::<f64>() / window.len() as f64;
            let variance = window.iter().map(|&v| (f64::from(v) - mean).powi(2)).sum::<f64>()
                / window.len() as f64;
            let min = window.iter().copied().min().expect("non-empty window");
            Segment { start: s, len: e - s, mean, variance, min }
        })
        .collect()
}

/// Averaged signature of one layer, learned over profiling runs.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSignature {
    /// Layer name.
    pub name: String,
    /// Mean duration in samples.
    pub duration: f64,
    /// Mean readout.
    pub mean: f64,
    /// Mean variance (fluctuation).
    pub variance: f64,
    /// Observations averaged in.
    pub observations: usize,
}

/// The attacker's pattern library.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SignatureLibrary {
    signatures: Vec<LayerSignature>,
}

impl SignatureLibrary {
    /// Creates an empty library.
    pub fn new() -> Self {
        SignatureLibrary::default()
    }

    /// Signatures learned so far.
    pub fn signatures(&self) -> &[LayerSignature] {
        &self.signatures
    }

    /// Looks up a signature by layer name.
    pub fn signature(&self, name: &str) -> Option<&LayerSignature> {
        self.signatures.iter().find(|s| s.name == name)
    }

    /// Folds one labelled observation into the library (running average).
    pub fn learn(&mut self, name: &str, segment: &Segment) {
        match self.signatures.iter_mut().find(|s| s.name == name) {
            Some(sig) => {
                let n = sig.observations as f64;
                sig.duration = (sig.duration * n + segment.len as f64) / (n + 1.0);
                sig.mean = (sig.mean * n + segment.mean) / (n + 1.0);
                sig.variance = (sig.variance * n + segment.variance) / (n + 1.0);
                sig.observations += 1;
            }
            None => self.signatures.push(LayerSignature {
                name: name.to_string(),
                duration: segment.len as f64,
                mean: segment.mean,
                variance: segment.variance,
                observations: 1,
            }),
        }
    }

    /// Classifies a segment: returns the best-matching layer name and the
    /// normalised distance (smaller = closer).
    ///
    /// # Errors
    ///
    /// Returns [`DeepStrikeError::LayerNotFound`] if the library is empty.
    pub fn classify(&self, segment: &Segment) -> Result<(&str, f64)> {
        if self.signatures.is_empty() {
            return Err(DeepStrikeError::LayerNotFound("<empty library>".into()));
        }
        let mut best: Option<(&str, f64)> = None;
        for sig in &self.signatures {
            // Relative distances keep the three features comparable.
            let d_dur = ((segment.len as f64) - sig.duration) / sig.duration.max(1.0);
            let d_mean = (segment.mean - sig.mean) / sig.mean.max(1.0);
            let d_var =
                ((segment.variance.sqrt()) - sig.variance.sqrt()) / sig.variance.sqrt().max(0.5);
            let dist = (d_dur.powi(2) + (4.0 * d_mean).powi(2) + d_var.powi(2)).sqrt();
            if best.is_none_or(|(_, b)| dist < b) {
                best = Some((sig.name.as_str(), dist));
            }
        }
        Ok(best.expect("library non-empty"))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn synth_trace(segments: &[(usize, usize, u8, f64)]) -> Vec<u8> {
        // (start, len, level, wobble_amplitude)
        let total = segments.iter().map(|&(s, l, _, _)| s + l).max().unwrap_or(0) + 50;
        let mut trace = vec![90u8; total];
        for &(start, len, level, amp) in segments {
            for k in 0..len {
                let wobble = ((k as f64 * 0.7).sin() * amp).round() as i16;
                trace[start + k] = (i16::from(level) + wobble).clamp(0, 127) as u8;
            }
        }
        trace
    }

    #[test]
    fn finds_multiple_segments_with_stats() {
        let trace = synth_trace(&[(100, 300, 70, 6.0), (600, 150, 80, 1.0)]);
        let segs = segment_trace(&trace, &SegmenterConfig::default());
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].start, 100);
        assert!((295..=305).contains(&segs[0].len));
        assert!(segs[0].variance > segs[1].variance, "wobbly segment fluctuates more");
        assert!(segs[0].mean < segs[1].mean);
    }

    #[test]
    fn short_blips_are_dropped_and_gaps_merged() {
        let mut trace = vec![90u8; 500];
        // 5-sample blip: dropped.
        for s in trace.iter_mut().skip(50).take(5) {
            *s = 60;
        }
        // Two 60-sample runs with a 40-sample near-idle gap: merged.
        for s in trace.iter_mut().skip(200).take(60) {
            *s = 70;
        }
        for s in trace.iter_mut().skip(300).take(60) {
            *s = 72;
        }
        let segs = segment_trace(&trace, &SegmenterConfig::default());
        assert_eq!(segs.len(), 1, "{segs:?}");
        assert_eq!(segs[0].start, 200);
        assert_eq!(segs[0].end(), 360);
    }

    #[test]
    fn empty_and_idle_traces_yield_nothing() {
        assert!(segment_trace(&[], &SegmenterConfig::default()).is_empty());
        assert!(segment_trace(&[90u8; 1000], &SegmenterConfig::default()).is_empty());
    }

    #[test]
    fn trailing_active_region_is_closed() {
        let mut trace = vec![90u8; 100];
        for s in trace.iter_mut().skip(60) {
            *s = 70;
        }
        let segs = segment_trace(&trace, &SegmenterConfig::default());
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].end(), 100);
    }

    #[test]
    fn library_learns_running_averages() {
        let mut lib = SignatureLibrary::new();
        let a = Segment { start: 0, len: 100, mean: 70.0, variance: 9.0, min: 60 };
        let b = Segment { start: 0, len: 140, mean: 74.0, variance: 5.0, min: 65 };
        lib.learn("conv1", &a);
        lib.learn("conv1", &b);
        let sig = lib.signature("conv1").unwrap();
        assert_eq!(sig.observations, 2);
        assert!((sig.duration - 120.0).abs() < 1e-9);
        assert!((sig.mean - 72.0).abs() < 1e-9);
    }

    #[test]
    fn classification_separates_conv_from_pool() {
        let mut lib = SignatureLibrary::new();
        lib.learn("conv", &Segment { start: 0, len: 300, mean: 70.0, variance: 10.0, min: 58 });
        lib.learn("pool", &Segment { start: 0, len: 100, mean: 82.0, variance: 1.0, min: 79 });
        let probe = Segment { start: 500, len: 280, mean: 71.0, variance: 8.0, min: 60 };
        let (name, dist) = lib.classify(&probe).unwrap();
        assert_eq!(name, "conv");
        assert!(dist < 0.5, "distance {dist}");
        let probe = Segment { start: 0, len: 110, mean: 81.0, variance: 1.5, min: 78 };
        assert_eq!(lib.classify(&probe).unwrap().0, "pool");
    }

    #[test]
    fn empty_library_errors() {
        let lib = SignatureLibrary::new();
        let seg = Segment { start: 0, len: 10, mean: 80.0, variance: 1.0, min: 70 };
        assert!(matches!(lib.classify(&seg), Err(DeepStrikeError::LayerNotFound(_))));
    }
}
