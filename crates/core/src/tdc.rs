//! TDC-based delay sensor (the attack scheduler's eyes).
//!
//! Paper Fig. 1a: a launch clock drives an edge through `DL_LUT` (a short
//! LUT delay line, length 4) into `DL_CARRY` (a 128-element carry chain);
//! a second clock of the same frequency, offset by a calibrated phase θ,
//! samples the carry-chain taps into registers. The captured 128-bit
//! thermometer vector — a run of consecutive `1`s followed by `0`s — says
//! how far the edge travelled in θ; since propagation delay depends on the
//! rail voltage, the encoder's popcount (128 bits → one byte) is a live
//! voltage probe. The paper's configuration: `F_dr = 200 MHz`,
//! `L_LUT = 4`, `L_CARRY = 128`, θ calibrated so the readout is ≈ 90 at
//! nominal voltage.

use fpga_fabric::clock::{ClockSpec, Mmcm};
use fpga_fabric::netlist::Netlist;
use fpga_fabric::primitive::{Carry4, PrimitiveKind};
use pdn::delay::DelayModel;

use crate::error::{DeepStrikeError, Result};

/// TDC structural configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TdcConfig {
    /// Driving/sampling clock frequency in MHz.
    pub f_dr_mhz: f64,
    /// LUT delay-line length.
    pub l_lut: usize,
    /// Carry-chain length (= output register count).
    pub l_carry: usize,
    /// Measurement dither amplitude in carry stages (models launch/sample
    /// clock jitter; 0 disables).
    pub dither_stages: f64,
}

impl Default for TdcConfig {
    fn default() -> Self {
        // The paper's exact configuration.
        TdcConfig { f_dr_mhz: 200.0, l_lut: 4, l_carry: 128, dither_stages: 0.8 }
    }
}

/// One captured sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TdcReading {
    /// Raw thermometer vector, bit `i` = carry tap `i` (LSB first). Only
    /// meaningful for `l_carry <= 128`.
    pub raw: u128,
    /// Encoder output: number of `1`s, saturated to `u8`.
    pub count: u8,
}

/// The delay sensor with its locked clock pair.
///
/// # Example
///
/// ```
/// use deepstrike::tdc::{TdcConfig, TdcSensor};
///
/// let mut tdc = TdcSensor::calibrated(TdcConfig::default(), 100.0, 90)?;
/// let nominal = tdc.sample(1.0);
/// assert!((i32::from(nominal.count) - 90).abs() <= 2);
/// let drooped = tdc.sample(0.92);
/// assert!(drooped.count < nominal.count, "droop slows the edge");
/// # Ok::<(), deepstrike::DeepStrikeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TdcSensor {
    config: TdcConfig,
    launch: ClockSpec,
    sample_clock: ClockSpec,
    delay_model: DelayModel,
    sample_counter: u64,
    samples_taken: u64,
}

impl TdcSensor {
    /// Builds a sensor with an explicit phase offset θ (degrees).
    ///
    /// # Errors
    ///
    /// Returns [`DeepStrikeError::Fabric`] if the clock-management tile
    /// cannot synthesise the requested pair, or
    /// [`DeepStrikeError::InvalidConfig`] for degenerate geometry.
    pub fn with_theta(config: TdcConfig, ref_clock_mhz: f64, theta_deg: f64) -> Result<Self> {
        if config.l_lut == 0 || config.l_carry == 0 || config.l_carry > 128 {
            return Err(DeepStrikeError::InvalidConfig(
                "delay-line lengths must be 1..=128".into(),
            ));
        }
        let mmcm = Mmcm::lock_default(ref_clock_mhz)?;
        let (launch, sample_clock) = mmcm.derive_pair(config.f_dr_mhz, theta_deg)?;
        Ok(TdcSensor {
            config,
            launch,
            sample_clock,
            delay_model: DelayModel::default(),
            sample_counter: 0,
            samples_taken: 0,
        })
    }

    /// Builds a sensor and calibrates θ so the nominal-voltage readout is
    /// `target_count` (the paper calibrates to ≈ 90 consecutive `1`s).
    ///
    /// # Errors
    ///
    /// As [`TdcSensor::with_theta`], plus [`DeepStrikeError::Calibration`]
    /// if no phase setting reaches the target within ±3 counts.
    pub fn calibrated(config: TdcConfig, ref_clock_mhz: f64, target_count: u8) -> Result<Self> {
        if usize::from(target_count) >= config.l_carry {
            return Err(DeepStrikeError::Calibration(format!(
                "target count {target_count} exceeds carry length {}",
                config.l_carry
            )));
        }
        // Analytic seed: θ_ps such that the edge reaches `target_count`
        // stages at nominal voltage, then a local search over the phase
        // grid to absorb MMCM quantisation.
        let ideal_ps =
            Self::lut_delay_ps(&config) * 1.0 + target_count as f64 * Carry4::per_stage_delay_ps();
        let period_ps = 1.0e6 / config.f_dr_mhz;
        let seed_deg = ideal_ps / period_ps * 360.0;
        let mut best: Option<(f64, i32)> = None;
        for step in -40..=40 {
            let theta = seed_deg + f64::from(step) * 0.25;
            if !(0.0..360.0).contains(&theta) {
                continue;
            }
            let mut probe = TdcSensor::with_theta(config, ref_clock_mhz, theta)?;
            probe.config.dither_stages = 0.0;
            let got = i32::from(probe.sample(probe.delay_model.v_nom).count);
            let err = (got - i32::from(target_count)).abs();
            if best.is_none_or(|(_, e)| err < e) {
                best = Some((theta, err));
            }
        }
        match best {
            Some((theta, err)) if err <= 3 => TdcSensor::with_theta(config, ref_clock_mhz, theta),
            _ => Err(DeepStrikeError::Calibration(format!(
                "no phase reaches count {target_count} (best error {:?})",
                best.map(|(_, e)| e)
            ))),
        }
    }

    fn lut_delay_ps(config: &TdcConfig) -> f64 {
        config.l_lut as f64 * PrimitiveKind::Lut6.nominal_delay_ps()
    }

    /// Structural configuration.
    pub fn config(&self) -> &TdcConfig {
        &self.config
    }

    /// Achieved launch clock.
    pub fn launch_clock(&self) -> &ClockSpec {
        &self.launch
    }

    /// Achieved sampling clock (phase-offset by θ).
    pub fn sample_clock(&self) -> &ClockSpec {
        &self.sample_clock
    }

    /// The calibrated phase offset θ in degrees.
    pub fn theta_deg(&self) -> f64 {
        self.sample_clock.phase_deg
    }

    /// Sampling interval in seconds (one capture per sampling-clock cycle).
    pub fn sample_interval_s(&self) -> f64 {
        1.0e-6 / self.sample_clock.freq_mhz
    }

    /// Captures one reading at the given rail voltage.
    ///
    /// The number of carry stages the edge traverses in the phase window is
    /// `(θ_ps − t_lut·k(V)) / (t_stage·k(V))` where `k` is the alpha-power
    /// delay factor; a deterministic triangular dither models clock jitter.
    pub fn sample(&mut self, voltage: f64) -> TdcReading {
        let factor = self.delay_model.factor(voltage);
        let theta_ps = self.sample_clock.phase_ps();
        let lut_ps = Self::lut_delay_ps(&self.config) * factor;
        let stage_ps = Carry4::per_stage_delay_ps() * factor;
        let mut stages = ((theta_ps - lut_ps) / stage_ps).max(0.0);
        if self.config.dither_stages > 0.0 {
            // Deterministic triangular dither from a weyl sequence.
            self.sample_counter = self.sample_counter.wrapping_add(1);
            let u = (self.sample_counter.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) as f64
                / (1u64 << 53) as f64;
            stages += (u * 2.0 - 1.0) * self.config.dither_stages;
        }
        let n = (stages.round().max(0.0) as usize).min(self.config.l_carry);
        let raw = if n == 0 {
            0
        } else if n >= 128 {
            u128::MAX
        } else {
            (1u128 << n) - 1
        };
        // Separate from `sample_counter`: that one seeds the dither Weyl
        // sequence and only advances when dither is on, so observability
        // must not share it.
        let index = self.samples_taken;
        self.samples_taken += 1;
        trace::emit(|| trace::Event::TdcSample { index, count: n.min(255) as u8 });
        TdcReading { raw, count: n.min(255) as u8 }
    }

    /// Emits the sensor as an auditable netlist (delay line + carry chain +
    /// capture registers + encoder LUTs), for DRC and resource accounting.
    pub fn netlist(&self) -> Netlist {
        let mut n = Netlist::new("tdc_sensor");
        let mut prev = None;
        for i in 0..self.config.l_lut {
            let lut = n.add_cell(&format!("dl_lut{i}"), PrimitiveKind::Lut6, None);
            if let Some(p) = prev {
                n.connect(n.output_of(p), n.input_of(lut, 0)).expect("fresh pins");
            }
            prev = Some(lut);
        }
        let carry_blocks = self.config.l_carry.div_ceil(4);
        let mut prev_carry = prev;
        for i in 0..carry_blocks {
            let c = n.add_cell(&format!("dl_carry{i}"), PrimitiveKind::Carry4, None);
            if let Some(p) = prev_carry {
                n.connect(n.output_of(p), n.input_of(c, 0)).expect("fresh pins");
            }
            for tap in 0..4 {
                let ff = n.add_cell(&format!("cap{i}_{tap}"), PrimitiveKind::Fdre, None);
                n.connect(n.output_pin(c, 4 + tap as u8), n.input_of(ff, 0)).expect("fresh pins");
            }
            prev_carry = Some(c);
        }
        // Encoder: a popcount tree, roughly one LUT per 3 taps.
        for i in 0..self.config.l_carry.div_ceil(3) {
            n.add_cell(&format!("enc{i}"), PrimitiveKind::Lut6, None);
        }
        n
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use fpga_fabric::drc;

    fn sensor() -> TdcSensor {
        TdcSensor::calibrated(TdcConfig::default(), 100.0, 90).expect("calibration")
    }

    #[test]
    fn calibration_hits_the_paper_operating_point() {
        let mut tdc = sensor();
        assert!((tdc.launch_clock().freq_mhz - 200.0).abs() < 1.0);
        let r = tdc.sample(1.0);
        assert!((i32::from(r.count) - 90).abs() <= 2, "count {}", r.count);
        // Thermometer structure: bits 0..count set.
        assert_eq!(r.raw.count_ones(), u32::from(r.count));
        assert_eq!(r.raw.trailing_ones(), u32::from(r.count));
    }

    #[test]
    fn readout_decreases_monotonically_with_droop() {
        let mut tdc = sensor();
        tdc.config.dither_stages = 0.0;
        let mut prev = u8::MAX;
        for mv in (700..=1000).rev().step_by(20) {
            let v = mv as f64 / 1000.0;
            let c = tdc.sample(v).count;
            assert!(c <= prev, "count must fall as voltage falls ({v} V: {c} > {prev})");
            prev = c;
        }
        // A big droop must be clearly visible.
        let nominal = tdc.sample(1.0).count;
        let glitched = tdc.sample(0.85).count;
        assert!(nominal - glitched >= 8, "droop barely visible: {nominal} -> {glitched}");
    }

    #[test]
    fn dither_keeps_idle_readout_within_two_counts() {
        let mut tdc = sensor();
        let counts: Vec<u8> = (0..100).map(|_| tdc.sample(1.0).count).collect();
        // 100 samples were just collected, so the extrema exist.
        let min = *counts.iter().min().expect("non-empty sample vector");
        let max = *counts.iter().max().expect("non-empty sample vector");
        assert!(max - min <= 3, "dither spread too wide: {min}..{max}");
        assert!(max > min, "dither must actually dither");
    }

    #[test]
    fn extreme_voltages_saturate_cleanly() {
        let mut tdc = sensor();
        tdc.config.dither_stages = 0.0;
        let dead = tdc.sample(0.2);
        assert_eq!(dead.count, 0, "edge never leaves the LUT line");
        let over = tdc.sample(2.0);
        assert!(over.count >= 90, "overdrive speeds the edge up");
        assert!(usize::from(over.count) <= tdc.config().l_carry);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let bad = TdcConfig { l_carry: 0, ..TdcConfig::default() };
        assert!(TdcSensor::with_theta(bad, 100.0, 90.0).is_err());
        let bad = TdcConfig { l_carry: 256, ..TdcConfig::default() };
        assert!(TdcSensor::with_theta(bad, 100.0, 90.0).is_err());
        assert!(TdcSensor::calibrated(TdcConfig::default(), 100.0, 200).is_err());
    }

    #[test]
    fn sensor_netlist_passes_drc() {
        let tdc = sensor();
        let n = tdc.netlist();
        let report = drc::check(&n);
        assert!(report.is_deployable(), "{report}");
        let usage = n.resource_usage();
        assert_eq!(usage.carry4, 32, "128 taps = 32 CARRY4");
        assert_eq!(usage.flip_flops, 128, "one capture register per tap");
        assert!(usage.luts >= 4 + 43, "delay line + encoder LUTs");
    }

    #[test]
    fn sample_interval_matches_200mhz() {
        let tdc = sensor();
        assert!((tdc.sample_interval_s() - 5e-9).abs() < 1e-10);
    }
}
