//! The power striker: a DRC-legal self-oscillating power waster.
//!
//! Paper Fig. 2: one `LUT6_2` is configured as **two parallel inverters**;
//! each output (`O6`, `O5`) feeds an `LDCE` transparent latch whose output
//! loops back to the corresponding LUT input. While `Start = 1` the latch
//! gates are held open, the loops oscillate at hundreds of MHz, and every
//! cell burns dynamic power — but because the feedback path contains a
//! latch, the combinational-loop DRC (`LUTLP-1`) does not fire, unlike a
//! classic ring oscillator. One LUT thus powers *two* oscillators, giving
//! "higher attack efficiency with less hardware overhead".

use fpga_fabric::netlist::{Netlist, ResourceUsage};
use fpga_fabric::primitive::{Ldce, Lut6_2, PrimitiveKind};
use pdn::delay::DelayModel;

use crate::error::{DeepStrikeError, Result};

/// Electrical model of one striker cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellModel {
    /// Effective switched capacitance per oscillator loop, in farads.
    pub c_eff: f64,
    /// Logic delay around one loop at nominal voltage, in seconds.
    pub loop_delay_s: f64,
}

impl Default for CellModel {
    fn default() -> Self {
        // Loop = LUT (124 ps) + latch (280 ps) + local routing (~100 ps).
        let loop_delay_s = (124.0 + 280.0 + 100.0) * 1e-12;
        // ~280 fF of switched capacitance per loop (LUT output, both latch
        // loads and the local routing they toggle) — ≈ 0.28 mA per loop at
        // 1 V / ≈ 1 GHz, ≈ 0.55 mA per dual-loop cell, ≈ 13 W for a
        // 24,000-cell bank. Calibrated so a 10 ns strike from 24k cells
        // droops the rail past the all-random fault threshold (Fig. 6b's
        // ≈ 100% total rate) with fault onset near 10k cells.
        CellModel { c_eff: 280e-15, loop_delay_s }
    }
}

impl CellModel {
    /// Oscillation frequency of one loop at voltage `v` (the loop slows as
    /// the rail droops, a small self-limiting effect).
    pub fn frequency_hz(&self, v: f64, delay: &DelayModel) -> f64 {
        1.0 / (2.0 * self.loop_delay_s * delay.factor(v))
    }

    /// Average current of one dual-loop cell at voltage `v`, in amps
    /// (`I = 2 · C_eff · f(V) · V`).
    pub fn cell_current_a(&self, v: f64, delay: &DelayModel) -> f64 {
        2.0 * self.c_eff * self.frequency_hz(v, delay) * v.max(0.0)
    }
}

/// A bank of striker cells behind one `Start` signal.
///
/// # Example
///
/// ```
/// use deepstrike::striker::StrikerBank;
///
/// let mut bank = StrikerBank::new(24_000)?;
/// assert_eq!(bank.current_a(1.0), 0.0, "disabled bank draws nothing");
/// bank.set_enabled(true);
/// let i = bank.current_a(1.0);
/// assert!(i > 3.0, "24k cells must draw amps: {i}");
/// # Ok::<(), deepstrike::DeepStrikeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StrikerBank {
    cells: usize,
    model: CellModel,
    delay: DelayModel,
    enabled: bool,
    activations: u64,
}

impl StrikerBank {
    /// Creates a disabled bank of `cells` striker cells.
    ///
    /// # Errors
    ///
    /// Returns [`DeepStrikeError::InvalidConfig`] if `cells == 0`.
    pub fn new(cells: usize) -> Result<Self> {
        if cells == 0 {
            return Err(DeepStrikeError::InvalidConfig("striker bank needs cells".into()));
        }
        Ok(StrikerBank {
            cells,
            model: CellModel::default(),
            delay: DelayModel::default(),
            enabled: false,
            activations: 0,
        })
    }

    /// Number of cells.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Whether `Start` is currently asserted.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Drives the `Start` signal. Rising edges are counted as strikes.
    pub fn set_enabled(&mut self, enabled: bool) {
        if enabled && !self.enabled {
            self.activations += 1;
            trace::emit(|| trace::Event::StrikerEdge { activation: self.activations });
        }
        self.enabled = enabled;
    }

    /// Number of rising `Start` edges so far (strike count).
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Bank current draw at rail voltage `v`, in amps.
    pub fn current_a(&self, v: f64) -> f64 {
        if !self.enabled {
            return 0.0;
        }
        self.cells as f64 * self.model.cell_current_a(v, &self.delay)
    }

    /// Power dissipated at rail voltage `v`, in watts.
    pub fn power_w(&self, v: f64) -> f64 {
        self.current_a(v) * v.max(0.0)
    }

    /// Behavioural simulation of one cell's oscillation: steps both latch
    /// loops `steps` times with the gates open and returns the toggle
    /// count. Demonstrates that the latched loop really oscillates (the
    /// property DRC fails to flag).
    pub fn simulate_cell_toggles(steps: usize) -> usize {
        let lut = Lut6_2::dual_inverter();
        let mut latch_a = Ldce::new();
        let mut latch_b = Ldce::new();
        let mut toggles = 0usize;
        let mut prev = (false, false);
        for _ in 0..steps {
            // O5 inverts I0 (fed by latch_b), O6 inverts I1 (fed by latch_a).
            let (o6, o5) = lut.eval([latch_b.q(), latch_a.q(), false, false, false, true]);
            latch_a.update(o6, true, true, false);
            latch_b.update(o5, true, true, false);
            let now = (latch_a.q(), latch_b.q());
            if now != prev {
                toggles += 1;
            }
            prev = now;
        }
        toggles
    }

    /// Emits the bank as an auditable netlist: `cells` copies of the
    /// Fig. 2 cell plus a shared start buffer.
    pub fn netlist(&self) -> Netlist {
        let mut n = Netlist::new("power_striker");
        let start = n.add_cell("start_buf", PrimitiveKind::Bufg, None);
        for i in 0..self.cells {
            let lut = n.add_dual_inverter(&format!("cell{i}_lut"));
            let l0 = n.add_cell(&format!("cell{i}_ldce0"), PrimitiveKind::Ldce, None);
            let l1 = n.add_cell(&format!("cell{i}_ldce1"), PrimitiveKind::Ldce, None);
            // O6 -> LDCE0.D, O5 -> LDCE1.D; Q feedback to the LUT inputs.
            n.connect(n.output_pin(lut, 0), n.input_of(l0, 0)).expect("fresh pins");
            n.connect(n.output_pin(lut, 1), n.input_of(l1, 0)).expect("fresh pins");
            n.connect(n.output_of(l0), n.input_of(lut, 1)).expect("fresh pins");
            n.connect(n.output_of(l1), n.input_of(lut, 0)).expect("fresh pins");
            // Shared gate-enable from the start buffer.
            n.connect(n.output_of(start), n.input_of(l0, 2)).expect("fresh pins");
            n.connect(n.output_of(start), n.input_of(l1, 2)).expect("fresh pins");
        }
        n
    }

    /// Resource usage of the generated bank.
    pub fn resource_usage(&self) -> ResourceUsage {
        self.netlist().resource_usage()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use fpga_fabric::device::Device;
    use fpga_fabric::drc::{self, Rule};

    #[test]
    fn cell_oscillates_while_gated_open() {
        let toggles = StrikerBank::simulate_cell_toggles(100);
        assert!(toggles >= 90, "latched loops must oscillate: {toggles} toggles in 100 steps");
    }

    #[test]
    fn bank_netlist_passes_drc_but_is_flagged_as_latch_loop() {
        let bank = StrikerBank::new(8).unwrap();
        let report = drc::check(&bank.netlist());
        assert!(report.is_deployable(), "striker must pass DRC: {report}");
        assert!(
            report.of_rule(Rule::LatchInLoop).next().is_some(),
            "advisory should see the oscillation-capable loops"
        );
        assert!(report.of_rule(Rule::CombinationalLoop).next().is_none());
    }

    #[test]
    fn current_scales_linearly_with_cells() {
        let mut small = StrikerBank::new(1000).unwrap();
        let mut large = StrikerBank::new(4000).unwrap();
        small.set_enabled(true);
        large.set_enabled(true);
        let ratio = large.current_a(1.0) / small.current_a(1.0);
        assert!((ratio - 4.0).abs() < 1e-9);
    }

    #[test]
    fn twenty_four_thousand_cells_draw_crash_capable_current() {
        let mut bank = StrikerBank::new(24_000).unwrap();
        bank.set_enabled(true);
        let i = bank.current_a(1.0);
        // A 10 ns pulse of this magnitude droops the rail by ≈ 0.25 V.
        assert!((11.0..15.0).contains(&i), "24k-cell draw {i} A out of calibrated band");
        assert!(bank.power_w(1.0) > 11.0);
    }

    #[test]
    fn droop_self_limits_the_oscillators() {
        let mut bank = StrikerBank::new(1000).unwrap();
        bank.set_enabled(true);
        assert!(bank.current_a(0.85) < bank.current_a(1.0), "slower loops draw less");
    }

    #[test]
    fn activation_counting_on_rising_edges_only() {
        let mut bank = StrikerBank::new(10).unwrap();
        bank.set_enabled(true);
        bank.set_enabled(true);
        bank.set_enabled(false);
        bank.set_enabled(true);
        assert_eq!(bank.activations(), 2);
        assert_eq!(
            StrikerBank::new(0).unwrap_err(),
            DeepStrikeError::InvalidConfig("striker bank needs cells".into())
        );
    }

    #[test]
    fn e2e_bank_consumes_about_fifteen_percent_of_slices() {
        // The paper's end-to-end striker: 15.03% of the 7Z020's 13,300
        // slices. One slice packs 4 LUTs/8 latches = 4 cells, so ≈ 8,000
        // cells. Verify via the netlist resource accounting.
        let bank = StrikerBank::new(8_000).unwrap();
        let usage = bank.resource_usage();
        let device = Device::zynq_7020();
        let pct = device.utilization(&usage).slice_pct;
        assert!((14.0..16.5).contains(&pct), "slice utilisation {pct}%");
    }
}
