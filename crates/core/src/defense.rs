//! Defender-side countermeasures.
//!
//! The paper's related work (§II-B) notes that "the TDC-based delay-sensor
//! is also constructively used as a sensor for defending the FPGA against
//! power side-channel attacks" and cites bitstream-scanning checkers. This
//! module implements both directions of that arms race:
//!
//! * [`GlitchWatchdog`] — a victim-side TDC monitor that flags strike-like
//!   voltage transients at run time (fast, deep droops distinct from the
//!   victim's own gradual activity);
//! * the strict DRC policy in [`fpga_fabric::drc`] (enabled through
//!   [`crate::hypervisor`]'s strict deployment path) rejects the latch-loop
//!   striker at compile time, the FPGADefender-style scanner the paper
//!   lists as the countermeasure that would break its DRC evasion.

use crate::error::{DeepStrikeError, Result};

/// Watchdog configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogConfig {
    /// Alarm when the readout falls at least this much below the rolling
    /// baseline within [`WatchdogConfig::window`] samples.
    pub droop_counts: u8,
    /// Transient window in samples: the victim's own layer activity ramps
    /// over hundreds of samples, a striker glitch within a handful.
    pub window: usize,
    /// Samples of the rolling baseline.
    pub baseline_window: usize,
    /// Consecutive alarm-worthy samples required (debounce).
    pub debounce: u8,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig { droop_counts: 12, window: 4, baseline_window: 64, debounce: 1 }
    }
}

/// A detected glitch event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlitchEvent {
    /// Sample index at which the alarm latched.
    pub sample: u64,
    /// Readout at the alarm sample.
    pub readout: u8,
    /// Rolling baseline the drop was measured against.
    pub baseline: u8,
}

/// Victim-side strike detector over the TDC stream.
///
/// The discriminator is *slew rate*: the victim's own layers depress the
/// rail over many microseconds (hundreds of samples), while a power strike
/// collapses it within tens of nanoseconds (a few samples). The watchdog
/// keeps a lagged rolling baseline and alarms on fast, deep drops below it.
///
/// # Example
///
/// ```
/// use deepstrike::defense::{GlitchWatchdog, WatchdogConfig};
///
/// let mut dog = GlitchWatchdog::new(WatchdogConfig::default())?;
/// for _ in 0..100 { dog.push(88); }      // quiet baseline
/// assert!(dog.events().is_empty());
/// dog.push(70);                          // 18-count collapse in one sample
/// assert_eq!(dog.events().len(), 1);
/// # Ok::<(), deepstrike::DeepStrikeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GlitchWatchdog {
    config: WatchdogConfig,
    history: Vec<u8>,
    samples_seen: u64,
    consecutive: u8,
    events: Vec<GlitchEvent>,
    /// Alarm cooldown so one multi-sample glitch logs one event.
    cooldown: usize,
}

impl GlitchWatchdog {
    /// Creates an idle watchdog.
    ///
    /// # Errors
    ///
    /// Returns [`DeepStrikeError::InvalidConfig`] for degenerate windows.
    pub fn new(config: WatchdogConfig) -> Result<Self> {
        if config.window == 0 || config.baseline_window <= config.window {
            return Err(DeepStrikeError::InvalidConfig(
                "baseline window must exceed the transient window".into(),
            ));
        }
        if config.debounce == 0 {
            return Err(DeepStrikeError::InvalidConfig("debounce must be at least 1".into()));
        }
        Ok(GlitchWatchdog {
            config,
            history: Vec::new(),
            samples_seen: 0,
            consecutive: 0,
            events: Vec::new(),
            cooldown: 0,
        })
    }

    /// Detected events so far.
    pub fn events(&self) -> &[GlitchEvent] {
        &self.events
    }

    /// Rolling baseline: the median of the lagged window (robust to the
    /// glitch samples themselves).
    fn baseline(&self) -> Option<u8> {
        let n = self.history.len();
        if n < self.config.baseline_window {
            return None;
        }
        // Lag the window by the transient width so an in-progress glitch
        // does not drag its own baseline down.
        let end = n - self.config.window;
        let start = end.saturating_sub(self.config.baseline_window - self.config.window);
        let mut window: Vec<u8> = self.history[start..end].to_vec();
        window.sort_unstable();
        Some(window[window.len() / 2])
    }

    /// Feeds one TDC readout; returns `true` if this sample latched a new
    /// alarm event.
    pub fn push(&mut self, readout: u8) -> bool {
        self.samples_seen += 1;
        let baseline = self.baseline();
        self.history.push(readout);
        if self.history.len() > 4 * self.config.baseline_window {
            self.history.drain(..2 * self.config.baseline_window);
        }
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return false;
        }
        let Some(baseline) = baseline else {
            return false;
        };
        let dropped = baseline.saturating_sub(readout) >= self.config.droop_counts;
        if dropped {
            self.consecutive += 1;
            if self.consecutive >= self.config.debounce {
                self.events.push(GlitchEvent { sample: self.samples_seen - 1, readout, baseline });
                self.consecutive = 0;
                self.cooldown = self.config.window * 2;
                return true;
            }
        } else {
            self.consecutive = 0;
        }
        false
    }

    /// Runs the watchdog over a whole recorded trace and returns the
    /// detected events.
    pub fn scan(config: WatchdogConfig, trace: &[u8]) -> Result<Vec<GlitchEvent>> {
        let mut dog = GlitchWatchdog::new(config)?;
        for &s in trace {
            dog.push(s);
        }
        Ok(dog.events)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn quiet_then_glitch(glitch_at: usize, depth: u8) -> Vec<u8> {
        let mut t = vec![88u8; 400];
        // A slow, victim-like ramp (2 counts per 40 samples).
        for (i, s) in t.iter_mut().enumerate().skip(150).take(200) {
            *s = 88 - ((i - 150) / 40).min(5) as u8;
        }
        for s in t.iter_mut().skip(glitch_at).take(3) {
            *s = s.saturating_sub(depth);
        }
        t
    }

    #[test]
    fn detects_a_strike_glitch() {
        let events =
            GlitchWatchdog::scan(WatchdogConfig::default(), &quiet_then_glitch(300, 18)).unwrap();
        assert_eq!(events.len(), 1, "{events:?}");
        assert!((298..=303).contains(&events[0].sample));
        assert!(events[0].baseline > events[0].readout);
    }

    #[test]
    fn ignores_slow_victim_activity() {
        // The ramp alone (no glitch) must not alarm: it moves 2 counts per
        // 40 samples, far under the slew threshold.
        let mut t = vec![88u8; 400];
        for (i, s) in t.iter_mut().enumerate().skip(150).take(200) {
            *s = 88 - ((i - 150) / 40).min(5) as u8;
        }
        let events = GlitchWatchdog::scan(WatchdogConfig::default(), &t).unwrap();
        assert!(events.is_empty(), "{events:?}");
    }

    #[test]
    fn shallow_glitches_below_threshold_pass() {
        let events =
            GlitchWatchdog::scan(WatchdogConfig::default(), &quiet_then_glitch(300, 8)).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn repeated_strikes_each_log_once() {
        let mut t = vec![88u8; 600];
        for start in [200usize, 300, 400] {
            for s in t.iter_mut().skip(start).take(2) {
                *s = 70;
            }
        }
        let events = GlitchWatchdog::scan(WatchdogConfig::default(), &t).unwrap();
        assert_eq!(events.len(), 3, "{events:?}");
    }

    #[test]
    fn invalid_configs_rejected() {
        let bad = WatchdogConfig { window: 0, ..WatchdogConfig::default() };
        assert!(GlitchWatchdog::new(bad).is_err());
        let bad = WatchdogConfig { baseline_window: 4, window: 4, ..WatchdogConfig::default() };
        assert!(GlitchWatchdog::new(bad).is_err());
        let bad = WatchdogConfig { debounce: 0, ..WatchdogConfig::default() };
        assert!(GlitchWatchdog::new(bad).is_err());
    }

    #[test]
    fn needs_a_baseline_before_alarming() {
        let mut dog = GlitchWatchdog::new(WatchdogConfig::default()).unwrap();
        // Immediate glitch in the warm-up phase: no baseline yet, no alarm.
        for _ in 0..10 {
            assert!(!dog.push(60));
        }
        assert!(dog.events().is_empty());
    }
}
