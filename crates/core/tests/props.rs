//! Property tests for the two attack-pipeline invariants the conformance
//! suite leans on (ISSUE satellites):
//!
//! 1. **Detector latch discipline** — under arbitrary idle dither the
//!    start detector never latches, and a DNN start latches it exactly
//!    once (one `push` returning `true`, one `DetectorLatch` trace event),
//!    repeatably across `reset`.
//! 2. **Striker DRC invariant** — the latch-based striker passes the
//!    provider's standard LUTLP-1 screening and deploys under randomized
//!    floorplan placements, while a ring-oscillator power-waster is
//!    rejected with a combinational-loop error no matter where it is
//!    placed.

use accel::schedule::AccelConfig;
use deepstrike::detector::{DetectorConfig, DetectorState, StartDetector};
use deepstrike::hypervisor::{attacker_netlist, victim_netlist};
use deepstrike::striker::StrikerBank;
use deepstrike::tdc::{TdcConfig, TdcSensor};
use fpga_fabric::bitstream::{combine_with, TenantDesign};
use fpga_fabric::device::Device;
use fpga_fabric::drc::{self, DrcPolicy, Rule, Severity};
use fpga_fabric::floorplan::Region;
use fpga_fabric::netlist::Netlist;
use fpga_fabric::FabricError;
use proptest::prelude::*;

/// Thermometer-coded raw TDC readout of `count` ones (the detector taps
/// [12, 38, 64, 85, 110]; counts 86..=110 are idle HW = 4, counts
/// 40..=84 are droop HW <= 3).
fn thermometer(count: usize) -> u128 {
    if count >= 128 {
        u128::MAX
    } else {
        (1u128 << count) - 1
    }
}

fn detector() -> StartDetector {
    StartDetector::new(DetectorConfig::default()).expect("default config is valid")
}

/// Replays `counts` through a fresh push loop and returns how many pushes
/// reported a latch, alongside the recorded trace.
fn replay(det: &mut StartDetector, counts: &[usize]) -> (usize, trace::TraceLog) {
    trace::capture(4096, || counts.iter().filter(|&&c| det.push(thermometer(c))).count())
}

proptest! {
    /// Idle dither — any sequence of idle-band readouts — must never latch
    /// the detector, no matter how long or how wobbly.
    #[test]
    fn detector_never_latches_on_idle_dither(
        counts in prop::collection::vec(86usize..=110, 1..400),
    ) {
        let mut det = detector();
        let (latches, log) = replay(&mut det, &counts);
        prop_assert_eq!(latches, 0, "idle dither latched the detector");
        prop_assert!(!det.is_triggered());
        prop_assert!(det.state() != DetectorState::Triggered);
        prop_assert_eq!(
            log.count(|e| matches!(e, trace::Event::DetectorLatch { .. })),
            0,
            "idle dither emitted a latch event"
        );
        // Idle counts keep the tapped Hamming weight pinned at 4.
        for e in &log.events {
            if let trace::Event::DetectorHw { hw, .. } = e {
                prop_assert_eq!(*hw, 4, "idle dither left the HW=4 band");
            }
        }
    }

    /// A DNN start — a sustained droop after arbitrary idle dither —
    /// latches exactly once: one `push` returns `true`, one
    /// `DetectorLatch` event lands at the debounce point, and nothing in
    /// the tail re-reports. After `reset` the same stimulus latches again.
    #[test]
    fn detector_latches_exactly_once_per_dnn_start(
        idle in prop::collection::vec(86usize..=110, 0..100),
        droop in prop::collection::vec(40usize..=84, 3..60),
        tail in prop::collection::vec(40usize..=110, 0..100),
    ) {
        let counts: Vec<usize> =
            idle.iter().chain(&droop).chain(&tail).copied().collect();
        let debounce = DetectorConfig::default().debounce as u64;
        let expected_at = idle.len() as u64 + debounce - 1;

        let mut det = detector();
        for run in 0..2 {
            let (latches, log) = replay(&mut det, &counts);
            prop_assert_eq!(latches, 1, "run {}: latch count off", run);
            prop_assert!(det.is_triggered());
            prop_assert_eq!(det.triggered_at(), Some(expected_at));
            let latch_samples: Vec<u64> = log
                .events
                .iter()
                .filter_map(|e| match e {
                    trace::Event::DetectorLatch { sample } => Some(*sample),
                    _ => None,
                })
                .collect();
            prop_assert_eq!(latch_samples, vec![expected_at]);
            det.reset();
            prop_assert!(!det.is_triggered(), "reset re-arms");
        }
    }
}

/// Randomized two-tenant floorplan on the PYNQ-Z1 die: victim on the
/// left, attacker on the right, widths jittered while keeping each region
/// over the BRAM/DSP columns its netlist needs (victim wants 32 weight
/// BRAMs, i.e. the columns at x = 30 and x = 61).
fn regions(device: &Device, victim_x1: u32, attacker_x0: u32) -> (Region, Region) {
    let rows = device.grid().rows();
    (
        Region::new(0, 0, victim_x1, rows - 1),
        Region::new(attacker_x0, 0, device.grid().cols() - 1, rows - 1),
    )
}

/// A classic ring-oscillator power-waster: `pairs` cross-coupled LUT
/// inverter pairs — every pair is a combinational loop (LUTLP-1).
fn ring_oscillator(pairs: usize) -> Netlist {
    let mut n = Netlist::new("ro_bank");
    for i in 0..pairs {
        let a = n.add_lut1_inverter(&format!("ro{i}_a"));
        let b = n.add_lut1_inverter(&format!("ro{i}_b"));
        n.connect(n.output_of(a), n.input_of(b, 0)).expect("forward edge");
        n.connect(n.output_of(b), n.input_of(a, 0)).expect("feedback edge");
    }
    n
}

fn tdc() -> TdcSensor {
    TdcSensor::calibrated(TdcConfig::default(), 100.0, 90).expect("calibration converges")
}

proptest! {
    /// The latch-based striker is DRC-clean under the provider's standard
    /// policy for any bank size and any placement: no LUTLP-1 hit, only
    /// the advisory latch-loop note, and the two-tenant image deploys.
    #[test]
    fn latch_striker_passes_standard_drc_under_any_placement(
        cells in 64usize..=2048,
        victim_x1 in 61u32..=70,
        attacker_x0 in 80u32..=120,
    ) {
        let striker = StrikerBank::new(cells).expect("bank builds");
        let netlist = attacker_netlist(&striker, &tdc());

        let report = drc::check(&netlist);
        prop_assert!(report.is_deployable(), "standard DRC must pass");
        prop_assert!(
            report.of_rule(Rule::CombinationalLoop).next().is_none(),
            "latch striker must not trip LUTLP-1"
        );
        let latch_note = report.of_rule(Rule::LatchInLoop).next();
        prop_assert!(latch_note.is_some(), "latch loops are visible to audit");
        prop_assert_eq!(latch_note.expect("checked").severity, Severity::Info);

        let device = Device::zynq_7020();
        let (victim_region, attacker_region) = regions(&device, victim_x1, attacker_x0);
        prop_assert!(!victim_region.overlaps(&attacker_region));
        let tenants = vec![
            TenantDesign::new(
                "victim",
                victim_netlist(&AccelConfig::default(), 32),
                victim_region,
            ),
            TenantDesign::new("attacker", netlist, attacker_region),
        ];
        let image = combine_with(&device, tenants.clone(), DrcPolicy::standard());
        prop_assert!(image.is_ok(), "standard deploy failed: {:?}", image.err());

        // The strict latch-loop scan (the paper's §III-C countermeasure)
        // rejects the very same placement.
        match combine_with(&device, tenants, DrcPolicy::strict()) {
            Err(FabricError::DrcRejected { errors }) => prop_assert!(errors > 0),
            other => prop_assert!(false, "strict policy accepted striker: {other:?}"),
        }
    }

    /// The ring-oscillator variant is rejected by the standard policy at
    /// every size and placement — LUTLP-1 is a hard error, so placement
    /// cannot rescue it.
    #[test]
    fn ring_oscillator_striker_is_rejected_under_any_placement(
        pairs in 1usize..6,
        victim_x1 in 61u32..=70,
        attacker_x0 in 80u32..=120,
    ) {
        let netlist = ring_oscillator(pairs);
        let report = drc::check(&netlist);
        prop_assert!(!report.is_deployable());
        let hit = report.of_rule(Rule::CombinationalLoop).next();
        prop_assert!(hit.is_some(), "LUTLP-1 must fire on a ring oscillator");
        prop_assert_eq!(hit.expect("checked").severity, Severity::Error);

        let device = Device::zynq_7020();
        let (victim_region, attacker_region) = regions(&device, victim_x1, attacker_x0);
        let tenants = vec![
            TenantDesign::new(
                "victim",
                victim_netlist(&AccelConfig::default(), 32),
                victim_region,
            ),
            TenantDesign::new("attacker", netlist, attacker_region),
        ];
        match combine_with(&device, tenants, DrcPolicy::standard()) {
            Err(FabricError::DrcRejected { errors }) => {
                prop_assert!(errors >= pairs, "each pair is its own loop");
            }
            other => prop_assert!(false, "ring oscillator deployed: {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot engine (DESIGN.md §11): forking the reference timeline and
// running only the suffix must equal naive full replay bit-for-bit, for
// arbitrary strike timing/intensity — and a panicking suffix must never
// corrupt the shared snapshot.

use deepstrike::cosim::{CloudFpga, CosimConfig};
use deepstrike::signal_ram::AttackScheme;
use deepstrike::snapshot::SnapshotEngine;
use dnn::fixed::QFormat;
use dnn::layers::{Dense, Tanh};
use dnn::network::Sequential;
use dnn::quant::QuantizedNetwork;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// One settled tiny-dense platform plus its captured fork ladder, shared
/// across all generated cases (capture is the expensive part; the engine
/// is `&self` and internally synchronised).
fn snapshot_rig() -> &'static (CloudFpga, SnapshotEngine) {
    static RIG: OnceLock<(CloudFpga, SnapshotEngine)> = OnceLock::new();
    RIG.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(2021);
        let mut net = Sequential::new("props_dense");
        net.push(Box::new(Dense::new("fc1", 36, 16, &mut rng)));
        net.push(Box::new(Tanh::new("fc1_tanh")));
        net.push(Box::new(Dense::new("fc2", 16, 10, &mut rng)));
        let q = QuantizedNetwork::from_sequential(&net, &[1, 6, 6], QFormat::paper())
            .expect("victim quantises");
        let accel =
            AccelConfig { weight_bandwidth: 16, stall_cycles: 150, ..AccelConfig::default() };
        let mut fpga = CloudFpga::new(
            &q,
            &accel,
            16_000,
            CosimConfig { pdn_substeps: 4, ..CosimConfig::default() },
        )
        .expect("platform assembles");
        fpga.settle(30);
        let engine = SnapshotEngine::capture(&fpga).expect("fork ladder captures");
        (fpga, engine)
    })
}

fn naive_guided(
    base: &CloudFpga,
    scheme: &AttackScheme,
) -> Option<deepstrike::cosim::InferenceRun> {
    let mut fpga = base.clone();
    fpga.scheduler_mut().load_scheme(scheme).ok()?;
    fpga.scheduler_mut().arm(true).ok()?;
    Some(fpga.run_inference())
}

proptest! {
    /// Any scheme the naive path accepts must produce a bit-identical run
    /// through the engine; any scheme the naive path rejects must be
    /// rejected by the engine too.
    #[test]
    fn snapshot_fork_then_suffix_equals_full_replay(
        delay in 0u32..600,
        strikes in 0u32..40,
        strike_cycles in 0u32..4,
        gap in 0u32..8,
    ) {
        let (base, engine) = snapshot_rig();
        let scheme = AttackScheme {
            delay_cycles: delay,
            strikes,
            strike_cycles,
            gap_cycles: gap,
        };
        match (naive_guided(base, &scheme), engine.run_guided(&scheme)) {
            (Some(naive), Ok(forked)) => {
                prop_assert_eq!(naive, forked, "scheme {:?} diverged", scheme);
            }
            (None, Err(_)) => {} // both paths reject, same semantics
            (naive, forked) => prop_assert!(
                false,
                "accept/reject mismatch for {:?}: naive {:?}, engine {:?}",
                scheme,
                naive.is_some(),
                forked.is_ok()
            ),
        }
    }
}

proptest! {
    /// A suffix run that panics at an arbitrary point must leave the
    /// shared snapshot intact: the same scheme still evaluates, still
    /// bit-identical to naive replay.
    #[test]
    fn suffix_panic_leaves_snapshot_reusable(
        delay in 0u32..300,
        strikes in 1u32..30,
        panic_after in 1u64..200,
    ) {
        let (base, engine) = snapshot_rig();
        let scheme = AttackScheme {
            delay_cycles: delay,
            strikes,
            strike_cycles: 1,
            gap_cycles: 2,
        };
        let trigger = engine.trigger_cycle().expect("reference pass triggers");
        let before = engine.run_guided(&scheme).expect("scheme runs");
        // The injected fault fires only if the suffix reaches that cycle
        // before rejoining; either way the snapshot must stay usable.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = engine.run_guided_with_fault(&scheme, trigger + panic_after);
        }));
        let after = engine.run_guided(&scheme).expect("engine survives the panic");
        prop_assert_eq!(&before, &after, "panicking suffix corrupted the snapshot");
        let naive = naive_guided(base, &scheme).expect("naive accepts");
        prop_assert_eq!(naive, after);
    }
}
