//! Structured pipeline-event tracing for the attack stack.
//!
//! Every stage of the DeepStrike chain — TDC sensing, start detection,
//! signal-RAM playback, striker activation, PDN glitching, DSP fault
//! materialisation — can emit typed [`Event`]s through a thread-local
//! recorder. The layer is built around three requirements (DESIGN.md §8):
//!
//! 1. **Zero-cost when disabled.** [`emit`] costs one relaxed atomic load
//!    when no [`Session`] exists anywhere in the process. Emission sites
//!    can therefore live on simulation hot paths.
//! 2. **Bounded memory.** Each session records into a ring buffer of a
//!    caller-chosen capacity; on overflow the *oldest* events are dropped
//!    and counted, never silently lost.
//! 3. **Deterministic under parallelism.** `crates/par` captures each
//!    work item's events in a private buffer and re-appends them to the
//!    caller's session in index order, so a trace is bit-identical at any
//!    `DEEPSTRIKE_THREADS` (see [`capture`] / [`append`]).
//!
//! Recording is scoped: [`Session::start`] installs a buffer on the
//! current thread, [`Session::finish`] removes it and returns the
//! [`TraceLog`]. Sessions do not nest (the inner `start` would shadow the
//! outer buffer), and a session only observes events emitted on its own
//! thread — cross-thread stitching is the caller's job, which `par` does
//! by index order.
//!
//! [`TraceLog::to_jsonl`] renders one JSON object per line; the golden
//! conformance suite (`tests/golden_trace.rs`) diffs those lines
//! verbatim, so the rendering is part of the stability contract: field
//! order is fixed and no floats are emitted (voltages are integer
//! microvolts).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Pipeline stages an event can originate from, in attack-chain order.
///
/// Stored on every [`Event`] via [`Event::stage`] so consumers can filter
/// a mixed trace without matching on each variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Time-to-digital converter readout (`core::tdc`).
    Tdc,
    /// DNN-start detector (`core::detector`).
    Detector,
    /// Signal-RAM scheme storage and playback (`core::signal_ram`).
    SignalRam,
    /// Power-waster bank (`core::striker`).
    Striker,
    /// Attack scheduler / planner (`core::scheduler`, `core::attack`).
    Scheduler,
    /// Power-delivery network response (`pdn`).
    Pdn,
    /// Fault materialisation in the DSP datapath (`accel`).
    Accel,
    /// Victim network inference (`dnn`).
    Dnn,
    /// Remote guidance over the serial link (`uart` transport,
    /// `core::remote` campaign driver).
    Remote,
    /// The crash-safety supervisor layer (`par` quarantine, durable
    /// checkpoints, phase watchdog).
    Supervisor,
}

impl Stage {
    /// Stable lower-case name used in the JSONL rendering.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Tdc => "tdc",
            Stage::Detector => "detector",
            Stage::SignalRam => "signal_ram",
            Stage::Striker => "striker",
            Stage::Scheduler => "scheduler",
            Stage::Pdn => "pdn",
            Stage::Accel => "accel",
            Stage::Dnn => "dnn",
            Stage::Remote => "remote",
            Stage::Supervisor => "supervisor",
        }
    }
}

/// Phases of the remotely guided campaign (`core::remote`), in order.
///
/// Mirrors `core::remote::Phase` without depending on `core` (this crate
/// sits below every other workspace crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RemotePhase {
    /// Streaming TDC traces out and learning layer signatures.
    Profile,
    /// Compiling the attack scheme from the profile.
    Plan,
    /// Chunked scheme upload into the signal RAM.
    Upload,
    /// Arming the attack scheduler.
    Arm,
    /// The armed victim inference under strikes.
    Strike,
    /// Scoring the attack outcome.
    Evaluate,
}

impl RemotePhase {
    /// Stable lower-case name used in the JSONL rendering.
    pub fn name(self) -> &'static str {
        match self {
            RemotePhase::Profile => "profile",
            RemotePhase::Plan => "plan",
            RemotePhase::Upload => "upload",
            RemotePhase::Arm => "arm",
            RemotePhase::Strike => "strike",
            RemotePhase::Evaluate => "evaluate",
        }
    }
}

/// How the campaign's strike plan is being guided — the degradation
/// ladder, best first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GuidanceLevel {
    /// Fresh TDC traces streamed over the link this campaign.
    Fresh,
    /// The last checkpointed profile (link too lossy for fresh traces).
    Checkpoint,
    /// No profile at all: blind spray over the estimated inference span.
    Blind,
}

impl GuidanceLevel {
    /// Stable lower-case name used in the JSONL rendering.
    pub fn name(self) -> &'static str {
        match self {
            GuidanceLevel::Fresh => "fresh",
            GuidanceLevel::Checkpoint => "checkpoint",
            GuidanceLevel::Blind => "blind",
        }
    }
}

/// Kind of MAC fault materialised in the DSP model.
///
/// Mirrors `accel::fault::MacFault` without depending on `accel` (this
/// crate sits below every other workspace crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Stale-product duplication (the paper's dominant DSP failure mode).
    Duplicate,
    /// Random accumulator corruption.
    Random,
}

impl FaultKind {
    /// Stable lower-case name used in the JSONL rendering.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Duplicate => "duplicate",
            FaultKind::Random => "random",
        }
    }
}

/// A typed pipeline event. One line in the JSONL rendering.
///
/// Events carry integer payloads only — analog quantities are quantised
/// at the emission site (e.g. volts → microvolts) so golden traces never
/// depend on float formatting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// One TDC readout: the `index`-th sample of this sensor's lifetime
    /// and its popcount (`count` of hot carry-chain taps).
    TdcSample { index: u64, count: u8 },
    /// Detector thermometer Hamming weight changed (emitted on
    /// transitions only, not per sample). `sample` is the detector's
    /// sample ordinal at the transition.
    DetectorHw { sample: u64, hw: u8 },
    /// Detector latched a DNN start at sample ordinal `sample`.
    DetectorLatch { sample: u64 },
    /// An attack scheme was serialised into the signal RAM: total `bits`
    /// of playback, `strikes` bursts, and the number of distinct
    /// `phases` (delay/strike/gap segments).
    SchemeLoaded { bits: u64, strikes: u32, phases: u32 },
    /// Signal-RAM playback started with `len_bits` bits queued.
    PlaybackStart { len_bits: u64 },
    /// Signal-RAM playback drained after `bits_played` bits.
    PlaybackDone { bits_played: u64 },
    /// The attack scheduler armed (`armed = true`) or disarmed.
    SchedulerArmed { armed: bool },
    /// The striker bank saw a rising enable edge; `activation` is the
    /// bank's cumulative activation count after the edge.
    StrikerEdge { activation: u64 },
    /// The co-simulation issued a strike at victim-clock `cycle`.
    StrikeIssued { cycle: u64 },
    /// A supply-voltage excursion below the safe threshold: sample window
    /// `[start, start + len)` with the nadir in integer microvolts.
    PdnGlitch { start: u64, len: u64, nadir_uv: u64 },
    /// A fault materialised at MAC `op` of pipeline `stage` in the DSP
    /// model.
    MacFault { stage: u32, op: u64, kind: FaultKind },
    /// The victim network classified an input as `predicted`.
    Inference { predicted: u32 },
    /// The planner produced a scheme: `target` delay in cycles plus the
    /// burst geometry.
    AttackPlanned { delay_cycles: u64, strikes: u32, strike_cycles: u32, gap_cycles: u32 },
    /// One evaluation image scored: clean/attacked correctness plus the
    /// fault tally for the attacked pass.
    ImageScored { index: u64, clean_ok: bool, attacked_ok: bool, duplicate: u64, random: u64 },
    /// The reliable transport retransmitted request `seq` (`attempt` is
    /// 1-based: the first *re*transmission is attempt 1).
    LinkRetry { seq: u64, attempt: u32 },
    /// The reliable transport gave up on request `seq` after `attempts`
    /// total transmissions.
    LinkGaveUp { seq: u64, attempts: u32 },
    /// A chunked upload acknowledged bytes up to `offset` of `total`.
    UploadProgress { offset: u64, total: u64 },
    /// The remote campaign checkpointed after completing `phase`.
    CheckpointSaved { phase: RemotePhase },
    /// The remote campaign resumed from a checkpoint at `phase`.
    CampaignResumed { phase: RemotePhase },
    /// The campaign stepped down the guidance ladder to `level`.
    GuidanceDegraded { level: GuidanceLevel },
    /// A parallel-sweep work item panicked and was quarantined instead of
    /// poisoning the join. Emitted by the merge step in index order, so
    /// the trail is identical at any `DEEPSTRIKE_THREADS`.
    WorkerQuarantined { index: u64 },
    /// A durable checkpoint generation was written and fsynced to disk.
    CheckpointFsync { generation: u64, bytes: u64 },
    /// A campaign phase blew its simulated-cycle or wall-clock budget and
    /// the watchdog forced a resumable interrupt (degrade, don't die).
    PhaseDeadlineExceeded { phase: RemotePhase },
    /// The PDN solver detected a diverging integration slice and retried
    /// it with a halved timestep (`halvings` is the cumulative count for
    /// the slice, 1-based).
    SolverStepHalved { halvings: u32 },
}

impl Event {
    /// The pipeline stage this event belongs to.
    pub fn stage(&self) -> Stage {
        match self {
            Event::TdcSample { .. } => Stage::Tdc,
            Event::DetectorHw { .. } | Event::DetectorLatch { .. } => Stage::Detector,
            Event::SchemeLoaded { .. }
            | Event::PlaybackStart { .. }
            | Event::PlaybackDone { .. } => Stage::SignalRam,
            Event::SchedulerArmed { .. } => Stage::Scheduler,
            Event::StrikerEdge { .. } => Stage::Striker,
            Event::StrikeIssued { .. } => Stage::Scheduler,
            Event::PdnGlitch { .. } => Stage::Pdn,
            Event::MacFault { .. } => Stage::Accel,
            Event::Inference { .. } => Stage::Dnn,
            Event::AttackPlanned { .. } => Stage::Scheduler,
            Event::ImageScored { .. } => Stage::Scheduler,
            Event::LinkRetry { .. }
            | Event::LinkGaveUp { .. }
            | Event::UploadProgress { .. }
            | Event::CheckpointSaved { .. }
            | Event::CampaignResumed { .. }
            | Event::GuidanceDegraded { .. } => Stage::Remote,
            Event::WorkerQuarantined { .. }
            | Event::CheckpointFsync { .. }
            | Event::PhaseDeadlineExceeded { .. } => Stage::Supervisor,
            Event::SolverStepHalved { .. } => Stage::Pdn,
        }
    }

    /// Renders the event as one stable JSON object (no trailing newline).
    ///
    /// Field order is part of the golden-trace contract: `ev` first, then
    /// `stage`, then payload fields in declaration order.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(64);
        let _ = match self {
            Event::TdcSample { index, count } => write!(
                s,
                r#"{{"ev":"tdc_sample","stage":"{}","index":{index},"count":{count}}}"#,
                self.stage().name()
            ),
            Event::DetectorHw { sample, hw } => write!(
                s,
                r#"{{"ev":"detector_hw","stage":"{}","sample":{sample},"hw":{hw}}}"#,
                self.stage().name()
            ),
            Event::DetectorLatch { sample } => write!(
                s,
                r#"{{"ev":"detector_latch","stage":"{}","sample":{sample}}}"#,
                self.stage().name()
            ),
            Event::SchemeLoaded { bits, strikes, phases } => write!(
                s,
                r#"{{"ev":"scheme_loaded","stage":"{}","bits":{bits},"strikes":{strikes},"phases":{phases}}}"#,
                self.stage().name()
            ),
            Event::PlaybackStart { len_bits } => write!(
                s,
                r#"{{"ev":"playback_start","stage":"{}","len_bits":{len_bits}}}"#,
                self.stage().name()
            ),
            Event::PlaybackDone { bits_played } => write!(
                s,
                r#"{{"ev":"playback_done","stage":"{}","bits_played":{bits_played}}}"#,
                self.stage().name()
            ),
            Event::SchedulerArmed { armed } => write!(
                s,
                r#"{{"ev":"scheduler_armed","stage":"{}","armed":{armed}}}"#,
                self.stage().name()
            ),
            Event::StrikerEdge { activation } => write!(
                s,
                r#"{{"ev":"striker_edge","stage":"{}","activation":{activation}}}"#,
                self.stage().name()
            ),
            Event::StrikeIssued { cycle } => write!(
                s,
                r#"{{"ev":"strike_issued","stage":"{}","cycle":{cycle}}}"#,
                self.stage().name()
            ),
            Event::PdnGlitch { start, len, nadir_uv } => write!(
                s,
                r#"{{"ev":"pdn_glitch","stage":"{}","start":{start},"len":{len},"nadir_uv":{nadir_uv}}}"#,
                self.stage().name()
            ),
            Event::MacFault { stage, op, kind } => write!(
                s,
                r#"{{"ev":"mac_fault","stage":"{}","pipeline_stage":{stage},"op":{op},"kind":"{}"}}"#,
                self.stage().name(),
                kind.name()
            ),
            Event::Inference { predicted } => write!(
                s,
                r#"{{"ev":"inference","stage":"{}","predicted":{predicted}}}"#,
                self.stage().name()
            ),
            Event::AttackPlanned { delay_cycles, strikes, strike_cycles, gap_cycles } => write!(
                s,
                r#"{{"ev":"attack_planned","stage":"{}","delay_cycles":{delay_cycles},"strikes":{strikes},"strike_cycles":{strike_cycles},"gap_cycles":{gap_cycles}}}"#,
                self.stage().name()
            ),
            Event::ImageScored { index, clean_ok, attacked_ok, duplicate, random } => write!(
                s,
                r#"{{"ev":"image_scored","stage":"{}","index":{index},"clean_ok":{clean_ok},"attacked_ok":{attacked_ok},"duplicate":{duplicate},"random":{random}}}"#,
                self.stage().name()
            ),
            Event::LinkRetry { seq, attempt } => write!(
                s,
                r#"{{"ev":"link_retry","stage":"{}","seq":{seq},"attempt":{attempt}}}"#,
                self.stage().name()
            ),
            Event::LinkGaveUp { seq, attempts } => write!(
                s,
                r#"{{"ev":"link_gave_up","stage":"{}","seq":{seq},"attempts":{attempts}}}"#,
                self.stage().name()
            ),
            Event::UploadProgress { offset, total } => write!(
                s,
                r#"{{"ev":"upload_progress","stage":"{}","offset":{offset},"total":{total}}}"#,
                self.stage().name()
            ),
            Event::CheckpointSaved { phase } => write!(
                s,
                r#"{{"ev":"checkpoint_saved","stage":"{}","phase":"{}"}}"#,
                self.stage().name(),
                phase.name()
            ),
            Event::CampaignResumed { phase } => write!(
                s,
                r#"{{"ev":"campaign_resumed","stage":"{}","phase":"{}"}}"#,
                self.stage().name(),
                phase.name()
            ),
            Event::GuidanceDegraded { level } => write!(
                s,
                r#"{{"ev":"guidance_degraded","stage":"{}","level":"{}"}}"#,
                self.stage().name(),
                level.name()
            ),
            Event::WorkerQuarantined { index } => write!(
                s,
                r#"{{"ev":"worker_quarantined","stage":"{}","index":{index}}}"#,
                self.stage().name()
            ),
            Event::CheckpointFsync { generation, bytes } => write!(
                s,
                r#"{{"ev":"checkpoint_fsync","stage":"{}","generation":{generation},"bytes":{bytes}}}"#,
                self.stage().name()
            ),
            Event::PhaseDeadlineExceeded { phase } => write!(
                s,
                r#"{{"ev":"phase_deadline_exceeded","stage":"{}","phase":"{}"}}"#,
                self.stage().name(),
                phase.name()
            ),
            Event::SolverStepHalved { halvings } => write!(
                s,
                r#"{{"ev":"solver_step_halved","stage":"{}","halvings":{halvings}}}"#,
                self.stage().name()
            ),
        };
        s
    }
}

/// How many sessions are live process-wide. The disabled fast path in
/// [`emit`] is a single relaxed load of this counter.
static ACTIVE_SESSIONS: AtomicUsize = AtomicUsize::new(0);

struct Buffer {
    events: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl Buffer {
    fn new(capacity: usize) -> Self {
        Buffer { events: VecDeque::new(), capacity: capacity.max(1), dropped: 0 }
    }

    fn push(&mut self, event: Event) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

thread_local! {
    static BUFFER: RefCell<Option<Buffer>> = const { RefCell::new(None) };
}

/// True when *any* session is live anywhere in the process. Cheap enough
/// for hot loops; use [`is_collecting`] to check the current thread.
#[inline]
pub fn enabled() -> bool {
    ACTIVE_SESSIONS.load(Ordering::Relaxed) != 0
}

/// True when the current thread has a recording session installed.
pub fn is_collecting() -> bool {
    enabled() && BUFFER.with(|b| b.borrow().is_some())
}

/// The installed session's ring capacity, if the current thread is
/// recording. `crates/par` uses this to size per-item capture buffers.
pub fn current_capacity() -> Option<usize> {
    if !enabled() {
        return None;
    }
    BUFFER.with(|b| b.borrow().as_ref().map(|buf| buf.capacity))
}

/// Records one event into the current thread's session, if any.
///
/// The closure defers payload construction, so a disabled emission site
/// costs one relaxed atomic load and a never-taken branch.
#[inline]
pub fn emit(event: impl FnOnce() -> Event) {
    if !enabled() {
        return;
    }
    BUFFER.with(|b| {
        if let Some(buf) = b.borrow_mut().as_mut() {
            buf.push(event());
        }
    });
}

/// Appends pre-recorded events (from a worker-side [`capture`]) to the
/// current thread's session. Drop accounting carries over: the log's own
/// `dropped` count is added to the session's.
pub fn append(log: TraceLog) {
    BUFFER.with(|b| {
        if let Some(buf) = b.borrow_mut().as_mut() {
            buf.dropped += log.dropped;
            for event in log.events {
                buf.push(event);
            }
        }
    });
}

/// A finished recording: the surviving events plus how many were evicted
/// by ring-buffer overflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceLog {
    /// Recorded events in emission order (oldest evicted first on
    /// overflow).
    pub events: Vec<Event>,
    /// Events evicted because the ring buffer was full.
    pub dropped: u64,
}

impl TraceLog {
    /// Renders the log as JSON Lines: one [`Event::to_json`] object per
    /// line, each terminated by `\n`. If events were dropped, a final
    /// `{"ev":"dropped",...}` line records the count.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 64);
        for event in &self.events {
            out.push_str(&event.to_json());
            out.push('\n');
        }
        if self.dropped > 0 {
            let _ = writeln!(out, r#"{{"ev":"dropped","count":{}}}"#, self.dropped);
        }
        out
    }

    /// Events belonging to one pipeline stage, in order.
    pub fn stage_events(&self, stage: Stage) -> Vec<&Event> {
        self.events.iter().filter(|e| e.stage() == stage).collect()
    }

    /// Count of events matching a predicate.
    pub fn count(&self, pred: impl Fn(&Event) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }
}

/// A scoped recording session on the current thread.
///
/// `start` installs a fresh ring buffer (shadowing any existing one, which
/// is restored on `finish`); `finish` uninstalls it and returns the
/// [`TraceLog`]. Dropping a session without `finish` restores the previous
/// state and discards the recording.
pub struct Session {
    previous: Option<Buffer>,
    finished: bool,
}

impl Session {
    /// Begins recording on this thread with a ring buffer holding at most
    /// `capacity` events (clamped to ≥ 1).
    pub fn start(capacity: usize) -> Session {
        let previous = BUFFER.with(|b| b.borrow_mut().replace(Buffer::new(capacity)));
        ACTIVE_SESSIONS.fetch_add(1, Ordering::Relaxed);
        Session { previous, finished: false }
    }

    /// Stops recording and returns everything captured since `start`.
    pub fn finish(mut self) -> TraceLog {
        self.finished = true;
        ACTIVE_SESSIONS.fetch_sub(1, Ordering::Relaxed);
        let buffer = BUFFER.with(|b| {
            let mut slot = b.borrow_mut();
            let current = slot.take();
            *slot = self.previous.take();
            current
        });
        let buffer = buffer.expect("session buffer present at finish");
        TraceLog { events: buffer.events.into(), dropped: buffer.dropped }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if !self.finished {
            ACTIVE_SESSIONS.fetch_sub(1, Ordering::Relaxed);
            BUFFER.with(|b| {
                let mut slot = b.borrow_mut();
                slot.take();
                *slot = self.previous.take();
            });
        }
    }
}

/// Runs `f` with a private recording session and returns its result plus
/// the captured log. This is the worker-side half of the deterministic
/// parallel-trace contract: `crates/par` captures each item and
/// [`append`]s the logs to the caller in index order.
pub fn capture<R>(capacity: usize, f: impl FnOnce() -> R) -> (R, TraceLog) {
    let session = Session::start(capacity);
    let result = f();
    (result, session.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_emit_is_a_no_op() {
        assert!(!is_collecting());
        emit(|| panic!("payload must not be built when disabled"));
    }

    #[test]
    fn session_records_in_order() {
        let session = Session::start(16);
        emit(|| Event::TdcSample { index: 0, count: 90 });
        emit(|| Event::DetectorLatch { sample: 7 });
        let log = session.finish();
        assert_eq!(log.dropped, 0);
        assert_eq!(
            log.events,
            vec![Event::TdcSample { index: 0, count: 90 }, Event::DetectorLatch { sample: 7 }]
        );
        assert!(!is_collecting());
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let session = Session::start(3);
        for i in 0..5 {
            emit(|| Event::TdcSample { index: i, count: 0 });
        }
        let log = session.finish();
        assert_eq!(log.dropped, 2);
        let indices: Vec<u64> = log
            .events
            .iter()
            .map(|e| match e {
                Event::TdcSample { index, .. } => *index,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(indices, vec![2, 3, 4]);
        assert!(log.to_jsonl().contains(r#""ev":"dropped","count":2"#));
    }

    #[test]
    fn nested_sessions_shadow_and_restore() {
        let outer = Session::start(8);
        emit(|| Event::SchedulerArmed { armed: true });
        let (value, inner_log) = capture(8, || {
            emit(|| Event::StrikeIssued { cycle: 42 });
            "inner"
        });
        assert_eq!(value, "inner");
        assert_eq!(inner_log.events, vec![Event::StrikeIssued { cycle: 42 }]);
        emit(|| Event::SchedulerArmed { armed: false });
        let log = outer.finish();
        assert_eq!(
            log.events,
            vec![Event::SchedulerArmed { armed: true }, Event::SchedulerArmed { armed: false },]
        );
    }

    #[test]
    fn append_merges_worker_logs() {
        let session = Session::start(8);
        append(TraceLog { events: vec![Event::Inference { predicted: 3 }], dropped: 2 });
        let log = session.finish();
        assert_eq!(log.events, vec![Event::Inference { predicted: 3 }]);
        assert_eq!(log.dropped, 2);
    }

    #[test]
    fn jsonl_rendering_is_stable() {
        let log = TraceLog {
            events: vec![
                Event::TdcSample { index: 1, count: 88 },
                Event::PdnGlitch { start: 10, len: 4, nadir_uv: 812_500 },
                Event::MacFault { stage: 2, op: 5, kind: FaultKind::Duplicate },
            ],
            dropped: 0,
        };
        assert_eq!(
            log.to_jsonl(),
            concat!(
                "{\"ev\":\"tdc_sample\",\"stage\":\"tdc\",\"index\":1,\"count\":88}\n",
                "{\"ev\":\"pdn_glitch\",\"stage\":\"pdn\",\"start\":10,\"len\":4,\"nadir_uv\":812500}\n",
                "{\"ev\":\"mac_fault\",\"stage\":\"accel\",\"pipeline_stage\":2,\"op\":5,\"kind\":\"duplicate\"}\n",
            )
        );
    }

    #[test]
    fn current_capacity_reports_installed_ring() {
        assert_eq!(current_capacity(), None);
        let session = Session::start(123);
        assert_eq!(current_capacity(), Some(123));
        session.finish();
        assert_eq!(current_capacity(), None);
    }

    #[test]
    fn remote_events_render_stably() {
        let log = TraceLog {
            events: vec![
                Event::LinkRetry { seq: 9, attempt: 2 },
                Event::LinkGaveUp { seq: 9, attempts: 5 },
                Event::UploadProgress { offset: 8, total: 16 },
                Event::CheckpointSaved { phase: RemotePhase::Profile },
                Event::CampaignResumed { phase: RemotePhase::Upload },
                Event::GuidanceDegraded { level: GuidanceLevel::Blind },
            ],
            dropped: 0,
        };
        assert!(log.events.iter().all(|e| e.stage() == Stage::Remote));
        assert_eq!(
            log.to_jsonl(),
            concat!(
                "{\"ev\":\"link_retry\",\"stage\":\"remote\",\"seq\":9,\"attempt\":2}\n",
                "{\"ev\":\"link_gave_up\",\"stage\":\"remote\",\"seq\":9,\"attempts\":5}\n",
                "{\"ev\":\"upload_progress\",\"stage\":\"remote\",\"offset\":8,\"total\":16}\n",
                "{\"ev\":\"checkpoint_saved\",\"stage\":\"remote\",\"phase\":\"profile\"}\n",
                "{\"ev\":\"campaign_resumed\",\"stage\":\"remote\",\"phase\":\"upload\"}\n",
                "{\"ev\":\"guidance_degraded\",\"stage\":\"remote\",\"level\":\"blind\"}\n",
            )
        );
    }

    #[test]
    fn supervisor_events_render_stably() {
        let log = TraceLog {
            events: vec![
                Event::WorkerQuarantined { index: 17 },
                Event::CheckpointFsync { generation: 3, bytes: 4096 },
                Event::PhaseDeadlineExceeded { phase: RemotePhase::Profile },
                Event::SolverStepHalved { halvings: 2 },
            ],
            dropped: 0,
        };
        assert_eq!(log.events[0].stage(), Stage::Supervisor);
        assert_eq!(log.events[3].stage(), Stage::Pdn);
        assert_eq!(
            log.to_jsonl(),
            concat!(
                "{\"ev\":\"worker_quarantined\",\"stage\":\"supervisor\",\"index\":17}\n",
                "{\"ev\":\"checkpoint_fsync\",\"stage\":\"supervisor\",\"generation\":3,\"bytes\":4096}\n",
                "{\"ev\":\"phase_deadline_exceeded\",\"stage\":\"supervisor\",\"phase\":\"profile\"}\n",
                "{\"ev\":\"solver_step_halved\",\"stage\":\"pdn\",\"halvings\":2}\n",
            )
        );
    }

    #[test]
    fn stage_filter_and_count() {
        let log = TraceLog {
            events: vec![
                Event::TdcSample { index: 0, count: 1 },
                Event::DetectorLatch { sample: 3 },
                Event::TdcSample { index: 1, count: 2 },
            ],
            dropped: 0,
        };
        assert_eq!(log.stage_events(Stage::Tdc).len(), 2);
        assert_eq!(log.count(|e| matches!(e, Event::DetectorLatch { .. })), 1);
    }
}
