//! Reliable stop-and-wait transport over the (lossy) serial link.
//!
//! The bare [`crate::session`] pair assumes a clean wire: a corrupted
//! frame simply vanishes and the campaign above it stalls. This layer
//! makes the remotely guided loop survive a degraded link:
//!
//! * every request carries a **sequence number**; the response echoes it,
//!   so stale answers to retransmitted requests are discarded;
//! * a lost exchange is **retransmitted** with capped exponential backoff
//!   (the per-attempt pump budget doubles up to [`TransportConfig::
//!   backoff_cap`]), and gives up with [`UartError::LinkDown`] once
//!   [`TransportConfig::max_retries`] is exhausted;
//! * the shell keeps a depth-1 **response replay cache**: a retransmitted
//!   request whose response was lost is answered from the cache without
//!   re-executing the command, making side-effectful commands (draining
//!   trace reads, upload chunks) exactly-once. Depth 1 suffices because
//!   the client is stop-and-wait and the link preserves byte order, so
//!   every copy of request *n* arrives before request *n + 1*;
//! * scheme uploads are **chunked and resumable**: `UploadBegin` declares
//!   length and CRC, in-order `UploadChunk`s fill a staging buffer,
//!   `UploadStatus` reports the watermark so a reconnecting client
//!   resumes mid-transfer, and only a CRC-verified `UploadCommit`
//!   atomically installs the scheme — an aborted transfer leaves the
//!   armed state untouched.
//!
//! Transport retries and upload progress are emitted as [`trace`] events
//! (`link_retry`, `link_gave_up`, `upload_progress`) so the golden-trace
//! suite conformance-checks the degradation behaviour like any other
//! pipeline stage.

use crate::error::{Result, UartError};
use crate::frame::{crc16, encode_frame, FrameDecoder};
use crate::link::Endpoint;
use crate::proto::{Command, Response};
use crate::session::ShellHandler;

/// Request packet kind byte.
const KIND_REQUEST: u8 = 0x00;
/// Response packet kind byte.
const KIND_RESPONSE: u8 = 0x01;

/// Application error: upload chunk/commit without an open upload.
pub const ERR_NO_UPLOAD: u8 = 0x10;
/// Application error: upload chunk leaves a gap before the watermark.
pub const ERR_UPLOAD_ORDER: u8 = 0x11;
/// Application error: committed bytes fail the declared CRC or length.
pub const ERR_UPLOAD_CRC: u8 = 0x12;
/// Application error: upload chunk overflows the declared total.
pub const ERR_UPLOAD_OVERFLOW: u8 = 0x13;
/// Application error: command not supported by this endpoint.
pub const ERR_UNSUPPORTED: u8 = 0xFD;
/// Application error: frame verified but the payload failed protocol
/// decoding.
pub const ERR_PROTOCOL: u8 = 0xFE;

/// Tunables of the reliable transport. The defaults suit the in-memory
/// link: one pump iteration delivers one shell poll, so budgets are
/// counted in pump iterations (= link ticks), not wall-clock time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransportConfig {
    /// Pump iterations to wait for a response before the *first*
    /// retransmission (and the budget [`crate::session::Client::
    /// transact_with`] uses as its whole timeout). Default 100 — the
    /// value that used to be hard-coded in `session.rs`.
    pub pump_budget: u32,
    /// Retransmissions after the initial send before giving up with
    /// [`UartError::LinkDown`]. Default 6.
    pub max_retries: u32,
    /// Upper bound on the per-attempt pump budget as backoff doubles it
    /// (`100, 200, 400, 800, 800, …` with the defaults). Default 800.
    pub backoff_cap: u32,
    /// Bytes per `UploadChunk`. Small chunks keep frames short enough to
    /// survive lossy links (frame loss is exponential in frame length).
    /// Default 16.
    pub chunk_len: usize,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig { pump_budget: 100, max_retries: 6, backoff_cap: 800, chunk_len: 16 }
    }
}

/// Wraps a protocol payload in a transport packet: `[seq_lo, seq_hi,
/// kind, inner…]`.
fn wrap(seq: u16, kind: u8, inner: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(3 + inner.len());
    v.extend_from_slice(&seq.to_le_bytes());
    v.push(kind);
    v.extend_from_slice(inner);
    v
}

/// Splits a transport packet into `(seq, kind, inner)`.
fn unwrap(payload: &[u8]) -> Option<(u16, u8, &[u8])> {
    if payload.len() < 3 {
        return None;
    }
    Some((u16::from_le_bytes([payload[0], payload[1]]), payload[2], &payload[3..]))
}

/// Cumulative transport counters (client side).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransportStats {
    /// Completed request/response exchanges.
    pub exchanges: u64,
    /// Retransmissions across all exchanges.
    pub retransmissions: u64,
    /// Exchanges abandoned with [`UartError::LinkDown`].
    pub gave_up: u64,
}

/// The attacker-side reliable client.
#[derive(Debug)]
pub struct TransportClient {
    endpoint: Endpoint,
    decoder: FrameDecoder,
    config: TransportConfig,
    next_seq: u16,
    stats: TransportStats,
}

impl TransportClient {
    /// Wraps a link endpoint with the default [`TransportConfig`].
    pub fn new(endpoint: Endpoint) -> Self {
        TransportClient::with_config(endpoint, TransportConfig::default())
    }

    /// Wraps a link endpoint with explicit transport tunables.
    pub fn with_config(endpoint: Endpoint, config: TransportConfig) -> Self {
        TransportClient {
            endpoint,
            decoder: FrameDecoder::new(),
            config,
            next_seq: 0,
            stats: TransportStats::default(),
        }
    }

    /// The active transport tunables.
    pub fn config(&self) -> &TransportConfig {
        &self.config
    }

    /// Cumulative transport counters.
    pub fn stats(&self) -> TransportStats {
        self.stats
    }

    /// Direct access to the underlying link endpoint.
    pub fn endpoint_mut(&mut self) -> &mut Endpoint {
        &mut self.endpoint
    }

    /// Sends `command` reliably: transmits, pumps the FPGA side, and
    /// retransmits with capped exponential backoff until the matching
    /// response arrives.
    ///
    /// Each pump iteration advances the shared link clock by one tick,
    /// which is what delivers jittered bytes and eventually closes
    /// disconnect windows — the transport *rides out* outages shorter
    /// than its total retry span.
    ///
    /// # Errors
    ///
    /// [`UartError::LinkDown`] once every attempt is exhausted;
    /// [`UartError::Remote`] if the shell answered with an error code;
    /// [`UartError::MalformedMessage`] if a verified response frame fails
    /// protocol decoding.
    pub fn transact(&mut self, command: &Command, mut pump: impl FnMut()) -> Result<Response> {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        let wire = encode_frame(&wrap(seq, KIND_REQUEST, &command.to_bytes()));
        let mut budget = self.config.pump_budget.max(1);
        let attempts = self.config.max_retries + 1;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.stats.retransmissions += 1;
                trace::emit(|| trace::Event::LinkRetry { seq: u64::from(seq), attempt });
            }
            self.endpoint.send(&wire);
            for _ in 0..budget {
                pump();
                self.endpoint.advance(1);
                let bytes = self.endpoint.recv_all();
                for frame in self.decoder.push_bytes(&bytes) {
                    let Some((rseq, kind, inner)) = unwrap(&frame) else { continue };
                    if kind != KIND_RESPONSE || rseq != seq {
                        continue; // stale answer to an earlier retransmission
                    }
                    self.stats.exchanges += 1;
                    return match Response::from_bytes(inner)? {
                        Response::Error(code) => Err(UartError::Remote(code)),
                        r => Ok(r),
                    };
                }
            }
            budget = budget.saturating_mul(2).min(self.config.backoff_cap.max(1));
        }
        self.stats.gave_up += 1;
        trace::emit(|| trace::Event::LinkGaveUp { seq: u64::from(seq), attempts });
        Err(UartError::LinkDown { attempts })
    }

    /// Uploads scheme bytes with the chunked, resumable protocol: resume
    /// an open transfer of the same payload from the shell's watermark,
    /// otherwise start fresh; then stream in-order chunks and commit.
    ///
    /// If the commit reports a CRC mismatch (a stale staging buffer from
    /// a *different* aborted payload of the same length), the transfer is
    /// restarted from scratch once.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::transact`] errors; [`UartError::Remote`] with
    /// the shell's code if the scheme itself is rejected.
    pub fn upload_scheme(&mut self, data: &[u8], mut pump: impl FnMut()) -> Result<()> {
        let total = data.len() as u32;
        let crc = crc16(data);
        for fresh_start in [false, true] {
            let staged = if fresh_start {
                0
            } else {
                match self.transact(&Command::UploadStatus, &mut pump)? {
                    Response::Upload { received, total: t } if t == total && t > 0 => received,
                    _ => 0,
                }
            };
            let mut offset = staged;
            if staged == 0 {
                match self.transact(&Command::UploadBegin { total_len: total, crc }, &mut pump)? {
                    Response::Upload { .. } => {}
                    other => {
                        return Err(UartError::UnexpectedResponse(format!(
                            "upload_begin answered {other:?}"
                        )))
                    }
                }
            }
            while (offset as usize) < data.len() {
                let end = (offset as usize + self.config.chunk_len.max(1)).min(data.len());
                let chunk = data[offset as usize..end].to_vec();
                match self.transact(&Command::UploadChunk { offset, data: chunk }, &mut pump)? {
                    Response::Upload { received, .. } => {
                        offset = received;
                        trace::emit(|| trace::Event::UploadProgress {
                            offset: u64::from(received),
                            total: u64::from(total),
                        });
                    }
                    other => {
                        return Err(UartError::UnexpectedResponse(format!(
                            "upload_chunk answered {other:?}"
                        )))
                    }
                }
            }
            match self.transact(&Command::UploadCommit, &mut pump) {
                Ok(Response::Ack) => return Ok(()),
                Ok(other) => {
                    return Err(UartError::UnexpectedResponse(format!(
                        "upload_commit answered {other:?}"
                    )))
                }
                // Stale staging from a different payload: restart once.
                Err(UartError::Remote(ERR_UPLOAD_CRC)) if !fresh_start => continue,
                Err(e) => return Err(e),
            }
        }
        unreachable!("second pass either commits or returns an error")
    }
}

/// In-flight upload staging on the FPGA side.
#[derive(Debug)]
struct Staging {
    total: u32,
    crc: u16,
    buf: Vec<u8>,
}

/// The FPGA-side transport shell: seq-aware dispatch with a depth-1
/// response replay cache, plus the upload staging state machine.
#[derive(Debug)]
pub struct TransportShell {
    endpoint: Endpoint,
    decoder: FrameDecoder,
    staging: Option<Staging>,
    /// `(seq, request CRC, encoded response frame)` of the most recent
    /// execution. The request CRC disambiguates a retransmitted duplicate
    /// from a *different* request that lands on the same 16-bit sequence
    /// number after counter wraparound — replaying a cached response to
    /// the latter would silently answer the wrong command.
    last: Option<(u16, u16, Vec<u8>)>,
    replayed: u64,
}

impl TransportShell {
    /// Wraps a link endpoint.
    pub fn new(endpoint: Endpoint) -> Self {
        TransportShell {
            endpoint,
            decoder: FrameDecoder::new(),
            staging: None,
            last: None,
            replayed: 0,
        }
    }

    /// Frames dropped by the decoder due to corruption.
    pub fn corrupt_frames(&self) -> u64 {
        self.decoder.corrupt_frames()
    }

    /// Responses served from the replay cache (lost-response recoveries).
    pub fn replayed(&self) -> u64 {
        self.replayed
    }

    /// Bytes staged by an open upload, if any.
    pub fn staged_bytes(&self) -> Option<usize> {
        self.staging.as_ref().map(|s| s.buf.len())
    }

    /// Services every pending request; returns how many were *executed*
    /// (replayed duplicates are answered but not counted).
    pub fn poll(&mut self, handler: &mut dyn ShellHandler) -> usize {
        let bytes = self.endpoint.recv_all();
        let frames = self.decoder.push_bytes(&bytes);
        let mut handled = 0usize;
        for frame in frames {
            let Some((seq, kind, inner)) = unwrap(&frame) else { continue };
            if kind != KIND_REQUEST {
                continue;
            }
            let req_crc = crc16(inner);
            if let Some((last_seq, last_crc, cached)) = &self.last {
                if *last_seq == seq && *last_crc == req_crc {
                    // The response was lost in transit: replay it without
                    // re-executing the (side-effectful) command.
                    let cached = cached.clone();
                    self.endpoint.send(&cached);
                    self.replayed += 1;
                    continue;
                }
            }
            let response = self.dispatch(inner, handler);
            let wire = encode_frame(&wrap(seq, KIND_RESPONSE, &response.to_bytes()));
            self.endpoint.send(&wire);
            self.last = Some((seq, req_crc, wire));
            handled += 1;
        }
        handled
    }

    fn dispatch(&mut self, inner: &[u8], handler: &mut dyn ShellHandler) -> Response {
        match Command::from_bytes(inner) {
            Ok(Command::ReadTrace { max_samples }) => {
                Response::Trace(handler.read_trace(max_samples as usize))
            }
            Ok(Command::LoadScheme { data }) => match handler.load_scheme(&data) {
                Ok(()) => Response::Ack,
                Err(code) => Response::Error(code),
            },
            Ok(Command::Arm { enabled }) => match handler.arm(enabled) {
                Ok(()) => Response::Ack,
                Err(code) => Response::Error(code),
            },
            Ok(Command::Status) => Response::Status(handler.status()),
            Ok(Command::UploadBegin { total_len, crc }) => {
                self.staging = Some(Staging {
                    total: total_len,
                    crc,
                    buf: Vec::with_capacity(total_len as usize),
                });
                Response::Upload { received: 0, total: total_len }
            }
            Ok(Command::UploadChunk { offset, data }) => match &mut self.staging {
                None => Response::Error(ERR_NO_UPLOAD),
                Some(st) => {
                    let have = st.buf.len() as u32;
                    if offset > have {
                        Response::Error(ERR_UPLOAD_ORDER)
                    } else if offset as usize + data.len() > st.total as usize {
                        Response::Error(ERR_UPLOAD_OVERFLOW)
                    } else {
                        // Overlapping bytes below the watermark are already
                        // staged; only the fresh tail extends the buffer.
                        let fresh_from = (have - offset) as usize;
                        if fresh_from < data.len() {
                            st.buf.extend_from_slice(&data[fresh_from..]);
                        }
                        Response::Upload { received: st.buf.len() as u32, total: st.total }
                    }
                }
            },
            Ok(Command::UploadCommit) => match self.staging.take() {
                None => Response::Error(ERR_NO_UPLOAD),
                Some(st) => {
                    if st.buf.len() as u32 != st.total || crc16(&st.buf) != st.crc {
                        Response::Error(ERR_UPLOAD_CRC)
                    } else {
                        match handler.load_scheme(&st.buf) {
                            Ok(()) => Response::Ack,
                            Err(code) => Response::Error(code),
                        }
                    }
                }
            },
            Ok(Command::UploadStatus) => match &self.staging {
                Some(st) => Response::Upload { received: st.buf.len() as u32, total: st.total },
                None => Response::Upload { received: 0, total: 0 },
            },
            Err(_) => Response::Error(ERR_PROTOCOL),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::link::FaultConfig;
    use crate::proto::StatusInfo;

    /// Counts executions so duplicate suppression is observable.
    #[derive(Default)]
    struct CountingFpga {
        scheme: Vec<u8>,
        armed: bool,
        trace_reads: u32,
        scheme_loads: u32,
        trace: Vec<u8>,
    }

    impl ShellHandler for CountingFpga {
        fn read_trace(&mut self, max_samples: usize) -> Vec<u8> {
            self.trace_reads += 1;
            let n = self.trace.len().min(max_samples);
            self.trace.drain(..n).collect()
        }
        fn load_scheme(&mut self, data: &[u8]) -> std::result::Result<(), u8> {
            self.scheme_loads += 1;
            if data.len() > 64 {
                return Err(2);
            }
            self.scheme = data.to_vec();
            Ok(())
        }
        fn arm(&mut self, enabled: bool) -> std::result::Result<(), u8> {
            if self.scheme.is_empty() {
                return Err(3);
            }
            self.armed = enabled;
            Ok(())
        }
        fn status(&mut self) -> StatusInfo {
            StatusInfo {
                armed: self.armed,
                triggered: false,
                strikes_fired: 0,
                scheme_bits: (self.scheme.len() * 8) as u32,
            }
        }
    }

    fn clean_rig() -> (TransportClient, TransportShell, CountingFpga) {
        let (a, b) = Endpoint::pair();
        (TransportClient::new(a), TransportShell::new(b), CountingFpga::default())
    }

    #[test]
    fn clean_link_round_trip() {
        let (mut client, mut shell, mut fpga) = clean_rig();
        fpga.trace = vec![90, 89, 88];
        let r = client
            .transact(&Command::ReadTrace { max_samples: 2 }, || {
                shell.poll(&mut fpga);
            })
            .unwrap();
        assert_eq!(r, Response::Trace(vec![90, 89]));
        assert_eq!(client.stats().retransmissions, 0);
    }

    #[test]
    fn lost_request_is_retransmitted() {
        let (mut client, mut shell, mut fpga) = clean_rig();
        // Kill the first request frame (first wire byte flipped breaks
        // its COBS structure or CRC); later sends are untouched.
        client.endpoint_mut().corrupt_next_sends(&[0xFF]);
        let r = client
            .transact(&Command::Status, || {
                shell.poll(&mut fpga);
            })
            .unwrap();
        assert!(matches!(r, Response::Status(_)));
        assert!(client.stats().retransmissions >= 1);
        assert_eq!(shell.replayed(), 0, "request loss does not hit the replay cache");
    }

    #[test]
    fn lost_response_is_replayed_without_reexecution() {
        let (a, b) = Endpoint::pair();
        let mut client = TransportClient::new(a);
        let mut shell = TransportShell::new(b);
        let mut fpga = CountingFpga { trace: vec![1, 2, 3, 4], ..CountingFpga::default() };
        // Kill the first *response* frame: the client retries and the
        // shell must replay, not drain the trace buffer twice.
        shell.endpoint.corrupt_next_sends(&[0xFF]);
        let r = client
            .transact(&Command::ReadTrace { max_samples: 2 }, || {
                shell.poll(&mut fpga);
            })
            .unwrap();
        assert_eq!(r, Response::Trace(vec![1, 2]));
        assert_eq!(fpga.trace_reads, 1, "exactly-once execution");
        assert_eq!(shell.replayed(), 1);
        // The next exchange continues from where the drain left off.
        let r = client
            .transact(&Command::ReadTrace { max_samples: 2 }, || {
                shell.poll(&mut fpga);
            })
            .unwrap();
        assert_eq!(r, Response::Trace(vec![3, 4]));
    }

    #[test]
    fn dead_link_gives_up_with_link_down() {
        let (a, _b) = Endpoint::pair();
        let mut client = TransportClient::with_config(
            a,
            TransportConfig { pump_budget: 3, max_retries: 2, backoff_cap: 6, chunk_len: 16 },
        );
        let err = client.transact(&Command::Status, || {}).unwrap_err();
        assert_eq!(err, UartError::LinkDown { attempts: 3 });
        assert_eq!(client.stats().gave_up, 1);
    }

    #[test]
    fn backoff_rides_out_a_disconnect_window() {
        // The link is dead for the first 40 ticks; the transport's
        // retries span well past that, so the exchange succeeds without
        // the caller ever seeing an error.
        let config = FaultConfig { disconnects: vec![(0, 40)], ..FaultConfig::default() };
        let (a, b) = Endpoint::faulty_pair(config, 1);
        let mut client = TransportClient::with_config(
            a,
            TransportConfig { pump_budget: 10, max_retries: 6, backoff_cap: 80, chunk_len: 16 },
        );
        let mut shell = TransportShell::new(b);
        let mut fpga = CountingFpga::default();
        let r = client
            .transact(&Command::Status, || {
                shell.poll(&mut fpga);
            })
            .unwrap();
        assert!(matches!(r, Response::Status(_)));
        assert!(client.stats().retransmissions >= 1, "the outage forced a retry");
    }

    #[test]
    fn chunked_upload_commits_atomically() {
        let (mut client, mut shell, mut fpga) = clean_rig();
        let data: Vec<u8> = (0..40u8).collect();
        client
            .upload_scheme(&data, || {
                shell.poll(&mut fpga);
            })
            .unwrap();
        assert_eq!(fpga.scheme, data);
        assert_eq!(fpga.scheme_loads, 1, "exactly one atomic install");
        assert_eq!(shell.staged_bytes(), None, "staging cleared after commit");
    }

    #[test]
    fn aborted_upload_leaves_scheme_untouched_and_resumes() {
        let (a, b) = Endpoint::pair();
        let mut client = TransportClient::with_config(
            a,
            TransportConfig { chunk_len: 8, ..TransportConfig::default() },
        );
        let mut shell = TransportShell::new(b);
        let mut fpga = CountingFpga::default();
        // Preload a scheme so "unchanged" is observable.
        let old: Vec<u8> = vec![7; 16];
        client
            .upload_scheme(&old, || {
                shell.poll(&mut fpga);
            })
            .unwrap();

        // Manually begin + send one chunk of a new payload, then abort.
        let new: Vec<u8> = (100..140u8).collect();
        let crc = crc16(&new);
        client
            .transact(&Command::UploadBegin { total_len: 40, crc }, || {
                shell.poll(&mut fpga);
            })
            .unwrap();
        client
            .transact(&Command::UploadChunk { offset: 0, data: new[..8].to_vec() }, || {
                shell.poll(&mut fpga);
            })
            .unwrap();
        assert_eq!(fpga.scheme, old, "aborted transfer must not touch the scheme");
        assert_eq!(shell.staged_bytes(), Some(8));

        // A later upload_scheme of the same payload resumes at the
        // watermark instead of restarting.
        client
            .upload_scheme(&new, || {
                shell.poll(&mut fpga);
            })
            .unwrap();
        assert_eq!(fpga.scheme, new);
    }

    #[test]
    fn upload_chunk_order_is_enforced_and_overlap_is_idempotent() {
        let (mut client, mut shell, mut fpga) = clean_rig();
        let data: Vec<u8> = (0..24u8).collect();
        client
            .transact(&Command::UploadBegin { total_len: 24, crc: crc16(&data) }, || {
                shell.poll(&mut fpga);
            })
            .unwrap();
        // Gap: offset 16 with watermark 0.
        let err = client
            .transact(&Command::UploadChunk { offset: 16, data: data[16..].to_vec() }, || {
                shell.poll(&mut fpga);
            })
            .unwrap_err();
        assert_eq!(err, UartError::Remote(ERR_UPLOAD_ORDER));
        // In-order, then an overlapping duplicate, then the tail.
        for (offset, chunk) in [(0u32, &data[..16]), (0u32, &data[..16]), (16u32, &data[16..])] {
            client
                .transact(&Command::UploadChunk { offset, data: chunk.to_vec() }, || {
                    shell.poll(&mut fpga);
                })
                .unwrap();
        }
        let r = client
            .transact(&Command::UploadCommit, || {
                shell.poll(&mut fpga);
            })
            .unwrap();
        assert_eq!(r, Response::Ack);
        assert_eq!(fpga.scheme, data);
    }

    #[test]
    fn commit_without_begin_and_crc_mismatch_are_rejected() {
        let (mut client, mut shell, mut fpga) = clean_rig();
        let err = client
            .transact(&Command::UploadCommit, || {
                shell.poll(&mut fpga);
            })
            .unwrap_err();
        assert_eq!(err, UartError::Remote(ERR_NO_UPLOAD));
        // Declare one payload, stage different bytes of the same length.
        let declared: Vec<u8> = vec![1; 8];
        let staged: Vec<u8> = vec![2; 8];
        client
            .transact(&Command::UploadBegin { total_len: 8, crc: crc16(&declared) }, || {
                shell.poll(&mut fpga);
            })
            .unwrap();
        client
            .transact(&Command::UploadChunk { offset: 0, data: staged }, || {
                shell.poll(&mut fpga);
            })
            .unwrap();
        let err = client
            .transact(&Command::UploadCommit, || {
                shell.poll(&mut fpga);
            })
            .unwrap_err();
        assert_eq!(err, UartError::Remote(ERR_UPLOAD_CRC));
        assert_eq!(fpga.scheme_loads, 0, "a bad CRC never reaches the handler");
    }

    #[test]
    fn upload_survives_a_heavily_lossy_link() {
        let config = FaultConfig {
            loss: 0.08,
            corrupt: 0.08,
            burst_len: 12.0,
            max_jitter: 2,
            ..FaultConfig::default()
        };
        let (a, b) = Endpoint::faulty_pair(config, 99);
        let mut client = TransportClient::with_config(
            a,
            TransportConfig { pump_budget: 12, max_retries: 30, backoff_cap: 48, chunk_len: 8 },
        );
        let mut shell = TransportShell::new(b);
        let mut fpga = CountingFpga::default();
        let data: Vec<u8> = (0..48u8).collect();
        client
            .upload_scheme(&data, || {
                shell.poll(&mut fpga);
            })
            .unwrap();
        assert_eq!(fpga.scheme, data);
        assert_eq!(fpga.scheme_loads, 1);
        assert!(client.stats().retransmissions > 0, "a lossy link must force retries");
    }
}
