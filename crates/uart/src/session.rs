//! Attacker-side client and FPGA-side command shell.

use crate::error::{Result, UartError};
use crate::frame::{encode_frame, FrameDecoder};
use crate::link::Endpoint;
use crate::proto::{Command, Response, StatusInfo};
use crate::transport::{TransportConfig, ERR_UNSUPPORTED};

/// What the FPGA side must implement to service the protocol.
pub trait ShellHandler {
    /// Returns up to `max_samples` of the most recent TDC readouts.
    fn read_trace(&mut self, max_samples: usize) -> Vec<u8>;

    /// Replaces the attack-scheme file.
    ///
    /// # Errors
    ///
    /// Returns an application error code on rejection (e.g. oversized).
    fn load_scheme(&mut self, data: &[u8]) -> std::result::Result<(), u8>;

    /// Arms or disarms the attack scheduler.
    ///
    /// # Errors
    ///
    /// Returns an application error code on rejection (e.g. no scheme).
    fn arm(&mut self, enabled: bool) -> std::result::Result<(), u8>;

    /// Scheduler status snapshot.
    fn status(&mut self) -> StatusInfo;
}

/// The FPGA-side shell: polls the link, decodes commands, dispatches to a
/// [`ShellHandler`] and answers.
#[derive(Debug)]
pub struct Shell {
    endpoint: Endpoint,
    decoder: FrameDecoder,
}

impl Shell {
    /// Wraps a link endpoint.
    pub fn new(endpoint: Endpoint) -> Self {
        Shell { endpoint, decoder: FrameDecoder::new() }
    }

    /// Services every pending command; returns how many were handled.
    /// Malformed commands are answered with `Response::Error(0xFE)`.
    pub fn poll(&mut self, handler: &mut dyn ShellHandler) -> usize {
        let bytes = self.endpoint.recv_all();
        let frames = self.decoder.push_bytes(&bytes);
        let mut handled = 0usize;
        for frame in frames {
            let response = match Command::from_bytes(&frame) {
                Ok(Command::ReadTrace { max_samples }) => {
                    Response::Trace(handler.read_trace(max_samples as usize))
                }
                Ok(Command::LoadScheme { data }) => match handler.load_scheme(&data) {
                    Ok(()) => Response::Ack,
                    Err(code) => Response::Error(code),
                },
                Ok(Command::Arm { enabled }) => match handler.arm(enabled) {
                    Ok(()) => Response::Ack,
                    Err(code) => Response::Error(code),
                },
                Ok(Command::Status) => Response::Status(handler.status()),
                // Chunked uploads need the seq-aware transport shell's
                // staging state machine; the bare shell rejects them.
                Ok(
                    Command::UploadBegin { .. }
                    | Command::UploadChunk { .. }
                    | Command::UploadCommit
                    | Command::UploadStatus,
                ) => Response::Error(ERR_UNSUPPORTED),
                Err(_) => Response::Error(0xFE),
            };
            self.endpoint.send(&encode_frame(&response.to_bytes()));
            handled += 1;
        }
        handled
    }

    /// Frames dropped by the decoder due to corruption.
    pub fn corrupt_frames(&self) -> u64 {
        self.decoder.corrupt_frames()
    }
}

/// The attacker-side client. Since the link is in-memory, "waiting" for a
/// response means giving the shell a chance to run: the client exposes
/// [`Client::transact_with`], which pumps a shell closure until the
/// response arrives (bounded by an iteration budget).
#[derive(Debug)]
pub struct Client {
    endpoint: Endpoint,
    decoder: FrameDecoder,
    config: TransportConfig,
}

impl Client {
    /// Wraps a link endpoint with the default [`TransportConfig`]
    /// (100-iteration pump budget, matching the historical behaviour).
    pub fn new(endpoint: Endpoint) -> Self {
        Client::with_config(endpoint, TransportConfig::default())
    }

    /// Wraps a link endpoint with an explicit timeout configuration; only
    /// [`TransportConfig::pump_budget`] is used by this unreliable client
    /// (retransmission fields apply to [`crate::transport::
    /// TransportClient`]).
    pub fn with_config(endpoint: Endpoint, config: TransportConfig) -> Self {
        Client { endpoint, decoder: FrameDecoder::new(), config }
    }

    /// The active timeout configuration.
    pub fn config(&self) -> &TransportConfig {
        &self.config
    }

    /// Sends a command without waiting.
    pub fn send(&mut self, command: &Command) {
        self.endpoint.send(&encode_frame(&command.to_bytes()));
    }

    /// Direct access to the underlying link endpoint (raw byte injection,
    /// corruption rigs in tests).
    pub fn endpoint_mut(&mut self) -> &mut Endpoint {
        &mut self.endpoint
    }

    /// Collects any responses that have arrived.
    ///
    /// # Errors
    ///
    /// Returns [`UartError::MalformedMessage`] if a verified frame fails
    /// protocol decoding.
    pub fn poll_responses(&mut self) -> Result<Vec<Response>> {
        let bytes = self.endpoint.recv_all();
        let frames = self.decoder.push_bytes(&bytes);
        frames.iter().map(|f| Response::from_bytes(f)).collect()
    }

    /// Sends `command`, then alternately runs `pump` (which should service
    /// the FPGA side) and polls, until one response arrives.
    ///
    /// # Errors
    ///
    /// [`UartError::Timeout`] if no response arrives within
    /// [`TransportConfig::pump_budget`] pump iterations (default 100);
    /// [`UartError::Remote`] if the shell answered with an error;
    /// decoding errors pass through.
    pub fn transact_with(&mut self, command: &Command, mut pump: impl FnMut()) -> Result<Response> {
        self.send(command);
        for _ in 0..self.config.pump_budget {
            pump();
            let mut responses = self.poll_responses()?;
            if let Some(r) = responses.pop() {
                if let Response::Error(code) = r {
                    return Err(UartError::Remote(code));
                }
                return Ok(r);
            }
        }
        Err(UartError::Timeout)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::link::Endpoint;

    #[derive(Default)]
    struct FakeFpga {
        trace: Vec<u8>,
        scheme: Vec<u8>,
        armed: bool,
        reject_arm: bool,
    }

    impl ShellHandler for FakeFpga {
        fn read_trace(&mut self, max_samples: usize) -> Vec<u8> {
            self.trace.iter().copied().take(max_samples).collect()
        }
        fn load_scheme(&mut self, data: &[u8]) -> std::result::Result<(), u8> {
            if data.len() > 16 {
                return Err(3);
            }
            self.scheme = data.to_vec();
            Ok(())
        }
        fn arm(&mut self, enabled: bool) -> std::result::Result<(), u8> {
            if self.reject_arm {
                return Err(9);
            }
            self.armed = enabled;
            Ok(())
        }
        fn status(&mut self) -> StatusInfo {
            StatusInfo {
                armed: self.armed,
                triggered: false,
                strikes_fired: 0,
                scheme_bits: (self.scheme.len() * 8) as u32,
            }
        }
    }

    fn rig() -> (Client, Shell, FakeFpga) {
        let (a, b) = Endpoint::pair();
        (Client::new(a), Shell::new(b), FakeFpga { trace: vec![90, 89, 70], ..Default::default() })
    }

    #[test]
    fn end_to_end_trace_read() {
        let (mut client, mut shell, mut fpga) = rig();
        let r = client
            .transact_with(&Command::ReadTrace { max_samples: 2 }, || {
                shell.poll(&mut fpga);
            })
            .unwrap();
        assert_eq!(r, Response::Trace(vec![90, 89]));
    }

    #[test]
    fn scheme_load_and_status() {
        let (mut client, mut shell, mut fpga) = rig();
        let r = client
            .transact_with(&Command::LoadScheme { data: vec![0xAA, 0x55] }, || {
                shell.poll(&mut fpga);
            })
            .unwrap();
        assert_eq!(r, Response::Ack);
        let r = client
            .transact_with(&Command::Status, || {
                shell.poll(&mut fpga);
            })
            .unwrap();
        assert_eq!(r, Response::Status(StatusInfo { scheme_bits: 16, ..StatusInfo::default() }));
    }

    #[test]
    fn remote_errors_surface() {
        let (mut client, mut shell, mut fpga) = rig();
        fpga.reject_arm = true;
        let err = client
            .transact_with(&Command::Arm { enabled: true }, || {
                shell.poll(&mut fpga);
            })
            .unwrap_err();
        assert_eq!(err, UartError::Remote(9));
        let err = client
            .transact_with(&Command::LoadScheme { data: vec![0; 64] }, || {
                shell.poll(&mut fpga);
            })
            .unwrap_err();
        assert_eq!(err, UartError::Remote(3));
    }

    #[test]
    fn dead_shell_times_out() {
        let (mut client, _shell, _fpga) = rig();
        let err = client.transact_with(&Command::Status, || {}).unwrap_err();
        assert_eq!(err, UartError::Timeout);
    }

    #[test]
    fn pump_budget_is_configurable() {
        let (a, _b) = Endpoint::pair();
        let config = TransportConfig { pump_budget: 7, ..TransportConfig::default() };
        let mut client = Client::with_config(a, config);
        let mut pumps = 0u32;
        let err = client.transact_with(&Command::Status, || pumps += 1).unwrap_err();
        assert_eq!(err, UartError::Timeout);
        assert_eq!(pumps, 7, "timeout honours the configured budget");
    }

    #[test]
    fn bare_shell_rejects_upload_commands() {
        let (mut client, mut shell, mut fpga) = rig();
        let err = client
            .transact_with(&Command::UploadStatus, || {
                shell.poll(&mut fpga);
            })
            .unwrap_err();
        assert_eq!(err, UartError::Remote(ERR_UNSUPPORTED));
    }

    #[test]
    fn corrupted_command_is_answered_with_protocol_error() {
        let (a, b) = Endpoint::pair();
        let mut raw = Endpoint::pair().0; // unrelated endpoint to craft bytes
        let _ = &mut raw;
        let mut client = Client::new(a);
        let mut shell = Shell::new(b);
        let mut fpga = FakeFpga::default();
        // A verified frame whose payload is not a valid command.
        client.endpoint.send(&encode_frame(&[0x77, 1, 2, 3]));
        shell.poll(&mut fpga);
        let resp = client.poll_responses().unwrap();
        assert_eq!(resp, vec![Response::Error(0xFE)]);
    }

    #[test]
    fn line_corruption_drops_frame_silently() {
        let (a, b) = Endpoint::pair();
        let mut client = Client::new(a);
        let mut shell = Shell::new(b);
        let mut fpga = FakeFpga::default();
        client.endpoint.corrupt_next_sends(&[0x00, 0xFF]);
        client.send(&Command::Status);
        shell.poll(&mut fpga);
        assert_eq!(shell.corrupt_frames(), 1);
        assert!(client.poll_responses().unwrap().is_empty(), "no response to garbage");
    }
}
