//! Command/response protocol between the remote adversary and the FPGA
//! shell.
//!
//! The paper gives the adversary exactly two capabilities over UART:
//! reading the TDC side-channel stream and configuring the attack-scheme
//! file in the signal RAM. `Arm`/`Status` round out the operational loop
//! (the scheme does nothing until the DNN-start detector is armed).

use crate::error::UartError;

/// Attacker → FPGA commands.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Command {
    /// Stream back up to `max_samples` of the most recent TDC readouts.
    ReadTrace {
        /// Upper bound on returned samples.
        max_samples: u32,
    },
    /// Replace the attack-scheme file in the signal RAM.
    LoadScheme {
        /// Encoded scheme bytes (see the `deepstrike` crate's codec).
        data: Vec<u8>,
    },
    /// Arm or disarm the attack scheduler.
    Arm {
        /// `true` to arm.
        enabled: bool,
    },
    /// Query scheduler status.
    Status,
    /// Open a chunked scheme upload: declares the total length and the
    /// CRC-16 the assembled bytes must match at commit.
    UploadBegin {
        /// Total scheme length in bytes.
        total_len: u32,
        /// CRC-16/CCITT-FALSE of the whole scheme.
        crc: u16,
    },
    /// One in-order slice of an open upload (`offset` = bytes already
    /// staged; slices at or before the staging watermark are idempotent).
    UploadChunk {
        /// Byte offset of this slice within the scheme.
        offset: u32,
        /// Slice bytes.
        data: Vec<u8>,
    },
    /// Verify the staged bytes against the declared CRC and atomically
    /// load them as the attack scheme.
    UploadCommit,
    /// Query upload staging progress (used to resume after a dropout).
    UploadStatus,
}

/// FPGA → attacker responses.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Response {
    /// TDC samples, one byte each (the 8-bit encoder output).
    Trace(Vec<u8>),
    /// Command accepted.
    Ack,
    /// Scheduler status.
    Status(StatusInfo),
    /// Upload staging progress: bytes received so far out of the declared
    /// total (`0/0` when no upload is open).
    Upload {
        /// Bytes staged so far.
        received: u32,
        /// Declared total, 0 when no upload is open.
        total: u32,
    },
    /// Application-level error code.
    Error(u8),
}

/// Scheduler status snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatusInfo {
    /// Whether the scheduler is armed.
    pub armed: bool,
    /// Whether the DNN start detector has triggered since arming.
    pub triggered: bool,
    /// Power strikes fired since arming.
    pub strikes_fired: u32,
    /// Scheme-file length loaded in the signal RAM, in bits.
    pub scheme_bits: u32,
}

const TAG_READ_TRACE: u8 = 0x01;
const TAG_LOAD_SCHEME: u8 = 0x02;
const TAG_ARM: u8 = 0x03;
const TAG_STATUS: u8 = 0x04;
const TAG_UPLOAD_BEGIN: u8 = 0x05;
const TAG_UPLOAD_CHUNK: u8 = 0x06;
const TAG_UPLOAD_COMMIT: u8 = 0x07;
const TAG_UPLOAD_STATUS: u8 = 0x08;
const TAG_R_TRACE: u8 = 0x81;
const TAG_R_ACK: u8 = 0x82;
const TAG_R_STATUS: u8 = 0x84;
const TAG_R_UPLOAD: u8 = 0x85;
const TAG_R_ERROR: u8 = 0xFF;

impl Command {
    /// Serialises the command to a frame payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            Command::ReadTrace { max_samples } => {
                let mut v = vec![TAG_READ_TRACE];
                v.extend_from_slice(&max_samples.to_le_bytes());
                v
            }
            Command::LoadScheme { data } => {
                let mut v = vec![TAG_LOAD_SCHEME];
                v.extend_from_slice(&(data.len() as u32).to_le_bytes());
                v.extend_from_slice(data);
                v
            }
            Command::Arm { enabled } => vec![TAG_ARM, u8::from(*enabled)],
            Command::Status => vec![TAG_STATUS],
            Command::UploadBegin { total_len, crc } => {
                let mut v = vec![TAG_UPLOAD_BEGIN];
                v.extend_from_slice(&total_len.to_le_bytes());
                v.extend_from_slice(&crc.to_le_bytes());
                v
            }
            Command::UploadChunk { offset, data } => {
                let mut v = vec![TAG_UPLOAD_CHUNK];
                v.extend_from_slice(&offset.to_le_bytes());
                v.extend_from_slice(&(data.len() as u32).to_le_bytes());
                v.extend_from_slice(data);
                v
            }
            Command::UploadCommit => vec![TAG_UPLOAD_COMMIT],
            Command::UploadStatus => vec![TAG_UPLOAD_STATUS],
        }
    }

    /// Parses a command from a frame payload.
    ///
    /// # Errors
    ///
    /// Returns [`UartError::MalformedMessage`] on bad tags or truncation.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, UartError> {
        let (&tag, rest) = bytes
            .split_first()
            .ok_or_else(|| UartError::MalformedMessage("empty command".into()))?;
        match tag {
            TAG_READ_TRACE => {
                let arr: [u8; 4] = rest
                    .try_into()
                    .map_err(|_| UartError::MalformedMessage("read_trace length".into()))?;
                Ok(Command::ReadTrace { max_samples: u32::from_le_bytes(arr) })
            }
            TAG_LOAD_SCHEME => {
                if rest.len() < 4 {
                    return Err(UartError::MalformedMessage("load_scheme header".into()));
                }
                let len = u32::from_le_bytes(rest[..4].try_into().expect("len 4")) as usize;
                if rest.len() != 4 + len {
                    return Err(UartError::MalformedMessage("load_scheme body length".into()));
                }
                Ok(Command::LoadScheme { data: rest[4..].to_vec() })
            }
            TAG_ARM => match rest {
                [flag] => Ok(Command::Arm { enabled: *flag != 0 }),
                _ => Err(UartError::MalformedMessage("arm flag".into())),
            },
            TAG_STATUS => {
                if rest.is_empty() {
                    Ok(Command::Status)
                } else {
                    Err(UartError::MalformedMessage("status takes no payload".into()))
                }
            }
            TAG_UPLOAD_BEGIN => {
                if rest.len() != 6 {
                    return Err(UartError::MalformedMessage("upload_begin length".into()));
                }
                Ok(Command::UploadBegin {
                    total_len: u32::from_le_bytes(rest[..4].try_into().expect("len 4")),
                    crc: u16::from_le_bytes(rest[4..6].try_into().expect("len 2")),
                })
            }
            TAG_UPLOAD_CHUNK => {
                if rest.len() < 8 {
                    return Err(UartError::MalformedMessage("upload_chunk header".into()));
                }
                let offset = u32::from_le_bytes(rest[..4].try_into().expect("len 4"));
                let len = u32::from_le_bytes(rest[4..8].try_into().expect("len 4")) as usize;
                if rest.len() != 8 + len {
                    return Err(UartError::MalformedMessage("upload_chunk body length".into()));
                }
                Ok(Command::UploadChunk { offset, data: rest[8..].to_vec() })
            }
            TAG_UPLOAD_COMMIT => {
                if rest.is_empty() {
                    Ok(Command::UploadCommit)
                } else {
                    Err(UartError::MalformedMessage("upload_commit takes no payload".into()))
                }
            }
            TAG_UPLOAD_STATUS => {
                if rest.is_empty() {
                    Ok(Command::UploadStatus)
                } else {
                    Err(UartError::MalformedMessage("upload_status takes no payload".into()))
                }
            }
            other => Err(UartError::MalformedMessage(format!("unknown command tag {other:#x}"))),
        }
    }
}

impl Response {
    /// Serialises the response to a frame payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            Response::Trace(samples) => {
                let mut v = vec![TAG_R_TRACE];
                v.extend_from_slice(&(samples.len() as u32).to_le_bytes());
                v.extend_from_slice(samples);
                v
            }
            Response::Ack => vec![TAG_R_ACK],
            Response::Status(s) => {
                let mut v = vec![TAG_R_STATUS, u8::from(s.armed), u8::from(s.triggered)];
                v.extend_from_slice(&s.strikes_fired.to_le_bytes());
                v.extend_from_slice(&s.scheme_bits.to_le_bytes());
                v
            }
            Response::Upload { received, total } => {
                let mut v = vec![TAG_R_UPLOAD];
                v.extend_from_slice(&received.to_le_bytes());
                v.extend_from_slice(&total.to_le_bytes());
                v
            }
            Response::Error(code) => vec![TAG_R_ERROR, *code],
        }
    }

    /// Parses a response from a frame payload.
    ///
    /// # Errors
    ///
    /// Returns [`UartError::MalformedMessage`] on bad tags or truncation.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, UartError> {
        let (&tag, rest) = bytes
            .split_first()
            .ok_or_else(|| UartError::MalformedMessage("empty response".into()))?;
        match tag {
            TAG_R_TRACE => {
                if rest.len() < 4 {
                    return Err(UartError::MalformedMessage("trace header".into()));
                }
                let len = u32::from_le_bytes(rest[..4].try_into().expect("len 4")) as usize;
                if rest.len() != 4 + len {
                    return Err(UartError::MalformedMessage("trace body length".into()));
                }
                Ok(Response::Trace(rest[4..].to_vec()))
            }
            TAG_R_ACK => {
                if rest.is_empty() {
                    Ok(Response::Ack)
                } else {
                    Err(UartError::MalformedMessage("ack takes no payload".into()))
                }
            }
            TAG_R_STATUS => {
                if rest.len() != 10 {
                    return Err(UartError::MalformedMessage("status length".into()));
                }
                Ok(Response::Status(StatusInfo {
                    armed: rest[0] != 0,
                    triggered: rest[1] != 0,
                    strikes_fired: u32::from_le_bytes(rest[2..6].try_into().expect("len 4")),
                    scheme_bits: u32::from_le_bytes(rest[6..10].try_into().expect("len 4")),
                }))
            }
            TAG_R_UPLOAD => {
                if rest.len() != 8 {
                    return Err(UartError::MalformedMessage("upload status length".into()));
                }
                Ok(Response::Upload {
                    received: u32::from_le_bytes(rest[..4].try_into().expect("len 4")),
                    total: u32::from_le_bytes(rest[4..8].try_into().expect("len 4")),
                })
            }
            TAG_R_ERROR => match rest {
                [code] => Ok(Response::Error(*code)),
                _ => Err(UartError::MalformedMessage("error code".into())),
            },
            other => Err(UartError::MalformedMessage(format!("unknown response tag {other:#x}"))),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn command_round_trips() {
        let cmds = [
            Command::ReadTrace { max_samples: 4096 },
            Command::LoadScheme { data: vec![1, 2, 3, 0, 255] },
            Command::LoadScheme { data: vec![] },
            Command::Arm { enabled: true },
            Command::Arm { enabled: false },
            Command::Status,
            Command::UploadBegin { total_len: 48, crc: 0xBEEF },
            Command::UploadChunk { offset: 16, data: vec![9, 8, 7] },
            Command::UploadChunk { offset: 0, data: vec![] },
            Command::UploadCommit,
            Command::UploadStatus,
        ];
        for c in cmds {
            let bytes = c.to_bytes();
            assert_eq!(Command::from_bytes(&bytes).unwrap(), c);
        }
    }

    #[test]
    fn response_round_trips() {
        let resps = [
            Response::Trace(vec![90, 88, 70, 91]),
            Response::Trace(vec![]),
            Response::Ack,
            Response::Status(StatusInfo {
                armed: true,
                triggered: true,
                strikes_fired: 4500,
                scheme_bits: 9000,
            }),
            Response::Upload { received: 32, total: 48 },
            Response::Upload { received: 0, total: 0 },
            Response::Error(7),
        ];
        for r in resps {
            let bytes = r.to_bytes();
            assert_eq!(Response::from_bytes(&bytes).unwrap(), r);
        }
    }

    #[test]
    fn malformed_messages_are_rejected() {
        assert!(Command::from_bytes(&[]).is_err());
        assert!(Command::from_bytes(&[0x77]).is_err());
        assert!(Command::from_bytes(&[0x01, 1, 2]).is_err(), "short read_trace");
        assert!(Command::from_bytes(&[0x02, 10, 0, 0, 0, 1]).is_err(), "short scheme body");
        assert!(Response::from_bytes(&[]).is_err());
        assert!(Response::from_bytes(&[0x81, 5, 0, 0, 0]).is_err(), "short trace");
        assert!(Response::from_bytes(&[0x84, 1]).is_err(), "short status");
        assert!(Command::from_bytes(&[0x05, 1, 2]).is_err(), "short upload_begin");
        assert!(Command::from_bytes(&[0x06, 0, 0, 0, 0, 9, 0, 0, 0, 1]).is_err(), "short chunk");
        assert!(Command::from_bytes(&[0x07, 1]).is_err(), "commit takes no payload");
        assert!(Response::from_bytes(&[0x85, 1, 0, 0]).is_err(), "short upload state");
    }

    #[test]
    fn extra_payload_is_rejected() {
        assert!(Command::from_bytes(&[0x04, 9]).is_err());
        assert!(Response::from_bytes(&[0x82, 1]).is_err());
    }
}
