//! COBS framing with CRC-16 integrity.
//!
//! Frames on the wire are `COBS(payload ‖ CRC16(payload)) ‖ 0x00`. COBS
//! (consistent-overhead byte stuffing) guarantees the encoded body contains
//! no zero bytes, so a single `0x00` unambiguously delimits frames and the
//! decoder resynchronises after arbitrary corruption by skipping to the
//! next delimiter.

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF).
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= u16::from(byte) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

/// COBS-encodes `data` (no trailing delimiter).
fn cobs_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() + data.len() / 254 + 2);
    let mut code_pos = 0usize;
    out.push(0); // placeholder for the first code byte
    let mut code: u8 = 1;
    for &b in data {
        if b == 0 {
            out[code_pos] = code;
            code_pos = out.len();
            out.push(0);
            code = 1;
        } else {
            out.push(b);
            code += 1;
            if code == 0xFF {
                out[code_pos] = code;
                code_pos = out.len();
                out.push(0);
                code = 1;
            }
        }
    }
    out[code_pos] = code;
    out
}

/// COBS-decodes a delimiter-free block. Returns `None` on structure errors.
fn cobs_decode(data: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(data.len());
    let mut i = 0usize;
    while i < data.len() {
        let code = data[i] as usize;
        // A valid block is fully contained: `code - 1` data bytes must
        // follow the code byte (`i + code == data.len()` exactly at the
        // final block). A truncated/corrupted block that claims more is a
        // structure error, not a panic.
        if code == 0 || i + code > data.len() {
            return None;
        }
        for &b in &data[i + 1..i + code] {
            if b == 0 {
                return None;
            }
            out.push(b);
        }
        i += code;
        if code != 0xFF && i < data.len() {
            out.push(0);
        }
    }
    Some(out)
}

/// Encodes one payload into its on-wire representation
/// (`COBS(payload ‖ crc) ‖ 0x00`).
///
/// # Example
///
/// ```
/// use uart::frame::{encode_frame, FrameDecoder};
///
/// let wire = encode_frame(&[1, 2, 0, 3]);
/// assert_eq!(wire.last(), Some(&0u8), "zero-delimited");
/// assert!(!wire[..wire.len() - 1].contains(&0u8), "body is zero-free");
/// let mut dec = FrameDecoder::new();
/// assert_eq!(dec.push_bytes(&wire), vec![vec![1, 2, 0, 3]]);
/// ```
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut body = payload.to_vec();
    body.extend_from_slice(&crc16(payload).to_be_bytes());
    let mut out = cobs_encode(&body);
    out.push(0);
    out
}

/// Streaming frame decoder: feed bytes, collect whole verified payloads.
///
/// Corrupt frames (bad COBS structure or CRC mismatch) are counted and
/// dropped; decoding resynchronises at the next delimiter.
#[derive(Debug, Clone, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    corrupt_frames: u64,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Number of frames dropped due to corruption so far.
    pub fn corrupt_frames(&self) -> u64 {
        self.corrupt_frames
    }

    /// Consumes raw bytes; returns every complete, CRC-verified payload.
    pub fn push_bytes(&mut self, bytes: &[u8]) -> Vec<Vec<u8>> {
        let mut frames = Vec::new();
        for &b in bytes {
            if b != 0 {
                self.buf.push(b);
                continue;
            }
            if self.buf.is_empty() {
                continue; // idle delimiter
            }
            let block = std::mem::take(&mut self.buf);
            match cobs_decode(&block) {
                Some(body) if body.len() >= 2 => {
                    let (payload, crc_bytes) = body.split_at(body.len() - 2);
                    let expect = u16::from_be_bytes([crc_bytes[0], crc_bytes[1]]);
                    if crc16(payload) == expect {
                        frames.push(payload.to_vec());
                    } else {
                        self.corrupt_frames += 1;
                    }
                }
                _ => self.corrupt_frames += 1,
            }
        }
        frames
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn crc16_known_vector() {
        // CRC-16/CCITT-FALSE("123456789") = 0x29B1.
        assert_eq!(crc16(b"123456789"), 0x29B1);
        assert_eq!(crc16(b""), 0xFFFF);
    }

    #[test]
    fn cobs_round_trip_including_zeros() {
        for payload in [
            vec![],
            vec![0u8],
            vec![0, 0, 0],
            vec![1, 2, 3],
            vec![1, 0, 2, 0, 3],
            (0..=255u8).collect::<Vec<u8>>(),
            vec![7u8; 600], // exercises the 254-byte COBS block split
        ] {
            let enc = cobs_encode(&payload);
            assert!(!enc.contains(&0), "encoded body must be zero-free");
            assert_eq!(cobs_decode(&enc), Some(payload));
        }
    }

    #[test]
    fn frame_round_trip_multiple_frames() {
        let mut wire = Vec::new();
        let payloads: Vec<Vec<u8>> = vec![b"abc".to_vec(), vec![0, 0], vec![42u8; 300]];
        for p in &payloads {
            wire.extend(encode_frame(p));
        }
        let mut dec = FrameDecoder::new();
        // Feed one byte at a time to exercise streaming.
        let mut got = Vec::new();
        for b in wire {
            got.extend(dec.push_bytes(&[b]));
        }
        assert_eq!(got, payloads);
        assert_eq!(dec.corrupt_frames(), 0);
    }

    #[test]
    fn corruption_is_detected_and_resynchronised() {
        let mut wire = encode_frame(b"first");
        wire[2] ^= 0x5A; // corrupt mid-frame
        wire.extend(encode_frame(b"second"));
        let mut dec = FrameDecoder::new();
        let got = dec.push_bytes(&wire);
        assert_eq!(got, vec![b"second".to_vec()]);
        assert_eq!(dec.corrupt_frames(), 1);
    }

    #[test]
    fn truncated_frame_then_recovery() {
        let full = encode_frame(b"payload");
        let mut dec = FrameDecoder::new();
        // Half a frame, then a hard delimiter (e.g. line glitch), then a
        // good frame.
        let mut wire = full[..3].to_vec();
        wire.push(0);
        wire.extend(encode_frame(b"ok"));
        let got = dec.push_bytes(&wire);
        assert_eq!(got, vec![b"ok".to_vec()]);
        assert_eq!(dec.corrupt_frames(), 1);
    }

    #[test]
    fn overclaiming_code_byte_is_rejected_not_panicking() {
        // Regression: a code byte claiming one more data byte than the
        // block holds used to slice past the end. `[3, 1]` says "2 data
        // bytes follow" but only 1 does.
        assert_eq!(cobs_decode(&[3, 1]), None);
        assert_eq!(cobs_decode(&[2]), None);
        assert_eq!(cobs_decode(&[0xFF, 1, 2]), None);
    }

    #[test]
    fn idle_delimiters_are_ignored() {
        let mut dec = FrameDecoder::new();
        assert!(dec.push_bytes(&[0, 0, 0]).is_empty());
        assert_eq!(dec.corrupt_frames(), 0);
    }

    #[test]
    fn empty_payload_frame_round_trips() {
        let wire = encode_frame(b"");
        let mut dec = FrameDecoder::new();
        assert_eq!(dec.push_bytes(&wire), vec![Vec::<u8>::new()]);
    }
}
