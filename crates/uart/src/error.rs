use std::error::Error;
use std::fmt;

/// Errors raised by the serial channel.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum UartError {
    /// A frame failed its CRC or COBS structure check.
    CorruptFrame,
    /// A frame decoded but its payload is not a valid protocol message.
    MalformedMessage(String),
    /// The peer answered with a different message than the protocol allows.
    UnexpectedResponse(String),
    /// No response arrived within the polling budget.
    Timeout,
    /// The reliable transport exhausted every retransmission attempt.
    LinkDown {
        /// Total transmissions tried (initial send + retries).
        attempts: u32,
    },
    /// The peer reported an application-level error code.
    Remote(u8),
}

impl fmt::Display for UartError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UartError::CorruptFrame => write!(f, "corrupt frame"),
            UartError::MalformedMessage(msg) => write!(f, "malformed message: {msg}"),
            UartError::UnexpectedResponse(msg) => write!(f, "unexpected response: {msg}"),
            UartError::Timeout => write!(f, "timed out waiting for response"),
            UartError::LinkDown { attempts } => {
                write!(f, "link down: no response after {attempts} transmissions")
            }
            UartError::Remote(code) => write!(f, "remote error code {code}"),
        }
    }
}

impl Error for UartError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, UartError>;
