//! Serial remote-control channel.
//!
//! In the paper's prototype "the adversary connects to this prototyped
//! cloud-FPGA from the UART serial port, with which the adversary can
//! gather on-chip side-channel leakage from the TDC-based delay-sensor and
//! dynamically configure the attacking scheme file" (§IV). This crate is
//! that channel:
//!
//! * [`frame`] — byte-stream framing (COBS encoding, zero delimiters) with
//!   a CRC-16 integrity check, resilient to mid-stream corruption;
//! * [`proto`] — the command/response protocol: stream TDC traces out,
//!   load scheme files in, arm/disarm, query status;
//! * [`link`] — an in-memory full-duplex byte link standing in for the
//!   physical UART (with fault injection for tests);
//! * [`session`] — the attacker-side client and the FPGA-side shell that
//!   dispatches commands into whatever implements [`session::ShellHandler`];
//! * [`transport`] — a reliable stop-and-wait layer over the lossy link:
//!   sequence-numbered frames, ack/retransmit with capped exponential
//!   backoff, a response replay cache for exactly-once execution, and a
//!   chunked, resumable, CRC-verified scheme upload.
//!
//! # Example
//!
//! ```
//! use uart::frame::{encode_frame, FrameDecoder};
//!
//! let wire = encode_frame(b"hello");
//! let mut dec = FrameDecoder::new();
//! let frames = dec.push_bytes(&wire);
//! assert_eq!(frames, vec![b"hello".to_vec()]);
//! ```

#![deny(clippy::unwrap_used)]

pub mod frame;
pub mod link;
pub mod proto;
pub mod session;
pub mod transport;

mod error;

pub use error::{Result, UartError};
