//! In-memory full-duplex byte link standing in for the physical UART.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

#[derive(Debug, Default)]
struct Wire {
    bytes: VecDeque<u8>,
    /// Bit-corruption masks applied to the next bytes written (test rig).
    pending_corruption: VecDeque<u8>,
}

/// One endpoint of a duplex byte link.
///
/// # Example
///
/// ```
/// use uart::link::Endpoint;
///
/// let (mut a, mut b) = Endpoint::pair();
/// a.send(b"ping");
/// assert_eq!(b.recv_all(), b"ping");
/// b.send(b"pong");
/// assert_eq!(a.recv_all(), b"pong");
/// ```
#[derive(Debug, Clone)]
pub struct Endpoint {
    tx: Arc<Mutex<Wire>>,
    rx: Arc<Mutex<Wire>>,
}

impl Endpoint {
    /// Creates a connected endpoint pair.
    pub fn pair() -> (Endpoint, Endpoint) {
        let ab = Arc::new(Mutex::new(Wire::default()));
        let ba = Arc::new(Mutex::new(Wire::default()));
        (Endpoint { tx: Arc::clone(&ab), rx: Arc::clone(&ba) }, Endpoint { tx: ba, rx: ab })
    }

    /// Writes bytes toward the peer.
    pub fn send(&mut self, bytes: &[u8]) {
        let mut wire = self.tx.lock().expect("wire poisoned");
        for &b in bytes {
            let corrupted = match wire.pending_corruption.pop_front() {
                Some(mask) => b ^ mask,
                None => b,
            };
            wire.bytes.push_back(corrupted);
        }
    }

    /// Drains every byte the peer has written so far.
    pub fn recv_all(&mut self) -> Vec<u8> {
        let mut wire = self.rx.lock().expect("wire poisoned");
        wire.bytes.drain(..).collect()
    }

    /// Number of bytes waiting to be received.
    pub fn pending(&self) -> usize {
        self.rx.lock().expect("wire poisoned").bytes.len()
    }

    /// Test rig: XOR-corrupts the next `masks.len()` bytes this endpoint
    /// sends (one mask per byte; `0` leaves a byte intact).
    pub fn corrupt_next_sends(&mut self, masks: &[u8]) {
        let mut wire = self.tx.lock().expect("wire poisoned");
        wire.pending_corruption.extend(masks.iter().copied());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplex_is_independent_per_direction() {
        let (mut a, mut b) = Endpoint::pair();
        a.send(&[1, 2]);
        b.send(&[9]);
        assert_eq!(a.recv_all(), vec![9]);
        assert_eq!(b.recv_all(), vec![1, 2]);
        assert_eq!(a.recv_all(), Vec::<u8>::new(), "drained");
    }

    #[test]
    fn pending_counts_bytes() {
        let (mut a, b) = Endpoint::pair();
        assert_eq!(b.pending(), 0);
        a.send(&[5; 7]);
        assert_eq!(b.pending(), 7);
    }

    #[test]
    fn corruption_masks_apply_in_order() {
        let (mut a, mut b) = Endpoint::pair();
        a.corrupt_next_sends(&[0xFF, 0x00]);
        a.send(&[0x0F, 0x0F, 0x0F]);
        assert_eq!(b.recv_all(), vec![0xF0, 0x0F, 0x0F]);
    }

    #[test]
    fn clone_shares_the_wire() {
        let (mut a, mut b) = Endpoint::pair();
        let mut a2 = a.clone();
        a.send(&[1]);
        a2.send(&[2]);
        assert_eq!(b.recv_all(), vec![1, 2]);
    }
}
