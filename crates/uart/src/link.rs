//! In-memory full-duplex byte link standing in for the physical UART.
//!
//! Two channel grades are available:
//!
//! * [`Endpoint::pair`] — a perfect wire (plus the deterministic
//!   [`Endpoint::corrupt_next_sends`] rig for targeted tests);
//! * [`Endpoint::faulty_pair`] — a seeded stochastic channel with
//!   per-byte loss, bit-flip corruption, latency jitter and hard
//!   disconnect windows, all drawn from a `StdRng` so a `(traffic,
//!   seed)` pair replays bit-identically.
//!
//! Errors cluster in bursts (a two-state Gilbert–Elliott model): real
//! serial links fail in glitches, not as independent coin flips, and
//! burstiness is what makes frame retransmission effective. Time is a
//! shared tick counter advanced by [`Endpoint::advance`] — the transport
//! layer ticks it once per pump iteration, which drives jitter delivery
//! and disconnect windows deterministically.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Stochastic channel-fault model for [`Endpoint::faulty_pair`].
///
/// `loss` and `corrupt` are *long-run per-byte* rates; `burst_len`
/// controls how strongly the errors cluster (mean length of a bad burst
/// in bytes; `<= 1.0` degenerates to independent per-byte draws).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Long-run fraction of bytes dropped on the wire.
    pub loss: f64,
    /// Long-run fraction of bytes XOR-corrupted with a random mask.
    pub corrupt: f64,
    /// Mean bad-burst length in bytes (Gilbert–Elliott); `<= 1.0` means
    /// independent per-byte errors.
    pub burst_len: f64,
    /// Maximum extra delivery latency per byte, in link ticks (delivery
    /// order is preserved; jitter only stretches the queue).
    pub max_jitter: u64,
    /// Hard outage windows `(start_tick, len_ticks)`: every byte sent
    /// while a window is open is dropped, in both directions.
    pub disconnects: Vec<(u64, u64)>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            loss: 0.0,
            corrupt: 0.0,
            burst_len: 16.0,
            max_jitter: 0,
            disconnects: Vec::new(),
        }
    }
}

impl FaultConfig {
    /// A perfect channel (what [`Endpoint::pair`] gives you).
    pub fn clean() -> Self {
        FaultConfig::default()
    }

    /// True while tick `now` falls inside a disconnect window.
    pub fn disconnected_at(&self, now: u64) -> bool {
        self.disconnects.iter().any(|&(start, len)| now >= start && now < start + len)
    }
}

/// Byte counters for one link direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkStats {
    /// Bytes handed to `send`.
    pub sent: u64,
    /// Bytes dropped (loss or disconnect window).
    pub dropped: u64,
    /// Bytes delivered with a corrupted value.
    pub corrupted: u64,
}

/// Per-direction stochastic fault state.
#[derive(Debug)]
struct Faults {
    config: FaultConfig,
    rng: StdRng,
    /// Gilbert–Elliott state: in a bad burst.
    bad: bool,
    /// Delivery tick of the most recently queued byte (FIFO order).
    last_deliver: u64,
    stats: LinkStats,
}

impl Faults {
    fn new(config: FaultConfig, seed: u64) -> Self {
        Faults {
            config,
            rng: StdRng::seed_from_u64(seed),
            bad: false,
            last_deliver: 0,
            stats: LinkStats::default(),
        }
    }

    /// Long-run fraction of bytes inside a bad burst.
    fn duty(&self) -> f64 {
        (self.config.loss + self.config.corrupt).min(0.5)
    }

    /// Advances the burst state machine one byte.
    fn step_state(&mut self) {
        let duty = self.duty();
        if duty <= 0.0 || self.config.burst_len <= 1.0 {
            self.bad = false;
            return;
        }
        let p_leave_bad = 1.0 / self.config.burst_len;
        let p_enter_bad = duty / (1.0 - duty) * p_leave_bad;
        if self.bad {
            if self.rng.gen_bool(p_leave_bad.clamp(0.0, 1.0)) {
                self.bad = false;
            }
        } else if self.rng.gen_bool(p_enter_bad.clamp(0.0, 1.0)) {
            self.bad = true;
        }
    }

    /// Per-byte loss/corruption draw. Returns `None` for a dropped byte,
    /// otherwise the (possibly corrupted) value.
    fn filter(&mut self, byte: u8) -> Option<u8> {
        let duty = self.duty();
        if duty <= 0.0 {
            return Some(byte);
        }
        self.step_state();
        let (p_loss, p_corrupt) = if self.config.burst_len <= 1.0 {
            (self.config.loss, self.config.corrupt)
        } else if self.bad {
            // Scale so the long-run averages match the configured rates.
            (self.config.loss / duty, self.config.corrupt / duty)
        } else {
            (0.0, 0.0)
        };
        if p_loss > 0.0 && self.rng.gen_bool(p_loss.clamp(0.0, 1.0)) {
            self.stats.dropped += 1;
            return None;
        }
        if p_corrupt > 0.0
            && self.rng.gen_bool((p_corrupt / (1.0 - p_loss).max(1e-12)).clamp(0.0, 1.0))
        {
            self.stats.corrupted += 1;
            return Some(byte ^ self.rng.gen_range(1..=255u8));
        }
        Some(byte)
    }
}

#[derive(Debug, Default)]
struct Wire {
    /// `(deliver_at_tick, byte)` in FIFO order.
    bytes: VecDeque<(u64, u8)>,
    /// Bit-corruption masks applied to the next bytes written (test rig).
    pending_corruption: VecDeque<u8>,
    /// Stochastic fault state, present on faulty pairs only.
    faults: Option<Faults>,
}

/// One endpoint of a duplex byte link.
///
/// # Example
///
/// ```
/// use uart::link::Endpoint;
///
/// let (mut a, mut b) = Endpoint::pair();
/// a.send(b"ping");
/// assert_eq!(b.recv_all(), b"ping");
/// b.send(b"pong");
/// assert_eq!(a.recv_all(), b"pong");
/// ```
#[derive(Debug, Clone)]
pub struct Endpoint {
    tx: Arc<Mutex<Wire>>,
    rx: Arc<Mutex<Wire>>,
    clock: Arc<AtomicU64>,
}

impl Endpoint {
    /// Creates a perfectly reliable endpoint pair.
    pub fn pair() -> (Endpoint, Endpoint) {
        let ab = Arc::new(Mutex::new(Wire::default()));
        let ba = Arc::new(Mutex::new(Wire::default()));
        let clock = Arc::new(AtomicU64::new(0));
        (
            Endpoint { tx: Arc::clone(&ab), rx: Arc::clone(&ba), clock: Arc::clone(&clock) },
            Endpoint { tx: ba, rx: ab, clock },
        )
    }

    /// Creates an endpoint pair over a seeded stochastic channel. Each
    /// direction draws from its own deterministic stream, so a given
    /// `(traffic, seed)` pair replays bit-identically.
    pub fn faulty_pair(config: FaultConfig, seed: u64) -> (Endpoint, Endpoint) {
        let ab = Arc::new(Mutex::new(Wire {
            faults: Some(Faults::new(config.clone(), seed)),
            ..Wire::default()
        }));
        let ba = Arc::new(Mutex::new(Wire {
            faults: Some(Faults::new(config, seed ^ 0x9E37_79B9_7F4A_7C15)),
            ..Wire::default()
        }));
        let clock = Arc::new(AtomicU64::new(0));
        (
            Endpoint { tx: Arc::clone(&ab), rx: Arc::clone(&ba), clock: Arc::clone(&clock) },
            Endpoint { tx: ba, rx: ab, clock },
        )
    }

    /// Current link tick (shared by both endpoints).
    pub fn now(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    /// Advances the shared link clock. Jittered bytes are delivered once
    /// the clock passes their arrival tick; disconnect windows open and
    /// close against this clock.
    pub fn advance(&self, ticks: u64) {
        self.clock.fetch_add(ticks, Ordering::Relaxed);
    }

    /// Writes bytes toward the peer.
    pub fn send(&mut self, bytes: &[u8]) {
        let now = self.now();
        let mut wire = self.tx.lock().expect("wire poisoned");
        let Wire { bytes: queue, pending_corruption, faults } = &mut *wire;
        for &b in bytes {
            // The deterministic rig applies first (it models the sender's
            // own line driver glitching, independent of channel state).
            let rigged = match pending_corruption.pop_front() {
                Some(mask) => b ^ mask,
                None => b,
            };
            match faults {
                Some(f) => {
                    f.stats.sent += 1;
                    if f.config.disconnected_at(now) {
                        f.stats.dropped += 1;
                        continue;
                    }
                    let Some(byte) = f.filter(rigged) else { continue };
                    let jitter = if f.config.max_jitter > 0 {
                        f.rng.gen_range(0..=f.config.max_jitter)
                    } else {
                        0
                    };
                    let at = (now + jitter).max(f.last_deliver);
                    f.last_deliver = at;
                    queue.push_back((at, byte));
                }
                None => queue.push_back((now, rigged)),
            }
        }
    }

    /// Drains every byte that has *arrived* (delivery tick ≤ now).
    pub fn recv_all(&mut self) -> Vec<u8> {
        let now = self.now();
        let mut wire = self.rx.lock().expect("wire poisoned");
        let mut out = Vec::new();
        while let Some(&(at, b)) = wire.bytes.front() {
            if at > now {
                break;
            }
            out.push(b);
            wire.bytes.pop_front();
        }
        out
    }

    /// Number of bytes already arrived and waiting to be received.
    pub fn pending(&self) -> usize {
        let now = self.now();
        let wire = self.rx.lock().expect("wire poisoned");
        wire.bytes.iter().take_while(|&&(at, _)| at <= now).count()
    }

    /// Byte counters for this endpoint's outbound direction (zeroes on a
    /// perfect pair).
    pub fn tx_stats(&self) -> LinkStats {
        let wire = self.tx.lock().expect("wire poisoned");
        wire.faults.as_ref().map(|f| f.stats).unwrap_or_default()
    }

    /// True while the shared clock sits inside a disconnect window of
    /// this endpoint's outbound direction.
    pub fn is_disconnected(&self) -> bool {
        let now = self.now();
        let wire = self.tx.lock().expect("wire poisoned");
        wire.faults.as_ref().is_some_and(|f| f.config.disconnected_at(now))
    }

    /// Test rig: XOR-corrupts the next `masks.len()` bytes this endpoint
    /// sends (one mask per byte; `0` leaves a byte intact).
    pub fn corrupt_next_sends(&mut self, masks: &[u8]) {
        let mut wire = self.tx.lock().expect("wire poisoned");
        wire.pending_corruption.extend(masks.iter().copied());
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn duplex_is_independent_per_direction() {
        let (mut a, mut b) = Endpoint::pair();
        a.send(&[1, 2]);
        b.send(&[9]);
        assert_eq!(a.recv_all(), vec![9]);
        assert_eq!(b.recv_all(), vec![1, 2]);
        assert_eq!(a.recv_all(), Vec::<u8>::new(), "drained");
    }

    #[test]
    fn pending_counts_bytes() {
        let (mut a, b) = Endpoint::pair();
        assert_eq!(b.pending(), 0);
        a.send(&[5; 7]);
        assert_eq!(b.pending(), 7);
    }

    #[test]
    fn corruption_masks_apply_in_order() {
        let (mut a, mut b) = Endpoint::pair();
        a.corrupt_next_sends(&[0xFF, 0x00]);
        a.send(&[0x0F, 0x0F, 0x0F]);
        assert_eq!(b.recv_all(), vec![0xF0, 0x0F, 0x0F]);
    }

    #[test]
    fn clone_shares_the_wire() {
        let (mut a, mut b) = Endpoint::pair();
        let mut a2 = a.clone();
        a.send(&[1]);
        a2.send(&[2]);
        assert_eq!(b.recv_all(), vec![1, 2]);
    }

    #[test]
    fn faulty_pair_with_zero_rates_is_transparent() {
        let (mut a, mut b) = Endpoint::faulty_pair(FaultConfig::clean(), 7);
        a.send(&[1, 2, 3]);
        assert_eq!(b.recv_all(), vec![1, 2, 3]);
        assert_eq!(a.tx_stats(), LinkStats { sent: 3, dropped: 0, corrupted: 0 });
    }

    #[test]
    fn loss_rate_is_roughly_honoured_and_deterministic() {
        let config = FaultConfig { loss: 0.1, ..FaultConfig::default() };
        let run = |seed| {
            let (mut a, mut b) = Endpoint::faulty_pair(config.clone(), seed);
            for _ in 0..100 {
                a.send(&[0xAA; 100]);
            }
            b.recv_all()
        };
        let got = run(42);
        let frac = got.len() as f64 / 10_000.0;
        assert!((0.82..=0.97).contains(&frac), "delivered fraction {frac}");
        assert_eq!(got, run(42), "same seed must replay bit-identically");
        assert_ne!(got.len(), run(43).len(), "different seed, different draw");
        let stats = {
            let (mut a, _b) = Endpoint::faulty_pair(config, 42);
            for _ in 0..100 {
                a.send(&[0xAA; 100]);
            }
            a.tx_stats()
        };
        assert_eq!(stats.sent, 10_000);
        assert_eq!(stats.dropped as usize, 10_000 - got.len());
    }

    #[test]
    fn corruption_is_bursty_and_counted() {
        let config = FaultConfig { corrupt: 0.1, burst_len: 16.0, ..FaultConfig::default() };
        let (mut a, mut b) = Endpoint::faulty_pair(config, 5);
        a.send(&[0u8; 20_000]);
        let got = b.recv_all();
        assert_eq!(got.len(), 20_000, "corruption never drops bytes");
        let bad: Vec<usize> =
            got.iter().enumerate().filter(|(_, &b)| b != 0).map(|(i, _)| i).collect();
        let frac = bad.len() as f64 / 20_000.0;
        assert!((0.05..=0.16).contains(&frac), "corrupted fraction {frac}");
        assert_eq!(a.tx_stats().corrupted as usize, bad.len());
        // Burstiness: corrupted bytes cluster, so the mean gap between
        // *consecutive* corruptions is far below the iid expectation
        // (1/rate = 10): most corrupt bytes sit right next to another one.
        let adjacent =
            bad.windows(2).filter(|w| w[1] - w[0] <= 3).count() as f64 / bad.len().max(1) as f64;
        assert!(adjacent > 0.5, "bursty errors must cluster: adjacency {adjacent}");
    }

    #[test]
    fn jitter_delays_but_preserves_order() {
        let config = FaultConfig { max_jitter: 5, ..FaultConfig::default() };
        let (mut a, mut b) = Endpoint::faulty_pair(config, 11);
        a.send(&[1, 2, 3, 4, 5]);
        // Nothing may arrive before the clock advances past the jitter.
        let early = b.recv_all();
        let mut got = early.clone();
        for _ in 0..5 {
            b.advance(1);
            got.extend(b.recv_all());
        }
        assert_eq!(got, vec![1, 2, 3, 4, 5], "delivery preserves order");
        assert!(early.len() < 5, "jitter must delay at least one byte");
    }

    #[test]
    fn disconnect_window_drops_everything_then_recovers() {
        let config = FaultConfig { disconnects: vec![(5, 10)], ..FaultConfig::default() };
        let (mut a, mut b) = Endpoint::faulty_pair(config, 3);
        a.send(&[1]);
        a.advance(5); // into the window
        assert!(a.is_disconnected());
        a.send(&[2, 3]);
        a.advance(10); // past the window
        assert!(!a.is_disconnected());
        a.send(&[4]);
        assert_eq!(b.recv_all(), vec![1, 4], "window bytes are gone for good");
        assert_eq!(a.tx_stats().dropped, 2);
    }
}
