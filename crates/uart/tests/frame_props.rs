//! Property fuzz of the COBS+CRC frame codec: arbitrary corruption,
//! truncation and concatenation must never panic the decoder and must
//! never make it accept a payload nobody sent.
//!
//! (The guard here is real: fuzzing this surface found an out-of-bounds
//! slice in `cobs_decode` for blocks whose code byte overclaims the
//! remaining length.)

use proptest::prelude::*;
use uart::frame::{encode_frame, FrameDecoder};

proptest! {
    /// Arbitrary byte soup — any corruption, any framing garbage — must
    /// never panic, and every frame the decoder *does* accept must carry
    /// a valid CRC by construction, so re-encoding it must round-trip.
    #[test]
    fn arbitrary_soup_never_panics(soup in prop::collection::vec(any::<u8>(), 0..2048)) {
        let mut dec = FrameDecoder::new();
        for frame in dec.push_bytes(&soup) {
            let mut check = FrameDecoder::new();
            prop_assert_eq!(check.push_bytes(&encode_frame(&frame)), vec![frame]);
        }
        // The decoder must stay functional after the soup: a clean frame
        // on the tail (after a resynchronising delimiter) still decodes.
        dec.push_bytes(&[0]);
        let got = dec.push_bytes(&encode_frame(b"after the storm"));
        prop_assert_eq!(got, vec![b"after the storm".to_vec()]);
    }

    /// Truncating a multi-frame stream anywhere yields exactly the frames
    /// whose delimiter survived, in order — never a partial or altered
    /// payload.
    #[test]
    fn truncation_only_loses_the_tail(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..6),
        cut_frac in 0u32..=1000,
    ) {
        let mut wire = Vec::new();
        let mut ends = Vec::new();
        for p in &payloads {
            wire.extend(encode_frame(p));
            ends.push(wire.len());
        }
        let cut = (wire.len() as u64 * u64::from(cut_frac) / 1000) as usize;
        let complete = ends.iter().filter(|&&e| e <= cut).count();
        let mut dec = FrameDecoder::new();
        let got = dec.push_bytes(&wire[..cut]);
        prop_assert_eq!(got.len(), complete);
        for (g, p) in got.iter().zip(&payloads) {
            prop_assert_eq!(g, p);
        }
    }

    /// Decoding is invariant to how the stream is chunked: byte-at-a-time
    /// delivery produces exactly the one-shot result, including the
    /// corrupt-frame count.
    #[test]
    fn chunking_is_transparent(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..48), 0..5),
        noise in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        let mut wire = Vec::new();
        for p in &payloads {
            wire.extend(encode_frame(p));
        }
        wire.extend(&noise); // trailing garbage must not matter either
        let mut one_shot = FrameDecoder::new();
        let all = one_shot.push_bytes(&wire);
        let mut streaming = FrameDecoder::new();
        let mut collected = Vec::new();
        for &b in &wire {
            collected.extend(streaming.push_bytes(&[b]));
        }
        prop_assert_eq!(collected, all);
        prop_assert_eq!(streaming.corrupt_frames(), one_shot.corrupt_frames());
    }

    /// A corruption burst of up to two adjacent bytes is either detected
    /// (frame dropped, counter bumped) or harmless to the *other* frames:
    /// the decoder never emits a payload that differs from every input.
    #[test]
    fn burst_corruption_never_forges(
        before in prop::collection::vec(any::<u8>(), 0..32),
        victim in prop::collection::vec(any::<u8>(), 1..64),
        after in prop::collection::vec(any::<u8>(), 0..32),
        pos in 0usize..256,
        mask_a in 1u8..=255,
        mask_b in 0u8..=255,
    ) {
        let mut wire = encode_frame(&before);
        let start = wire.len();
        wire.extend(encode_frame(&victim));
        let end = wire.len();
        wire.extend(encode_frame(&after));
        // Corrupt inside the victim frame (delimiter included: hitting it
        // merges two frames, which the CRC must then reject).
        let idx = start + pos % (end - start);
        wire[idx] ^= mask_a;
        if idx + 1 < wire.len() {
            wire[idx + 1] ^= mask_b;
        }
        let mut dec = FrameDecoder::new();
        let got = dec.push_bytes(&wire);
        for frame in &got {
            prop_assert!(
                frame == &before || frame == &victim || frame == &after,
                "decoder forged a payload nobody sent: {:?}",
                frame
            );
        }
        prop_assert!(!got.is_empty(), "untouched frames must survive");
        prop_assert!(got.len() + dec.corrupt_frames() as usize >= 3 - 1,
            "at most the victim and one neighbour may vanish silently");
    }
}

/// Deterministic regression for the transport shell's replay cache, which
/// used to key on the 16-bit sequence number alone: once the counter
/// wrapped, a *different* request landing on the cached seq was answered
/// with the previous command's stale response instead of being executed.
/// The cache now keys on `(seq, request CRC)`.
mod replay_cache_wraparound {
    use uart::frame::{encode_frame, FrameDecoder};
    use uart::link::Endpoint;
    use uart::proto::{Command, Response, StatusInfo};
    use uart::session::ShellHandler;
    use uart::transport::TransportShell;

    #[derive(Default)]
    struct CountingFpga {
        status_calls: u32,
        arm_calls: u32,
    }

    impl ShellHandler for CountingFpga {
        fn read_trace(&mut self, _max_samples: usize) -> Vec<u8> {
            Vec::new()
        }
        fn load_scheme(&mut self, _data: &[u8]) -> Result<(), u8> {
            Ok(())
        }
        fn arm(&mut self, _enabled: bool) -> Result<(), u8> {
            self.arm_calls += 1;
            Ok(())
        }
        fn status(&mut self) -> StatusInfo {
            self.status_calls += 1;
            StatusInfo { armed: false, triggered: false, strikes_fired: 0, scheme_bits: 0 }
        }
    }

    /// Raw transport request packet: `[seq_lo, seq_hi, kind = 0, inner…]`.
    fn request(seq: u16, command: &Command) -> Vec<u8> {
        let mut packet = seq.to_le_bytes().to_vec();
        packet.push(0x00);
        packet.extend(command.to_bytes());
        encode_frame(&packet)
    }

    fn exchange(
        driver: &mut Endpoint,
        shell: &mut TransportShell,
        fpga: &mut CountingFpga,
        decoder: &mut FrameDecoder,
        wire: &[u8],
    ) -> Vec<Response> {
        driver.send(wire);
        driver.advance(1);
        shell.poll(fpga);
        driver.advance(1);
        decoder
            .push_bytes(&driver.recv_all())
            .iter()
            .map(|frame| Response::from_bytes(&frame[3..]).expect("well-formed response"))
            .collect()
    }

    #[test]
    fn wrapped_seq_with_different_request_executes_instead_of_replaying() {
        let (mut driver, shell_end) = Endpoint::pair();
        let mut shell = TransportShell::new(shell_end);
        let mut fpga = CountingFpga::default();
        let mut decoder = FrameDecoder::new();

        // Exchange at seq 7.
        let status_req = request(7, &Command::Status);
        let got = exchange(&mut driver, &mut shell, &mut fpga, &mut decoder, &status_req);
        assert!(matches!(got.as_slice(), [Response::Status(_)]));
        assert_eq!(fpga.status_calls, 1);

        // A retransmitted duplicate is replayed, not re-executed.
        let got = exchange(&mut driver, &mut shell, &mut fpga, &mut decoder, &status_req);
        assert!(matches!(got.as_slice(), [Response::Status(_)]));
        assert_eq!(fpga.status_calls, 1, "duplicate must not re-execute");
        assert_eq!(shell.replayed(), 1);

        // 65,536 exchanges later the counter lands on 7 again, but the
        // request differs: it must execute and must not be answered with
        // the cached Status response.
        let arm_req = request(7, &Command::Arm { enabled: true });
        let got = exchange(&mut driver, &mut shell, &mut fpga, &mut decoder, &arm_req);
        assert!(matches!(got.as_slice(), [Response::Ack]), "stale replay answered: {got:?}");
        assert_eq!(fpga.arm_calls, 1, "new command on a wrapped seq must execute");
        assert_eq!(shell.replayed(), 1, "wrapped seq must miss the replay cache");
    }
}
