//! Property fuzz of the COBS+CRC frame codec: arbitrary corruption,
//! truncation and concatenation must never panic the decoder and must
//! never make it accept a payload nobody sent.
//!
//! (The guard here is real: fuzzing this surface found an out-of-bounds
//! slice in `cobs_decode` for blocks whose code byte overclaims the
//! remaining length.)

use proptest::prelude::*;
use uart::frame::{encode_frame, FrameDecoder};

proptest! {
    /// Arbitrary byte soup — any corruption, any framing garbage — must
    /// never panic, and every frame the decoder *does* accept must carry
    /// a valid CRC by construction, so re-encoding it must round-trip.
    #[test]
    fn arbitrary_soup_never_panics(soup in prop::collection::vec(any::<u8>(), 0..2048)) {
        let mut dec = FrameDecoder::new();
        for frame in dec.push_bytes(&soup) {
            let mut check = FrameDecoder::new();
            prop_assert_eq!(check.push_bytes(&encode_frame(&frame)), vec![frame]);
        }
        // The decoder must stay functional after the soup: a clean frame
        // on the tail (after a resynchronising delimiter) still decodes.
        dec.push_bytes(&[0]);
        let got = dec.push_bytes(&encode_frame(b"after the storm"));
        prop_assert_eq!(got, vec![b"after the storm".to_vec()]);
    }

    /// Truncating a multi-frame stream anywhere yields exactly the frames
    /// whose delimiter survived, in order — never a partial or altered
    /// payload.
    #[test]
    fn truncation_only_loses_the_tail(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..6),
        cut_frac in 0u32..=1000,
    ) {
        let mut wire = Vec::new();
        let mut ends = Vec::new();
        for p in &payloads {
            wire.extend(encode_frame(p));
            ends.push(wire.len());
        }
        let cut = (wire.len() as u64 * u64::from(cut_frac) / 1000) as usize;
        let complete = ends.iter().filter(|&&e| e <= cut).count();
        let mut dec = FrameDecoder::new();
        let got = dec.push_bytes(&wire[..cut]);
        prop_assert_eq!(got.len(), complete);
        for (g, p) in got.iter().zip(&payloads) {
            prop_assert_eq!(g, p);
        }
    }

    /// Decoding is invariant to how the stream is chunked: byte-at-a-time
    /// delivery produces exactly the one-shot result, including the
    /// corrupt-frame count.
    #[test]
    fn chunking_is_transparent(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..48), 0..5),
        noise in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        let mut wire = Vec::new();
        for p in &payloads {
            wire.extend(encode_frame(p));
        }
        wire.extend(&noise); // trailing garbage must not matter either
        let mut one_shot = FrameDecoder::new();
        let all = one_shot.push_bytes(&wire);
        let mut streaming = FrameDecoder::new();
        let mut collected = Vec::new();
        for &b in &wire {
            collected.extend(streaming.push_bytes(&[b]));
        }
        prop_assert_eq!(collected, all);
        prop_assert_eq!(streaming.corrupt_frames(), one_shot.corrupt_frames());
    }

    /// A corruption burst of up to two adjacent bytes is either detected
    /// (frame dropped, counter bumped) or harmless to the *other* frames:
    /// the decoder never emits a payload that differs from every input.
    #[test]
    fn burst_corruption_never_forges(
        before in prop::collection::vec(any::<u8>(), 0..32),
        victim in prop::collection::vec(any::<u8>(), 1..64),
        after in prop::collection::vec(any::<u8>(), 0..32),
        pos in 0usize..256,
        mask_a in 1u8..=255,
        mask_b in 0u8..=255,
    ) {
        let mut wire = encode_frame(&before);
        let start = wire.len();
        wire.extend(encode_frame(&victim));
        let end = wire.len();
        wire.extend(encode_frame(&after));
        // Corrupt inside the victim frame (delimiter included: hitting it
        // merges two frames, which the CRC must then reject).
        let idx = start + pos % (end - start);
        wire[idx] ^= mask_a;
        if idx + 1 < wire.len() {
            wire[idx + 1] ^= mask_b;
        }
        let mut dec = FrameDecoder::new();
        let got = dec.push_bytes(&wire);
        for frame in &got {
            prop_assert!(
                frame == &before || frame == &victim || frame == &after,
                "decoder forged a payload nobody sent: {:?}",
                frame
            );
        }
        prop_assert!(!got.is_empty(), "untouched frames must survive");
        prop_assert!(got.len() + dec.corrupt_frames() as usize >= 3 - 1,
            "at most the victim and one neighbour may vanish silently");
    }
}
