//! Property-based tests for the DNN substrate.

use dnn::fixed::QFormat;
use dnn::layers::{Conv2d, Dense, Layer, LayerParams, MaxPool2d, Tanh};
use dnn::network::softmax;
use dnn::quant::QuantizedNetwork;
use dnn::tensor::Tensor;
use dnn::zoo::mlp;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tensor_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-2.0f32..2.0, len)
}

proptest! {
    /// Convolution is linear: conv(a·x) = a·conv(x) when bias is zero.
    #[test]
    fn conv_is_homogeneous(data in tensor_strategy(36), scale in 0.25f32..4.0) {
        let mut conv = Conv2d::new("c", 1, 2, 3, &mut StdRng::seed_from_u64(1));
        let mut p = conv.params().unwrap();
        p.bias = Tensor::zeros(&[2]);
        conv.set_params(p);
        let x = Tensor::from_vec(data, &[1, 6, 6]);
        let y1 = conv.forward(&x).map(|v| v * scale);
        let y2 = conv.forward(&x.map(|v| v * scale));
        for (a, b) in y1.data().iter().zip(y2.data()) {
            prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    /// Max pooling of a constant map is that constant.
    #[test]
    fn pool_of_constant_is_constant(v in -5.0f32..5.0) {
        let mut pool = MaxPool2d::new("p", 2);
        let out = pool.forward(&Tensor::full(&[3, 4, 4], v));
        prop_assert!(out.data().iter().all(|&o| o == v));
    }

    /// Pooling commutes with monotone rescaling by a positive factor.
    #[test]
    fn pool_commutes_with_positive_scale(data in tensor_strategy(16), k in 0.1f32..3.0) {
        let mut pool = MaxPool2d::new("p", 2);
        let x = Tensor::from_vec(data, &[1, 4, 4]);
        let a = pool.forward(&x.map(|v| v * k));
        let b = pool.forward(&x).map(|v| v * k);
        for (x, y) in a.data().iter().zip(b.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Softmax is invariant to constant shifts and sums to one.
    #[test]
    fn softmax_shift_invariance(data in tensor_strategy(10), shift in -50.0f32..50.0) {
        let x = Tensor::from_vec(data, &[10]);
        let p1 = softmax(&x);
        let p2 = softmax(&x.map(|v| v + shift));
        prop_assert!((p1.sum() - 1.0).abs() < 1e-5);
        for (a, b) in p1.data().iter().zip(p2.data()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    /// Dense layers respect superposition: f(x+y) - f(0) = (f(x)-f(0)) + (f(y)-f(0)).
    #[test]
    fn dense_superposition(xa in tensor_strategy(8), xb in tensor_strategy(8)) {
        let mut fc = Dense::new("d", 8, 4, &mut StdRng::seed_from_u64(2));
        let zero = fc.forward(&Tensor::zeros(&[8]));
        let a = Tensor::from_vec(xa, &[8]);
        let b = Tensor::from_vec(xb, &[8]);
        let sum = fc.forward(&a.zip(&b, |x, y| x + y));
        let fa = fc.forward(&a);
        let fb = fc.forward(&b);
        for i in 0..4 {
            let lhs = sum.data()[i] - zero.data()[i];
            let rhs = (fa.data()[i] - zero.data()[i]) + (fb.data()[i] - zero.data()[i]);
            prop_assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
        }
    }

    /// Quantisation preserves order (monotone non-decreasing).
    #[test]
    fn quantisation_preserves_order(a in -4.5f32..4.5, b in -4.5f32..4.5) {
        let q = QFormat::paper();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(q.quantize(lo).to_f32() <= q.quantize(hi).to_f32());
    }

    /// tanh keeps every activation strictly inside the fixed-point range.
    #[test]
    fn tanh_output_always_quantisable(data in tensor_strategy(32)) {
        let mut act = Tanh::new("t");
        let q = QFormat::paper();
        let out = act.forward(&Tensor::from_vec(data, &[32]));
        for &v in out.data() {
            let rt = q.quantize(v).to_f32();
            prop_assert!((rt - v).abs() <= q.resolution() / 2.0 + 1e-6);
        }
    }

    /// Model byte-codec round-trips after arbitrary re-serialisation.
    #[test]
    fn model_codec_round_trips(seed in 0u64..500) {
        let net = mlp(&mut StdRng::seed_from_u64(seed));
        let q = QuantizedNetwork::from_sequential(&net, &[1, 28, 28], QFormat::paper()).unwrap();
        let rt = QuantizedNetwork::from_bytes(&q.to_bytes()).unwrap();
        prop_assert_eq!(&q, &rt);
        prop_assert_eq!(rt.to_bytes(), q.to_bytes());
    }

    /// Setting then getting layer parameters round-trips exactly.
    #[test]
    fn layer_params_round_trip(weights in tensor_strategy(8 * 4), bias in tensor_strategy(4)) {
        let mut fc = Dense::new("d", 8, 4, &mut StdRng::seed_from_u64(3));
        let params = LayerParams {
            weights: Tensor::from_vec(weights, &[4, 8]),
            bias: Tensor::from_vec(bias, &[4]),
        };
        fc.set_params(params.clone());
        prop_assert_eq!(fc.params().unwrap(), params);
    }
}
