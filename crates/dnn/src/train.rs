//! Training loop and evaluation.

use rand::Rng;

use crate::digits::Dataset;
use crate::network::{Sequential, SgdConfig};
use crate::tensor::Tensor;

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Optimiser settings.
    pub sgd: SgdConfig,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { epochs: 6, batch_size: 16, sgd: SgdConfig { lr: 0.08, momentum: 0.9 } }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss.
    pub mean_loss: f32,
    /// Accuracy on the held-out set, if one was provided.
    pub eval_accuracy: Option<f64>,
}

/// Trains `net` on `train`, optionally evaluating on `eval` each epoch.
///
/// Returns per-epoch statistics. Deterministic given the RNG seed.
///
/// # Example
///
/// ```no_run
/// use dnn::digits::{Dataset, RenderParams};
/// use dnn::lenet::lenet5;
/// use dnn::train::{train, TrainConfig};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut ds = Dataset::generate(2200, &RenderParams::default(), &mut rng);
/// let test = ds.split_off(200);
/// let mut net = lenet5(&mut rng);
/// let stats = train(&mut net, &ds, Some(&test), &TrainConfig::default(), &mut rng);
/// assert!(stats.last().unwrap().eval_accuracy.unwrap() > 0.9);
/// ```
pub fn train(
    net: &mut Sequential,
    train: &Dataset,
    eval: Option<&Dataset>,
    config: &TrainConfig,
    rng: &mut impl Rng,
) -> Vec<EpochStats> {
    let mut history = Vec::with_capacity(config.epochs);
    for epoch in 0..config.epochs {
        let order = train.shuffled_indices(rng);
        let mut total_loss = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(config.batch_size.max(1)) {
            let batch: Vec<(&Tensor, usize)> = chunk.iter().map(|&i| train.sample(i)).collect();
            total_loss += net.train_batch(&batch, &config.sgd);
            batches += 1;
        }
        let eval_accuracy = eval.map(|ds| evaluate(net, ds));
        history.push(EpochStats {
            epoch,
            mean_loss: if batches > 0 { total_loss / batches as f32 } else { 0.0 },
            eval_accuracy,
        });
    }
    history
}

/// Classification accuracy of the float network on a dataset.
pub fn evaluate(net: &mut Sequential, ds: &Dataset) -> f64 {
    if ds.is_empty() {
        return 0.0;
    }
    let correct = ds.iter().filter(|(x, y)| net.predict(x) == *y).count();
    correct as f64 / ds.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digits::RenderParams;
    use crate::layers::{Dense, Tanh};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A small MLP trains much faster than LeNet in debug builds; the
    /// LeNet end-to-end training run lives in the integration tests and
    /// benches, which build with optimisation.
    fn small_mlp(rng: &mut StdRng) -> Sequential {
        let mut net = Sequential::new("mlp");
        net.push(Box::new(Dense::new("fc1", 28 * 28, 32, rng)));
        net.push(Box::new(Tanh::new("t1")));
        net.push(Box::new(Dense::new("fc2", 32, 10, rng)));
        net
    }

    #[test]
    fn training_reduces_loss_and_learns() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut ds = Dataset::generate(220, &RenderParams::default(), &mut rng);
        let test = ds.split_off(40);
        let mut net = small_mlp(&mut rng);
        let config =
            TrainConfig { epochs: 8, batch_size: 8, sgd: SgdConfig { lr: 0.1, momentum: 0.9 } };
        let history = train(&mut net, &ds, Some(&test), &config, &mut rng);
        assert_eq!(history.len(), 8);
        let first = history.first().unwrap().mean_loss;
        let last = history.last().unwrap().mean_loss;
        assert!(last < first * 0.6, "loss {first} -> {last} did not drop");
        let acc = history.last().unwrap().eval_accuracy.unwrap();
        assert!(acc > 0.6, "eval accuracy {acc}");
    }

    #[test]
    fn evaluate_empty_dataset_is_zero() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = small_mlp(&mut rng);
        let mut ds = Dataset::generate(5, &RenderParams::default(), &mut rng);
        let empty = ds.split_off(0);
        assert_eq!(evaluate(&mut net, &empty), 0.0);
    }

    /// Full LeNet-5 training to paper-like accuracy. Ignored by default
    /// because it needs an optimised build; run with
    /// `cargo test -p dnn --release -- --ignored lenet_reaches`.
    #[test]
    #[ignore = "slow: run in release"]
    fn lenet_reaches_mid_90s_accuracy() {
        let mut rng = StdRng::seed_from_u64(2024);
        let mut ds = Dataset::generate(3000, &RenderParams::default(), &mut rng);
        let test = ds.split_off(500);
        let mut net = crate::lenet::lenet5(&mut rng);
        let history = train(&mut net, &ds, Some(&test), &TrainConfig::default(), &mut rng);
        let acc = history.last().unwrap().eval_accuracy.unwrap();
        assert!(acc > 0.93, "LeNet accuracy {acc} below the paper regime");
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<f32> {
            let mut rng = StdRng::seed_from_u64(seed);
            let ds = Dataset::generate(60, &RenderParams::default(), &mut rng);
            let mut net = small_mlp(&mut rng);
            let config = TrainConfig { epochs: 2, batch_size: 8, sgd: SgdConfig::default() };
            train(&mut net, &ds, None, &config, &mut rng).iter().map(|e| e.mean_loss).collect()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
