//! The paper's victim network: LeNet-5 (Fig. 5a variant).
//!
//! Architecture as in the paper: two convolutional layers for feature
//! extraction (`Conv1`, `Conv2`), one pooling layer (`Pool1`) between them,
//! and two fully connected layers (`FC1`, `FC2`); `tanh` activations
//! throughout; 10-way softmax at the output.
//!
//! Shapes for a 28×28 input:
//!
//! ```text
//! input  [1, 28, 28]
//! Conv1  6 × 5×5   -> [6, 24, 24]   (+ tanh)
//! Pool1  2×2        -> [6, 12, 12]
//! Conv2  16 × 5×5   -> [16, 8, 8]   (+ tanh)
//! FC1    1024 → 120                 (+ tanh)
//! FC2    120 → 10                   (logits)
//! ```

use rand::Rng;

use crate::layers::{Conv2d, Dense, MaxPool2d, Tanh};
use crate::network::Sequential;

/// Canonical names of the five parameterised/pooling stages, in execution
/// order. These are the names the attack literature (and our profiler)
/// refers to.
pub const STAGE_NAMES: [&str; 5] = ["conv1", "pool1", "conv2", "fc1", "fc2"];

/// Builds the LeNet-5 victim with freshly initialised weights.
///
/// # Example
///
/// ```
/// use dnn::lenet::lenet5;
/// use dnn::tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut net = lenet5(&mut rand::rngs::StdRng::seed_from_u64(0));
/// let logits = net.forward(&Tensor::zeros(&[1, 28, 28]));
/// assert_eq!(logits.shape(), &[10]);
/// ```
pub fn lenet5(rng: &mut impl Rng) -> Sequential {
    let mut net = Sequential::new("lenet5");
    net.push(Box::new(Conv2d::new("conv1", 1, 6, 5, rng)));
    net.push(Box::new(Tanh::new("conv1_tanh")));
    net.push(Box::new(MaxPool2d::new("pool1", 2)));
    net.push(Box::new(Conv2d::new("conv2", 6, 16, 5, rng)));
    net.push(Box::new(Tanh::new("conv2_tanh")));
    net.push(Box::new(Dense::new("fc1", 16 * 8 * 8, 120, rng)));
    net.push(Box::new(Tanh::new("fc1_tanh")));
    net.push(Box::new(Dense::new("fc2", 120, 10, rng)));
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::LayerKind;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn structure_matches_paper() {
        let net = lenet5(&mut StdRng::seed_from_u64(0));
        let kinds = net.kinds();
        assert!(matches!(kinds[0], LayerKind::Conv { in_channels: 1, out_channels: 6, kernel: 5 }));
        assert!(matches!(kinds[2], LayerKind::MaxPool { window: 2 }));
        assert!(matches!(
            kinds[3],
            LayerKind::Conv { in_channels: 6, out_channels: 16, kernel: 5 }
        ));
        assert!(matches!(kinds[5], LayerKind::Dense { inputs: 1024, outputs: 120 }));
        assert!(matches!(kinds[7], LayerKind::Dense { inputs: 120, outputs: 10 }));
    }

    #[test]
    fn forward_shape_chain() {
        let mut net = lenet5(&mut StdRng::seed_from_u64(0));
        let logits = net.forward(&Tensor::zeros(&[1, 28, 28]));
        assert_eq!(logits.shape(), &[10]);
    }

    #[test]
    fn parameter_count_is_lenet_sized() {
        let net = lenet5(&mut StdRng::seed_from_u64(0));
        let expected = (6 * 25 + 6) + (16 * 6 * 25 + 16) + (1024 * 120 + 120) + (120 * 10 + 10);
        assert_eq!(net.param_count(), expected);
    }

    #[test]
    fn fresh_networks_differ_by_seed() {
        let mut a = lenet5(&mut StdRng::seed_from_u64(1));
        let mut b = lenet5(&mut StdRng::seed_from_u64(2));
        let x = Tensor::full(&[1, 28, 28], 0.5);
        assert_ne!(a.forward(&x).data(), b.forward(&x).data());
    }
}
