//! Post-training quantisation and integer reference inference.
//!
//! Deployment follows the paper: parameters and activations are 8-bit
//! fixed point ([`QFormat::paper`]); MAC accumulation happens on the raw
//! integer codes exactly as a DSP48 does it, so the `accel` crate can
//! re-execute the same arithmetic cycle by cycle with fault hooks and a
//! fault-free run provably agrees with the reference here.
//!
//! Scale conventions (for the 5-fraction-bit format):
//!
//! * activation/weight codes are `i8` with value `code / 32`;
//! * products and accumulators are `i32` at scale `1/1024` (Q·10);
//! * biases are pre-scaled to the accumulator scale;
//! * `tanh` is applied on the dequantised accumulator and re-quantised —
//!   on the FPGA this is a block-RAM lookup table, with identical results.

use crate::fixed::QFormat;
use crate::layers::LayerKind;
use crate::network::Sequential;
use crate::tensor::Tensor;

use std::error::Error;
use std::fmt;

/// Errors from quantised-model construction and decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum QuantError {
    /// The float network has a structure the quantiser cannot map.
    UnsupportedStructure(String),
    /// Encoded model bytes are truncated or malformed.
    MalformedModel(String),
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::UnsupportedStructure(msg) => write!(f, "unsupported structure: {msg}"),
            QuantError::MalformedModel(msg) => write!(f, "malformed model: {msg}"),
        }
    }
}

impl Error for QuantError {}

/// Whether a compute stage applies `tanh` to its accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activation {
    /// Re-quantised `tanh` (hidden stages).
    Tanh,
    /// Raw accumulator passes through as a logit (final stage).
    None,
}

/// A quantised convolution stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QConv {
    /// Stage name (e.g. `conv1`).
    pub name: String,
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Kernel side.
    pub kernel: usize,
    /// Weight codes, layout `[out, in, k, k]` row-major.
    pub weights: Vec<i8>,
    /// Bias at accumulator scale, one per output channel.
    pub bias: Vec<i32>,
    /// Activation applied to each accumulator.
    pub activation: Activation,
}

/// A quantised fully connected stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QDense {
    /// Stage name (e.g. `fc1`).
    pub name: String,
    /// Flattened input size.
    pub inputs: usize,
    /// Output size.
    pub outputs: usize,
    /// Weight codes, layout `[out, in]` row-major.
    pub weights: Vec<i8>,
    /// Bias at accumulator scale.
    pub bias: Vec<i32>,
    /// Activation applied to each accumulator.
    pub activation: Activation,
}

/// One stage of the quantised pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QLayer {
    /// Convolution (+ optional tanh).
    Conv(QConv),
    /// Non-overlapping max pooling on codes.
    MaxPool {
        /// Stage name (e.g. `pool1`).
        name: String,
        /// Window side.
        window: usize,
    },
    /// Fully connected (+ optional tanh).
    Dense(QDense),
}

impl QLayer {
    /// Stage name.
    pub fn name(&self) -> &str {
        match self {
            QLayer::Conv(c) => &c.name,
            QLayer::MaxPool { name, .. } => name,
            QLayer::Dense(d) => &d.name,
        }
    }
}

/// A fully quantised feed-forward network.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedNetwork {
    format: QFormat,
    input_shape: Vec<usize>,
    layers: Vec<QLayer>,
}

/// Activation codes plus their feature-map shape, flowing between stages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeMap {
    /// Shape (`[c, h, w]` for maps, `[n]` for vectors).
    pub shape: Vec<usize>,
    /// Row-major activation codes.
    pub codes: Vec<i8>,
}

impl QuantizedNetwork {
    /// Quantises a trained float network.
    ///
    /// The float network must be a strict alternation of parameterised /
    /// pooling stages with optional `Tanh` layers after conv/dense stages
    /// (which LeNet-5 and everything in [`crate::zoo`] satisfies).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnsupportedStructure`] otherwise.
    pub fn from_sequential(
        net: &Sequential,
        input_shape: &[usize],
        format: QFormat,
    ) -> Result<Self, QuantError> {
        let scale = format.scale();
        let acc_scale = scale * scale;
        let quant_w = |t: &Tensor| -> Vec<i8> {
            t.data().iter().map(|&v| format.quantize(v).code() as i8).collect()
        };
        let quant_b = |t: &Tensor| -> Vec<i32> {
            t.data().iter().map(|&v| (v * acc_scale).round() as i32).collect()
        };

        let layers_f = net.layers();
        let mut out = Vec::new();
        let mut i = 0usize;
        while i < layers_f.len() {
            let layer = &layers_f[i];
            // Peek for a following Tanh.
            let followed_by_tanh =
                matches!(layers_f.get(i + 1).map(|l| l.kind()), Some(LayerKind::Tanh));
            match layer.kind() {
                LayerKind::Conv { in_channels, out_channels, kernel } => {
                    let p = layer.params().ok_or_else(|| {
                        QuantError::UnsupportedStructure(format!(
                            "conv {} has no parameters",
                            layer.name()
                        ))
                    })?;
                    out.push(QLayer::Conv(QConv {
                        name: layer.name().to_string(),
                        in_channels,
                        out_channels,
                        kernel,
                        weights: quant_w(&p.weights),
                        bias: quant_b(&p.bias),
                        activation: if followed_by_tanh {
                            Activation::Tanh
                        } else {
                            Activation::None
                        },
                    }));
                    i += if followed_by_tanh { 2 } else { 1 };
                }
                LayerKind::Dense { inputs, outputs } => {
                    let p = layer.params().ok_or_else(|| {
                        QuantError::UnsupportedStructure(format!(
                            "dense {} has no parameters",
                            layer.name()
                        ))
                    })?;
                    out.push(QLayer::Dense(QDense {
                        name: layer.name().to_string(),
                        inputs,
                        outputs,
                        weights: quant_w(&p.weights),
                        bias: quant_b(&p.bias),
                        activation: if followed_by_tanh {
                            Activation::Tanh
                        } else {
                            Activation::None
                        },
                    }));
                    i += if followed_by_tanh { 2 } else { 1 };
                }
                LayerKind::MaxPool { window } => {
                    out.push(QLayer::MaxPool { name: layer.name().to_string(), window });
                    i += 1;
                }
                LayerKind::Tanh => {
                    return Err(QuantError::UnsupportedStructure(format!(
                        "stray activation {} not preceded by conv/dense",
                        layer.name()
                    )));
                }
            }
        }
        Ok(QuantizedNetwork { format, input_shape: input_shape.to_vec(), layers: out })
    }

    /// The quantisation format.
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// Expected input shape.
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// The stage pipeline.
    pub fn layers(&self) -> &[QLayer] {
        &self.layers
    }

    /// Names of the compute stages in order.
    pub fn stage_names(&self) -> Vec<&str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Quantises an input tensor into activation codes.
    ///
    /// # Panics
    ///
    /// Panics if the tensor shape does not match [`Self::input_shape`].
    pub fn quantize_input(&self, input: &Tensor) -> CodeMap {
        assert_eq!(input.shape(), self.input_shape.as_slice(), "input shape mismatch");
        CodeMap {
            shape: input.shape().to_vec(),
            codes: input.data().iter().map(|&v| self.format.quantize(v).code() as i8).collect(),
        }
    }

    /// Requantises an accumulator through `tanh` (the BRAM LUT on the FPGA).
    pub fn tanh_code(&self, acc: i32) -> i8 {
        let acc_scale = self.format.scale() * self.format.scale();
        let v = (acc as f32 / acc_scale).tanh();
        self.format.quantize(v).code() as i8
    }

    /// Reference (fault-free) execution of one stage.
    ///
    /// # Panics
    ///
    /// Panics if `input` does not match the stage's expected geometry.
    pub fn run_stage(&self, stage: &QLayer, input: &CodeMap) -> CodeMap {
        match stage {
            QLayer::Conv(c) => self.run_conv(c, input),
            QLayer::MaxPool { window, .. } => run_pool(*window, input),
            QLayer::Dense(d) => self.run_dense(d, input),
        }
    }

    fn run_conv(&self, c: &QConv, input: &CodeMap) -> CodeMap {
        assert_eq!(input.shape[0], c.in_channels, "conv input channels");
        let (h, w) = (input.shape[1], input.shape[2]);
        let (oh, ow) = (h - c.kernel + 1, w - c.kernel + 1);
        let mut codes = vec![0i8; c.out_channels * oh * ow];
        for oc in 0..c.out_channels {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc: i32 = c.bias[oc];
                    for ic in 0..c.in_channels {
                        for ky in 0..c.kernel {
                            for kx in 0..c.kernel {
                                let wv = c.weights
                                    [((oc * c.in_channels + ic) * c.kernel + ky) * c.kernel + kx];
                                let xv = input.codes[(ic * h + oy + ky) * w + ox + kx];
                                acc += i32::from(wv) * i32::from(xv);
                            }
                        }
                    }
                    codes[(oc * oh + oy) * ow + ox] = self.finish(acc, c.activation);
                }
            }
        }
        CodeMap { shape: vec![c.out_channels, oh, ow], codes }
    }

    fn run_dense(&self, d: &QDense, input: &CodeMap) -> CodeMap {
        assert_eq!(input.codes.len(), d.inputs, "dense input size");
        let mut codes = vec![0i8; d.outputs];
        for (o, code) in codes.iter_mut().enumerate() {
            let mut acc: i32 = d.bias[o];
            let row = &d.weights[o * d.inputs..(o + 1) * d.inputs];
            for (wv, xv) in row.iter().zip(&input.codes) {
                acc += i32::from(*wv) * i32::from(*xv);
            }
            *code = self.finish(acc, d.activation);
        }
        CodeMap { shape: vec![d.outputs], codes }
    }

    /// Accumulator → activation code. For `Activation::None` the saturated
    /// accumulator is rescaled to code range; logits should instead be read
    /// through [`Self::infer_logits`], which keeps full precision.
    fn finish(&self, acc: i32, act: Activation) -> i8 {
        match act {
            Activation::Tanh => self.tanh_code(acc),
            Activation::None => {
                let scale = self.format.scale();
                (acc as f32 / scale).round().clamp(-128.0, 127.0) as i8
            }
        }
    }

    /// Full-precision logits for one input (final-stage accumulators at
    /// accumulator scale).
    ///
    /// # Panics
    ///
    /// Panics on input shape mismatch.
    pub fn infer_logits(&self, input: &Tensor) -> Vec<i32> {
        let mut map = self.quantize_input(input);
        for (idx, stage) in self.layers.iter().enumerate() {
            let last = idx + 1 == self.layers.len();
            if last {
                // Keep the final accumulators at full precision.
                return match stage {
                    QLayer::Dense(d) => {
                        assert_eq!(map.codes.len(), d.inputs, "dense input size");
                        (0..d.outputs)
                            .map(|o| {
                                let mut acc = d.bias[o];
                                let row = &d.weights[o * d.inputs..(o + 1) * d.inputs];
                                for (wv, xv) in row.iter().zip(&map.codes) {
                                    acc += i32::from(*wv) * i32::from(*xv);
                                }
                                acc
                            })
                            .collect()
                    }
                    _ => {
                        let out = self.run_stage(stage, &map);
                        out.codes.iter().map(|&c| i32::from(c)).collect()
                    }
                };
            }
            map = self.run_stage(stage, &map);
        }
        map.codes.iter().map(|&c| i32::from(c)).collect()
    }

    /// Predicted class for one input.
    pub fn predict(&self, input: &Tensor) -> usize {
        let logits = self.infer_logits(input);
        let predicted = logits
            .iter()
            .enumerate()
            .max_by_key(|(i, &v)| (v, std::cmp::Reverse(*i)))
            .map(|(i, _)| i)
            .expect("non-empty logits");
        trace::emit(|| trace::Event::Inference { predicted: predicted as u32 });
        predicted
    }

    /// Classification accuracy over `(image, label)` pairs.
    pub fn accuracy<'a>(&self, samples: impl Iterator<Item = (&'a Tensor, usize)>) -> f64 {
        let mut total = 0usize;
        let mut correct = 0usize;
        for (x, y) in samples {
            total += 1;
            if self.predict(x) == y {
                correct += 1;
            }
        }
        if total == 0 {
            return 0.0;
        }
        correct as f64 / total as f64
    }
}

fn run_pool(window: usize, input: &CodeMap) -> CodeMap {
    let (c, h, w) = (input.shape[0], input.shape[1], input.shape[2]);
    assert!(h % window == 0 && w % window == 0, "pool input not divisible");
    let (oh, ow) = (h / window, w / window);
    let mut codes = vec![0i8; c * oh * ow];
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = i8::MIN;
                for ky in 0..window {
                    for kx in 0..window {
                        let v = input.codes[(ch * h + oy * window + ky) * w + ox * window + kx];
                        best = best.max(v);
                    }
                }
                codes[(ch * oh + oy) * ow + ox] = best;
            }
        }
    }
    CodeMap { shape: vec![c, oh, ow], codes }
}

// ---------------------------------------------------------------------------
// Binary model codec (for caching trained models between runs).
// ---------------------------------------------------------------------------

const MODEL_MAGIC: &[u8; 4] = b"DSQ1";

impl QuantizedNetwork {
    /// Serialises the model to a compact binary blob.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MODEL_MAGIC);
        out.push(u8::from(self.format.is_signed()));
        out.push(self.format.frac_bits());
        push_usize(&mut out, self.input_shape.len());
        for &d in &self.input_shape {
            push_usize(&mut out, d);
        }
        push_usize(&mut out, self.layers.len());
        for layer in &self.layers {
            match layer {
                QLayer::Conv(c) => {
                    out.push(0);
                    push_str(&mut out, &c.name);
                    push_usize(&mut out, c.in_channels);
                    push_usize(&mut out, c.out_channels);
                    push_usize(&mut out, c.kernel);
                    out.push(u8::from(c.activation == Activation::Tanh));
                    push_i8s(&mut out, &c.weights);
                    push_i32s(&mut out, &c.bias);
                }
                QLayer::MaxPool { name, window } => {
                    out.push(1);
                    push_str(&mut out, name);
                    push_usize(&mut out, *window);
                }
                QLayer::Dense(d) => {
                    out.push(2);
                    push_str(&mut out, &d.name);
                    push_usize(&mut out, d.inputs);
                    push_usize(&mut out, d.outputs);
                    out.push(u8::from(d.activation == Activation::Tanh));
                    push_i8s(&mut out, &d.weights);
                    push_i32s(&mut out, &d.bias);
                }
            }
        }
        out
    }

    /// Decodes a model serialised with [`Self::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::MalformedModel`] on truncation, bad magic or
    /// inconsistent geometry.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, QuantError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(4)? != MODEL_MAGIC {
            return Err(QuantError::MalformedModel("bad magic".into()));
        }
        let signed = r.u8()? != 0;
        let frac = r.u8()?;
        if frac >= 8 {
            return Err(QuantError::MalformedModel("bad format".into()));
        }
        let format = QFormat::new(signed, frac);
        let rank = r.usize_()?;
        let mut input_shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            input_shape.push(r.usize_()?);
        }
        let n_layers = r.usize_()?;
        let mut layers = Vec::with_capacity(n_layers);
        for _ in 0..n_layers {
            match r.u8()? {
                0 => {
                    let name = r.string()?;
                    let in_channels = r.usize_()?;
                    let out_channels = r.usize_()?;
                    let kernel = r.usize_()?;
                    let activation = if r.u8()? != 0 { Activation::Tanh } else { Activation::None };
                    let weights = r.i8s()?;
                    let bias = r.i32s()?;
                    if weights.len() != out_channels * in_channels * kernel * kernel
                        || bias.len() != out_channels
                    {
                        return Err(QuantError::MalformedModel("conv geometry".into()));
                    }
                    layers.push(QLayer::Conv(QConv {
                        name,
                        in_channels,
                        out_channels,
                        kernel,
                        weights,
                        bias,
                        activation,
                    }));
                }
                1 => {
                    let name = r.string()?;
                    let window = r.usize_()?;
                    layers.push(QLayer::MaxPool { name, window });
                }
                2 => {
                    let name = r.string()?;
                    let inputs = r.usize_()?;
                    let outputs = r.usize_()?;
                    let activation = if r.u8()? != 0 { Activation::Tanh } else { Activation::None };
                    let weights = r.i8s()?;
                    let bias = r.i32s()?;
                    if weights.len() != inputs * outputs || bias.len() != outputs {
                        return Err(QuantError::MalformedModel("dense geometry".into()));
                    }
                    layers.push(QLayer::Dense(QDense {
                        name,
                        inputs,
                        outputs,
                        weights,
                        bias,
                        activation,
                    }));
                }
                tag => {
                    return Err(QuantError::MalformedModel(format!("unknown layer tag {tag}")));
                }
            }
        }
        Ok(QuantizedNetwork { format, input_shape, layers })
    }
}

fn push_usize(out: &mut Vec<u8>, v: usize) {
    out.extend_from_slice(&(v as u64).to_le_bytes());
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_usize(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

fn push_i8s(out: &mut Vec<u8>, v: &[i8]) {
    push_usize(out, v.len());
    out.extend(v.iter().map(|&b| b as u8));
}

fn push_i32s(out: &mut Vec<u8>, v: &[i32]) {
    push_usize(out, v.len());
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], QuantError> {
        if self.pos + n > self.bytes.len() {
            return Err(QuantError::MalformedModel("truncated".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, QuantError> {
        Ok(self.take(1)?[0])
    }

    fn usize_(&mut self) -> Result<usize, QuantError> {
        let b = self.take(8)?;
        let v = u64::from_le_bytes(b.try_into().expect("len 8"));
        usize::try_from(v).map_err(|_| QuantError::MalformedModel("size overflow".into()))
    }

    fn string(&mut self) -> Result<String, QuantError> {
        let n = self.usize_()?;
        if n > 1 << 20 {
            return Err(QuantError::MalformedModel("name too long".into()));
        }
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| QuantError::MalformedModel("bad utf8".into()))
    }

    fn i8s(&mut self) -> Result<Vec<i8>, QuantError> {
        let n = self.usize_()?;
        if n > 1 << 28 {
            return Err(QuantError::MalformedModel("blob too long".into()));
        }
        Ok(self.take(n)?.iter().map(|&b| b as i8).collect())
    }

    fn i32s(&mut self) -> Result<Vec<i32>, QuantError> {
        let n = self.usize_()?;
        if n > 1 << 26 {
            return Err(QuantError::MalformedModel("blob too long".into()));
        }
        let b = self.take(n * 4)?;
        Ok(b.chunks_exact(4).map(|c| i32::from_le_bytes(c.try_into().expect("len 4"))).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lenet::lenet5;
    use crate::network::Sequential;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quantized_lenet(seed: u64) -> (Sequential, QuantizedNetwork) {
        let net = lenet5(&mut StdRng::seed_from_u64(seed));
        let q = QuantizedNetwork::from_sequential(&net, &[1, 28, 28], QFormat::paper()).unwrap();
        (net, q)
    }

    #[test]
    fn structure_mapping() {
        let (_, q) = quantized_lenet(0);
        let names = q.stage_names();
        assert_eq!(names, vec!["conv1", "pool1", "conv2", "fc1", "fc2"]);
        match &q.layers()[0] {
            QLayer::Conv(c) => {
                assert_eq!(c.activation, Activation::Tanh);
                assert_eq!(c.weights.len(), 6 * 25);
            }
            other => panic!("expected conv, got {other:?}"),
        }
        match &q.layers()[4] {
            QLayer::Dense(d) => assert_eq!(d.activation, Activation::None),
            other => panic!("expected dense, got {other:?}"),
        }
    }

    #[test]
    fn quantized_agrees_with_float_on_most_predictions() {
        let (mut net, q) = quantized_lenet(7);
        let mut rng = StdRng::seed_from_u64(123);
        let ds =
            crate::digits::Dataset::generate(40, &crate::digits::RenderParams::default(), &mut rng);
        let mut agree = 0usize;
        for (x, _) in ds.iter() {
            if net.predict(x) == q.predict(x) {
                agree += 1;
            }
        }
        // Untrained nets have near-arbitrary logits; quantisation noise can
        // flip close calls, but the two pipelines must broadly agree.
        assert!(agree >= 28, "agreement too low: {agree}/40");
    }

    #[test]
    fn codec_round_trip() {
        let (_, q) = quantized_lenet(5);
        let bytes = q.to_bytes();
        let q2 = QuantizedNetwork::from_bytes(&bytes).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn codec_rejects_corruption() {
        let (_, q) = quantized_lenet(5);
        let bytes = q.to_bytes();
        assert!(QuantizedNetwork::from_bytes(&bytes[..10]).is_err(), "truncated");
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(QuantizedNetwork::from_bytes(&bad_magic).is_err(), "magic");
        assert!(QuantizedNetwork::from_bytes(&[]).is_err(), "empty");
    }

    #[test]
    fn tanh_code_saturates_and_is_monotone() {
        let (_, q) = quantized_lenet(1);
        assert_eq!(q.tanh_code(1_000_000), q.format().quantize(1.0).code() as i8);
        assert_eq!(q.tanh_code(-1_000_000), q.format().quantize(-1.0).code() as i8);
        let mut prev = i8::MIN;
        for acc in (-4096..4096).step_by(64) {
            let c = q.tanh_code(acc);
            assert!(c >= prev, "tanh code must be monotone");
            prev = c;
        }
    }

    #[test]
    fn pool_on_codes_matches_semantics() {
        let input = CodeMap { shape: vec![1, 2, 2], codes: vec![-5, 3, 2, -1] };
        let out = run_pool(2, &input);
        assert_eq!(out.codes, vec![3]);
        assert_eq!(out.shape, vec![1, 1, 1]);
    }

    #[test]
    fn logits_have_full_precision() {
        let (_, q) = quantized_lenet(2);
        let x = crate::tensor::Tensor::full(&[1, 28, 28], 0.3);
        let logits = q.infer_logits(&x);
        assert_eq!(logits.len(), 10);
        // At accumulator scale, non-trivial logits are way beyond i8 range.
        assert!(logits.iter().any(|&v| v.abs() > 127), "{logits:?}");
    }

    #[test]
    fn accuracy_counts() {
        let (_, q) = quantized_lenet(3);
        let mut rng = StdRng::seed_from_u64(4);
        let ds =
            crate::digits::Dataset::generate(20, &crate::digits::RenderParams::default(), &mut rng);
        let acc = q.accuracy(ds.iter());
        assert!((0.0..=1.0).contains(&acc));
        assert_eq!(q.accuracy(std::iter::empty()), 0.0);
    }
}
