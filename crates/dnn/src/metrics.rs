//! Classification metrics.

/// A square confusion matrix over integer class labels.
///
/// # Example
///
/// ```
/// use dnn::metrics::ConfusionMatrix;
///
/// let mut cm = ConfusionMatrix::new(3);
/// cm.record(0, 0);
/// cm.record(0, 1);
/// cm.record(2, 2);
/// assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-12);
/// assert_eq!(cm.count(0, 1), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix for `classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "at least one class required");
        ConfusionMatrix { classes, counts: vec![0; classes * classes] }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records one `(true, predicted)` observation.
    ///
    /// # Panics
    ///
    /// Panics if either label is out of range.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        assert!(truth < self.classes && predicted < self.classes, "label out of range");
        self.counts[truth * self.classes + predicted] += 1;
    }

    /// Observations with true class `truth` predicted as `predicted`.
    pub fn count(&self, truth: usize, predicted: usize) -> u64 {
        self.counts[truth * self.classes + predicted]
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (0 when empty).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.classes).map(|c| self.count(c, c)).sum();
        correct as f64 / total as f64
    }

    /// Per-class recall (`None` for classes never observed).
    pub fn recall(&self, class: usize) -> Option<f64> {
        let row: u64 = (0..self.classes).map(|p| self.count(class, p)).sum();
        if row == 0 {
            return None;
        }
        Some(self.count(class, class) as f64 / row as f64)
    }

    /// The most confused off-diagonal pair `(truth, predicted, count)`.
    pub fn worst_confusion(&self) -> Option<(usize, usize, u64)> {
        let mut best: Option<(usize, usize, u64)> = None;
        for t in 0..self.classes {
            for p in 0..self.classes {
                if t == p {
                    continue;
                }
                let c = self.count(t, p);
                if c > 0 && best.is_none_or(|(_, _, bc)| c > bc) {
                    best = Some((t, p, c));
                }
            }
        }
        best
    }
}

impl std::fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "confusion matrix ({} classes, acc {:.2}%)",
            self.classes,
            self.accuracy() * 100.0
        )?;
        for t in 0..self.classes {
            write!(f, "  {t}: ")?;
            for p in 0..self.classes {
                write!(f, "{:5}", self.count(t, p))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_metrics() {
        let cm = ConfusionMatrix::new(4);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.total(), 0);
        assert_eq!(cm.recall(0), None);
        assert_eq!(cm.worst_confusion(), None);
    }

    #[test]
    fn recall_and_confusion() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(1, 1);
        cm.record(1, 1);
        cm.record(1, 2);
        cm.record(0, 2);
        cm.record(0, 2);
        cm.record(0, 2);
        assert!((cm.recall(1).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cm.worst_confusion(), Some((0, 2, 3)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_label_panics() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(2, 0);
    }

    #[test]
    fn display_contains_rows() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(0, 0);
        let s = cm.to_string();
        assert!(s.contains("acc 100.00%"));
    }
}
