//! A small dense tensor for training and inference.
//!
//! Row-major `f32` storage with explicit shape. This is intentionally a
//! minimal numeric core — the layers in this crate only need construction,
//! element access, map/zip and a handful of reductions. Shapes follow the
//! `[channels, height, width]` convention for feature maps and `[n]` for
//! vectors.

use std::fmt;

/// Dense row-major `f32` tensor.
///
/// # Example
///
/// ```
/// use dnn::tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// assert_eq!(t.get(&[1, 0]), 3.0);
/// assert_eq!(t.sum(), 10.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}(", self.shape)?;
        let head: Vec<String> = self.data.iter().take(8).map(|v| format!("{v:.4}")).collect();
        write!(f, "{}", head.join(", "))?;
        if self.data.len() > 8 {
            write!(f, ", …")?;
        }
        write!(f, ")")
    }
}

impl Tensor {
    /// Zero-filled tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics on an empty shape or zero-sized dimension.
    pub fn zeros(shape: &[usize]) -> Self {
        assert!(!shape.is_empty(), "tensor shape must have at least one dimension");
        assert!(shape.iter().all(|&d| d > 0), "tensor dimensions must be positive");
        let len = shape.iter().product();
        Tensor { shape: shape.to_vec(), data: vec![0.0; len] }
    }

    /// Tensor filled with a constant.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate shape (see [`Tensor::zeros`]).
    pub fn full(shape: &[usize], value: f32) -> Self {
        let mut t = Tensor::zeros(shape);
        t.data.iter_mut().for_each(|v| *v = value);
        t
    }

    /// Builds a tensor from raw data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape volume.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let len: usize = shape.iter().product();
        assert_eq!(data.len(), len, "data length {} != shape volume {len}", data.len());
        assert!(!shape.is_empty() && shape.iter().all(|&d| d > 0));
        Tensor { shape: shape.to_vec(), data }
    }

    /// Tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements (cannot happen for valid shapes).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat immutable view of the data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable view of the data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.shape.len(), "index rank mismatch");
        let mut off = 0usize;
        for (i, (&idx, &dim)) in index.iter().zip(&self.shape).enumerate() {
            assert!(idx < dim, "index {idx} out of bounds for dim {i} (size {dim})");
            off = off * dim + idx;
        }
        off
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-bounds index.
    pub fn get(&self, index: &[usize]) -> f32 {
        self.data[self.offset(index)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-bounds index.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.offset(index);
        self.data[off] = value;
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the volumes differ.
    pub fn reshaped(&self, shape: &[usize]) -> Tensor {
        Tensor::from_vec(self.data.clone(), shape)
    }

    /// Element-wise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// Element-wise combination of two equally shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip shape mismatch");
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// In-place scaled add: `self += alpha * other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Largest element and its flat index (`None` when empty).
    pub fn argmax(&self) -> Option<(usize, f32)> {
        self.data.iter().enumerate().fold(None, |best, (i, &v)| match best {
            Some((_, bv)) if bv >= v => best,
            _ => Some((i, v)),
        })
    }

    /// Dot product of two equally shaped tensors viewed flat.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "dot shape mismatch");
        self.data.iter().zip(&other.data).map(|(&a, &b)| a * b).sum()
    }

    /// L2 norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.len(), 24);
        t.set(&[1, 2, 3], 7.5);
        assert_eq!(t.get(&[1, 2, 3]), 7.5);
        assert_eq!(t.data()[23], 7.5, "row-major last element");
        t.set(&[0, 0, 0], -1.0);
        assert_eq!(t.data()[0], -1.0);
    }

    #[test]
    fn row_major_layout() {
        let t = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]);
        assert_eq!(t.get(&[0, 2]), 2.0);
        assert_eq!(t.get(&[1, 0]), 3.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let t = Tensor::zeros(&[2, 2]);
        t.get(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "rank mismatch")]
    fn rank_mismatch_panics() {
        let t = Tensor::zeros(&[2, 2]);
        t.get(&[0]);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_checks_volume() {
        Tensor::from_vec(vec![1.0; 3], &[2, 2]);
    }

    #[test]
    fn map_zip_axpy() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        assert_eq!(a.map(|v| v * 2.0).data(), &[2.0, 4.0]);
        assert_eq!(a.zip(&b, |x, y| y - x).data(), &[9.0, 18.0]);
        let mut c = a.clone();
        c.axpy(0.5, &b);
        assert_eq!(c.data(), &[6.0, 12.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![3.0, -1.0, 5.0, 0.0], &[4]);
        assert_eq!(t.sum(), 7.0);
        assert_eq!(t.argmax(), Some((2, 5.0)));
        assert_eq!(t.dot(&t), 9.0 + 1.0 + 25.0);
        assert!((t.norm() - 35.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn argmax_prefers_first_on_ties() {
        let t = Tensor::from_vec(vec![2.0, 2.0, 1.0], &[3]);
        assert_eq!(t.argmax().unwrap().0, 0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[3, 4]);
        let r = t.reshaped(&[2, 6]);
        assert_eq!(r.shape(), &[2, 6]);
        assert_eq!(r.get(&[1, 0]), 6.0);
    }

    #[test]
    fn debug_is_truncated() {
        let t = Tensor::zeros(&[100]);
        let s = format!("{t:?}");
        assert!(s.contains("…"));
        assert!(s.len() < 200);
    }
}
