//! Max pooling.

use crate::layers::{Layer, LayerKind};
use crate::tensor::Tensor;

/// Non-overlapping max pooling with a square window.
///
/// Input `[C, H, W]` with `H`, `W` divisible by the window size; output
/// `[C, H/w, W/w]`.
///
/// # Example
///
/// ```
/// use dnn::layers::{Layer, MaxPool2d};
/// use dnn::tensor::Tensor;
///
/// let mut pool = MaxPool2d::new("pool1", 2);
/// let out = pool.forward(&Tensor::from_vec(
///     vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2],
/// ));
/// assert_eq!(out.data(), &[4.0]);
/// ```
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    name: String,
    window: usize,
    /// Flat input index of each output's winning element.
    argmax: Vec<usize>,
    input_shape: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a pooling layer with the given square window.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(name: &str, window: usize) -> Self {
        assert!(window > 0, "pooling window must be positive");
        MaxPool2d { name: name.to_string(), window, argmax: Vec::new(), input_shape: Vec::new() }
    }

    /// Window side length.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::MaxPool { window: self.window }
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        let k = self.window;
        assert!(h % k == 0 && w % k == 0, "input {h}x{w} not divisible by window {k}");
        let (oh, ow) = (h / k, w / k);
        let mut out = Tensor::zeros(&[c, oh, ow]);
        self.argmax.clear();
        self.argmax.reserve(c * oh * ow);
        let data = input.data();
        let out_data = out.data_mut();
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for ky in 0..k {
                        for kx in 0..k {
                            let idx = (ch * h + oy * k + ky) * w + ox * k + kx;
                            if data[idx] > best {
                                best = data[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    out_data[(ch * oh + oy) * ow + ox] = best;
                    self.argmax.push(best_idx);
                }
            }
        }
        self.input_shape = input.shape().to_vec();
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(!self.argmax.is_empty(), "backward before forward");
        assert_eq!(grad_out.len(), self.argmax.len(), "gradient shape mismatch");
        let mut grad_in = Tensor::zeros(&self.input_shape);
        let gi = grad_in.data_mut();
        for (&src, &g) in self.argmax.iter().zip(grad_out.data()) {
            gi[src] += g;
        }
        grad_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_maxima_per_window() {
        let mut pool = MaxPool2d::new("p", 2);
        let input = Tensor::from_vec(
            vec![
                1.0, 5.0, 2.0, 0.0, //
                3.0, 4.0, 1.0, 8.0, //
                0.0, 0.0, 6.0, 1.0, //
                9.0, 0.0, 2.0, 3.0,
            ],
            &[1, 4, 4],
        );
        let out = pool.forward(&input);
        assert_eq!(out.shape(), &[1, 2, 2]);
        assert_eq!(out.data(), &[5.0, 8.0, 9.0, 6.0]);
    }

    #[test]
    fn multichannel_pooling_is_independent() {
        let mut pool = MaxPool2d::new("p", 2);
        let mut data = vec![0.0; 2 * 2 * 2];
        data[0] = 1.0; // channel 0
        data[7] = 2.0; // channel 1
        let out = pool.forward(&Tensor::from_vec(data, &[2, 2, 2]));
        assert_eq!(out.data(), &[1.0, 2.0]);
    }

    #[test]
    fn backward_routes_gradient_to_argmax() {
        let mut pool = MaxPool2d::new("p", 2);
        let input = Tensor::from_vec(vec![1.0, 5.0, 3.0, 4.0], &[1, 2, 2]);
        pool.forward(&input);
        let grad_in = pool.backward(&Tensor::from_vec(vec![2.0], &[1, 1, 1]));
        assert_eq!(grad_in.data(), &[0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn negative_inputs_still_pool() {
        let mut pool = MaxPool2d::new("p", 2);
        let input = Tensor::from_vec(vec![-4.0, -2.0, -3.0, -1.0], &[1, 2, 2]);
        let out = pool.forward(&input);
        assert_eq!(out.data(), &[-1.0]);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_input_panics() {
        let mut pool = MaxPool2d::new("p", 2);
        pool.forward(&Tensor::zeros(&[1, 3, 4]));
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_requires_forward() {
        let mut pool = MaxPool2d::new("p", 2);
        pool.backward(&Tensor::zeros(&[1, 1, 1]));
    }
}
