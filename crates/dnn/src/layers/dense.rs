//! Fully connected layer.

use rand::Rng;

use crate::layers::{sgd_update, Layer, LayerKind, LayerParams};
use crate::tensor::Tensor;

/// A fully connected (dense) layer: `y = W·x + b`.
///
/// Accepts any input shape and flattens it; outputs `[outputs]`.
///
/// # Example
///
/// ```
/// use dnn::layers::{Dense, Layer};
/// use dnn::tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let mut fc = Dense::new("fc1", 1024, 120, &mut rng);
/// let out = fc.forward(&Tensor::zeros(&[16, 8, 8]));
/// assert_eq!(out.shape(), &[120]);
/// ```
#[derive(Debug, Clone)]
pub struct Dense {
    name: String,
    inputs: usize,
    outputs: usize,
    weights: Tensor,
    bias: Tensor,
    grad_w: Tensor,
    grad_b: Tensor,
    vel_w: Tensor,
    vel_b: Tensor,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with He-uniform initialised weights.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(name: &str, inputs: usize, outputs: usize, rng: &mut impl Rng) -> Self {
        assert!(inputs > 0 && outputs > 0);
        let bound = (2.0 / inputs as f32).sqrt();
        let data: Vec<f32> = (0..inputs * outputs).map(|_| rng.gen_range(-bound..bound)).collect();
        Dense {
            name: name.to_string(),
            inputs,
            outputs,
            weights: Tensor::from_vec(data, &[outputs, inputs]),
            bias: Tensor::zeros(&[outputs]),
            grad_w: Tensor::zeros(&[outputs, inputs]),
            grad_b: Tensor::zeros(&[outputs]),
            vel_w: Tensor::zeros(&[outputs, inputs]),
            vel_b: Tensor::zeros(&[outputs]),
            cached_input: None,
        }
    }
}

impl Layer for Dense {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Dense { inputs: self.inputs, outputs: self.outputs }
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(input.len(), self.inputs, "dense input size mismatch");
        let x = input.data();
        let w = self.weights.data();
        let mut out = Tensor::zeros(&[self.outputs]);
        let out_data = out.data_mut();
        for o in 0..self.outputs {
            let row = &w[o * self.inputs..(o + 1) * self.inputs];
            let mut acc = self.bias.data()[o];
            for (wi, xi) in row.iter().zip(x) {
                acc += wi * xi;
            }
            out_data[o] = acc;
        }
        self.cached_input = Some(input.reshaped(&[self.inputs]));
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("backward before forward");
        assert_eq!(grad_out.len(), self.outputs, "gradient size mismatch");
        let x = input.data();
        let go = grad_out.data();
        let w = self.weights.data();
        let mut grad_in = Tensor::zeros(&[self.inputs]);
        {
            let gi = grad_in.data_mut();
            let gw = self.grad_w.data_mut();
            let gb = self.grad_b.data_mut();
            for o in 0..self.outputs {
                let g = go[o];
                gb[o] += g;
                if g == 0.0 {
                    continue;
                }
                let row = o * self.inputs;
                for i in 0..self.inputs {
                    gw[row + i] += g * x[i];
                    gi[i] += g * w[row + i];
                }
            }
        }
        grad_in
    }

    fn apply_gradients(&mut self, lr: f32, momentum: f32) {
        sgd_update(&mut self.weights, &mut self.grad_w, &mut self.vel_w, lr, momentum);
        sgd_update(&mut self.bias, &mut self.grad_b, &mut self.vel_b, lr, momentum);
    }

    fn zero_gradients(&mut self) {
        self.grad_w.data_mut().iter_mut().for_each(|g| *g = 0.0);
        self.grad_b.data_mut().iter_mut().for_each(|g| *g = 0.0);
    }

    fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    fn params(&self) -> Option<LayerParams> {
        Some(LayerParams { weights: self.weights.clone(), bias: self.bias.clone() })
    }

    fn set_params(&mut self, params: LayerParams) {
        assert_eq!(params.weights.shape(), self.weights.shape(), "weight shape mismatch");
        assert_eq!(params.bias.shape(), self.bias.shape(), "bias shape mismatch");
        self.weights = params.weights;
        self.bias = params.bias;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    #[test]
    fn known_matvec() {
        let mut fc = Dense::new("fc", 3, 2, &mut rng());
        fc.set_params(LayerParams {
            weights: Tensor::from_vec(vec![1.0, 2.0, 3.0, 0.0, -1.0, 1.0], &[2, 3]),
            bias: Tensor::from_vec(vec![0.5, -0.5], &[2]),
        });
        let out = fc.forward(&Tensor::from_vec(vec![1.0, 1.0, 2.0], &[3]));
        assert_eq!(out.data(), &[1.0 + 2.0 + 6.0 + 0.5, -1.0 + 2.0 - 0.5]);
    }

    #[test]
    fn flattens_multidim_input() {
        let mut fc = Dense::new("fc", 8, 4, &mut rng());
        let out = fc.forward(&Tensor::zeros(&[2, 2, 2]));
        assert_eq!(out.shape(), &[4]);
    }

    #[test]
    fn gradient_check() {
        let mut fc = Dense::new("fc", 4, 3, &mut rng());
        let input = Tensor::from_vec(vec![0.3, -0.8, 0.1, 0.9], &[4]);
        let out = fc.forward(&input);
        let grad_in = fc.backward(&out); // L = sum(out²)/2

        let eps = 1e-3f32;
        let loss = |f: &mut Dense, inp: &Tensor| -> f32 {
            let o = f.forward(inp);
            o.data().iter().map(|v| v * v).sum::<f32>() / 2.0
        };
        for idx in 0..4 {
            let mut ip = input.clone();
            ip.data_mut()[idx] += eps;
            let mut im = input.clone();
            im.data_mut()[idx] -= eps;
            let num = (loss(&mut fc.clone(), &ip) - loss(&mut fc.clone(), &im)) / (2.0 * eps);
            assert!(
                (num - grad_in.data()[idx]).abs() < 1e-2,
                "input grad {idx}: {num} vs {}",
                grad_in.data()[idx]
            );
        }
        for idx in [0usize, 5, 11] {
            let mut fp = fc.clone();
            let mut pp = fp.params().unwrap();
            pp.weights.data_mut()[idx] += eps;
            fp.set_params(pp);
            let mut fm = fc.clone();
            let mut pm = fm.params().unwrap();
            pm.weights.data_mut()[idx] -= eps;
            fm.set_params(pm);
            let num = (loss(&mut fp, &input) - loss(&mut fm, &input)) / (2.0 * eps);
            assert!(
                (num - fc.grad_w.data()[idx]).abs() < 1e-2,
                "weight grad {idx}: {num} vs {}",
                fc.grad_w.data()[idx]
            );
        }
    }

    #[test]
    fn param_count() {
        let fc = Dense::new("fc", 1024, 120, &mut rng());
        assert_eq!(fc.param_count(), 1024 * 120 + 120);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_input_size_panics() {
        let mut fc = Dense::new("fc", 4, 2, &mut rng());
        fc.forward(&Tensor::zeros(&[5]));
    }
}
