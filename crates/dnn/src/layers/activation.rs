//! Activation functions.
//!
//! The paper's quantised LeNet-5 uses the hyperbolic tangent ("the
//! activation function we use in this case study is the hyperbolic tangent
//! (tanh)", §IV), which also bounds activations into the fixed-point range.

use crate::layers::{Layer, LayerKind};
use crate::tensor::Tensor;

/// Elementwise `tanh` activation.
///
/// # Example
///
/// ```
/// use dnn::layers::{Layer, Tanh};
/// use dnn::tensor::Tensor;
///
/// let mut act = Tanh::new("tanh1");
/// let out = act.forward(&Tensor::from_vec(vec![0.0, 100.0], &[2]));
/// assert_eq!(out.data()[0], 0.0);
/// assert!((out.data()[1] - 1.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct Tanh {
    name: String,
    cached_output: Option<Tensor>,
}

impl Tanh {
    /// Creates a named tanh layer.
    pub fn new(name: &str) -> Self {
        Tanh { name: name.to_string(), cached_output: None }
    }
}

impl Layer for Tanh {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Tanh
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        let out = input.map(f32::tanh);
        self.cached_output = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self.cached_output.as_ref().expect("backward before forward");
        // A following layer may have flattened the feature map (e.g. a
        // dense layer after a conv); only the volume must match.
        let grad = grad_out.reshaped(y.shape());
        // d tanh(x)/dx = 1 − tanh²(x) = 1 − y².
        y.zip(&grad, |yi, g| g * (1.0 - yi * yi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matches_std_tanh() {
        let mut act = Tanh::new("t");
        let input = Tensor::from_vec(vec![-2.0, -0.5, 0.0, 0.5, 2.0], &[5]);
        let out = act.forward(&input);
        for (x, y) in input.data().iter().zip(out.data()) {
            assert!((y - x.tanh()).abs() < 1e-7);
        }
    }

    #[test]
    fn backward_gradient_check() {
        let mut act = Tanh::new("t");
        let input = Tensor::from_vec(vec![0.3, -1.1, 0.0], &[3]);
        let out = act.forward(&input);
        let grad_in = act.backward(&out); // L = sum(out²)/2
        let eps = 1e-3f32;
        for idx in 0..3 {
            let mut ip = input.clone();
            ip.data_mut()[idx] += eps;
            let mut im = input.clone();
            im.data_mut()[idx] -= eps;
            let lp: f32 = ip.data().iter().map(|v| v.tanh().powi(2)).sum::<f32>() / 2.0;
            let lm: f32 = im.data().iter().map(|v| v.tanh().powi(2)).sum::<f32>() / 2.0;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - grad_in.data()[idx]).abs() < 1e-3, "grad {idx}");
        }
    }

    #[test]
    fn saturation_kills_gradient() {
        let mut act = Tanh::new("t");
        act.forward(&Tensor::from_vec(vec![50.0], &[1]));
        let g = act.backward(&Tensor::from_vec(vec![1.0], &[1]));
        assert!(g.data()[0].abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_requires_forward() {
        let mut act = Tanh::new("t");
        act.backward(&Tensor::zeros(&[1]));
    }
}
