//! 2-D convolution (valid padding, stride 1), as used by LeNet-5.

use rand::Rng;

use crate::layers::{sgd_update, Layer, LayerKind, LayerParams};
use crate::tensor::Tensor;

/// A 2-D convolution layer.
///
/// Input `[C_in, H, W]`, kernels `[C_out, C_in, K, K]`, output
/// `[C_out, H-K+1, W-K+1]`.
///
/// # Example
///
/// ```
/// use dnn::layers::{Conv2d, Layer};
/// use dnn::tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut conv = Conv2d::new("conv1", 1, 6, 5, &mut rng);
/// let out = conv.forward(&Tensor::zeros(&[1, 28, 28]));
/// assert_eq!(out.shape(), &[6, 24, 24]);
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    name: String,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    weights: Tensor,
    bias: Tensor,
    grad_w: Tensor,
    grad_b: Tensor,
    vel_w: Tensor,
    vel_b: Tensor,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with He-uniform initialised weights.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        name: &str,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(in_channels > 0 && out_channels > 0 && kernel > 0);
        let fan_in = (in_channels * kernel * kernel) as f32;
        let bound = (2.0 / fan_in).sqrt();
        let w_shape = [out_channels, in_channels, kernel, kernel];
        let data: Vec<f32> =
            (0..w_shape.iter().product::<usize>()).map(|_| rng.gen_range(-bound..bound)).collect();
        Conv2d {
            name: name.to_string(),
            in_channels,
            out_channels,
            kernel,
            weights: Tensor::from_vec(data, &w_shape),
            bias: Tensor::zeros(&[out_channels]),
            grad_w: Tensor::zeros(&w_shape),
            grad_b: Tensor::zeros(&[out_channels]),
            vel_w: Tensor::zeros(&w_shape),
            vel_b: Tensor::zeros(&[out_channels]),
            cached_input: None,
        }
    }

    /// Output spatial size for an input of `h × w`.
    ///
    /// # Panics
    ///
    /// Panics if the input is smaller than the kernel.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(h >= self.kernel && w >= self.kernel, "input smaller than kernel");
        (h - self.kernel + 1, w - self.kernel + 1)
    }

    /// Kernel side length.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Patch offsets into the input for the kernel taps, in the same
    /// `(ic, ky, kx)` order the naive loop nest walks: the tap at flat
    /// index `j` reads `input[offsets[j] + oy * w + ox]` for output pixel
    /// `(oy, ox)`.
    fn patch_offsets(&self, h: usize, w: usize) -> Vec<usize> {
        let k = self.kernel;
        let mut offsets = Vec::with_capacity(self.in_channels * k * k);
        for ic in 0..self.in_channels {
            for ky in 0..k {
                for kx in 0..k {
                    offsets.push(ic * h * w + ky * w + kx);
                }
            }
        }
        offsets
    }

    /// Reference forward pass: the original 7-deep scalar loop nest.
    ///
    /// Kept as the exactness oracle for the im2col fast path — the fast
    /// [`Layer::forward`] accumulates in the same `(ic, ky, kx)` order, so
    /// the two must agree **bit-for-bit** on every input
    /// (`tests/par_determinism.rs` asserts this).
    pub fn forward_naive(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(input.shape()[0], self.in_channels, "channel mismatch");
        let (h, w) = (input.shape()[1], input.shape()[2]);
        let (oh, ow) = self.output_hw(h, w);
        let k = self.kernel;
        let mut out = Tensor::zeros(&[self.out_channels, oh, ow]);
        let in_data = input.data();
        let w_data = self.weights.data();
        let out_data = out.data_mut();
        for oc in 0..self.out_channels {
            let b = self.bias.data()[oc];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = b;
                    for ic in 0..self.in_channels {
                        let w_base = ((oc * self.in_channels + ic) * k) * k;
                        let in_base = ic * h * w;
                        for ky in 0..k {
                            let in_row = in_base + (oy + ky) * w + ox;
                            let w_row = w_base + ky * k;
                            for kx in 0..k {
                                acc += w_data[w_row + kx] * in_data[in_row + kx];
                            }
                        }
                    }
                    out_data[(oc * oh + oy) * ow + ox] = acc;
                }
            }
        }
        self.cached_input = Some(input.clone());
        out
    }

    /// Reference backward pass matching [`Conv2d::forward_naive`] — the
    /// exactness oracle for the flat-slice fast path in
    /// [`Layer::backward`].
    ///
    /// # Panics
    ///
    /// Panics if called before a forward pass.
    pub fn backward_naive(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("backward before forward");
        let (h, w) = (input.shape()[1], input.shape()[2]);
        let (oh, ow) = (grad_out.shape()[1], grad_out.shape()[2]);
        let k = self.kernel;
        let mut grad_in = Tensor::zeros(&[self.in_channels, h, w]);
        let in_data = input.data();
        let go = grad_out.data();
        let w_data = self.weights.data();
        {
            let gw = self.grad_w.data_mut();
            let gb = self.grad_b.data_mut();
            let gi = grad_in.data_mut();
            for oc in 0..self.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = go[(oc * oh + oy) * ow + ox];
                        if g == 0.0 {
                            continue;
                        }
                        gb[oc] += g;
                        for ic in 0..self.in_channels {
                            let w_base = ((oc * self.in_channels + ic) * k) * k;
                            let in_base = ic * h * w;
                            for ky in 0..k {
                                let in_row = in_base + (oy + ky) * w + ox;
                                let w_row = w_base + ky * k;
                                for kx in 0..k {
                                    gw[w_row + kx] += g * in_data[in_row + kx];
                                    gi[in_row + kx] += g * w_data[w_row + kx];
                                }
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Conv {
            in_channels: self.in_channels,
            out_channels: self.out_channels,
            kernel: self.kernel,
        }
    }

    /// im2col + register-blocked matmul fast path.
    ///
    /// Lowers every input patch to a contiguous column in `(ic, ky, kx)`
    /// order, then computes each output as one flat dot product walked in
    /// that same order — the identical sequence of float operations as
    /// [`Conv2d::forward_naive`], so outputs are bit-identical while the
    /// per-element index arithmetic and bounds checks of the 7-deep loop
    /// nest disappear.
    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(input.shape()[0], self.in_channels, "channel mismatch");
        let (h, w) = (input.shape()[1], input.shape()[2]);
        let (oh, ow) = self.output_hw(h, w);
        let k = self.kernel;
        let j_len = self.in_channels * k * k;
        let p_len = oh * ow;
        let in_data = input.data();

        // im2col: col[p * j_len + j] = input patch value for tap j of
        // output pixel p, taps ordered (ic, ky, kx).
        let mut col = vec![0.0f32; p_len * j_len];
        for oy in 0..oh {
            for ox in 0..ow {
                let dst = &mut col[(oy * ow + ox) * j_len..][..j_len];
                let mut j = 0;
                for ic in 0..self.in_channels {
                    let base = ic * h * w + oy * w + ox;
                    for ky in 0..k {
                        dst[j..j + k].copy_from_slice(&in_data[base + ky * w..][..k]);
                        j += k;
                    }
                }
            }
        }

        let mut out = Tensor::zeros(&[self.out_channels, oh, ow]);
        let w_data = self.weights.data();
        let out_data = out.data_mut();
        for oc in 0..self.out_channels {
            let w_row = &w_data[oc * j_len..][..j_len];
            let b = self.bias.data()[oc];
            let out_row = &mut out_data[oc * p_len..][..p_len];
            // Four pixels per pass share each weight load; the four
            // accumulators stay independent, preserving per-output order.
            let mut chunks = out_row.chunks_exact_mut(4);
            let mut p = 0;
            for quad in &mut chunks {
                let (c0, rest) = col[p * j_len..].split_at(j_len);
                let (c1, rest) = rest.split_at(j_len);
                let (c2, rest) = rest.split_at(j_len);
                let c3 = &rest[..j_len];
                let (mut a0, mut a1, mut a2, mut a3) = (b, b, b, b);
                for j in 0..j_len {
                    let wj = w_row[j];
                    a0 += wj * c0[j];
                    a1 += wj * c1[j];
                    a2 += wj * c2[j];
                    a3 += wj * c3[j];
                }
                quad.copy_from_slice(&[a0, a1, a2, a3]);
                p += 4;
            }
            for (slot, pc) in chunks.into_remainder().iter_mut().zip(p..p_len) {
                let cp = &col[pc * j_len..][..j_len];
                let mut acc = b;
                for j in 0..j_len {
                    acc += w_row[j] * cp[j];
                }
                *slot = acc;
            }
        }
        self.cached_input = Some(input.clone());
        out
    }

    /// Flat-slice fast path over a precomputed tap-offset table.
    ///
    /// Walks the same `(oc, pixel, (ic, ky, kx))` order as
    /// [`Conv2d::backward_naive`] — every `+=` into `grad_w`, `grad_b`
    /// and `grad_in` happens in the identical sequence, so gradients are
    /// bit-identical — but the inner loop is a single flat scan instead
    /// of a 4-deep nest of recomputed indices.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("backward before forward");
        let (h, w) = (input.shape()[1], input.shape()[2]);
        let (oh, ow) = (grad_out.shape()[1], grad_out.shape()[2]);
        let j_len = self.in_channels * self.kernel * self.kernel;
        let offsets = self.patch_offsets(h, w);
        let mut grad_in = Tensor::zeros(&[self.in_channels, h, w]);
        let in_data = input.data();
        let go = grad_out.data();
        let w_data = self.weights.data();
        let gw = self.grad_w.data_mut();
        let gb = self.grad_b.data_mut();
        let gi = grad_in.data_mut();
        for oc in 0..self.out_channels {
            let w_row = &w_data[oc * j_len..][..j_len];
            let gw_row = &mut gw[oc * j_len..][..j_len];
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = go[(oc * oh + oy) * ow + ox];
                    if g == 0.0 {
                        continue;
                    }
                    gb[oc] += g;
                    let p_off = oy * w + ox;
                    for (j, &off) in offsets.iter().enumerate() {
                        let idx = off + p_off;
                        gw_row[j] += g * in_data[idx];
                        gi[idx] += g * w_row[j];
                    }
                }
            }
        }
        grad_in
    }

    fn apply_gradients(&mut self, lr: f32, momentum: f32) {
        sgd_update(&mut self.weights, &mut self.grad_w, &mut self.vel_w, lr, momentum);
        sgd_update(&mut self.bias, &mut self.grad_b, &mut self.vel_b, lr, momentum);
    }

    fn zero_gradients(&mut self) {
        self.grad_w.data_mut().iter_mut().for_each(|g| *g = 0.0);
        self.grad_b.data_mut().iter_mut().for_each(|g| *g = 0.0);
    }

    fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    fn params(&self) -> Option<LayerParams> {
        Some(LayerParams { weights: self.weights.clone(), bias: self.bias.clone() })
    }

    fn set_params(&mut self, params: LayerParams) {
        assert_eq!(params.weights.shape(), self.weights.shape(), "weight shape mismatch");
        assert_eq!(params.bias.shape(), self.bias.shape(), "bias shape mismatch");
        self.weights = params.weights;
        self.bias = params.bias;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn identity_kernel_reproduces_input_window() {
        let mut conv = Conv2d::new("c", 1, 1, 1, &mut rng());
        conv.set_params(LayerParams {
            weights: Tensor::from_vec(vec![1.0], &[1, 1, 1, 1]),
            bias: Tensor::zeros(&[1]),
        });
        let input = Tensor::from_vec((0..9).map(|v| v as f32).collect(), &[1, 3, 3]);
        let out = conv.forward(&input);
        assert_eq!(out.data(), input.data());
    }

    #[test]
    fn known_3x3_convolution() {
        let mut conv = Conv2d::new("c", 1, 1, 2, &mut rng());
        conv.set_params(LayerParams {
            weights: Tensor::from_vec(vec![1.0, 0.0, 0.0, -1.0], &[1, 1, 2, 2]),
            bias: Tensor::from_vec(vec![0.5], &[1]),
        });
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0], &[1, 3, 3]);
        let out = conv.forward(&input);
        // out[y][x] = in[y][x] - in[y+1][x+1] + 0.5 = -4 + 0.5
        assert_eq!(out.shape(), &[1, 2, 2]);
        for &v in out.data() {
            assert!((v + 3.5).abs() < 1e-6, "{v}");
        }
    }

    #[test]
    fn multi_channel_shapes() {
        let mut conv = Conv2d::new("c", 6, 16, 5, &mut rng());
        let out = conv.forward(&Tensor::zeros(&[6, 12, 12]));
        assert_eq!(out.shape(), &[16, 8, 8]);
        assert_eq!(conv.param_count(), 16 * 6 * 25 + 16);
    }

    #[test]
    fn gradient_check_weights_and_input() {
        // Finite-difference check on a tiny conv.
        let mut conv = Conv2d::new("c", 2, 2, 2, &mut rng());
        let input = {
            let mut r = rng();
            Tensor::from_vec((0..2 * 3 * 3).map(|_| r.gen_range(-1.0..1.0)).collect(), &[2, 3, 3])
        };
        // Loss = sum(out^2)/2, dL/dout = out.
        let out = conv.forward(&input);
        let grad_in = conv.backward(&out);

        let eps = 1e-3f32;
        let loss = |c: &mut Conv2d, inp: &Tensor| -> f32 {
            let o = c.forward(inp);
            o.data().iter().map(|v| v * v).sum::<f32>() / 2.0
        };

        // Check dL/dinput at a few positions.
        for idx in [0usize, 5, 11, 17] {
            let mut ip = input.clone();
            ip.data_mut()[idx] += eps;
            let mut im = input.clone();
            im.data_mut()[idx] -= eps;
            let num = (loss(&mut conv.clone(), &ip) - loss(&mut conv.clone(), &im)) / (2.0 * eps);
            let ana = grad_in.data()[idx];
            assert!((num - ana).abs() < 2e-2, "input grad at {idx}: num {num} vs ana {ana}");
        }

        // Check dL/dw at a few positions.
        for idx in [0usize, 3, 7, 15] {
            let mut cp = conv.clone();
            let mut pp = cp.params().unwrap();
            pp.weights.data_mut()[idx] += eps;
            cp.set_params(pp);
            let lp = loss(&mut cp, &input);

            let mut cm = conv.clone();
            let mut pm = cm.params().unwrap();
            pm.weights.data_mut()[idx] -= eps;
            cm.set_params(pm);
            let lm = loss(&mut cm, &input);

            let num = (lp - lm) / (2.0 * eps);
            let ana = conv.grad_w.data()[idx];
            assert!((num - ana).abs() < 2e-2, "weight grad at {idx}: num {num} vs ana {ana}");
        }
    }

    #[test]
    fn apply_gradients_changes_weights_and_clears() {
        let mut conv = Conv2d::new("c", 1, 1, 2, &mut rng());
        let input = Tensor::full(&[1, 3, 3], 1.0);
        let out = conv.forward(&input);
        conv.backward(&out.map(|_| 1.0));
        let before = conv.params().unwrap().weights;
        conv.apply_gradients(0.1, 0.0);
        let after = conv.params().unwrap().weights;
        assert_ne!(before.data(), after.data());
        assert!(conv.grad_w.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn fast_forward_is_bit_identical_to_naive() {
        for (ic, oc, k, h, w) in
            [(1, 6, 5, 28, 28), (6, 16, 5, 12, 12), (3, 4, 3, 7, 9), (2, 3, 1, 5, 5)]
        {
            let mut conv = Conv2d::new("c", ic, oc, k, &mut rng());
            let mut r = rng();
            let input = Tensor::from_vec(
                (0..ic * h * w).map(|_| r.gen_range(-2.0f32..2.0)).collect(),
                &[ic, h, w],
            );
            let fast = conv.forward(&input);
            let naive = conv.forward_naive(&input);
            assert_eq!(fast.shape(), naive.shape());
            assert_eq!(fast.data(), naive.data(), "ic={ic} oc={oc} k={k}");
        }
    }

    #[test]
    fn fast_backward_is_bit_identical_to_naive() {
        for (ic, oc, k, h, w) in [(1, 6, 5, 14, 14), (6, 16, 5, 12, 12), (3, 4, 3, 7, 9)] {
            let mut fast = Conv2d::new("c", ic, oc, k, &mut rng());
            let mut naive = fast.clone();
            let mut r = rng();
            let input = Tensor::from_vec(
                (0..ic * h * w).map(|_| r.gen_range(-2.0f32..2.0)).collect(),
                &[ic, h, w],
            );
            let out = fast.forward(&input);
            naive.forward_naive(&input);
            // Zero some upstream gradients to exercise the skip path.
            let grad_out = out.map(|v| if v > 0.5 { 0.0 } else { v });
            let gi_fast = fast.backward(&grad_out);
            let gi_naive = naive.backward_naive(&grad_out);
            assert_eq!(gi_fast.data(), gi_naive.data(), "grad_in ic={ic} oc={oc} k={k}");
            assert_eq!(fast.grad_w.data(), naive.grad_w.data(), "grad_w");
            assert_eq!(fast.grad_b.data(), naive.grad_b.data(), "grad_b");
        }
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_requires_forward() {
        let mut conv = Conv2d::new("c", 1, 1, 2, &mut rng());
        conv.backward(&Tensor::zeros(&[1, 2, 2]));
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn channel_mismatch_panics() {
        let mut conv = Conv2d::new("c", 2, 1, 2, &mut rng());
        conv.forward(&Tensor::zeros(&[1, 4, 4]));
    }
}
