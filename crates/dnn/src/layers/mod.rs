//! Neural-network layers with forward and backward passes.
//!
//! Training runs in `f32`; deployment quantises trained parameters through
//! [`crate::quant`]. Layers cache whatever the backward pass needs, so the
//! calling pattern is strictly `forward` → `backward` per sample, with
//! gradient accumulation across a mini-batch and an explicit
//! [`Layer::apply_gradients`] at batch end.

mod activation;
mod conv;
mod dense;
mod pool;

pub use activation::Tanh;
pub use conv::Conv2d;
pub use dense::Dense;
pub use pool::MaxPool2d;

use crate::tensor::Tensor;

/// Structural description of a layer, used by the accelerator crate to
/// build per-layer execution schedules and by reports.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LayerKind {
    /// 2-D convolution: `out_channels` kernels of `in_channels × k × k`.
    Conv { in_channels: usize, out_channels: usize, kernel: usize },
    /// 2×2 max pooling.
    MaxPool { window: usize },
    /// Fully connected: `outputs × inputs` weight matrix.
    Dense { inputs: usize, outputs: usize },
    /// Elementwise hyperbolic tangent.
    Tanh,
}

/// Extracted learned parameters of a layer (cloned on request).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerParams {
    /// Weight tensor (conv: `[out, in, k, k]`; dense: `[out, in]`).
    pub weights: Tensor,
    /// Bias vector `[out]`.
    pub bias: Tensor,
}

/// A trainable or fixed network layer.
pub trait Layer {
    /// Human-readable layer name (unique within a network by convention).
    fn name(&self) -> &str;

    /// Structural description.
    fn kind(&self) -> LayerKind;

    /// Forward pass for one sample; caches state for `backward`.
    fn forward(&mut self, input: &Tensor) -> Tensor;

    /// Backward pass: consumes `∂L/∂output`, accumulates parameter
    /// gradients, returns `∂L/∂input`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before `forward`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Applies accumulated gradients with SGD + momentum and clears them.
    /// `lr` is already divided by the batch size by the caller.
    fn apply_gradients(&mut self, _lr: f32, _momentum: f32) {}

    /// Clears accumulated gradients without applying them.
    fn zero_gradients(&mut self) {}

    /// Number of learned parameters.
    fn param_count(&self) -> usize {
        0
    }

    /// Clones out the learned parameters, if any.
    fn params(&self) -> Option<LayerParams> {
        None
    }

    /// Overwrites the learned parameters (used by tests and model I/O).
    ///
    /// # Panics
    ///
    /// Implementations panic on shape mismatch; the default panics if the
    /// layer has no parameters.
    fn set_params(&mut self, _params: LayerParams) {
        panic!("layer {} has no parameters", self.name());
    }
}

/// Shared SGD-with-momentum update used by the parameterised layers.
pub(crate) fn sgd_update(
    param: &mut Tensor,
    grad: &mut Tensor,
    velocity: &mut Tensor,
    lr: f32,
    momentum: f32,
) {
    for ((p, g), v) in param
        .data_mut()
        .iter_mut()
        .zip(grad.data_mut().iter_mut())
        .zip(velocity.data_mut().iter_mut())
    {
        *v = momentum * *v - lr * *g;
        *p += *v;
        *g = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_update_applies_and_clears() {
        let mut p = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let mut g = Tensor::from_vec(vec![0.5, -0.5], &[2]);
        let mut v = Tensor::zeros(&[2]);
        sgd_update(&mut p, &mut g, &mut v, 0.1, 0.0);
        assert_eq!(p.data(), &[0.95, 2.05]);
        assert_eq!(g.data(), &[0.0, 0.0], "gradients cleared");
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut p = Tensor::from_vec(vec![0.0], &[1]);
        let mut v = Tensor::zeros(&[1]);
        for _ in 0..3 {
            let mut g = Tensor::from_vec(vec![1.0], &[1]);
            sgd_update(&mut p, &mut g, &mut v, 0.1, 0.9);
        }
        // v: -0.1, -0.19, -0.271; p: -0.1 -0.29 -0.561
        assert!((p.data()[0] + 0.561).abs() < 1e-6, "p = {}", p.data()[0]);
    }
}
