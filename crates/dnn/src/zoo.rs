//! Additional victim architectures (paper §V future work: "more DNN
//! architectures").
//!
//! Everything here quantises through [`crate::quant`] and runs on the
//! `accel` simulator unchanged, so the attack benches can sweep
//! architectures.

use rand::Rng;

use crate::digits::IMAGE_SIDE;
use crate::layers::{Conv2d, Dense, MaxPool2d, Tanh};
use crate::network::Sequential;

/// A two-hidden-layer MLP (no convolutions): the "all-DSP dense" victim.
///
/// `784 → 64 → 32 → 10`, tanh activations.
pub fn mlp(rng: &mut impl Rng) -> Sequential {
    let mut net = Sequential::new("mlp");
    net.push(Box::new(Dense::new("fc1", IMAGE_SIDE * IMAGE_SIDE, 64, rng)));
    net.push(Box::new(Tanh::new("fc1_tanh")));
    net.push(Box::new(Dense::new("fc2", 64, 32, rng)));
    net.push(Box::new(Tanh::new("fc2_tanh")));
    net.push(Box::new(Dense::new("fc3", 32, 10, rng)));
    net
}

/// A deeper convolutional victim than LeNet-5: three conv stages with two
/// pooling layers.
///
/// ```text
/// input [1, 28, 28]
/// conv1 8  × 3×3  -> [8, 26, 26]  (+ tanh)
/// pool1 2×2       -> [8, 13, 13]
/// conv2 16 × 4×4  -> [16, 10, 10] (+ tanh)
/// pool2 2×2       -> [16, 5, 5]
/// conv3 32 × 2×2  -> [32, 4, 4]   (+ tanh)
/// fc1   512 → 64                  (+ tanh)
/// fc2   64 → 10
/// ```
pub fn deep_cnn(rng: &mut impl Rng) -> Sequential {
    let mut net = Sequential::new("deep_cnn");
    net.push(Box::new(Conv2d::new("conv1", 1, 8, 3, rng)));
    net.push(Box::new(Tanh::new("conv1_tanh")));
    net.push(Box::new(MaxPool2d::new("pool1", 2)));
    net.push(Box::new(Conv2d::new("conv2", 8, 16, 4, rng)));
    net.push(Box::new(Tanh::new("conv2_tanh")));
    net.push(Box::new(MaxPool2d::new("pool2", 2)));
    net.push(Box::new(Conv2d::new("conv3", 16, 32, 2, rng)));
    net.push(Box::new(Tanh::new("conv3_tanh")));
    net.push(Box::new(Dense::new("fc1", 32 * 4 * 4, 64, rng)));
    net.push(Box::new(Tanh::new("fc1_tanh")));
    net.push(Box::new(Dense::new("fc2", 64, 10, rng)));
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::QFormat;
    use crate::quant::QuantizedNetwork;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mlp_shapes() {
        let mut net = mlp(&mut StdRng::seed_from_u64(0));
        let out = net.forward(&Tensor::zeros(&[1, 28, 28]));
        assert_eq!(out.shape(), &[10]);
    }

    #[test]
    fn deep_cnn_shapes() {
        let mut net = deep_cnn(&mut StdRng::seed_from_u64(0));
        let out = net.forward(&Tensor::zeros(&[1, 28, 28]));
        assert_eq!(out.shape(), &[10]);
    }

    #[test]
    fn zoo_networks_quantise() {
        let mut rng = StdRng::seed_from_u64(1);
        for net in [mlp(&mut rng), deep_cnn(&mut rng)] {
            let q =
                QuantizedNetwork::from_sequential(&net, &[1, 28, 28], QFormat::paper()).unwrap();
            let logits = q.infer_logits(&Tensor::full(&[1, 28, 28], 0.4));
            assert_eq!(logits.len(), 10);
        }
    }
}
