//! Synthetic handwritten-digit dataset (MNIST substitute).
//!
//! The reproduction environment has no access to the MNIST files, so this
//! module generates a drop-in substitute: each digit class has a stroke
//! skeleton (polylines in a unit square) that is rendered into a 28×28
//! grayscale image through a random affine transform (translation,
//! rotation, scale, shear), random stroke thickness and additive noise.
//! The result is a 10-class task with real intra-class variation that a
//! LeNet-5 learns to the mid-90s — the same regime as the paper's 96.17%
//! MNIST baseline — while exercising exactly the same code paths
//! (28×28×1 input, identical architecture, quantisation and schedule).

use rand::Rng;

use crate::tensor::Tensor;

/// Image side length (matches MNIST).
pub const IMAGE_SIDE: usize = 28;

/// Number of classes.
pub const NUM_CLASSES: usize = 10;

type Point = (f32, f32);

/// Polyline skeletons per digit, in a `[0,1]²` frame (y grows downward).
fn skeleton(digit: usize) -> Vec<Vec<Point>> {
    fn ellipse(cx: f32, cy: f32, rx: f32, ry: f32) -> Vec<Point> {
        (0..=16)
            .map(|i| {
                let a = i as f32 / 16.0 * std::f32::consts::TAU;
                (cx + rx * a.cos(), cy + ry * a.sin())
            })
            .collect()
    }
    match digit {
        0 => vec![ellipse(0.5, 0.5, 0.28, 0.38)],
        1 => vec![vec![(0.35, 0.25), (0.55, 0.1), (0.55, 0.9)]],
        2 => vec![vec![
            (0.25, 0.25),
            (0.35, 0.12),
            (0.62, 0.12),
            (0.72, 0.28),
            (0.62, 0.45),
            (0.3, 0.7),
            (0.25, 0.88),
            (0.75, 0.88),
        ]],
        3 => vec![vec![
            (0.28, 0.15),
            (0.62, 0.12),
            (0.72, 0.28),
            (0.55, 0.45),
            (0.72, 0.62),
            (0.62, 0.86),
            (0.28, 0.85),
        ]],
        4 => vec![vec![(0.6, 0.1), (0.25, 0.6), (0.78, 0.6)], vec![(0.6, 0.1), (0.6, 0.9)]],
        5 => vec![vec![
            (0.72, 0.12),
            (0.3, 0.12),
            (0.28, 0.45),
            (0.6, 0.42),
            (0.74, 0.6),
            (0.66, 0.85),
            (0.28, 0.86),
        ]],
        6 => vec![vec![(0.62, 0.1), (0.4, 0.3), (0.3, 0.55)], ellipse(0.5, 0.68, 0.22, 0.2)],
        7 => vec![vec![(0.25, 0.14), (0.75, 0.14), (0.45, 0.9)]],
        8 => vec![ellipse(0.5, 0.3, 0.2, 0.18), ellipse(0.5, 0.68, 0.24, 0.2)],
        9 => vec![ellipse(0.5, 0.32, 0.22, 0.2), vec![(0.7, 0.35), (0.66, 0.6), (0.55, 0.9)]],
        _ => panic!("digit {digit} out of range"),
    }
}

/// Rendering / augmentation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderParams {
    /// Maximum absolute translation in pixels.
    pub max_shift: f32,
    /// Maximum absolute rotation in radians.
    pub max_rotation: f32,
    /// Scale is drawn from `[1 - scale_jitter, 1 + scale_jitter]`.
    pub scale_jitter: f32,
    /// Stroke thickness is drawn from `[thickness_min, thickness_max]` px.
    pub thickness_min: f32,
    /// Upper thickness bound in pixels.
    pub thickness_max: f32,
    /// Standard deviation of additive Gaussian noise (clamped to `[0,1]`).
    pub noise_std: f32,
}

impl Default for RenderParams {
    fn default() -> Self {
        RenderParams {
            max_shift: 2.0,
            max_rotation: 0.18,
            scale_jitter: 0.12,
            thickness_min: 1.0,
            thickness_max: 1.9,
            noise_std: 0.05,
        }
    }
}

impl RenderParams {
    /// A harder augmentation regime (heavy noise, rotation, shift and
    /// thickness spread) tuned so a trained LeNet-5 lands in the paper's
    /// mid-90s accuracy band instead of saturating the task.
    pub fn challenging() -> Self {
        RenderParams {
            max_shift: 3.0,
            max_rotation: 0.28,
            scale_jitter: 0.18,
            thickness_min: 0.8,
            thickness_max: 2.2,
            noise_std: 0.15,
        }
    }
}

/// Renders one digit with random augmentation into a `[1, 28, 28]` tensor
/// with pixel values in `[0, 1]`.
///
/// # Panics
///
/// Panics if `digit >= 10`.
pub fn render_digit(digit: usize, params: &RenderParams, rng: &mut impl Rng) -> Tensor {
    let strokes = skeleton(digit);
    let side = IMAGE_SIDE as f32;

    let angle = rng.gen_range(-params.max_rotation..=params.max_rotation);
    let scale = rng.gen_range(1.0 - params.scale_jitter..=1.0 + params.scale_jitter);
    let shear = rng.gen_range(-0.08f32..=0.08);
    let dx = rng.gen_range(-params.max_shift..=params.max_shift);
    let dy = rng.gen_range(-params.max_shift..=params.max_shift);
    let thickness = rng.gen_range(params.thickness_min..=params.thickness_max);

    let (sin, cos) = angle.sin_cos();
    // Map unit-square skeleton point to pixel space with the affine jitter.
    let transform = |p: Point| -> Point {
        let (mut x, y) = (p.0 - 0.5, p.1 - 0.5);
        x += shear * y;
        let (xr, yr) = (x * cos - y * sin, x * sin + y * cos);
        ((xr * scale + 0.5) * side + dx, (yr * scale + 0.5) * side + dy)
    };

    let segments: Vec<(Point, Point)> = strokes
        .iter()
        .flat_map(|poly| {
            poly.windows(2).map(|w| (transform(w[0]), transform(w[1]))).collect::<Vec<_>>()
        })
        .collect();

    let mut img = Tensor::zeros(&[1, IMAGE_SIDE, IMAGE_SIDE]);
    let data = img.data_mut();
    for py in 0..IMAGE_SIDE {
        for px in 0..IMAGE_SIDE {
            let p = (px as f32 + 0.5, py as f32 + 0.5);
            let mut best = f32::INFINITY;
            for &(a, b) in &segments {
                best = best.min(point_segment_distance(p, a, b));
                if best == 0.0 {
                    break;
                }
            }
            // Soft-edged stroke: full intensity inside the core, smooth
            // falloff over one pixel.
            let v = (1.0 - (best - thickness * 0.5).max(0.0)).clamp(0.0, 1.0);
            data[py * IMAGE_SIDE + px] = v;
        }
    }
    if params.noise_std > 0.0 {
        for v in data.iter_mut() {
            // Box–Muller keeps us on `rand` without the `rand_distr` crate.
            let u1: f32 = rng.gen_range(1e-6f32..1.0);
            let u2: f32 = rng.gen_range(0.0f32..1.0);
            let n = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
            *v = (*v + n * params.noise_std).clamp(0.0, 1.0);
        }
    }
    img
}

fn point_segment_distance(p: Point, a: Point, b: Point) -> f32 {
    let (apx, apy) = (p.0 - a.0, p.1 - a.1);
    let (abx, aby) = (b.0 - a.0, b.1 - a.1);
    let len2 = abx * abx + aby * aby;
    let t = if len2 > 0.0 { ((apx * abx + apy * aby) / len2).clamp(0.0, 1.0) } else { 0.0 };
    let (cx, cy) = (a.0 + t * abx - p.0, a.1 + t * aby - p.1);
    (cx * cx + cy * cy).sqrt()
}

/// A labelled image dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    images: Vec<Tensor>,
    labels: Vec<usize>,
}

impl Dataset {
    /// Generates `n` samples with balanced classes using the given RNG.
    pub fn generate(n: usize, params: &RenderParams, rng: &mut impl Rng) -> Self {
        let mut images = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let digit = i % NUM_CLASSES;
            images.push(render_digit(digit, params, rng));
            labels.push(digit);
        }
        Dataset { images, labels }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Sample accessor.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn sample(&self, i: usize) -> (&Tensor, usize) {
        (&self.images[i], self.labels[i])
    }

    /// All images.
    pub fn images(&self) -> &[Tensor] {
        &self.images
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Iterates `(image, label)`.
    pub fn iter(&self) -> impl Iterator<Item = (&Tensor, usize)> {
        self.images.iter().zip(self.labels.iter().copied())
    }

    /// Splits off the last `n` samples into a second dataset.
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn split_off(&mut self, n: usize) -> Dataset {
        assert!(n <= self.len(), "cannot split {n} of {}", self.len());
        let at = self.len() - n;
        Dataset { images: self.images.split_off(at), labels: self.labels.split_off(at) }
    }

    /// A shuffled index order for one epoch.
    pub fn shuffled_indices(&self, rng: &mut impl Rng) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        for i in (1..idx.len()).rev() {
            let j = rng.gen_range(0..=i);
            idx.swap(i, j);
        }
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn renders_all_digits_in_range() {
        let mut r = rng();
        for d in 0..NUM_CLASSES {
            let img = render_digit(d, &RenderParams::default(), &mut r);
            assert_eq!(img.shape(), &[1, IMAGE_SIDE, IMAGE_SIDE]);
            assert!(img.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
            let ink = img.sum();
            assert!(ink > 5.0, "digit {d} rendered almost blank: ink {ink}");
            assert!(ink < 450.0, "digit {d} rendered almost solid: ink {ink}");
        }
    }

    #[test]
    fn augmentation_produces_variation() {
        let mut r = rng();
        let a = render_digit(3, &RenderParams::default(), &mut r);
        let b = render_digit(3, &RenderParams::default(), &mut r);
        let diff: f32 = a.zip(&b, |x, y| (x - y).abs()).sum();
        assert!(diff > 1.0, "two renders identical: diff {diff}");
    }

    #[test]
    fn zero_noise_render_is_clean() {
        let params = RenderParams { noise_std: 0.0, ..RenderParams::default() };
        let img = render_digit(0, &params, &mut rng());
        // Clean render: corner pixels are exactly zero.
        assert_eq!(img.get(&[0, 0, 0]), 0.0);
        assert_eq!(img.get(&[0, 27, 27]), 0.0);
    }

    #[test]
    fn different_digits_differ() {
        let params = RenderParams {
            noise_std: 0.0,
            max_shift: 0.0,
            max_rotation: 0.0,
            scale_jitter: 0.0,
            ..RenderParams::default()
        };
        let mut r = rng();
        let one = render_digit(1, &params, &mut r);
        let eight = render_digit(8, &params, &mut r);
        let diff: f32 = one.zip(&eight, |x, y| (x - y).abs()).sum();
        assert!(diff > 20.0, "digits 1 and 8 too similar: {diff}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn digit_out_of_range_panics() {
        render_digit(10, &RenderParams::default(), &mut rng());
    }

    #[test]
    fn dataset_generation_is_balanced() {
        let ds = Dataset::generate(100, &RenderParams::default(), &mut rng());
        assert_eq!(ds.len(), 100);
        for class in 0..NUM_CLASSES {
            let count = ds.labels().iter().filter(|&&l| l == class).count();
            assert_eq!(count, 10, "class {class}");
        }
    }

    #[test]
    fn split_off_partitions() {
        let mut ds = Dataset::generate(50, &RenderParams::default(), &mut rng());
        let test = ds.split_off(10);
        assert_eq!(ds.len(), 40);
        assert_eq!(test.len(), 10);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let p = RenderParams::default();
        let a = Dataset::generate(10, &p, &mut StdRng::seed_from_u64(5));
        let b = Dataset::generate(10, &p, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
        let c = Dataset::generate(10, &p, &mut StdRng::seed_from_u64(6));
        assert_ne!(a, c);
    }

    #[test]
    fn shuffled_indices_are_a_permutation() {
        let ds = Dataset::generate(30, &RenderParams::default(), &mut rng());
        let mut idx = ds.shuffled_indices(&mut rng());
        idx.sort_unstable();
        assert_eq!(idx, (0..30).collect::<Vec<_>>());
    }
}
