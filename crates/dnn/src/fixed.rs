//! Fixed-point quantisation.
//!
//! The paper deploys LeNet-5 with "fix-point 8-bit value, with 3-bits for
//! the integer and the rest for the mantissa representation". [`QFormat`]
//! expresses exactly that family of formats; [`Fixed8`] is one quantised
//! value; [`Quantizer`] converts whole tensors. The accelerator crate does
//! its MAC arithmetic on the raw integer codes, matching what a DSP48 does
//! in hardware, so injected bit-faults corrupt codes exactly as they would
//! on the FPGA.

use crate::tensor::Tensor;

/// An 8-bit fixed-point format: 1 optional sign bit, `int_bits` integer
/// bits, and the remaining bits of mantissa (fraction).
///
/// # Example
///
/// ```
/// use dnn::fixed::QFormat;
///
/// let q = QFormat::paper(); // signed, 3 integer bits (incl. sign), 5 mantissa bits
/// assert_eq!(q.scale(), 32.0);
/// assert!((q.max_value() - 3.96875).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QFormat {
    signed: bool,
    frac_bits: u8,
}

impl QFormat {
    /// Total bit width of the format (always 8 here).
    pub const BITS: u8 = 8;

    /// Creates a format with the given signedness and number of fractional
    /// (mantissa) bits.
    ///
    /// # Panics
    ///
    /// Panics if `frac_bits >= 8` (at least one integer/sign bit required).
    pub fn new(signed: bool, frac_bits: u8) -> Self {
        assert!(frac_bits < Self::BITS, "at least one non-fraction bit required");
        QFormat { signed, frac_bits }
    }

    /// The paper's deployment format: 8 bits total, 3 integer bits
    /// (including sign — the model is symmetric around zero because the
    /// activation is `tanh`), 5 mantissa bits.
    pub fn paper() -> Self {
        QFormat::new(true, 5)
    }

    /// Whether values carry a sign bit.
    pub fn is_signed(&self) -> bool {
        self.signed
    }

    /// Number of fractional bits.
    pub fn frac_bits(&self) -> u8 {
        self.frac_bits
    }

    /// The multiplicative scale (`2^frac_bits`).
    pub fn scale(&self) -> f32 {
        (1u32 << self.frac_bits) as f32
    }

    /// Smallest representable step.
    pub fn resolution(&self) -> f32 {
        1.0 / self.scale()
    }

    /// Largest representable value.
    pub fn max_value(&self) -> f32 {
        let max_code = if self.signed { i32::from(i8::MAX) } else { i32::from(u8::MAX) };
        max_code as f32 / self.scale()
    }

    /// Smallest representable value.
    pub fn min_value(&self) -> f32 {
        if self.signed {
            f32::from(i8::MIN) / self.scale()
        } else {
            0.0
        }
    }

    /// Quantises a real value to the nearest code, saturating at the ends.
    pub fn quantize(&self, value: f32) -> Fixed8 {
        let scaled = (value * self.scale()).round();
        let code = if self.signed {
            scaled.clamp(f32::from(i8::MIN), f32::from(i8::MAX)) as i8 as u8
        } else {
            scaled.clamp(0.0, f32::from(u8::MAX)) as u8
        };
        Fixed8 { code, format: *self }
    }

    /// Reconstructs a real value from a raw code.
    pub fn dequantize(&self, code: u8) -> f32 {
        if self.signed {
            f32::from(code as i8) / self.scale()
        } else {
            f32::from(code) / self.scale()
        }
    }
}

/// One quantised 8-bit value: raw code plus its format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fixed8 {
    code: u8,
    format: QFormat,
}

impl Fixed8 {
    /// Raw 8-bit code (two's complement when signed).
    pub fn code(&self) -> u8 {
        self.code
    }

    /// The format this code is interpreted in.
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// Real value this code represents.
    pub fn to_f32(&self) -> f32 {
        self.format.dequantize(self.code)
    }

    /// Returns the value with one bit flipped — the atomic fault unit.
    pub fn with_bit_flipped(&self, bit: u8) -> Fixed8 {
        Fixed8 { code: self.code ^ (1 << (bit & 7)), format: self.format }
    }
}

/// Tensor-level quantisation helper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quantizer {
    format: QFormat,
}

impl Quantizer {
    /// Creates a quantiser for one format.
    pub fn new(format: QFormat) -> Self {
        Quantizer { format }
    }

    /// The format in use.
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// Quantises a tensor to raw codes.
    pub fn quantize_tensor(&self, t: &Tensor) -> Vec<u8> {
        t.data().iter().map(|&v| self.format.quantize(v).code()).collect()
    }

    /// Reconstructs a tensor from raw codes.
    ///
    /// # Panics
    ///
    /// Panics if `codes.len()` does not match the shape volume.
    pub fn dequantize_tensor(&self, codes: &[u8], shape: &[usize]) -> Tensor {
        let data: Vec<f32> = codes.iter().map(|&c| self.format.dequantize(c)).collect();
        Tensor::from_vec(data, shape)
    }

    /// Round-trips a tensor through quantisation (the "fake-quantised"
    /// tensor used to evaluate deployment accuracy in f32 code paths).
    pub fn fake_quantize(&self, t: &Tensor) -> Tensor {
        t.map(|v| self.format.quantize(v).to_f32())
    }

    /// Worst-case absolute quantisation error for an in-range value.
    pub fn max_error(&self) -> f32 {
        self.format.resolution() / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_format_parameters() {
        let q = QFormat::paper();
        assert!(q.is_signed());
        assert_eq!(q.frac_bits(), 5);
        assert_eq!(q.scale(), 32.0);
        assert!((q.max_value() - 127.0 / 32.0).abs() < 1e-6);
        assert!((q.min_value() + 4.0).abs() < 1e-6);
        assert!((q.resolution() - 0.03125).abs() < 1e-9);
    }

    #[test]
    fn quantize_round_trip_within_half_lsb() {
        let q = QFormat::paper();
        let mut v = -3.9_f32;
        while v < 3.9 {
            let rt = q.quantize(v).to_f32();
            assert!((rt - v).abs() <= q.resolution() / 2.0 + 1e-6, "{v} -> {rt}");
            v += 0.01;
        }
    }

    #[test]
    fn saturation_at_both_ends() {
        let q = QFormat::paper();
        assert_eq!(q.quantize(100.0).to_f32(), q.max_value());
        assert_eq!(q.quantize(-100.0).to_f32(), q.min_value());
    }

    #[test]
    fn unsigned_format_clamps_negatives_to_zero() {
        let q = QFormat::new(false, 5);
        assert_eq!(q.quantize(-1.0).code(), 0);
        assert_eq!(q.quantize(-1.0).to_f32(), 0.0);
        assert!((q.max_value() - 255.0 / 32.0).abs() < 1e-6);
    }

    #[test]
    fn signed_codes_are_twos_complement() {
        let q = QFormat::paper();
        let v = q.quantize(-1.0);
        assert_eq!(v.code(), (-32i8) as u8);
        assert_eq!(v.to_f32(), -1.0);
    }

    #[test]
    fn bit_flip_changes_value() {
        let q = QFormat::paper();
        let v = q.quantize(1.0); // code 32 = 0b0010_0000
        let flipped = v.with_bit_flipped(7);
        assert!(flipped.to_f32() < 0.0, "sign-bit flip negates: {}", flipped.to_f32());
        let lsb = v.with_bit_flipped(0);
        assert!((lsb.to_f32() - (1.0 + q.resolution())).abs() < 1e-6);
        // Double flip restores.
        assert_eq!(v.with_bit_flipped(3).with_bit_flipped(3), v);
    }

    #[test]
    fn tensor_quantisation_round_trip() {
        let quant = Quantizer::new(QFormat::paper());
        let t = Tensor::from_vec(vec![0.5, -0.25, 3.0, -3.99], &[2, 2]);
        let codes = quant.quantize_tensor(&t);
        let back = quant.dequantize_tensor(&codes, &[2, 2]);
        for (a, b) in t.data().iter().zip(back.data()) {
            assert!((a - b).abs() <= quant.max_error() + 1e-6, "{a} vs {b}");
        }
        let fake = quant.fake_quantize(&t);
        assert_eq!(fake.data(), back.data());
    }

    #[test]
    #[should_panic(expected = "non-fraction")]
    fn rejects_all_fraction_format() {
        QFormat::new(true, 8);
    }
}
