//! Deep-learning substrate for the DeepStrike reproduction.
//!
//! The paper's victim is "a LeNet-5 neural network trained with the MNIST
//! dataset", deployed in 8-bit fixed point on an FPGA accelerator. This
//! crate builds that entire stack from scratch:
//!
//! * [`tensor`] — a minimal dense `f32` tensor.
//! * [`layers`] — conv / max-pool / dense / tanh with forward *and*
//!   backward passes (verified against finite differences).
//! * [`network`] — sequential container, softmax cross-entropy, SGD with
//!   momentum.
//! * [`lenet`] — the paper's exact victim architecture (Fig. 5a).
//! * [`digits`] — a procedurally generated MNIST substitute (the original
//!   dataset is not available in the reproduction environment; see
//!   DESIGN.md for why the substitution preserves the attack-relevant
//!   behaviour).
//! * [`fixed`] — the paper's 8-bit fixed-point format (3 integer bits,
//!   5-bit mantissa).
//! * [`quant`] — post-training quantisation and an *integer* reference
//!   inference pipeline whose MAC-level arithmetic is exactly what the
//!   `accel` crate replays on its DSP model.
//! * [`train`] / [`metrics`] — training loop and evaluation.
//! * [`zoo`] — additional victim architectures (paper §V future work).
//!
//! # Example: train, quantise, deploy
//!
//! ```no_run
//! use dnn::digits::{Dataset, RenderParams};
//! use dnn::fixed::QFormat;
//! use dnn::lenet::lenet5;
//! use dnn::quant::QuantizedNetwork;
//! use dnn::train::{train, TrainConfig};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let mut ds = Dataset::generate(2200, &RenderParams::default(), &mut rng);
//! let test = ds.split_off(200);
//! let mut net = lenet5(&mut rng);
//! train(&mut net, &ds, Some(&test), &TrainConfig::default(), &mut rng);
//! let q = QuantizedNetwork::from_sequential(&net, &[1, 28, 28], QFormat::paper())?;
//! println!("deployed accuracy: {:.2}%", 100.0 * q.accuracy(test.iter()));
//! # Ok::<(), dnn::quant::QuantError>(())
//! ```

pub mod digits;
pub mod fixed;
pub mod layers;
pub mod lenet;
pub mod metrics;
pub mod network;
pub mod quant;
pub mod tensor;
pub mod train;
pub mod zoo;
