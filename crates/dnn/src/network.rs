//! Sequential network container, softmax and cross-entropy training.

use crate::layers::{Layer, LayerKind};
use crate::tensor::Tensor;

/// Numerically stable softmax over a logit vector.
///
/// # Example
///
/// ```
/// use dnn::network::softmax;
/// use dnn::tensor::Tensor;
///
/// let p = softmax(&Tensor::from_vec(vec![1.0, 1.0], &[2]));
/// assert!((p.data()[0] - 0.5).abs() < 1e-6);
/// ```
pub fn softmax(logits: &Tensor) -> Tensor {
    let max = logits.data().iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.data().iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    Tensor::from_vec(exps.into_iter().map(|e| e / sum).collect(), logits.shape())
}

/// Cross-entropy loss of a probability vector against an integer label.
///
/// # Panics
///
/// Panics if `label` is out of range.
pub fn cross_entropy(probs: &Tensor, label: usize) -> f32 {
    assert!(label < probs.len(), "label {label} out of range");
    -(probs.data()[label].max(1e-12)).ln()
}

/// SGD hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdConfig {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig { lr: 0.05, momentum: 0.9 }
    }
}

/// A feed-forward stack of layers trained with softmax cross-entropy.
///
/// # Example
///
/// ```
/// use dnn::layers::{Dense, Tanh};
/// use dnn::network::Sequential;
/// use dnn::tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut net = Sequential::new("mlp");
/// net.push(Box::new(Dense::new("fc1", 4, 8, &mut rng)));
/// net.push(Box::new(Tanh::new("t1")));
/// net.push(Box::new(Dense::new("fc2", 8, 2, &mut rng)));
/// let logits = net.forward(&Tensor::zeros(&[4]));
/// assert_eq!(logits.shape(), &[2]);
/// ```
pub struct Sequential {
    name: String,
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        write!(f, "Sequential({} [{}])", self.name, names.join(" -> "))
    }
}

impl Sequential {
    /// Creates an empty network.
    pub fn new(name: impl Into<String>) -> Self {
        Sequential { name: name.into(), layers: Vec::new() }
    }

    /// Network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// The layer stack.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable access to the layer stack (for parameter I/O).
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// Structural description of every layer, in order.
    pub fn kinds(&self) -> Vec<LayerKind> {
        self.layers.iter().map(|l| l.kind()).collect()
    }

    /// Total learned parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Forward pass producing logits.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x);
        }
        x
    }

    /// Class prediction (argmax of logits).
    pub fn predict(&mut self, input: &Tensor) -> usize {
        self.forward(input).argmax().expect("network produced empty logits").0
    }

    /// One forward/backward pass accumulating gradients; returns the loss.
    ///
    /// # Panics
    ///
    /// Panics if `label` exceeds the output dimension.
    pub fn accumulate(&mut self, input: &Tensor, label: usize) -> f32 {
        let logits = self.forward(input);
        let probs = softmax(&logits);
        let loss = cross_entropy(&probs, label);
        // ∂L/∂logits for softmax + CE is simply p − one_hot(label).
        let mut grad = probs;
        grad.data_mut()[label] -= 1.0;
        let mut g = grad;
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        loss
    }

    /// Applies accumulated gradients, scaled by `1/batch_size`.
    pub fn apply(&mut self, config: &SgdConfig, batch_size: usize) {
        let lr = config.lr / batch_size.max(1) as f32;
        for layer in &mut self.layers {
            layer.apply_gradients(lr, config.momentum);
        }
    }

    /// Trains on one mini-batch; returns the mean loss.
    pub fn train_batch(&mut self, batch: &[(&Tensor, usize)], config: &SgdConfig) -> f32 {
        if batch.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for (x, y) in batch {
            total += self.accumulate(x, *y);
        }
        self.apply(config, batch.len());
        total / batch.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Tanh};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn xor_net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Sequential::new("xor");
        net.push(Box::new(Dense::new("fc1", 2, 8, &mut rng)));
        net.push(Box::new(Tanh::new("t1")));
        net.push(Box::new(Dense::new("fc2", 8, 2, &mut rng)));
        net
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let p = softmax(&Tensor::from_vec(vec![1000.0, 1001.0, 999.0], &[3]));
        assert!((p.sum() - 1.0).abs() < 1e-6);
        assert!(p.data().iter().all(|&v| v.is_finite() && v >= 0.0));
        assert_eq!(p.argmax().unwrap().0, 1);
    }

    #[test]
    fn cross_entropy_of_certain_prediction_is_zero() {
        let p = Tensor::from_vec(vec![0.0, 1.0, 0.0], &[3]);
        assert!(cross_entropy(&p, 1) < 1e-6);
        assert!(cross_entropy(&p, 0) > 10.0, "confidently wrong is expensive");
    }

    #[test]
    fn learns_xor() {
        let mut net = xor_net(11);
        let data = [
            (Tensor::from_vec(vec![0.0, 0.0], &[2]), 0usize),
            (Tensor::from_vec(vec![0.0, 1.0], &[2]), 1),
            (Tensor::from_vec(vec![1.0, 0.0], &[2]), 1),
            (Tensor::from_vec(vec![1.0, 1.0], &[2]), 0),
        ];
        let config = SgdConfig { lr: 0.5, momentum: 0.9 };
        let mut last = f32::INFINITY;
        for _ in 0..300 {
            let batch: Vec<(&Tensor, usize)> = data.iter().map(|(x, y)| (x, *y)).collect();
            last = net.train_batch(&batch, &config);
        }
        assert!(last < 0.1, "loss failed to converge: {last}");
        for (x, y) in &data {
            assert_eq!(net.predict(x), *y);
        }
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut net = xor_net(1);
        assert_eq!(net.train_batch(&[], &SgdConfig::default()), 0.0);
    }

    #[test]
    fn structure_reports() {
        let net = xor_net(2);
        assert_eq!(net.kinds().len(), 3);
        assert_eq!(net.param_count(), (2 * 8 + 8) + (8 * 2 + 2));
        let dbg = format!("{net:?}");
        assert!(dbg.contains("fc1 -> t1 -> fc2"));
    }
}
