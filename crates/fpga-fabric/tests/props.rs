//! Property-based tests for the fabric model.

use fpga_fabric::clock::Mmcm;
use fpga_fabric::drc::{check, Rule};
use fpga_fabric::floorplan::Region;
use fpga_fabric::netlist::Netlist;
use fpga_fabric::primitive::{Carry4, Lut6, Lut6_2};
use proptest::prelude::*;

proptest! {
    /// Any acyclic LUT network passes the loop rule regardless of topology.
    #[test]
    fn random_dags_never_have_comb_loops(edges in prop::collection::vec((0usize..30, 0usize..30), 0..80)) {
        let mut n = Netlist::new("dag");
        let cells: Vec<_> = (0..30).map(|i| n.add_lut1_inverter(&format!("l{i}"))).collect();
        let mut next_pin = [0u8; 30];
        for (a, b) in edges {
            // Only forward edges (a < b) keep the graph acyclic.
            let (a, b) = if a < b { (a, b) } else if b < a { (b, a) } else { continue };
            if next_pin[b] >= 6 {
                continue;
            }
            n.connect(n.output_of(cells[a]), n.input_of(cells[b], next_pin[b])).unwrap();
            next_pin[b] += 1;
        }
        let report = check(&n);
        prop_assert!(report.of_rule(Rule::CombinationalLoop).next().is_none());
        prop_assert!(report.is_deployable());
    }

    /// Adding a single back edge to a forward chain always creates exactly
    /// one combinational loop.
    #[test]
    fn one_back_edge_one_loop(len in 2usize..20, back_from in 1usize..19, back_to in 0usize..18) {
        let back_from = back_from.min(len - 1);
        let back_to = back_to.min(back_from.saturating_sub(1));
        let mut n = Netlist::new("loop");
        let cells: Vec<_> = (0..len).map(|i| n.add_lut1_inverter(&format!("l{i}"))).collect();
        for i in 0..len - 1 {
            n.connect(n.output_of(cells[i]), n.input_of(cells[i + 1], 0)).unwrap();
        }
        n.connect(n.output_of(cells[back_from]), n.input_of(cells[back_to], 1)).unwrap();
        let report = check(&n);
        prop_assert_eq!(report.of_rule(Rule::CombinationalLoop).count(), 1);
        let v = report.of_rule(Rule::CombinationalLoop).next().unwrap();
        prop_assert_eq!(v.cells.len(), back_from - back_to + 1);
    }

    /// LUT6 evaluation equals direct INIT-bit lookup for random tables.
    #[test]
    fn lut6_eval_matches_init(init in any::<u64>(), addr in 0u8..64) {
        let lut = Lut6::new(init);
        let inputs = std::array::from_fn(|i| addr >> i & 1 == 1);
        prop_assert_eq!(lut.eval(inputs), init >> addr & 1 == 1);
    }

    /// LUT6_2's O5 never depends on I5.
    #[test]
    fn lut6_2_o5_ignores_i5(init in any::<u64>(), addr in 0u8..32) {
        let lut = Lut6_2::new(init);
        let mk = |i5: bool| {
            let mut v: [bool; 6] = std::array::from_fn(|i| addr >> i & 1 == 1);
            v[5] = i5;
            v
        };
        prop_assert_eq!(lut.eval(mk(false)).1, lut.eval(mk(true)).1);
    }

    /// Carry4 with all-high selects ripples any carry-in through unchanged.
    #[test]
    fn carry4_ripple_identity(ci in any::<bool>(), di in any::<[bool; 4]>()) {
        let (co, _) = Carry4::eval(ci, [true; 4], di);
        prop_assert_eq!(co, [ci; 4]);
    }

    /// Region overlap is symmetric and reflexive.
    #[test]
    fn region_overlap_laws(
        ax in 0u32..50, ay in 0u32..50, aw in 0u32..20, ah in 0u32..20,
        bx in 0u32..50, by in 0u32..50, bw in 0u32..20, bh in 0u32..20,
    ) {
        let a = Region::new(ax, ay, ax + aw, ay + ah);
        let b = Region::new(bx, by, bx + bw, by + bh);
        prop_assert!(a.overlaps(&a));
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        prop_assert!((a.distance_to(&b) - b.distance_to(&a)).abs() < 1e-12);
    }

    /// Netlist merge preserves cell counts and resource usage additively.
    #[test]
    fn merge_is_additive(n_a in 0usize..40, n_b in 0usize..40) {
        let mk = |count: usize, tag: &str| {
            let mut n = Netlist::new(tag);
            for i in 0..count {
                n.add_lut1_inverter(&format!("{tag}{i}"));
            }
            n
        };
        let mut host = mk(n_a, "a");
        let other = mk(n_b, "b");
        host.merge(&other, "t");
        prop_assert_eq!(host.cell_count(), n_a + n_b);
        prop_assert_eq!(host.resource_usage().luts, n_a + n_b);
    }

    /// Every MMCM-derivable clock lands within 5% of the request and its
    /// phase on the quantisation grid.
    #[test]
    fn mmcm_outputs_meet_spec(freq in 25.0f64..800.0, phase in 0.0f64..359.0) {
        let mmcm = Mmcm::lock_default(100.0).unwrap();
        if let Ok(spec) = mmcm.derive(freq, phase) {
            prop_assert!((spec.freq_mhz - freq).abs() / freq <= 0.05);
            let o = (mmcm.vco_mhz() / spec.freq_mhz).round();
            let step = 360.0 / (56.0 * o);
            let ratio = spec.phase_deg / step;
            prop_assert!((ratio - ratio.round()).abs() < 1e-6);
        }
    }
}
