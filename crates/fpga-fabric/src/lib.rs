//! Behavioural FPGA fabric model.
//!
//! This crate is the device substrate for the DeepStrike reproduction. It
//! models the parts of an FPGA that the attack's *viability argument* rests
//! on, without simulating bit-level configuration:
//!
//! * [`primitive`] — behavioural models of the primitives the paper's
//!   circuits are built from: `LUT6_2` (dual-output look-up table), `LDCE`
//!   (transparent latch), `FDRE` (D flip-flop) and `CARRY4` (carry chain),
//!   plus a DSP48E1 descriptor.
//! * [`netlist`] — a cell/net graph with combinational-path tracking, enough
//!   to express a ring oscillator, the paper's latch-based power-striker cell
//!   and the TDC delay line.
//! * [`drc`] — a Vivado-style design-rule check. The rule that matters for
//!   the paper is the combinational-loop check (`LUTLP-1`): a classic
//!   LUT-only ring oscillator *fails* it, while DeepStrike's latch-based
//!   striker *passes*, which is the paper's §III-C claim.
//! * [`floorplan`] — a site grid with rectangular tenant regions, placement
//!   and distance queries (the paper places attacker and victim far apart).
//! * [`clock`] — a clock-management tile that derives same-frequency,
//!   phase-shifted clock pairs, as the TDC sensor requires.
//! * [`device`] — device resource models, including the Zynq-7020 found on
//!   the PYNQ-Z1 board used in the paper.
//! * [`bitstream`] — the "hypervisor view": multiple tenant netlists merged
//!   into one deployable image, gated by DRC and region checks.
//!
//! # Example
//!
//! ```
//! use fpga_fabric::netlist::Netlist;
//! use fpga_fabric::drc::{check, Severity};
//!
//! // A two-LUT ring oscillator: combinational loop, must fail DRC.
//! let mut n = Netlist::new("ro");
//! let a = n.add_lut1_inverter("inv_a");
//! let b = n.add_lut1_inverter("inv_b");
//! n.connect(n.output_of(a), n.input_of(b, 0)).unwrap();
//! n.connect(n.output_of(b), n.input_of(a, 0)).unwrap();
//! let report = check(&n);
//! assert!(report.violations.iter().any(|v| v.severity == Severity::Error));
//! ```

pub mod bitstream;
pub mod clock;
pub mod device;
pub mod drc;
pub mod floorplan;
pub mod netlist;
pub mod primitive;

mod error;

pub use error::{FabricError, Result};
