//! Cell/net graph representation of a tenant design.
//!
//! A [`Netlist`] is a flat list of primitive cells connected by nets. It is
//! deliberately simple — just enough structure for the design-rule checker
//! to find combinational loops, for the floorplanner to count sites, and for
//! the DeepStrike crate to emit the striker and TDC circuits as auditable
//! netlists.

use std::collections::HashMap;

use crate::error::{FabricError, Result};
use crate::primitive::PrimitiveKind;

/// Identifier of a cell within one [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub usize);

/// Identifier of a net within one [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub usize);

/// A pin reference: `cell` plus a direction-tagged pin index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PinRef {
    /// Owning cell.
    pub cell: CellId,
    /// Pin within the cell.
    pub pin: Pin,
}

/// Direction-tagged pin index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pin {
    /// `In(k)` is the cell's k-th logic input.
    In(u8),
    /// `Out(k)` is the cell's k-th output (`Out(0)` = `O`/`O6`/`Q`).
    Out(u8),
}

/// One primitive instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Instance name, unique within the netlist.
    pub name: String,
    /// Primitive kind.
    pub kind: PrimitiveKind,
    /// Optional LUT `INIT` word (LUT kinds only).
    pub init: Option<u64>,
    nets_in: Vec<Option<NetId>>,
    nets_out: Vec<Option<NetId>>,
}

impl Cell {
    /// Net driving input pin `k`, if connected.
    pub fn input_net(&self, k: usize) -> Option<NetId> {
        self.nets_in.get(k).copied().flatten()
    }

    /// Net driven by output pin `k`, if connected.
    pub fn output_net(&self, k: usize) -> Option<NetId> {
        self.nets_out.get(k).copied().flatten()
    }

    /// All connected input nets.
    pub fn input_nets(&self) -> impl Iterator<Item = NetId> + '_ {
        self.nets_in.iter().filter_map(|n| *n)
    }

    /// All connected output nets.
    pub fn output_nets(&self) -> impl Iterator<Item = NetId> + '_ {
        self.nets_out.iter().filter_map(|n| *n)
    }
}

/// One net: a single driver pin fanning out to sink pins.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Net {
    /// Net name (generated).
    pub name: String,
    /// Driving output pin, if any.
    pub driver: Option<PinRef>,
    /// Input pins this net fans out to.
    pub sinks: Vec<PinRef>,
}

/// Per-kind resource usage of a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceUsage {
    /// LUTs of any flavour (`LUT6`, `LUT6_2`).
    pub luts: usize,
    /// Flip-flops (`FDRE`).
    pub flip_flops: usize,
    /// Latches (`LDCE`).
    pub latches: usize,
    /// Carry-chain elements (`CARRY4`).
    pub carry4: usize,
    /// DSP slices.
    pub dsp: usize,
    /// Block RAMs.
    pub bram: usize,
    /// I/O and clock buffers.
    pub buffers: usize,
}

impl ResourceUsage {
    /// Estimated logic-slice count: a 7-series slice holds 4 LUTs and
    /// 8 storage elements, and one `CARRY4` occupies one slice's chain.
    ///
    /// The estimate takes the max over the three packing constraints, which
    /// mirrors how a real packer bounds slice usage from below.
    pub fn slices(&self) -> usize {
        let by_lut = self.luts.div_ceil(4);
        let by_ff = (self.flip_flops + self.latches).div_ceil(8);
        let by_carry = self.carry4;
        by_lut.max(by_ff).max(by_carry)
    }

    /// Component-wise sum.
    pub fn merged(&self, other: &ResourceUsage) -> ResourceUsage {
        ResourceUsage {
            luts: self.luts + other.luts,
            flip_flops: self.flip_flops + other.flip_flops,
            latches: self.latches + other.latches,
            carry4: self.carry4 + other.carry4,
            dsp: self.dsp + other.dsp,
            bram: self.bram + other.bram,
            buffers: self.buffers + other.buffers,
        }
    }
}

/// A flat primitive netlist.
///
/// # Example
///
/// ```
/// use fpga_fabric::netlist::Netlist;
/// use fpga_fabric::primitive::PrimitiveKind;
///
/// let mut n = Netlist::new("demo");
/// let lut = n.add_lut1_inverter("inv");
/// let ff = n.add_cell("ff", PrimitiveKind::Fdre, None);
/// n.connect(n.output_of(lut), n.input_of(ff, 0)).unwrap();
/// assert_eq!(n.cell_count(), 2);
/// assert_eq!(n.resource_usage().luts, 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    name: String,
    cells: Vec<Cell>,
    nets: Vec<Net>,
    names: HashMap<String, CellId>,
}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist { name: name.into(), cells: Vec::new(), nets: Vec::new(), names: HashMap::new() }
    }

    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Adds a primitive cell and returns its id.
    ///
    /// If `name` collides with an existing cell a numeric suffix is
    /// appended, so generated circuits can use repetitive base names freely.
    pub fn add_cell(&mut self, name: &str, kind: PrimitiveKind, init: Option<u64>) -> CellId {
        let mut unique = name.to_string();
        let mut k = 1usize;
        while self.names.contains_key(&unique) {
            unique = format!("{name}_{k}");
            k += 1;
        }
        let id = CellId(self.cells.len());
        self.cells.push(Cell {
            name: unique.clone(),
            kind,
            init,
            nets_in: vec![None; kind.input_count()],
            nets_out: vec![None; kind.output_count()],
        });
        self.names.insert(unique, id);
        id
    }

    /// Adds a LUT configured as an inverter on `I0` — the building block of
    /// a classic ring oscillator.
    pub fn add_lut1_inverter(&mut self, name: &str) -> CellId {
        let init = crate::primitive::Lut6::inverter().init();
        self.add_cell(name, PrimitiveKind::Lut6, Some(init))
    }

    /// Adds a `LUT6_2` configured as the striker's dual inverter.
    pub fn add_dual_inverter(&mut self, name: &str) -> CellId {
        let init = crate::primitive::Lut6_2::dual_inverter().init();
        self.add_cell(name, PrimitiveKind::Lut6_2, Some(init))
    }

    /// Reference to output pin `k` of `cell`.
    pub fn output_pin(&self, cell: CellId, k: u8) -> PinRef {
        PinRef { cell, pin: Pin::Out(k) }
    }

    /// Reference to output pin 0 of `cell` (the common case).
    pub fn output_of(&self, cell: CellId) -> PinRef {
        self.output_pin(cell, 0)
    }

    /// Reference to input pin `k` of `cell`.
    pub fn input_of(&self, cell: CellId, k: u8) -> PinRef {
        PinRef { cell, pin: Pin::In(k) }
    }

    /// Cell lookup by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (ids are only minted by this netlist).
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.0]
    }

    /// Cell lookup by instance name.
    pub fn cell_by_name(&self, name: &str) -> Option<(CellId, &Cell)> {
        self.names.get(name).map(|id| (*id, &self.cells[id.0]))
    }

    /// Net lookup by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.0]
    }

    /// Iterates over `(CellId, &Cell)`.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells.iter().enumerate().map(|(i, c)| (CellId(i), c))
    }

    /// Iterates over `(NetId, &Net)`.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets.iter().enumerate().map(|(i, n)| (NetId(i), n))
    }

    /// Connects an output pin to an input pin, creating or extending the
    /// driver's net.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::InvalidArgument`] if `from` is not an output or
    /// `to` is not an input or either pin index is out of range, and
    /// [`FabricError::PinAlreadyDriven`] if `to` already has a driver.
    pub fn connect(&mut self, from: PinRef, to: PinRef) -> Result<NetId> {
        let out_k = match from.pin {
            Pin::Out(k) => k as usize,
            Pin::In(_) => {
                return Err(FabricError::InvalidArgument("connect source must be an output".into()))
            }
        };
        let in_k = match to.pin {
            Pin::In(k) => k as usize,
            Pin::Out(_) => {
                return Err(FabricError::InvalidArgument("connect target must be an input".into()))
            }
        };
        if from.cell.0 >= self.cells.len() || to.cell.0 >= self.cells.len() {
            return Err(FabricError::NotFound("cell".into()));
        }
        if out_k >= self.cells[from.cell.0].nets_out.len() {
            return Err(FabricError::InvalidArgument(format!(
                "output pin {out_k} out of range for {}",
                self.cells[from.cell.0].name
            )));
        }
        if in_k >= self.cells[to.cell.0].nets_in.len() {
            return Err(FabricError::InvalidArgument(format!(
                "input pin {in_k} out of range for {}",
                self.cells[to.cell.0].name
            )));
        }
        if self.cells[to.cell.0].nets_in[in_k].is_some() {
            return Err(FabricError::PinAlreadyDriven {
                cell: self.cells[to.cell.0].name.clone(),
                pin: format!("I{in_k}"),
            });
        }
        let net_id = match self.cells[from.cell.0].nets_out[out_k] {
            Some(id) => id,
            None => {
                let id = NetId(self.nets.len());
                self.nets.push(Net {
                    name: format!("{}_o{}", self.cells[from.cell.0].name, out_k),
                    driver: Some(from),
                    sinks: Vec::new(),
                });
                self.cells[from.cell.0].nets_out[out_k] = Some(id);
                id
            }
        };
        self.nets[net_id.0].sinks.push(to);
        self.cells[to.cell.0].nets_in[in_k] = Some(net_id);
        Ok(net_id)
    }

    /// Counts cells by resource class.
    pub fn resource_usage(&self) -> ResourceUsage {
        let mut u = ResourceUsage::default();
        for c in &self.cells {
            match c.kind {
                PrimitiveKind::Lut6 | PrimitiveKind::Lut6_2 => u.luts += 1,
                PrimitiveKind::Fdre => u.flip_flops += 1,
                PrimitiveKind::Ldce => u.latches += 1,
                PrimitiveKind::Carry4 => u.carry4 += 1,
                PrimitiveKind::Dsp48 => u.dsp += 1,
                PrimitiveKind::Bram36 => u.bram += 1,
                PrimitiveKind::Ibuf | PrimitiveKind::Obuf | PrimitiveKind::Bufg => u.buffers += 1,
            }
        }
        u
    }

    /// Appends every cell and net of `other` into `self`, prefixing instance
    /// names with `prefix/`. Returns the id offset applied to `other`'s
    /// cells (i.e. `other`'s `CellId(k)` becomes `CellId(k + offset)`).
    ///
    /// This is what the hypervisor uses to combine tenant designs into one
    /// image.
    pub fn merge(&mut self, other: &Netlist, prefix: &str) -> usize {
        let cell_off = self.cells.len();
        let net_off = self.nets.len();
        for c in &other.cells {
            let name = format!("{prefix}/{}", c.name);
            let id = CellId(self.cells.len());
            self.cells.push(Cell {
                name: name.clone(),
                kind: c.kind,
                init: c.init,
                nets_in: c.nets_in.iter().map(|n| n.map(|NetId(i)| NetId(i + net_off))).collect(),
                nets_out: c.nets_out.iter().map(|n| n.map(|NetId(i)| NetId(i + net_off))).collect(),
            });
            self.names.insert(name, id);
        }
        for n in &other.nets {
            let remap = |p: PinRef| PinRef { cell: CellId(p.cell.0 + cell_off), pin: p.pin };
            self.nets.push(Net {
                name: format!("{prefix}/{}", n.name),
                driver: n.driver.map(remap),
                sinks: n.sinks.iter().copied().map(remap).collect(),
            });
        }
        cell_off
    }

    /// Directed cell-level connectivity: for every net, one edge from the
    /// driver cell to each sink cell. Used by the DRC loop finder.
    pub fn cell_edges(&self) -> Vec<(CellId, CellId)> {
        let mut edges = Vec::new();
        for n in &self.nets {
            if let Some(drv) = n.driver {
                for s in &n.sinks {
                    edges.push((drv.cell, s.cell));
                }
            }
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_builds_fanout_net() {
        let mut n = Netlist::new("t");
        let a = n.add_lut1_inverter("a");
        let b = n.add_lut1_inverter("b");
        let c = n.add_lut1_inverter("c");
        let net1 = n.connect(n.output_of(a), n.input_of(b, 0)).unwrap();
        let net2 = n.connect(n.output_of(a), n.input_of(c, 0)).unwrap();
        assert_eq!(net1, net2, "same driver reuses the net");
        assert_eq!(n.net(net1).sinks.len(), 2);
        assert_eq!(n.net(net1).driver.unwrap().cell, a);
    }

    #[test]
    fn double_driving_an_input_is_rejected() {
        let mut n = Netlist::new("t");
        let a = n.add_lut1_inverter("a");
        let b = n.add_lut1_inverter("b");
        let c = n.add_lut1_inverter("c");
        n.connect(n.output_of(a), n.input_of(c, 0)).unwrap();
        let err = n.connect(n.output_of(b), n.input_of(c, 0)).unwrap_err();
        assert!(matches!(err, FabricError::PinAlreadyDriven { .. }));
    }

    #[test]
    fn wrong_pin_directions_are_rejected() {
        let mut n = Netlist::new("t");
        let a = n.add_lut1_inverter("a");
        let b = n.add_lut1_inverter("b");
        assert!(n.connect(n.input_of(a, 0), n.input_of(b, 0)).is_err());
        assert!(n.connect(n.output_of(a), n.output_of(b)).is_err());
    }

    #[test]
    fn name_collisions_get_suffixes() {
        let mut n = Netlist::new("t");
        let a = n.add_lut1_inverter("inv");
        let b = n.add_lut1_inverter("inv");
        assert_ne!(n.cell(a).name, n.cell(b).name);
        assert!(n.cell_by_name("inv").is_some());
        assert!(n.cell_by_name("inv_1").is_some());
    }

    #[test]
    fn resource_usage_counts_and_slice_estimate() {
        let mut n = Netlist::new("t");
        for i in 0..8 {
            n.add_lut1_inverter(&format!("l{i}"));
        }
        for i in 0..3 {
            n.add_cell(&format!("ff{i}"), PrimitiveKind::Fdre, None);
        }
        n.add_cell("latch", PrimitiveKind::Ldce, None);
        n.add_cell("c4", PrimitiveKind::Carry4, None);
        let u = n.resource_usage();
        assert_eq!(u.luts, 8);
        assert_eq!(u.flip_flops, 3);
        assert_eq!(u.latches, 1);
        assert_eq!(u.carry4, 1);
        assert_eq!(u.slices(), 2, "8 LUTs / 4 per slice dominates");
    }

    #[test]
    fn merge_remaps_ids_and_names() {
        let mut host = Netlist::new("host");
        host.add_lut1_inverter("x");
        let mut tenant = Netlist::new("tenant");
        let a = tenant.add_lut1_inverter("a");
        let b = tenant.add_lut1_inverter("b");
        tenant.connect(tenant.output_of(a), tenant.input_of(b, 0)).unwrap();
        let off = host.merge(&tenant, "t0");
        assert_eq!(off, 1);
        let (id, cell) = host.cell_by_name("t0/a").expect("merged cell renamed");
        assert_eq!(id, CellId(1));
        assert_eq!(cell.kind, PrimitiveKind::Lut6);
        // The merged edge must connect the remapped cells.
        let edges = host.cell_edges();
        assert!(edges.contains(&(CellId(1), CellId(2))));
    }
}
