//! Clock management tile (CMT) model.
//!
//! The TDC sensor needs two clocks of the *same frequency* with a tunable
//! phase offset θ between them: one launches an edge into the delay line,
//! the other samples the carry chain (paper Fig. 1a). This module models a
//! 7-series MMCM: an integer feedback multiplier `M` and divider `D` lock a
//! VCO into its legal band, output dividers `O` derive the output clocks,
//! and phase is shifted in steps of 1/56th of the VCO period (the fine-phase
//! shift granularity of the real silicon).

use crate::error::{FabricError, Result};

/// MMCM electrical limits (7-series speed grade -1, simplified).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MmcmLimits {
    /// Lowest legal VCO frequency in MHz.
    pub vco_min_mhz: f64,
    /// Highest legal VCO frequency in MHz.
    pub vco_max_mhz: f64,
    /// Maximum feedback multiplier.
    pub mult_max: u32,
    /// Maximum input divider.
    pub div_max: u32,
    /// Maximum output divider.
    pub outdiv_max: u32,
}

impl Default for MmcmLimits {
    fn default() -> Self {
        MmcmLimits {
            vco_min_mhz: 600.0,
            vco_max_mhz: 1200.0,
            mult_max: 64,
            div_max: 56,
            outdiv_max: 128,
        }
    }
}

/// A synthesised clock: achieved frequency and phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockSpec {
    /// Achieved frequency in MHz.
    pub freq_mhz: f64,
    /// Achieved phase offset in degrees, relative to the MMCM reference.
    pub phase_deg: f64,
}

impl ClockSpec {
    /// Clock period in picoseconds.
    pub fn period_ps(&self) -> f64 {
        1.0e6 / self.freq_mhz
    }

    /// Phase offset expressed as time, in picoseconds.
    pub fn phase_ps(&self) -> f64 {
        self.period_ps() * self.phase_deg / 360.0
    }
}

/// A locked MMCM: reference input plus synthesis parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Mmcm {
    ref_mhz: f64,
    limits: MmcmLimits,
    mult: u32,
    div: u32,
}

impl Mmcm {
    /// Locks an MMCM to a reference clock, choosing `M`/`D` to push the VCO
    /// as high as the band allows (highest VCO gives the finest phase-shift
    /// granularity and divides the common 25/50/100/200 MHz clocks evenly).
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::UnsatisfiableClock`] if no `(M, D)` puts the
    /// VCO in its legal band.
    pub fn lock(ref_mhz: f64, limits: MmcmLimits) -> Result<Self> {
        if !(ref_mhz.is_finite() && ref_mhz > 0.0) {
            return Err(FabricError::UnsatisfiableClock {
                requested_mhz: ref_mhz,
                reason: "reference must be positive".into(),
            });
        }
        let mut best: Option<(u32, u32, f64)> = None;
        for div in 1..=limits.div_max {
            for mult in 2..=limits.mult_max {
                let vco = ref_mhz * f64::from(mult) / f64::from(div);
                if vco < limits.vco_min_mhz || vco > limits.vco_max_mhz {
                    continue;
                }
                // Prefer the highest VCO; among ties, the smallest divider
                // (less reference-path jitter in real silicon).
                let score = limits.vco_max_mhz - vco + f64::from(div) * 1e-6;
                if best.is_none_or(|(_, _, s)| score < s) {
                    best = Some((mult, div, score));
                }
            }
        }
        match best {
            Some((mult, div, _)) => Ok(Mmcm { ref_mhz, limits, mult, div }),
            None => Err(FabricError::UnsatisfiableClock {
                requested_mhz: ref_mhz,
                reason: "no M/D pair reaches the VCO band".into(),
            }),
        }
    }

    /// Locks with default 7-series limits.
    ///
    /// # Errors
    ///
    /// See [`Mmcm::lock`].
    pub fn lock_default(ref_mhz: f64) -> Result<Self> {
        Mmcm::lock(ref_mhz, MmcmLimits::default())
    }

    /// VCO frequency in MHz.
    pub fn vco_mhz(&self) -> f64 {
        self.ref_mhz * f64::from(self.mult) / f64::from(self.div)
    }

    /// Synthesises an output clock as close as possible to `freq_mhz` with
    /// phase offset as close as possible to `phase_deg`.
    ///
    /// Frequency granularity is the set `{vco / O}`; phase granularity is
    /// `360° / (56 · O)` (the fine phase shifter steps 1/56 of a VCO period,
    /// which is `1/(56·O)` of the output period).
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::UnsatisfiableClock`] if the achieved frequency
    /// misses the request by more than 5%.
    pub fn derive(&self, freq_mhz: f64, phase_deg: f64) -> Result<ClockSpec> {
        if !(freq_mhz.is_finite() && freq_mhz > 0.0) {
            return Err(FabricError::UnsatisfiableClock {
                requested_mhz: freq_mhz,
                reason: "requested frequency must be positive".into(),
            });
        }
        let vco = self.vco_mhz();
        let ideal = vco / freq_mhz;
        let mut best_o = 1u32;
        let mut best_err = f64::INFINITY;
        for o in 1..=self.limits.outdiv_max {
            let err = (vco / f64::from(o) - freq_mhz).abs();
            if err < best_err {
                best_err = err;
                best_o = o;
            }
        }
        let achieved = vco / f64::from(best_o);
        if (achieved - freq_mhz).abs() / freq_mhz > 0.05 {
            return Err(FabricError::UnsatisfiableClock {
                requested_mhz: freq_mhz,
                reason: format!(
                    "closest output divider {best_o} gives {achieved:.3} MHz (ideal divider {ideal:.2})"
                ),
            });
        }
        // Quantise the phase to the shifter granularity.
        let steps_per_period = 56.0 * f64::from(best_o);
        let step_deg = 360.0 / steps_per_period;
        let quantised = (phase_deg / step_deg).round() * step_deg;
        Ok(ClockSpec { freq_mhz: achieved, phase_deg: quantised.rem_euclid(360.0) })
    }

    /// Derives the TDC's launch/sample clock pair: same frequency, sample
    /// clock offset by `theta_deg`.
    ///
    /// # Errors
    ///
    /// See [`Mmcm::derive`].
    pub fn derive_pair(&self, freq_mhz: f64, theta_deg: f64) -> Result<(ClockSpec, ClockSpec)> {
        let launch = self.derive(freq_mhz, 0.0)?;
        let sample = self.derive(freq_mhz, theta_deg)?;
        Ok((launch, sample))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locks_100mhz_reference_into_band() {
        let mmcm = Mmcm::lock_default(100.0).unwrap();
        let vco = mmcm.vco_mhz();
        assert!((600.0..=1200.0).contains(&vco), "vco {vco}");
    }

    #[test]
    fn derives_the_paper_200mhz_tdc_clock() {
        let mmcm = Mmcm::lock_default(100.0).unwrap();
        let (launch, sample) = mmcm.derive_pair(200.0, 90.0).unwrap();
        assert!((launch.freq_mhz - 200.0).abs() < 1.0);
        assert_eq!(launch.freq_mhz, sample.freq_mhz, "same-frequency pair");
        assert!((sample.phase_deg - 90.0).abs() < 1.0, "phase {}", sample.phase_deg);
        assert!((launch.period_ps() - 5000.0).abs() < 30.0);
    }

    #[test]
    fn phase_is_quantised_not_exact() {
        let mmcm = Mmcm::lock_default(100.0).unwrap();
        let c = mmcm.derive(200.0, 33.3).unwrap();
        // Must be a multiple of the step size.
        let vco = mmcm.vco_mhz();
        let o = (vco / c.freq_mhz).round();
        let step = 360.0 / (56.0 * o);
        let ratio = c.phase_deg / step;
        assert!((ratio - ratio.round()).abs() < 1e-9, "phase not on grid: {}", c.phase_deg);
    }

    #[test]
    fn phase_time_conversion() {
        let spec = ClockSpec { freq_mhz: 200.0, phase_deg: 90.0 };
        assert!((spec.phase_ps() - 1250.0).abs() < 1e-9);
    }

    #[test]
    fn unreachable_frequencies_error() {
        let mmcm = Mmcm::lock_default(100.0).unwrap();
        assert!(mmcm.derive(3.0, 0.0).is_err(), "below vco/outdiv_max");
        assert!(mmcm.derive(5000.0, 0.0).is_err(), "above vco");
        assert!(mmcm.derive(-1.0, 0.0).is_err());
    }

    #[test]
    fn bad_reference_rejected() {
        assert!(Mmcm::lock_default(0.0).is_err());
        assert!(Mmcm::lock_default(f64::NAN).is_err());
        // 1 kHz reference cannot reach the VCO band with M <= 64.
        assert!(Mmcm::lock_default(0.001).is_err());
    }
}
