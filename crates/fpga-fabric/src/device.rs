//! Device resource models.
//!
//! The paper prototypes its "cloud FPGA" on a PYNQ-Z1 board, whose
//! programmable logic is a Zynq XC7Z020. The headline resource claim —
//! *"the power striker circuit consumes 15.03% logic slices"* — is checked
//! against the real 7Z020 budget reproduced here.

use crate::error::{FabricError, Result};
use crate::floorplan::SiteGrid;
use crate::netlist::ResourceUsage;

/// Static resource budget of one FPGA device.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    name: String,
    luts: usize,
    flip_flops: usize,
    slices: usize,
    dsp: usize,
    bram36: usize,
    grid: SiteGrid,
    /// Nominal core supply voltage in volts.
    vccint: f64,
}

impl Device {
    /// The Zynq XC7Z020 (PYNQ-Z1 board): 53,200 LUTs, 106,400 flip-flops,
    /// 13,300 slices, 220 DSP48E1, 140 RAMB36, VCCINT = 1.0 V.
    pub fn zynq_7020() -> Self {
        Device {
            name: "xc7z020".into(),
            luts: 53_200,
            flip_flops: 106_400,
            slices: 13_300,
            dsp: 220,
            bram36: 140,
            grid: SiteGrid::new(160, 100, 23, 31).expect("static geometry is valid"),
            vccint: 1.0,
        }
    }

    /// A small synthetic device for fast tests.
    pub fn testbench_mini() -> Self {
        Device {
            name: "mini".into(),
            luts: 1_600,
            flip_flops: 3_200,
            slices: 400,
            dsp: 16,
            bram36: 8,
            grid: SiteGrid::new(24, 20, 5, 7).expect("static geometry is valid"),
            vccint: 1.0,
        }
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total LUT count.
    pub fn luts(&self) -> usize {
        self.luts
    }

    /// Total flip-flop count.
    pub fn flip_flops(&self) -> usize {
        self.flip_flops
    }

    /// Total logic-slice count.
    pub fn slices(&self) -> usize {
        self.slices
    }

    /// Total DSP48 count.
    pub fn dsp(&self) -> usize {
        self.dsp
    }

    /// Total 36 Kb BRAM count.
    pub fn bram36(&self) -> usize {
        self.bram36
    }

    /// Site grid used for floorplanning.
    pub fn grid(&self) -> &SiteGrid {
        &self.grid
    }

    /// Nominal core voltage in volts.
    pub fn vccint(&self) -> f64 {
        self.vccint
    }

    /// Checks that `usage` fits the whole device.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::PlacementOverflow`] naming the first exhausted
    /// resource.
    pub fn admit(&self, usage: &ResourceUsage) -> Result<()> {
        let checks: [(&str, usize, usize); 5] = [
            ("LUT", usage.luts, self.luts),
            ("FF", usage.flip_flops + usage.latches, self.flip_flops),
            ("slice", usage.slices(), self.slices),
            ("DSP48", usage.dsp, self.dsp),
            ("BRAM36", usage.bram, self.bram36),
        ];
        for (what, requested, available) in checks {
            if requested > available {
                return Err(FabricError::PlacementOverflow {
                    requested,
                    available,
                    what: what.into(),
                });
            }
        }
        Ok(())
    }

    /// Utilisation percentages for a usage report.
    pub fn utilization(&self, usage: &ResourceUsage) -> Utilization {
        let pct = |num: usize, den: usize| 100.0 * num as f64 / den as f64;
        Utilization {
            lut_pct: pct(usage.luts, self.luts),
            ff_pct: pct(usage.flip_flops + usage.latches, self.flip_flops),
            slice_pct: pct(usage.slices(), self.slices),
            dsp_pct: pct(usage.dsp, self.dsp),
            bram_pct: pct(usage.bram, self.bram36),
        }
    }
}

/// Percent-of-device utilisation of each resource class.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Utilization {
    /// LUT utilisation in percent.
    pub lut_pct: f64,
    /// Storage-element utilisation in percent.
    pub ff_pct: f64,
    /// Slice utilisation in percent.
    pub slice_pct: f64,
    /// DSP utilisation in percent.
    pub dsp_pct: f64,
    /// BRAM utilisation in percent.
    pub bram_pct: f64,
}

impl std::fmt::Display for Utilization {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LUT {:5.2}% | FF {:5.2}% | slice {:5.2}% | DSP {:5.2}% | BRAM {:5.2}%",
            self.lut_pct, self.ff_pct, self.slice_pct, self.dsp_pct, self.bram_pct
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zynq_7020_budget_matches_datasheet() {
        let d = Device::zynq_7020();
        assert_eq!(d.luts(), 53_200);
        assert_eq!(d.flip_flops(), 106_400);
        assert_eq!(d.slices(), 13_300);
        assert_eq!(d.dsp(), 220);
        assert_eq!(d.bram36(), 140);
        assert_eq!(d.vccint(), 1.0);
    }

    #[test]
    fn admit_rejects_overflow_by_resource() {
        let d = Device::testbench_mini();
        let ok = ResourceUsage { luts: 100, ..Default::default() };
        d.admit(&ok).unwrap();
        let too_many_dsp = ResourceUsage { dsp: 100, ..Default::default() };
        let err = d.admit(&too_many_dsp).unwrap_err();
        assert!(matches!(err, FabricError::PlacementOverflow { ref what, .. } if what == "DSP48"));
    }

    #[test]
    fn utilization_percentages() {
        let d = Device::zynq_7020();
        // 15.03% of 13,300 slices ≈ 1999 slices ≈ 7996 LUTs fully packed.
        let usage = ResourceUsage { luts: 7_996, ..Default::default() };
        let u = d.utilization(&usage);
        assert!((u.slice_pct - 15.03).abs() < 0.05, "slice pct {}", u.slice_pct);
        let text = u.to_string();
        assert!(text.contains("slice"));
    }
}
